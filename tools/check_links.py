#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files.

Scans markdown files for inline links/images (``[text](target)``) and
reference definitions (``[label]: target``), and reports every relative
target that does not exist on disk.  External schemes (http/https/
mailto) are skipped — CI must not depend on the network.  Anchors are
validated too: pure fragment links (``#section``) are checked against
the headings of the containing file, and cross-file fragments
(``other.md#section``) against the headings of the target file, with
GitHub's duplicate-heading numbering (``#name``, ``#name-1``, ...)
honoured.

Usage::

    python tools/check_links.py [FILE_OR_DIR ...]

With no arguments, checks the repository's top-level ``*.md`` plus
everything under ``docs/``.  Exits 1 if any link is broken.
"""

import argparse
import os
import re
import sys
from typing import Iterable, List, Tuple

# Inline [text](target) — target ends at the first unescaped ')';
# markdown titles ('[x](y "title")') are split off below.
_INLINE_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFDEF_RE = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_HEADING_RE = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$", re.MULTILINE)
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def _anchor(heading: str) -> str:
    """GitHub's heading → anchor slug (close enough for our headings)."""
    slug = re.sub(r"[`*_]", "", heading.strip().lower())
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    return slug.replace(" ", "-")


def extract_targets(text: str) -> List[str]:
    """All link targets in one document, fenced code blocks excluded."""
    prose = _FENCE_RE.sub("", text)
    targets = _INLINE_RE.findall(prose)
    targets += _REFDEF_RE.findall(prose)
    return targets


def document_anchors(text: str) -> set:
    """Every anchor a document's headings define, GitHub style.

    Repeated headings get numbered suffixes: the first ``## Name`` is
    ``#name``, the second ``#name-1``, and so on.
    """
    anchors = set()
    counts = {}
    for heading in _HEADING_RE.findall(text):
        slug = _anchor(heading)
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else "%s-%d" % (slug, seen))
    return anchors


def _anchors_of(path: str, cache: dict) -> set:
    """Anchor set of a (possibly other) markdown file, memoized."""
    if path not in cache:
        with open(path, "r", encoding="utf-8") as handle:
            cache[path] = document_anchors(handle.read())
    return cache[path]


def check_file(path: str, anchor_cache: dict = None) -> List[Tuple[str, str]]:
    """Return (target, reason) for every broken link in one file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    anchors = document_anchors(text)
    base = os.path.dirname(os.path.abspath(path))
    if anchor_cache is None:
        anchor_cache = {}
    broken = []
    for target in extract_targets(text):
        if target.startswith(_SKIP_SCHEMES) or target.startswith("<"):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors:
                broken.append((target, "no such heading"))
            continue
        relpath, _, fragment = target.partition("#")
        if not relpath:
            continue
        resolved = os.path.join(base, relpath)
        if not os.path.exists(resolved):
            broken.append((target, "no such file"))
            continue
        if fragment and relpath.endswith(".md"):
            if fragment not in _anchors_of(resolved, anchor_cache):
                broken.append((target, "no such heading in %s" % relpath))
    return broken


def default_files(root: str) -> List[str]:
    files = sorted(
        os.path.join(root, name)
        for name in os.listdir(root)
        if name.endswith(".md")
    )
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        files += sorted(
            os.path.join(docs, name)
            for name in os.listdir(docs)
            if name.endswith(".md")
        )
    return files


def expand(paths: Iterable[str]) -> List[str]:
    files = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, _, names in os.walk(path):
                files += [
                    os.path.join(dirpath, n)
                    for n in sorted(names)
                    if n.endswith(".md")
                ]
        else:
            files.append(path)
    return files


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="markdown files or directories (default: "
                             "top-level *.md + docs/)")
    args = parser.parse_args(argv)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = expand(args.paths) if args.paths else default_files(root)
    failures = 0
    anchor_cache = {}
    for path in files:
        for target, reason in check_file(path, anchor_cache):
            print("%s: broken link %r (%s)" % (path, target, reason))
            failures += 1
    if failures:
        print("%d broken link(s) in %d file(s) checked"
              % (failures, len(files)))
        return 1
    print("all links resolve in %d file(s)" % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main())
