#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files.

Scans markdown files for inline links/images (``[text](target)``) and
reference definitions (``[label]: target``), and reports every relative
target that does not exist on disk.  External schemes (http/https/
mailto) are skipped — CI must not depend on the network — and pure
fragment links (``#section``) are checked against the headings of the
containing file.

Usage::

    python tools/check_links.py [FILE_OR_DIR ...]

With no arguments, checks the repository's top-level ``*.md`` plus
everything under ``docs/``.  Exits 1 if any link is broken.
"""

import argparse
import os
import re
import sys
from typing import Iterable, List, Tuple

# Inline [text](target) — target ends at the first unescaped ')';
# markdown titles ('[x](y "title")') are split off below.
_INLINE_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFDEF_RE = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_HEADING_RE = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$", re.MULTILINE)
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def _anchor(heading: str) -> str:
    """GitHub's heading → anchor slug (close enough for our headings)."""
    slug = re.sub(r"[`*_]", "", heading.strip().lower())
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    return slug.replace(" ", "-")


def extract_targets(text: str) -> List[str]:
    """All link targets in one document, fenced code blocks excluded."""
    prose = _FENCE_RE.sub("", text)
    targets = _INLINE_RE.findall(prose)
    targets += _REFDEF_RE.findall(prose)
    return targets


def check_file(path: str) -> List[Tuple[str, str]]:
    """Return (target, reason) for every broken link in one file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    anchors = {_anchor(h) for h in _HEADING_RE.findall(text)}
    base = os.path.dirname(os.path.abspath(path))
    broken = []
    for target in extract_targets(text):
        if target.startswith(_SKIP_SCHEMES) or target.startswith("<"):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors:
                broken.append((target, "no such heading"))
            continue
        relpath = target.split("#", 1)[0]
        if not relpath:
            continue
        if not os.path.exists(os.path.join(base, relpath)):
            broken.append((target, "no such file"))
    return broken


def default_files(root: str) -> List[str]:
    files = sorted(
        os.path.join(root, name)
        for name in os.listdir(root)
        if name.endswith(".md")
    )
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        files += sorted(
            os.path.join(docs, name)
            for name in os.listdir(docs)
            if name.endswith(".md")
        )
    return files


def expand(paths: Iterable[str]) -> List[str]:
    files = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, _, names in os.walk(path):
                files += [
                    os.path.join(dirpath, n)
                    for n in sorted(names)
                    if n.endswith(".md")
                ]
        else:
            files.append(path)
    return files


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="markdown files or directories (default: "
                             "top-level *.md + docs/)")
    args = parser.parse_args(argv)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = expand(args.paths) if args.paths else default_files(root)
    failures = 0
    for path in files:
        for target, reason in check_file(path):
            print("%s: broken link %r (%s)" % (path, target, reason))
            failures += 1
    if failures:
        print("%d broken link(s) in %d file(s) checked"
              % (failures, len(files)))
        return 1
    print("all links resolve in %d file(s)" % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main())
