"""Inspect the workload models: what does each invocation actually run?

Profiles every benchmark's cold invocation program — dynamic instruction
count, code/data footprints, instruction mix — for both ISAs, and charts
the x86-vs-RISC-V instruction gap that drives the thesis's headline
result.  Useful before trusting any simulated cycle count.

    python examples/inspect_workloads.py
"""

from repro.analysis.charts import grouped_hbar_chart
from repro.core.scale import SimScale
from repro.serverless.engine import install_docker
from repro.serverless.faas import FaasPlatform
from repro.sim.isa import get_isa
from repro.sim.isa.report import report
from repro.workloads.catalog import STANDALONE_FUNCTIONS

SCALE = SimScale(time=512, space=16)


def cold_record(function):
    engine = install_docker("riscv")
    engine.registry.push(function.image("riscv"))
    platform = FaasPlatform(engine)
    platform.deploy(function.name, function.name, function.runtime_name,
                    function.handler)
    return platform.invoke(function.name, function.default_payload())


def main() -> None:
    riscv = get_isa("riscv")
    x86 = get_isa("x86")
    labels = []
    riscv_insts = []
    x86_insts = []

    for function in STANDALONE_FUNCTIONS:
        record = cold_record(function)
        program = function.invocation_program(record, {}, SCALE)
        riscv_profile = report(riscv.assemble(program))
        # Rebuild for the other ISA (programs assemble per ISA).
        program_x86 = function.invocation_program(record, {}, SCALE)
        x86_profile = report(x86.assemble(program_x86))

        labels.append(function.name)
        riscv_insts.append(riscv_profile.dynamic_instructions)
        x86_insts.append(x86_profile.dynamic_instructions)

        if function.name == "fibonacci-python":
            print(riscv_profile.render())
            print()
            print("x86 lowering of the same invocation:")
            print(x86_profile.render())
            print()

    print(grouped_hbar_chart(
        "Cold invocation dynamic instructions (scaled)",
        labels,
        {"riscv": riscv_insts, "x86": x86_insts},
        width=44,
    ))
    gap = sum(x86_insts) / sum(riscv_insts)
    print()
    print("x86 executes %.2fx the RISC-V instructions across the cold set —"
          % gap)
    print("the software-stack path-length difference behind Fig 4.16.")


if __name__ == "__main__":
    main()
