"""The Hotel application end to end: functional run plus database study.

Part 1 uses the FaaS platform to actually *use* the hotel backend — find
nearby hotels, check a user in, read profiles, make a booking — against
the Cassandra-backed port, showing the serverless lifecycle (cold starts,
Memcached population, warm hits) as it happens.

Part 2 reruns the request timing under the QEMU-analog x86 VM with both
MongoDB and Cassandra, the methodology behind Fig 4.20 (the comparison
gem5 could not host because MongoDB would not boot there, §3.5.2.3).

    python examples/hotel_booking.py
"""

from repro.db import CassandraStore, MongoStore
from repro.emu import make_dev_vm
from repro.serverless.engine import install_docker
from repro.serverless.faas import FaasPlatform
from repro.workloads.hotel import HotelSuite


def part1_functional() -> None:
    print("=" * 64)
    print("Part 1: the hotel backend, running for real (Cassandra port)")
    print("=" * 64)
    suite = HotelSuite(CassandraStore())
    engine = install_docker("riscv")
    platform = FaasPlatform(engine)
    for function in suite.functions:
        engine.registry.push(function.image("riscv"))
        platform.deploy(function.name, function.name, function.runtime_name,
                        function.handler, services=suite.services_for(function))

    geo = platform.invoke("hotel-geo-go", {"lat": 37.97, "lon": 23.72,
                                           "radius_km": 30.0})
    print("nearby hotels (%s): %s..." % (
        "cold" if geo.cold else "warm", geo.result["hotel_ids"][:5]))

    login = platform.invoke("hotel-user-go",
                            {"username": "user0001", "password": "pass0001"})
    print("login user0001:", login.result)

    profile = platform.invoke("hotel-profile-go",
                              {"hotel_ids": geo.result["hotel_ids"][:2]})
    names = [p["name"] for p in profile.result["profiles"]]
    print("profiles fetched (%s): %s" % (
        "cold" if profile.cold else "warm", names))
    print("  db work:", profile.receipts["db"])

    profile2 = platform.invoke("hotel-profile-go",
                               {"hotel_ids": geo.result["hotel_ids"][:2]})
    print("profiles again (%s): served from Memcached, db receipt: %s" % (
        "cold" if profile2.cold else "warm",
        profile2.receipts.get("db", "none")))

    booking = platform.invoke("hotel-reservation-go", {
        "hotel_id": geo.result["hotel_ids"][0], "customer": "user0001",
        "in_date": "2015-04-02", "out_date": "2015-04-05",
    })
    print("booking:", booking.result)
    print("memcached: %d items, hit rate %.0f%%" % (
        len(suite.memcached), suite.memcached.hit_rate * 100))


def part2_database_comparison() -> None:
    print()
    print("=" * 64)
    print("Part 2: MongoDB vs Cassandra under QEMU x86 (Fig 4.20 method)")
    print("=" * 64)
    print("%-16s %14s %14s %14s %14s" % ("function", "cass_cold", "cass_warm",
                                         "mongo_cold", "mongo_warm"))
    rows = {}
    for store_cls in (CassandraStore, MongoStore):
        suite = HotelSuite(store_cls())
        vm = make_dev_vm("x86")
        vm.boot()
        boot_seconds = vm.boot_database_container(suite.db)
        print("-- %s container boot: %.1f s" % (suite.db.name, boot_seconds))
        for function in suite.functions:
            services = suite.services_for(function)
            cold = vm.time_request(function, services=services, cold=True)
            for sequence in range(2, 10):
                vm.time_request(function, services=services, sequence=sequence)
            warm = vm.time_request(function, services=services, sequence=10)
            rows.setdefault(function.short_name, {})[suite.db.name] = (cold, warm)
    for short, by_db in rows.items():
        print("%-16s %14.0f %14.0f %14.0f %14.0f" % (
            short, *by_db["cassandra"], *by_db["mongodb"]))
    print("\n(ns; MongoDB wins cold, warm is a wash — Fig 4.20's shape)")


if __name__ == "__main__":
    part1_functional()
    part2_database_comparison()
