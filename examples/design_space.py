"""Design-space exploration: the thesis's future-work direction (§6).

"Another interesting direction ... is to perform a detailed design space
exploration with respect to various microarchitectural characteristics,
such as caches, branch predictors, and prefetchers."  The infrastructure
supports it directly: sweep L2 capacity, instruction-prefetch degree and
ROB size for a cold serverless request and see which resources cold
starts actually want.

    python examples/design_space.py
"""

from repro.core import ExperimentHarness, SimScale
from repro.core.config import PlatformConfig
from repro.sim.cpu.o3 import O3Config
from repro.sim.mem.hierarchy import MemoryHierarchyConfig
from repro.workloads.catalog import get_function

SCALE = SimScale(time=512, space=16)
FUNCTION = get_function("fibonacci-python")  # the worst cold starter


def measure(mem_config=None, o3_config=None):
    config = PlatformConfig(
        isa="riscv",
        os_name="Ubuntu Jammy 22.04.3 Preinstalled Server",
        compiler="riscv64-unknown-linux-gnu-gcc 13.2.0",
        mem_config=mem_config or MemoryHierarchyConfig(),
        o3_config=o3_config or O3Config(),
    )
    harness = ExperimentHarness(isa="riscv", scale=SCALE, platform_config=config)
    return harness.measure_function(FUNCTION)


def sweep_l2() -> None:
    print("L2 capacity sweep (cold %s):" % FUNCTION.name)
    print("%-12s %12s %10s" % ("L2 size", "cold cycles", "L2 misses"))
    for l2_kb in (128, 256, 512, 1024, 2048):
        measurement = measure(mem_config=MemoryHierarchyConfig(l2_size=l2_kb * 1024))
        print("%-12s %12d %10d" % ("%dKB" % l2_kb, measurement.cold.cycles,
                                   measurement.cold.l2_misses))
    print()


def sweep_prefetcher() -> None:
    print("Next-line I-prefetch degree sweep (cold %s):" % FUNCTION.name)
    print("%-12s %12s %10s" % ("degree", "cold cycles", "L1I misses"))
    for degree in (0, 1, 2, 4, 8):
        measurement = measure(
            mem_config=MemoryHierarchyConfig(prefetch_i_degree=degree))
        print("%-12d %12d %10d" % (degree, measurement.cold.cycles,
                                   measurement.cold.l1i_misses))
    print("(cold starts are front-end bound: an instruction prefetcher is "
          "the Schall-style fix)")
    print()


def sweep_branch_predictor() -> None:
    print("Branch predictor sweep (cold %s):" % FUNCTION.name)
    print("%-14s %12s %12s" % ("predictor", "cold cycles", "mispredicts"))
    from repro.core.dse import DesignSpace

    space = DesignSpace(isa="riscv", scale=SCALE)
    space.axis("branch_predictor",
               ["tournament", "gshare", "bimodal", "static-taken"])
    result = space.sweep(FUNCTION)
    for point in result.points:
        print("%-14s %12d %12d" % (
            point.settings["branch_predictor"], point.cold_cycles,
            point.measurement.cold.branch_mispredicts))
    print()


def sweep_prefetcher_kind() -> None:
    print("Data-prefetcher kind sweep (cold %s):" % FUNCTION.name)
    print("%-10s %12s %10s" % ("kind", "cold cycles", "L1D misses"))
    from repro.core.dse import DesignSpace

    space = DesignSpace(isa="riscv", scale=SCALE)
    space.axis("prefetch_d_kind", ["none", "nextline", "stride"])
    space.axis("prefetch_d_degree", [4])
    result = space.sweep(FUNCTION)
    for point in result.points:
        print("%-10s %12d %10d" % (
            point.settings["prefetch_d_kind"], point.cold_cycles,
            point.measurement.cold.l1d_misses))
    print()


def sweep_rob() -> None:
    print("ROB size sweep (cold %s):" % FUNCTION.name)
    print("%-12s %12s %12s" % ("ROB", "cold cycles", "warm cycles"))
    for rob in (32, 64, 128, 192, 384):
        measurement = measure(o3_config=O3Config(rob_entries=rob))
        print("%-12d %12d %12d" % (rob, measurement.cold.cycles,
                                   measurement.warm.cycles))
    print()


if __name__ == "__main__":
    sweep_l2()
    sweep_prefetcher()
    sweep_branch_predictor()
    sweep_prefetcher_kind()
    sweep_rob()
