"""Relive §3: porting serverless benchmarking to RISC-V, step by step.

Walks the thesis's whole provisioning gauntlet against the emulated
platform models — the missing apt packages, the 3-hour Docker build, the
4-hour gRPC install and its libatomic workaround, the MongoDB dead end,
the gem5 kernel recipe — and ends with a working simulated measurement,
exactly the arc of the thesis.

    python examples/porting_journey.py
"""

from repro.core import ExperimentHarness, SimScale
from repro.emu import make_dev_vm
from repro.emu.kernel import KernelBuild, KernelConfig, build_gem5_kernel
from repro.emu.provision import ProvisionError, Provisioner
from repro.workloads import get_function


def step(number: int, title: str) -> None:
    print()
    print("Step %d: %s" % (number, title))
    print("-" * (8 + len(title)))


def main() -> None:
    print("Porting serverless benchmarking to RISC-V (the §3 journey)")

    step(1, "create the QEMU development VM")
    vm = make_dev_vm("riscv")
    boot_seconds = vm.boot()
    print("riscv64 Jammy guest booted under TCG in %.0f s (%s, %.0f MIPS)"
          % (boot_seconds, vm.accel, vm.mips))

    step(2, "install Docker (not in the riscv64 archive)")
    provisioner = Provisioner(vm)
    try:
        provisioner.apt_install("docker")
    except ProvisionError as error:
        print("apt says: %s" % error)
    provisioner.install_docker()
    print("built from source instead; provisioning so far: %.1f h"
          % (provisioner.log.total_seconds() / 3600))

    step(3, "port a Python function (the gRPC fight)")
    provisioner.pip_install("grpcio")
    try:
        provisioner.import_module("grpcio")
    except ProvisionError as error:
        print("import fails: %s" % error)
        provisioner.preload_libatomic()
        provisioner.import_module("grpcio")
        print("LD_PRELOAD workaround applied; import succeeds")

    step(4, "try to port MongoDB (spoiler)")
    try:
        provisioner.build_from_source("mongodb")
    except ProvisionError as error:
        print("dead end: %s" % error)
        print("-> the Hotel application moves to Apache Cassandra")

    step(5, "build a gem5-capable kernel")
    naive = KernelBuild().build(KernelConfig.defconfig("riscv"))
    print("defconfig kernel container-capable under gem5 (no module "
          "loading)? %s" % naive.supports_containers(dynamic_loading=False))
    kernel = build_gem5_kernel("riscv")
    print("defconfig + docker flags + mod2yes: capable=%s, image %.0f MB"
          % (kernel.supports_containers(dynamic_loading=False),
             kernel.size_bytes / 1e6))

    step(6, "run the ported function on the simulated RISC-V CPU")
    harness = ExperimentHarness(isa="riscv", scale=SimScale(time=512, space=16))
    measurement = harness.measure_function(get_function("fibonacci-python"))
    print("fibonacci-python: cold %d cycles, warm %d cycles (%.1fx)"
          % (measurement.cold.cycles, measurement.warm.cycles,
             measurement.cold_warm_cycle_ratio))
    print()
    print("Total provisioning wall time burned: %.1f hours — the thesis "
          "in one number." % (provisioner.log.total_seconds() / 3600))


if __name__ == "__main__":
    main()
