"""Quickstart: measure one serverless function on a simulated RISC-V CPU.

Runs the thesis's 10-request protocol (Fig 4.1) for fibonacci-go on the
simulated RISC-V platform: boot with the Atomic core, checkpoint, restore
with the detailed O3 core, measure the cold (1st) and warm (10th)
requests.

    python examples/quickstart.py
"""

from repro.core import ExperimentHarness, SimScale
from repro.workloads import get_function


def main() -> None:
    # A smaller scaled machine than the bench default keeps this instant;
    # see repro/core/scale.py for the scaled-machine methodology.
    scale = SimScale(time=512, space=16)
    function = get_function("fibonacci-go")

    harness = ExperimentHarness(isa="riscv", scale=scale)
    measurement = harness.measure_function(function)

    print("function: %s (runtime: %s)" % (function.name, function.runtime_name))
    print("platform: simulated RISC-V, %s" % harness.config.os_name)
    print()
    for label, stats in (("cold (request 1)", measurement.cold),
                         ("warm (request 10)", measurement.warm)):
        print("%-18s %9d cycles  %8d insts  CPI %.2f" % (
            label, stats.cycles, stats.instructions, stats.cpi))
        print("%-18s L1I misses %5d   L1D misses %5d   L2 misses %5d" % (
            "", stats.l1i_misses, stats.l1d_misses, stats.l2_misses))
    print()
    ratio = measurement.cold_warm_cycle_ratio
    print("cold start cost: %.1fx the warm execution" % ratio)
    print("(native-scale projection: ~%.1fM vs ~%.1fM cycles)" % (
        scale.project_cycles(measurement.cold.cycles) / 1e6,
        scale.project_cycles(measurement.warm.cycles) / 1e6,
    ))
    # The real handler ran for real: show its answer.
    print("handler result:", measurement.records[0].result)


if __name__ == "__main__":
    main()
