"""RISC-V vs x86: the thesis's headline comparison, on your laptop.

Measures the standalone functions on both simulated platforms — identical
microarchitecture (Table 4.1), different ISA and software stack — and
prints the cycle/instruction comparison of Figs 4.15/4.16.

    python examples/isa_comparison.py [time_scale]
"""

import sys

from repro.core import ExperimentHarness, SimScale
from repro.core.results import geometric_mean, isa_comparison_table
from repro.workloads.catalog import STANDALONE_FUNCTIONS


def main() -> None:
    time_scale = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    scale = SimScale(time=time_scale, space=16)

    measurements = {"riscv": {}, "x86": {}}
    for isa in ("riscv", "x86"):
        for function in STANDALONE_FUNCTIONS:
            harness = ExperimentHarness(isa=isa, scale=scale)
            measurements[isa][function.name] = harness.measure_function(function)
            print("measured %s on %s" % (function.name, isa))

    order = [fn.name for fn in STANDALONE_FUNCTIONS]
    print()
    print(isa_comparison_table(
        "Cycles (cold/warm), x86 vs RISC-V",
        measurements["riscv"], measurements["x86"],
        metric=lambda stats: stats.cycles, order=order, metric_name="cyc",
    ).render())
    print()
    print(isa_comparison_table(
        "Instructions (cold/warm), x86 vs RISC-V",
        measurements["riscv"], measurements["x86"],
        metric=lambda stats: stats.instructions, order=order, metric_name="in",
    ).render())

    speedups_cold = [
        measurements["x86"][name].cold.cycles / measurements["riscv"][name].cold.cycles
        for name in order
    ]
    speedups_warm = [
        measurements["x86"][name].warm.cycles / measurements["riscv"][name].warm.cycles
        for name in order
    ]
    print()
    print("geo-mean RISC-V speedup: %.2fx cold, %.2fx warm" % (
        geometric_mean(speedups_cold), geometric_mean(speedups_warm)))
    crossovers = [
        name for name in order
        if measurements["riscv"][name].cold.cycles
        < measurements["x86"][name].warm.cycles
    ]
    if crossovers:
        print("RISC-V cold beats x86 warm for: %s" % ", ".join(crossovers))


if __name__ == "__main__":
    main()
