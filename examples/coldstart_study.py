"""Cold-start economics: keep-alive policy and lukewarm execution.

Two studies built on the FaaS lifecycle model (§2.1 of the thesis):

1. How the provider's keep-alive policy (idle timeout, warm-pool size)
   trades memory residency against cold-start rate under a bursty
   invocation pattern.
2. The *lukewarm* effect: interleaving several functions on one core
   thrashes the shared microarchitectural state, so even "warm" software
   state executes against cold caches — the phenomenon Schall et al.'s
   lukewarm-serverless work characterises and the thesis highlights.

    python examples/coldstart_study.py
"""

import random

from repro.core import ExperimentHarness, SimScale
from repro.serverless.engine import install_docker
from repro.serverless.faas import FaasPlatform, KeepAlivePolicy
from repro.workloads.catalog import STANDALONE_FUNCTIONS, get_function


def keepalive_study() -> None:
    print("=" * 64)
    print("Study 1: keep-alive policy vs cold-start rate")
    print("=" * 64)
    rng = random.Random(42)
    # A bursty schedule over 9 functions: some hot, some rare.
    weights = [8, 4, 2, 1, 1, 1, 1, 1, 1]
    schedule = rng.choices(range(len(STANDALONE_FUNCTIONS)),
                           weights=weights, k=400)

    print("%-28s %10s %12s" % ("policy", "coldstarts", "cold rate"))
    for idle_timeout, max_warm in ((5, 2), (20, 4), (60, 8), (600, 32)):
        platform = FaasPlatform(
            install_docker("riscv"),
            policy=KeepAlivePolicy(idle_timeout=idle_timeout, max_warm=max_warm),
        )
        for function in STANDALONE_FUNCTIONS:
            platform.engine.registry.push(function.image("riscv"))
            platform.deploy(function.name, function.name, function.runtime_name,
                            function.handler)
        cold_starts = 0
        for index in schedule:
            function = STANDALONE_FUNCTIONS[index]
            record = platform.invoke(function.name, function.default_payload())
            cold_starts += record.cold
        label = "timeout=%ds, pool=%d" % (idle_timeout, max_warm)
        print("%-28s %10d %11.1f%%" % (label, cold_starts,
                                       100.0 * cold_starts / len(schedule)))
    print("\nLonger keep-alive slashes cold starts at the cost of resident "
          "memory — the provider trade-off of §2.1.")


def lukewarm_study() -> None:
    print()
    print("=" * 64)
    print("Study 2: lukewarm execution (microarchitectural thrashing)")
    print("=" * 64)
    scale = SimScale(time=512, space=16)
    harness = ExperimentHarness(isa="riscv", scale=scale)
    measurement = harness.measure_lukewarm(
        function=get_function("aes-go"),
        intruder=get_function("fibonacci-python"),
    )

    warm_cycles = measurement.warm.cycles
    print("%-28s %10s %8s" % ("state", "cycles", "vs warm"))
    print("%-28s %10d %8s" % ("cold (1st request)", measurement.cold.cycles,
                              "%.1fx" % (measurement.cold.cycles / warm_cycles)))
    print("%-28s %10d %8s" % ("warm (10th, quiet core)", warm_cycles, "1.0x"))
    print("%-28s %10d %8s" % ("lukewarm (thrashed by %s)" % measurement.intruder,
                              measurement.lukewarm.cycles,
                              "%.1fx" % measurement.lukewarm_slowdown))
    print("\nInterleaved execution makes a software-warm invocation behave "
          "closer to a cold one — the lukewarm effect.")


if __name__ == "__main__":
    keepalive_study()
    lukewarm_study()
