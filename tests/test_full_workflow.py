"""End-to-end workflow test: the thesis's §3-§4 pipeline in one piece.

Image preparation under QEMU → container provisioning → gem5-style boot
and checkpoint → cold/warm evaluation → results + energy + persistence.
If this passes, every layer of the reproduction composes.
"""

import pytest

from repro.core.harness import ExperimentHarness, clear_boot_checkpoint_cache
from repro.core.persist import load_measurements, save_measurements
from repro.core.scale import SimScale
from repro.db import CassandraStore
from repro.emu import make_dev_vm
from repro.emu.provision import Provisioner
from repro.sim.energy import EnergyModel
from repro.workloads.catalog import get_function
from repro.workloads.hotel import HotelSuite

SCALE = SimScale(time=2048, space=32)


@pytest.fixture(autouse=True)
def _fresh_checkpoints():
    clear_boot_checkpoint_cache()
    yield
    clear_boot_checkpoint_cache()


def test_thesis_workflow_end_to_end(tmp_path):
    # -- §4.1.2.1: image preparation under QEMU ---------------------------
    vm = make_dev_vm("riscv")
    vm.boot()
    provisioner = Provisioner(vm)
    provisioner.install_docker()                    # from source, §3.2.2
    function = get_function("hotel-user-go")
    vm.disk.store_container_image(function.image("riscv"))
    vm.disk.disable_service("snapd")                # speed up the gem5 boot
    assert function.name in vm.disk.container_images
    assert "snapd" not in vm.disk.enabled_services()

    # -- the database the Hotel app needs (Cassandra: the ported choice) --
    suite = HotelSuite(CassandraStore())
    db_boot_seconds = vm.boot_database_container(suite.db)
    assert db_boot_seconds > 60  # minutes under TCG, as measured

    # -- §4.1.2.2/.3: setup mode + evaluation mode on the simulator -------
    harness = ExperimentHarness(isa="riscv", scale=SCALE)
    measurement = harness.measure_function(
        function, services=suite.services_for(function))
    assert measurement.cold.cycles > measurement.warm.cycles
    assert measurement.cold.l2_misses > measurement.warm.l2_misses
    # The handler really authenticated against the seeded users table.
    assert measurement.records[0].result["authorized"] is True

    # -- the checkpoint was cached for the next experiment ----------------
    harness2 = ExperimentHarness(isa="riscv", scale=SCALE)
    harness2.prepare(service_stores=[suite.db])
    assert harness2._boot_checkpoint is not None

    # -- results post-processing -------------------------------------------
    energy = EnergyModel().estimate(measurement.cold)
    assert energy.total_nj > 0
    path = save_measurements({function.name: measurement},
                             tmp_path / "results.json",
                             metadata={"isa": "riscv", "db": "cassandra"})
    loaded = load_measurements(path)
    assert loaded[function.name]["cold"]["cycles"] == measurement.cold.cycles


def test_cross_isa_workflow_consistency():
    """The same workflow on all three ISAs preserves the headline order."""
    function = get_function("aes-go")
    cycles = {}
    for isa in ("riscv", "arm", "x86"):
        clear_boot_checkpoint_cache()
        harness = ExperimentHarness(isa=isa, scale=SCALE)
        measurement = harness.measure_function(function)
        cycles[isa] = measurement.cold.cycles
        # The ciphertext is ISA-independent: functional layer unaffected.
        assert measurement.records[0].result["blocks"] == 64
    assert cycles["riscv"] < cycles["arm"] < cycles["x86"]
