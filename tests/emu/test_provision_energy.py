"""Provisioning workflow and energy model tests."""

import pytest

from repro.core.harness import ExperimentHarness, clear_boot_checkpoint_cache
from repro.core.scale import SimScale
from repro.emu import make_dev_vm
from repro.emu.provision import (
    ProvisionError,
    Provisioner,
    port_python_function,
)
from repro.sim.energy import DEFAULT_COEFFICIENTS, EnergyModel
from repro.workloads.catalog import get_function


@pytest.fixture(autouse=True)
def _fresh_checkpoints():
    clear_boot_checkpoint_cache()
    yield
    clear_boot_checkpoint_cache()


def booted_vm(arch):
    vm = make_dev_vm(arch)
    vm.boot()
    return vm


class TestAptAndSourceBuilds:
    def test_docker_missing_on_riscv_apt(self):
        provisioner = Provisioner(booted_vm("riscv"))
        with pytest.raises(ProvisionError, match="Unable to locate"):
            provisioner.apt_install("docker")

    def test_docker_apt_works_on_x86(self):
        provisioner = Provisioner(booted_vm("x86"))
        provisioner.apt_install("docker")
        assert "docker" in provisioner.installed

    def test_install_docker_falls_back_to_source_on_riscv(self):
        provisioner = Provisioner(booted_vm("riscv"))
        provisioner.install_docker()
        assert {"docker", "containerd", "rootlesskit"} <= provisioner.installed
        # "took almost 3 hours in our setup" (§3.2.2) — per component here;
        # the total build time is hours, not minutes.
        assert provisioner.log.total_seconds() > 3600

    def test_mongodb_unportable(self):
        provisioner = Provisioner(booted_vm("riscv"))
        with pytest.raises(ProvisionError, match="no RISC-V port"):
            provisioner.build_from_source("mongodb")

    def test_mongodb_builds_on_x86(self):
        provisioner = Provisioner(booted_vm("x86"))
        provisioner.build_from_source("mongodb")
        assert "mongodb" in provisioner.installed


class TestGrpcLibatomicStory:
    def test_import_fails_without_preload_on_riscv(self):
        provisioner = Provisioner(booted_vm("riscv"))
        provisioner.pip_install("grpcio")
        with pytest.raises(ProvisionError, match="atomic-compare-exchange-1"):
            provisioner.import_module("grpcio")

    def test_preload_workaround(self):
        provisioner = Provisioner(booted_vm("riscv"))
        provisioner.pip_install("grpcio")
        provisioner.preload_libatomic()
        provisioner.import_module("grpcio")  # no raise

    def test_x86_needs_no_preload(self):
        provisioner = Provisioner(booted_vm("x86"))
        provisioner.pip_install("grpcio")
        provisioner.import_module("grpcio")

    def test_import_before_install(self):
        provisioner = Provisioner(booted_vm("riscv"))
        with pytest.raises(ProvisionError, match="ModuleNotFoundError"):
            provisioner.import_module("grpcio")

    def test_grpcio_pip_takes_hours_under_tcg(self):
        provisioner = Provisioner(booted_vm("riscv"))
        provisioner.pip_install("grpcio")
        # "lasted around 4 hours when done inside the RISC-V VM" (§3.3.1.2).
        assert 2 * 3600 < provisioner.log.total_seconds() < 8 * 3600

    def test_full_porting_journey(self):
        log = port_python_function(booted_vm("riscv"))
        outcomes = [step["outcome"] for step in log.steps]
        assert "undefined symbol" in outcomes  # hit the bug...
        assert outcomes[-1] == "ok"            # ...and worked around it
        assert "h total" in log.render()

    def test_x86_journey_is_painless(self):
        log = port_python_function(booted_vm("x86"))
        assert all(step["outcome"] == "ok" for step in log.steps)
        # KVM-speed installs: minutes, not hours.
        assert log.total_seconds() < 3600


class TestEnergyModel:
    def measure(self, isa):
        harness = ExperimentHarness(isa=isa, scale=SimScale(time=1024, space=16))
        return harness.measure_function(get_function("fibonacci-go"))

    def test_estimate_components(self):
        estimate = EnergyModel().estimate(self.measure("riscv").cold)
        assert estimate.total_nj > 0
        assert set(estimate.dynamic_nj) == {"pipeline", "l1", "l2", "dram",
                                            "bpred"}
        assert estimate.static_nj > 0
        assert "nJ total" in estimate.render()

    def test_cold_costs_more_energy_than_warm(self):
        measurement = self.measure("riscv")
        model = EnergyModel()
        assert model.estimate(measurement.cold).total_nj > \
            model.estimate(measurement.warm).total_nj

    def test_riscv_more_energy_efficient_here(self):
        # Fewer instructions + fewer misses -> less energy: the ISA-wars
        # axis the thesis motivates.
        model = EnergyModel()
        riscv = model.estimate(self.measure("riscv").cold)
        clear_boot_checkpoint_cache()
        x86 = model.estimate(self.measure("x86").cold)
        assert riscv.total_nj < x86.total_nj
        assert riscv.edp < x86.edp

    def test_coefficient_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(coefficients={"instruction": 1.0})
        with pytest.raises(ValueError):
            EnergyModel(static_watts=-1)

    def test_compare_batch(self):
        measurement = self.measure("riscv")
        estimates = EnergyModel().compare({"fibonacci-go": measurement})
        assert estimates["fibonacci-go"].total_nj > 0

    def test_dram_dominates_when_misses_do(self):
        # Per-event DRAM energy is ~2 orders above L1's.
        assert DEFAULT_COEFFICIENTS["dram_access"] > \
            50 * DEFAULT_COEFFICIENTS["l1_access"]
