"""Kernel config, boot chain, disk image, and QEMU VM tests."""

import pytest

from repro.emu.bootchain import OPENSBI, BootChain, Bootloader
from repro.emu.disk import DiskImage, GB, MB
from repro.emu.kernel import (
    BootFailure,
    KernelBuild,
    KernelConfig,
    KernelImage,
    NODEJS_SUPPORT_FLAG,
    X86_IDE_DRIVER,
    build_gem5_kernel,
)
from repro.emu.qemu import QemuVM, make_dev_vm
from repro.serverless.container import base_image
from repro.serverless.engine import REQUIRED_KERNEL_FEATURES


class TestKernelConfig:
    def test_defconfig_not_container_capable(self):
        # The thesis's emergency-mode boots: plain defconfig kernels
        # cannot run Docker.
        image = KernelBuild().build(KernelConfig.defconfig("riscv"))
        assert not image.supports_containers(dynamic_loading=False)
        assert image.missing_for_containers(dynamic_loading=False)

    def test_docker_flags_as_modules_need_dynamic_loading(self):
        config = KernelConfig.defconfig("riscv")
        config.apply_docker_flags()
        image = KernelBuild().build(config)
        # QEMU (dynamic loading) is fine; gem5 (no module loading) is not.
        assert image.supports_containers(dynamic_loading=True)
        assert not image.supports_containers(dynamic_loading=False)

    def test_mod2yes_fixes_gem5(self):
        config = KernelConfig.defconfig("riscv")
        config.apply_docker_flags()
        config.mod2yes()
        image = KernelBuild().build(config)
        assert image.supports_containers(dynamic_loading=False)

    def test_mod2yes_blows_up_image_size(self):
        lean = KernelBuild().build(KernelConfig.defconfig("riscv"))
        config = KernelConfig.defconfig("riscv")
        config.apply_docker_flags()
        config.mod2yes()
        fat = KernelBuild().build(config)
        assert fat.size_bytes > lean.size_bytes

    def test_unknown_arch_and_version_rejected(self):
        with pytest.raises(ValueError):
            KernelConfig("arm")
        with pytest.raises(ValueError):
            KernelConfig("riscv", version="4.19")

    def test_gem5_recipe_riscv(self):
        image = build_gem5_kernel("riscv")
        assert image.supports_containers(dynamic_loading=False)

    def test_gem5_recipe_x86_has_ide_but_not_nodejs(self):
        # §3.5.2: the IDE driver was the defconfig blocker; NodeJS support
        # never made it into a working x86 gem5 kernel.
        image = build_gem5_kernel("x86")
        assert X86_IDE_DRIVER in image.builtin
        assert NODEJS_SUPPORT_FLAG not in image.builtin
        assert NODEJS_SUPPORT_FLAG in image.loadable_modules

    def test_x86_defconfig_missing_ide(self):
        config = KernelConfig.defconfig("x86")
        assert X86_IDE_DRIVER not in config.options


class TestBootChain:
    def test_riscv_requires_opensbi(self):
        kernel = build_gem5_kernel("riscv")
        with pytest.raises(BootFailure):
            BootChain(kernel).validate()
        BootChain(kernel, OPENSBI).validate()  # fine

    def test_x86_boots_without_bootloader(self):
        BootChain(build_gem5_kernel("x86")).validate()

    def test_arch_mismatch_rejected(self):
        kernel = build_gem5_kernel("riscv")
        with pytest.raises(BootFailure):
            BootChain(kernel, Bootloader("grub", "x86", 1 << 20)).validate()

    def test_stage_names(self):
        chain = BootChain(build_gem5_kernel("riscv"), OPENSBI)
        assert chain.stages[0] == "opensbi-fw_jump"
        assert chain.stages[1].startswith("linux-")


class TestDiskImage:
    def test_resize_grow_only(self):
        disk = DiskImage("d", "riscv")
        disk.resize(8 * GB)
        assert disk.size_bytes == 8 * GB
        with pytest.raises(ValueError):
            disk.resize(2 * GB)

    def test_space_accounting(self):
        disk = DiskImage("d", "riscv", size_bytes=2 * GB)
        free_before = disk.free_bytes
        disk.install_package("docker", size_bytes=300 * MB)
        assert disk.free_bytes == free_before - 300 * MB

    def test_enospc(self):
        disk = DiskImage("d", "riscv", size_bytes=int(1.4 * GB))
        with pytest.raises(IOError):
            disk.install_package("docker", size_bytes=200 * MB)

    def test_container_arch_enforced(self):
        disk = DiskImage("d", "riscv")
        disk.store_container_image(base_image("go", "riscv"))
        with pytest.raises(ValueError):
            disk.store_container_image(base_image("go", "x86"))

    def test_disable_services(self):
        disk = DiskImage("d", "x86")
        assert "snapd" in disk.enabled_services()
        disk.disable_service("snapd")
        assert "snapd" not in disk.enabled_services()

    def test_convert_is_deep_copy(self):
        disk = DiskImage("d", "x86")
        clone = disk.convert("d2")
        clone.install_package("docker")
        assert "docker" not in disk.packages


class TestQemuVM:
    def test_dev_vm_boots(self):
        vm = make_dev_vm("riscv")
        seconds = vm.boot()
        assert seconds > 0
        assert vm.booted

    def test_cross_arch_tcg_much_slower(self):
        riscv_vm = make_dev_vm("riscv")   # riscv guest on x86 host: TCG
        x86_vm = make_dev_vm("x86")       # same arch: KVM
        assert x86_vm.accel == "kvm"
        assert riscv_vm.accel == "tcg"
        assert x86_vm.mips > 5 * riscv_vm.mips

    def test_kvm_requires_same_arch(self):
        from repro.emu.kernel import build_gem5_kernel

        kernel = build_gem5_kernel("riscv")
        disk = DiskImage("d", "riscv")
        with pytest.raises(BootFailure):
            QemuVM("riscv", kernel, disk, accel="kvm", host_arch="x86")

    def test_kernel_disk_arch_must_match_guest(self):
        kernel = build_gem5_kernel("x86")
        disk = DiskImage("d", "riscv")
        with pytest.raises(BootFailure):
            QemuVM("riscv", kernel, disk)

    def test_feature_poor_kernel_boots_to_emergency_mode(self):
        config = KernelConfig.defconfig("x86")
        config.enable(X86_IDE_DRIVER)
        kernel = KernelBuild().build(config)
        vm = QemuVM("x86", kernel, DiskImage("d", "x86"))
        with pytest.raises(BootFailure, match="emergency mode"):
            vm.boot()

    def test_operations_require_boot(self):
        vm = make_dev_vm("x86")
        from repro.db import MongoStore

        with pytest.raises(BootFailure):
            vm.boot_database_container(MongoStore())

    def test_cassandra_boot_story(self):
        """~17 min on emulated RISC-V, ~40 s native, ~5x MongoDB (§3.3.3.2)."""
        from repro.db import CassandraStore, MongoStore

        riscv_vm = make_dev_vm("riscv")
        riscv_vm.boot()
        cassandra_riscv = riscv_vm.boot_database_container(CassandraStore())
        assert 8 * 60 < cassandra_riscv < 25 * 60

        x86_vm = make_dev_vm("x86")
        x86_vm.boot()
        cassandra_x86 = x86_vm.boot_database_container(CassandraStore())
        mongo_x86 = x86_vm.boot_database_container(MongoStore())
        assert 20 < cassandra_x86 < 60
        assert 3.5 < cassandra_x86 / mongo_x86 < 9

    def test_wall_clock_accumulates(self):
        vm = make_dev_vm("x86")
        vm.boot()
        before = vm.wall_seconds
        vm.charge_instructions(10**9)
        assert vm.wall_seconds > before

    def test_time_request_returns_ns_and_runs_handler(self):
        from repro.workloads.catalog import get_function

        vm = make_dev_vm("x86")
        vm.boot()
        function = get_function("fibonacci-go")
        cold = vm.time_request(function, cold=True)
        warm = vm.time_request(function, sequence=2)
        assert cold > warm > 0
