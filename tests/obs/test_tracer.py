"""Tracer and miss-attribution unit tests."""

import pytest

from repro.obs import (
    MissClassifier,
    TRACK_CACHE,
    TRACK_INVOCATION,
    TRACK_PIPELINE,
    Tracer,
    snapshot_delta,
)


class TestClock:
    def test_starts_at_zero_and_advances(self):
        tracer = Tracer()
        assert tracer.now == 0
        tracer.advance(7)
        tracer.advance(3)
        assert tracer.now == 10

    def test_negative_advance_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.advance(-1)

    def test_zero_advance_is_a_noop(self):
        tracer = Tracer()
        tracer.advance(0)
        assert tracer.now == 0


class TestEvents:
    def test_complete_span_shape(self):
        tracer = Tracer()
        tracer.complete("boot", "invocation", ts=5, dur=12,
                        track=TRACK_INVOCATION, args={"k": 1})
        ph, name, cat, track, ts, dur, args = tracer.events[0]
        assert (ph, name, cat, track, ts, dur) == (
            "X", "boot", "invocation", TRACK_INVOCATION, 5, 12)
        assert args == {"k": 1}

    def test_instant_and_counter(self):
        tracer = Tracer()
        tracer.instant("tick", "eventq", 3)
        tracer.counter("ipc", 4, {"committed": 9}, track=TRACK_PIPELINE)
        phs = [event[0] for event in tracer.events]
        assert phs == ["I", "C"]

    def test_span_context_manager_minimum_duration(self):
        tracer = Tracer()
        with tracer.span("noop", "invocation", track=TRACK_INVOCATION):
            pass  # clock did not move: span still gets dur >= 1
        assert tracer.events[0][5] == 1

    def test_span_context_manager_measures_advance(self):
        tracer = Tracer()
        with tracer.span("work", "invocation", track=TRACK_INVOCATION):
            tracer.advance(42)
        assert tracer.events[0][5] == 42

    def test_named_counters_accumulate(self):
        tracer = Tracer()
        tracer.count("instructions", 5)
        tracer.count("instructions", 7)
        assert tracer.counters["instructions"] == 12


class TestFreeze:
    def test_freeze_is_a_plain_dict(self):
        tracer = Tracer()
        tracer.advance(9)
        tracer.complete("x", "cache", 0, 9, TRACK_CACHE)
        tracer.count("hits", 3)
        capture = tracer.freeze()
        assert capture["schema"].startswith("repro-trace/")
        assert capture["clock"] == 9
        assert capture["counters"] == {"hits": 3}
        assert capture["events"][0][0] == "X"
        # freeze() must be picklable/JSON-able: lists and dicts only.
        assert isinstance(capture["events"], list)
        assert isinstance(capture["events"][0], list)


class TestMissClassifier:
    def test_first_touch_is_cold(self):
        classifier = MissClassifier(capacity_lines=4)
        assert classifier.on_miss(10) == "cold"
        assert classifier.on_miss(11) == "cold"

    def test_capacity_miss_when_working_set_exceeds_cache(self):
        classifier = MissClassifier(capacity_lines=2)
        for line in (1, 2, 3):
            classifier.on_miss(line)
        # line 1 fell out of a fully-associative cache of the same size:
        # its re-miss is a true capacity miss.
        assert classifier.on_miss(1) == "capacity"

    def test_conflict_miss_when_line_would_have_survived(self):
        classifier = MissClassifier(capacity_lines=8)
        classifier.on_miss(1)
        classifier.on_miss(2)
        # both lines fit in the shadow cache, so a set-associative miss
        # on either is attributable to mapping conflicts.
        assert classifier.on_miss(1) == "conflict"

    def test_hit_refreshes_recency(self):
        classifier = MissClassifier(capacity_lines=2)
        classifier.on_miss(1)
        classifier.on_miss(2)
        classifier.on_hit(1)  # 2 is now the LRU line
        classifier.on_miss(3)  # evicts 2
        assert classifier.on_miss(1) == "conflict"
        assert classifier.on_miss(2) == "capacity"


class TestSnapshotDelta:
    def test_delta_of_counters(self):
        before = {"hits": 10, "misses": 2}
        after = {"hits": 25, "misses": 2}
        assert snapshot_delta(after, before) == {"hits": 15, "misses": 0}
