"""End-to-end observability tests: overhead, determinism, exports, CLI.

These run real traced measurements through the harness, so they use the
small test scale and the shared boot-checkpoint hygiene fixture.
"""

import json

import pytest

import repro.obs.tracer as tracer_module
from repro.cli import main
from repro.core.harness import clear_boot_checkpoint_cache
from repro.core.parallel import execute_task
from repro.core.scale import SimScale
from repro.core.spec import MeasurementSpec
from repro.obs import dumps_chrome_trace, profile_table

SCALE = SimScale(time=4096, space=32)


@pytest.fixture(autouse=True)
def _fresh_checkpoints():
    clear_boot_checkpoint_cache()
    yield
    clear_boot_checkpoint_cache()


def _spec(**overrides):
    base = dict(function="fibonacci-python", isa="riscv", scale=SCALE,
                seed=0, trace=True)
    base.update(overrides)
    return MeasurementSpec(**base)


class TestZeroOverhead:
    def test_untraced_measurement_records_no_events(self):
        before = tracer_module.EVENTS_RECORDED
        execute_task(_spec(trace=False))
        assert tracer_module.EVENTS_RECORDED == before

    def test_traced_measurement_leaves_stats_untouched(self):
        plain = execute_task(_spec(trace=False))
        traced = execute_task(_spec())
        assert plain.cold.as_dict() == traced.cold.as_dict()
        assert plain.warm.as_dict() == traced.warm.as_dict()
        assert traced.trace is not None
        assert plain.trace is None


class TestDeterminism:
    def test_two_captures_serialize_byte_identical(self):
        first = execute_task(_spec())
        clear_boot_checkpoint_cache()
        second = execute_task(_spec())
        assert dumps_chrome_trace(first.trace) == dumps_chrome_trace(
            second.trace)

    def test_capture_is_tick_stamped_not_wall_clock(self):
        capture = execute_task(_spec()).trace
        assert capture["clock"] > 0
        # every event timestamp is an integer tick within the capture
        for event in capture["events"]:
            assert isinstance(event[4], int)
            assert 0 <= event[4] <= capture["clock"]


class TestChromeExport:
    def test_trace_parses_and_covers_the_stack(self):
        capture = execute_task(_spec()).trace
        document = json.loads(dumps_chrome_trace(capture))
        events = document["traceEvents"]
        cats = {event.get("cat") for event in events}
        assert {"pipeline", "cache", "tlb", "invocation", "engine",
                "protocol"} <= cats
        names = {event["name"] for event in events}
        assert "o3.run" in names
        assert any(name.startswith("invoke:") for name in names)
        complete = [e for e in events if e["ph"] == "X"]
        assert complete and all("dur" in e for e in complete)

    def test_profile_table_lists_phases(self):
        capture = execute_task(_spec()).trace
        table = profile_table(capture)
        assert "pipeline" in table
        assert "o3.run" in table
        assert "%" in table


class TestTraceCli:
    def test_trace_verb_writes_deterministic_json(self, tmp_path, capsys):
        argv = ["trace", "fibonacci", "--isa", "riscv64",
                "--time-scale", str(SCALE.time),
                "--space-scale", str(SCALE.space)]
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(argv + ["--out", str(first)]) == 0
        clear_boot_checkpoint_cache()
        assert main(argv + ["--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        document = json.loads(first.read_text())
        assert document["otherData"]["schema"].startswith("repro-trace/")
        out = capsys.readouterr().out
        assert "fibonacci-python" in out
        assert "pipeline" in out

    def test_trace_verb_report_mode_still_works(self, capsys):
        assert main(["trace", "fibonacci-python", "--report",
                     "--time-scale", str(SCALE.time),
                     "--space-scale", str(SCALE.space)]) == 0
        assert "validation" in capsys.readouterr().out

    def test_unknown_function_fails_cleanly(self):
        with pytest.raises(SystemExit):
            main(["trace", "no-such-function"])
