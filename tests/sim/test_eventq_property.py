"""Property tests for the event-queue kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.eventq import EventQueue


@settings(max_examples=60, deadline=None)
@given(delays=st.lists(st.integers(min_value=0, max_value=10**6),
                       min_size=1, max_size=80))
def test_property_events_fire_in_time_order(delays):
    queue = EventQueue()
    fired = []
    for delay in delays:
        queue.schedule(delay, lambda d=delay: fired.append((queue.now, d)))
    queue.simulate()
    times = [when for when, _delay in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)
    # Each callback ran exactly at its scheduled tick.
    assert all(when == delay for when, delay in fired)


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=40),
    horizon=st.integers(min_value=0, max_value=1000),
)
def test_property_horizon_partitions_events(delays, horizon):
    queue = EventQueue()
    fired = []
    for delay in delays:
        queue.schedule(delay, lambda d=delay: fired.append(d))
    queue.simulate(until=horizon)
    assert sorted(fired) == sorted(d for d in delays if d <= horizon)
    queue.simulate()  # drain the rest
    assert sorted(fired) == sorted(delays)


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=2, max_size=40),
    cancel_indices=st.sets(st.integers(min_value=0, max_value=39)),
)
def test_property_cancelled_events_never_fire(delays, cancel_indices):
    queue = EventQueue()
    fired = []
    events = [
        queue.schedule(delay, lambda i=index: fired.append(i))
        for index, delay in enumerate(delays)
    ]
    for index in cancel_indices:
        if index < len(events):
            events[index].cancel()
    queue.simulate()
    surviving = {index for index in range(len(delays))
                 if index not in cancel_indices}
    assert set(fired) == surviving


@settings(max_examples=30, deadline=None)
@given(chain_length=st.integers(min_value=1, max_value=50),
       step=st.integers(min_value=1, max_value=100))
def test_property_self_rescheduling_chain(chain_length, step):
    """An event that reschedules itself walks exact multiples of step."""
    queue = EventQueue()
    ticks = []

    def hop():
        ticks.append(queue.now)
        if len(ticks) < chain_length:
            queue.schedule(step, hop)

    queue.schedule(step, hop)
    queue.simulate()
    assert ticks == [step * (index + 1) for index in range(chain_length)]
