"""Validators, platform metrics, and the host timing backend."""

import pytest

from repro.emu.host import HostPlatform
from repro.serverless.metrics import MetricsCollector, percentile
from repro.sim.isa import get_isa, ir
from repro.sim.isa.validate import assert_valid, validate_assembled
from repro.workloads.catalog import STANDALONE_FUNCTIONS, get_function


def good_program():
    program = ir.Program("good", seed=1)
    buf = program.space.alloc("buf", 8192)
    body = ir.Seq([
        ir.compute_block(ialu=50),
        ir.Loop(ir.touch_block(buf, loads=4, stores=1), trips=5),
    ])
    program.add_routine(ir.Routine("main", body), entry=True)
    return program


class TestValidators:
    def test_good_program_clean(self):
        assembled = get_isa("riscv").assemble(good_program())
        issues = validate_assembled(assembled)
        assert [issue for issue in issues if issue.severity == "error"] == []
        assert_valid(assembled)  # no raise

    def test_every_workload_program_validates(self):
        # The real guarantee: every generated invocation program is sane.
        from repro.core.scale import SimScale
        from repro.serverless.engine import install_docker
        from repro.serverless.faas import FaasPlatform

        scale = SimScale(time=4096, space=32)
        for function in STANDALONE_FUNCTIONS[:3]:
            engine = install_docker("riscv")
            engine.registry.push(function.image("riscv"))
            platform = FaasPlatform(engine)
            platform.deploy(function.name, function.name,
                            function.runtime_name, function.handler)
            record = platform.invoke(function.name, function.default_payload())
            for isa_name in ("riscv", "x86", "arm"):
                program = function.invocation_program(record, {}, scale)
                assembled = get_isa(isa_name).assemble(program)
                assert_valid(assembled)

    def test_unreachable_routine_warned(self):
        program = good_program()
        program.add_routine(ir.Routine("orphan", ir.compute_block(ialu=1)))
        assembled = get_isa("riscv").assemble(program)
        warnings = [issue for issue in validate_assembled(assembled)
                    if issue.severity == "warning"]
        assert any("orphan" in str(warning) for warning in warnings)
        assert_valid(assembled)  # warnings do not raise

    def test_corrupted_layout_detected(self):
        assembled = get_isa("riscv").assemble(good_program())
        # Sabotage: shrink the routine's claimed range below its contents.
        assembled.routines["main"].code_size = 4
        with pytest.raises(AssertionError):
            assert_valid(assembled)


class TestMetrics:
    class FakeRecord:
        def __init__(self, function, cold, ok=True):
            self.function = function
            self.cold = cold
            self.ok = ok

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 0.5) == pytest.approx(51, abs=1)
        assert percentile(values, 0.99) == pytest.approx(99, abs=1)
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_collector_aggregates(self):
        collector = MetricsCollector()
        records = [self.FakeRecord("f", cold=index == 0) for index in range(10)]
        collector.observe_all(records, latencies=[100.0 * (i + 1)
                                                  for i in range(10)])
        metrics = collector.function("f")
        assert metrics.cold_rate == 0.1
        assert metrics.latency_percentile(0.5) == pytest.approx(600, abs=100)
        assert collector.total_invocations == 10

    def test_error_rate(self):
        collector = MetricsCollector()
        collector.observe(self.FakeRecord("f", cold=True))
        collector.observe(self.FakeRecord("f", cold=False, ok=False))
        assert collector.function("f").error_rate == 0.5

    def test_render(self):
        collector = MetricsCollector()
        collector.observe(self.FakeRecord("hotel-geo-go", cold=True), 123.0)
        text = collector.render()
        assert "hotel-geo-go" in text and "cold%" in text

    def test_real_platform_integration(self):
        from repro.serverless.engine import install_docker
        from repro.serverless.faas import FaasPlatform
        from repro.serverless.loadgen import LoadGenerator

        function = get_function("aes-go")
        engine = install_docker("riscv")
        engine.registry.push(function.image("riscv"))
        platform = FaasPlatform(engine)
        platform.deploy(function.name, function.name, "go", function.handler)
        log = LoadGenerator(platform).run_session(function.name, requests=5)
        collector = MetricsCollector()
        collector.observe_all(log.records)
        assert collector.function(function.name).cold_rate == pytest.approx(0.2)

    def test_misaligned_latencies_rejected(self):
        collector = MetricsCollector()
        with pytest.raises(ValueError):
            collector.observe_all([self.FakeRecord("f", True)], latencies=[1, 2])


class TestHostBackend:
    def test_times_are_positive_wallclock(self):
        sample = HostPlatform(repetitions=3).time_function(
            get_function("fibonacci-go"), payload={"n": 2000})
        assert sample.cold_ns > 0
        assert len(sample.warm_ns) == 3
        assert sample.warm_median_ns > 0

    def test_bigger_inputs_take_longer(self):
        host = HostPlatform(repetitions=3)
        small = host.time_function(get_function("fibonacci-go"),
                                   payload={"n": 100})
        large = host.time_function(get_function("fibonacci-go"),
                                   payload={"n": 50000})
        assert large.warm_median_ns > small.warm_median_ns

    def test_compare_batch(self):
        samples = HostPlatform(repetitions=2).compare(
            [get_function("aes-go"), get_function("auth-go")])
        assert set(samples) == {"aes-go", "auth-go"}

    def test_repetitions_validated(self):
        with pytest.raises(ValueError):
            HostPlatform(repetitions=0)
