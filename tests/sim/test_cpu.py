"""Tests for the CPU timing models: Atomic, O3, KVM, branch predictor."""

import pytest

from repro.sim.cpu.bpred import TournamentPredictor, TwoBitCounterTable
from repro.sim.cpu.kvm import KvmInstabilityError
from repro.sim.isa import ir
from repro.sim.system import SimulatedSystem


def build_program(name="p", seed=0, ialu=200, trips=50, loads=4, region_size=1 << 14):
    program = ir.Program(name, seed=seed)
    buf = program.space.alloc("buf", region_size)
    body = ir.Seq([
        ir.compute_block(ialu=ialu),
        ir.Loop(ir.touch_block(buf, loads=loads, stores=1), trips=trips),
    ])
    program.add_routine(ir.Routine("main", body), entry=True)
    return program


class TestAtomic:
    def test_cycles_at_least_instructions(self):
        system = SimulatedSystem("s", "riscv")
        result = system.run(1, build_program(), model="atomic")
        assert result.cycles >= result.instructions

    def test_counts_loads_and_stores(self):
        system = SimulatedSystem("s", "riscv")
        result = system.run(1, build_program(trips=10, loads=4), model="atomic")
        assert result.loads == 40
        assert result.stores == 10

    def test_stats_accumulate_into_tree(self):
        system = SimulatedSystem("s", "riscv")
        result = system.run(1, build_program(), model="atomic")
        dump = system.dump_stats()
        assert dump["s.cpu1.atomic.committedInsts"] == result.instructions
        assert dump["s.cpu1.atomic.numCycles"] == result.cycles


class TestO3:
    def test_o3_faster_than_atomic(self):
        program = build_program()
        atomic_sys = SimulatedSystem("a", "riscv")
        o3_sys = SimulatedSystem("b", "riscv")
        atomic = atomic_sys.run(1, program, model="atomic")
        o3 = o3_sys.run(1, program, model="o3")
        assert o3.cycles < atomic.cycles
        assert o3.instructions == atomic.instructions

    def test_o3_exploits_ilp(self):
        # Same op count, different chain counts: more ILP -> fewer cycles.
        def run(ilp):
            program = ir.Program("ilp%d" % ilp)
            block = ir.Block([ir.IROp(ir.OP_IMUL, count=4000)], ilp=ilp)
            program.add_routine(ir.Routine("main", block), entry=True)
            system = SimulatedSystem("s", "riscv")
            return system.run(1, program, model="o3").cycles

        assert run(1) > run(3) * 1.5

    def test_cold_slower_than_warm_same_system(self):
        program = build_program(region_size=1 << 16)
        system = SimulatedSystem("s", "riscv")
        cold = system.run(1, program, model="o3")
        warm = system.run(1, program, model="o3")
        assert warm.cycles < cold.cycles

    def test_flush_restores_cold_behaviour(self):
        program = build_program(region_size=1 << 16)
        system = SimulatedSystem("s", "riscv")
        cold = system.run(1, program, model="o3")
        system.run(1, program, model="o3")
        system.flush_core(1)
        recold = system.run(1, program, model="o3")
        assert recold.cycles > cold.cycles * 0.5  # back in the cold regime

    def test_mispredict_penalty_visible(self):
        def run(probability):
            program = ir.Program("br%d" % int(probability * 100))
            block = ir.Block([ir.IROp(ir.OP_BRANCH, count=4000,
                                      taken_probability=probability)])
            program.add_routine(ir.Routine("main", block), entry=True)
            system = SimulatedSystem("s", "riscv")
            return system.run(1, program, model="o3").cycles

        predictable = run(1.0)
        coin_flip = run(0.5)
        assert coin_flip > predictable * 1.5

    def test_rob_limits_runahead_under_misses(self):
        # A long stream of dependent loads over a huge region: the ROB
        # should throttle but the run must still complete.
        program = ir.Program("mlp")
        buf = program.space.alloc("buf", 1 << 22)
        block = ir.touch_block(buf, loads=3000, pattern=ir.RandomPattern(align=64))
        program.add_routine(ir.Routine("main", block), entry=True)
        system = SimulatedSystem("s", "riscv")
        result = system.run(1, program, model="o3")
        assert result.cycles > result.instructions  # memory bound
        dump = system.dump_stats()
        assert dump["s.core1.l1d.misses"] > 1000


class TestWarmPath:
    def test_warm_program_fills_caches_without_cycles(self):
        program = build_program(region_size=1 << 14)
        system = SimulatedSystem("s", "riscv")
        touched = system.warm(1, program)
        assert touched > 0
        dump = system.dump_stats()
        assert dump["s.cpu1.atomic.numCycles"] == 0
        assert dump["s.core1.l1d.accesses"] > 0

    def test_warming_reduces_subsequent_misses(self):
        program = build_program(region_size=1 << 14)
        cold_system = SimulatedSystem("c", "riscv")
        warm_system = SimulatedSystem("w", "riscv")
        warm_system.warm(1, program)
        warm_system.reset_stats()
        cold = cold_system.run(1, program, model="o3")
        warm = warm_system.run(1, program, model="o3")
        assert warm.cycles < cold.cycles
        assert (
            warm_system.dump_stats()["w.core1.l1d.misses"]
            < cold_system.dump_stats()["c.core1.l1d.misses"]
        )


class TestKvm:
    def test_kvm_runs_functionally(self):
        system = SimulatedSystem("s", "riscv")
        result = system.run(1, build_program(), model="kvm")
        assert result.instructions > 0

    def test_kvm_m5_ops_eventually_freeze(self):
        system = SimulatedSystem("s", "riscv", seed=0)
        kvm = system.cpu(1, "kvm")
        with pytest.raises(KvmInstabilityError):
            for _ in range(200):
                kvm.execute_m5_op("checkpoint")

    def test_kvm_failure_deterministic_per_seed(self):
        def failures(seed):
            system = SimulatedSystem("s", "riscv", seed=seed)
            kvm = system.cpu(1, "kvm")
            count = 0
            for _ in range(50):
                try:
                    kvm.execute_m5_op("dumpstats")
                except KvmInstabilityError:
                    count += 1
            return count

        assert failures(1) == failures(1)


class TestBranchPredictor:
    def test_learns_biased_branch(self):
        bpred = TournamentPredictor()
        correct = 0
        for _ in range(500):
            if bpred.predict_and_update(0x400000, True):
                correct += 1
        assert correct > 450

    def test_alternating_pattern_learned_by_local_history(self):
        bpred = TournamentPredictor()
        outcomes = [True, False] * 400
        correct = sum(
            1 for taken in outcomes if bpred.predict_and_update(0x400100, taken)
        )
        # Much better than the 50% a static predictor would get.
        assert correct > len(outcomes) * 0.6

    def test_flush_forgets(self):
        bpred = TournamentPredictor()
        for _ in range(100):
            bpred.predict_and_update(0x400000, True)
        state = bpred.state_dict()
        bpred.flush()
        assert bpred.state_dict() != state

    def test_state_roundtrip(self):
        bpred = TournamentPredictor()
        for index in range(200):
            bpred.predict_and_update(0x400000 + index * 4, index % 3 == 0)
        clone = TournamentPredictor()
        clone.load_state(bpred.state_dict())
        assert clone.state_dict() == bpred.state_dict()

    def test_two_bit_counter_saturates(self):
        table = TwoBitCounterTable(16)
        for _ in range(10):
            table.update(3, True)
        assert table.predict(3) is True
        table.update(3, False)
        assert table.predict(3) is True  # still strongly taken after one not-taken
        with pytest.raises(ValueError):
            TwoBitCounterTable(3)


class TestSystemPlumbing:
    def test_cpu_switching_preserves_memory_state(self):
        program = build_program(region_size=1 << 14)
        system = SimulatedSystem("s", "riscv")
        system.run(1, program, model="atomic")
        misses_before = system.dump_stats()["s.core1.l1d.misses"]
        system.switch_cpu(1, "o3")
        system.run(1, program, model="o3")
        # Second run reuses warmed caches: few new data misses.
        misses_after = system.dump_stats()["s.core1.l1d.misses"]
        assert misses_after - misses_before < misses_before

    def test_unknown_model_rejected(self):
        system = SimulatedSystem("s", "riscv")
        with pytest.raises(ValueError):
            system.cpu(0, "minor")

    def test_checkpoint_roundtrip(self):
        from repro.sim.checkpoint import restore_checkpoint, take_checkpoint

        program = build_program(region_size=1 << 14)
        system = SimulatedSystem("s", "riscv")
        system.run(1, program, model="o3")
        checkpoint = take_checkpoint(system, payload={"phase": "after-boot"})

        # Disturb the state, then restore.
        system.flush_core(1)
        payload = restore_checkpoint(system, checkpoint)
        assert payload == {"phase": "after-boot"}
        system.reset_stats()
        rerun = system.run(1, program, model="o3")
        # Restored caches are warm: much faster than a cold run.
        cold_system = SimulatedSystem("cold", "riscv")
        cold = cold_system.run(1, program, model="o3")
        assert rerun.cycles < cold.cycles
