"""Unit tests for the statistics framework (the m5 stat reset/dump analog)."""

import pytest

from repro.sim.statistics import Formula, Histogram, Scalar, StatGroup, Vector


class TestScalar:
    def test_inc_and_value(self):
        stat = Scalar("count")
        stat.inc()
        stat.inc(4)
        assert stat.value() == 5

    def test_reset(self):
        stat = Scalar("count")
        stat.inc(9)
        stat.reset()
        assert stat.value() == 0

    def test_set(self):
        stat = Scalar("gauge")
        stat.set(17)
        assert stat.value() == 17

    def test_name_validation(self):
        with pytest.raises(ValueError):
            Scalar("bad.name")
        with pytest.raises(ValueError):
            Scalar("")


class TestVector:
    def test_keyed_increments(self):
        vector = Vector("byClass", ["load", "store"])
        vector.inc("load", 3)
        vector.inc("store")
        assert vector.get("load") == 3
        assert vector.value() == 4

    def test_unknown_key_raises(self):
        vector = Vector("byClass", ["load"])
        with pytest.raises(KeyError):
            vector.inc("jump")

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            Vector("v", ["a", "a"])

    def test_empty_keys_rejected(self):
        with pytest.raises(ValueError):
            Vector("v", [])

    def test_reset_zeroes_all(self):
        vector = Vector("v", ["x", "y"])
        vector.inc("x", 5)
        vector.reset()
        assert vector.value() == 0


class TestFormula:
    def test_derived_value_follows_inputs(self):
        cycles = Scalar("cycles")
        insts = Scalar("insts")
        cpi = Formula("cpi", lambda: cycles.value() / insts.value() if insts.value() else 0.0)
        assert cpi.value() == 0.0
        cycles.inc(10)
        insts.inc(5)
        assert cpi.value() == 2.0


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram("lat", [10, 100])
        hist.sample(5)
        hist.sample(50)
        hist.sample(5000)
        assert hist.counts == [1, 1, 1]
        assert hist.samples == 3

    def test_mean(self):
        hist = Histogram("lat", [10])
        hist.sample(4)
        hist.sample(6)
        assert hist.mean == 5.0

    def test_reset(self):
        hist = Histogram("lat", [10])
        hist.sample(1)
        hist.reset()
        assert hist.samples == 0
        assert hist.mean == 0.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", [100, 10])


class TestStatGroup:
    def make_tree(self):
        root = StatGroup("system")
        cpu = root.group("cpu0")
        cpu.scalar("numCycles").inc(100)
        cache = root.group("l2")
        cache.scalar("misses").inc(7)
        cache.vector("byType", ["read", "write"]).inc("read", 2)
        return root

    def test_dump_flattens_with_dots(self):
        dump = self.make_tree().dump()
        assert dump["system.cpu0.numCycles"] == 100
        assert dump["system.l2.misses"] == 7

    def test_dump_expands_vectors(self):
        dump = self.make_tree().dump()
        assert dump["system.l2.byType::read"] == 2
        assert dump["system.l2.byType::total"] == 2

    def test_reset_recurses(self):
        root = self.make_tree()
        root.reset()
        assert all(value == 0 for value in root.dump().values())

    def test_group_get_or_create_idempotent(self):
        root = StatGroup("sys")
        assert root.group("cpu") is root.group("cpu")

    def test_duplicate_stat_rejected(self):
        root = StatGroup("sys")
        root.scalar("x")
        with pytest.raises(ValueError):
            root.scalar("x")

    def test_find_by_dotted_path(self):
        root = self.make_tree()
        assert root.find("l2.misses").value() == 7

    def test_stat_group_name_collision_with_stat(self):
        root = StatGroup("sys")
        root.scalar("thing")
        with pytest.raises(ValueError):
            root.group("thing")

    def test_attach_existing_group(self):
        root = StatGroup("sys")
        child = StatGroup("dram")
        child.scalar("reads").inc(3)
        root.attach(child)
        assert root.dump()["sys.dram.reads"] == 3
        with pytest.raises(ValueError):
            root.attach(StatGroup("dram"))
