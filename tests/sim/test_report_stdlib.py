"""Program reports, the stdlib board builders, and FaaS/loadgen additions."""

import pytest

from repro.sim.isa import get_isa, ir
from repro.sim.isa.report import report
from repro.sim.stdlib import (
    build_board,
    list_cache_hierarchies,
    list_processors,
)


def make_program():
    program = ir.Program("demo", seed=2)
    buf = program.space.alloc("buf", 16 * 1024)
    body = ir.Seq([
        ir.compute_block(ialu=100, imul=20),
        ir.Loop(ir.touch_block(buf, loads=8, stores=2), trips=10),
    ])
    program.add_routine(ir.Routine("main", body), entry=True)
    return program


class TestProgramReport:
    def test_counts_match_trace(self):
        assembled = get_isa("riscv").assemble(make_program())
        profile = report(assembled)
        assert profile.dynamic_instructions == assembled.dynamic_length()
        assert profile.dynamic_by_class["load"] == 80
        assert profile.dynamic_by_class["store"] == 20

    def test_footprints_positive_and_bounded(self):
        assembled = get_isa("riscv").assemble(make_program())
        profile = report(assembled)
        assert 0 < profile.code_footprint_bytes <= profile.static_code_bytes + 64
        assert profile.data_footprint_bytes <= 16 * 1024 + 64

    def test_branch_taken_fraction(self):
        assembled = get_isa("riscv").assemble(make_program())
        profile = report(assembled)
        # Loop backedge: 9 taken of 10.
        assert profile.branch_count == 10
        assert profile.branch_taken_fraction == pytest.approx(0.9)

    def test_render_mentions_mix(self):
        assembled = get_isa("x86").assemble(make_program())
        text = report(assembled).render()
        assert "x86" in text
        assert "ialu" in text
        assert "memory-op fraction" in text

    def test_x86_code_footprint_larger(self):
        program = make_program()
        riscv_profile = report(get_isa("riscv").assemble(program))
        x86_profile = report(get_isa("x86").assemble(program))
        assert x86_profile.static_code_bytes > riscv_profile.static_code_bytes


class TestStdlibBoards:
    def test_default_board_matches_table_4_1(self):
        board = build_board()
        assert board.num_cores == 2
        assert board.mem_config.l2_size == 512 * 1024
        assert board.o3_config.rob_entries == 192

    def test_presets_listed(self):
        assert "private-l1-private-l2" in list_cache_hierarchies()
        assert "o3-2core" in list_processors()

    def test_wide_beats_narrow_on_ilp_code(self):
        program = ir.Program("ilp", seed=1)
        program.add_routine(
            ir.Routine("main", ir.Block([ir.IROp(ir.OP_IALU, count=20000)],
                                        ilp=8)),
            entry=True,
        )
        wide = build_board(processor="o3-wide", name="wide")
        narrow = build_board(processor="o3-narrow", name="narrow")
        assert wide.run(0, program, model="o3").cycles < \
            narrow.run(0, program, model="o3").cycles

    def test_space_scale_shrinks_caches(self):
        board = build_board(space_scale=16)
        assert board.mem_config.l2_size == 512 * 1024 // 16

    def test_unknown_presets_rejected(self):
        with pytest.raises(ValueError):
            build_board(processor="pentium")
        with pytest.raises(ValueError):
            build_board(cache_hierarchy="exotic")

    def test_big_server_outperforms_small_embedded(self):
        program = make_program()
        big = build_board(cache_hierarchy="big-server", name="big")
        small = build_board(cache_hierarchy="small-embedded", name="small")
        assert big.run(0, program, model="o3").cycles <= \
            small.run(0, program, model="o3").cycles


class TestFaasErrorSemantics:
    def make_platform(self):
        from repro.serverless.container import base_image
        from repro.serverless.engine import install_docker
        from repro.serverless.faas import FaasPlatform

        engine = install_docker("riscv")
        engine.registry.push(base_image("go", "riscv"))
        platform = FaasPlatform(engine)

        def flaky(payload, ctx):
            if payload.get("explode"):
                raise RuntimeError("handler crashed")
            return {"ok": True}

        platform.deploy("flaky", "go-default", "go", flaky)
        return platform

    def test_error_propagates_by_default(self):
        platform = self.make_platform()
        with pytest.raises(RuntimeError):
            platform.invoke("flaky", {"explode": True})

    def test_error_response_mode(self):
        platform = self.make_platform()
        record = platform.invoke("flaky", {"explode": True}, raise_errors=False)
        assert not record.ok
        assert "handler crashed" in record.error
        assert record.result["error"]

    def test_crashed_instance_recycled_to_dead(self):
        from repro.serverless.faas import FunctionState

        platform = self.make_platform()
        platform.invoke("flaky", {})  # warm it
        platform.invoke("flaky", {"explode": True}, raise_errors=False)
        assert platform.state_of("flaky") == FunctionState.DEAD
        # Next request is a cold start.
        assert platform.invoke("flaky", {}).cold


class TestOpenLoopLoadgen:
    def make_platform(self, idle_timeout):
        from repro.serverless.container import base_image
        from repro.serverless.engine import install_docker
        from repro.serverless.faas import FaasPlatform, KeepAlivePolicy

        engine = install_docker("riscv")
        engine.registry.push(base_image("go", "riscv"))
        platform = FaasPlatform(
            engine, policy=KeepAlivePolicy(idle_timeout=idle_timeout))
        platform.deploy("fn", "go-default", "go", lambda payload, ctx: {})
        return platform

    def test_sparse_traffic_causes_cold_storms(self):
        from repro.serverless.loadgen import LoadGenerator

        sparse = LoadGenerator(self.make_platform(idle_timeout=5)) \
            .open_loop_session("fn", requests=60, mean_interarrival=20, seed=1)
        dense = LoadGenerator(self.make_platform(idle_timeout=5)) \
            .open_loop_session("fn", requests=60, mean_interarrival=0.5, seed=1)
        assert sparse.cold_rate > 3 * dense.cold_rate
        assert dense.cold_rate < 0.2

    def test_gap_elapses_before_request(self):
        # One request after a huge gap must find a dead instance.
        from repro.serverless.loadgen import LoadGenerator

        platform = self.make_platform(idle_timeout=5)
        platform.invoke("fn", {})
        record = platform.invoke("fn", {}, advance_clock=100.0)
        assert record.cold

    def test_parameter_validation(self):
        from repro.serverless.loadgen import LoadGenerator

        generator = LoadGenerator(self.make_platform(idle_timeout=5))
        with pytest.raises(ValueError):
            generator.open_loop_session("fn", requests=0, mean_interarrival=1)
        with pytest.raises(ValueError):
            generator.open_loop_session("fn", requests=1, mean_interarrival=0)
