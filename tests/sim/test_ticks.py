"""Unit tests for the tick/clock time base."""

import pytest

from repro.sim.ticks import ClockDomain, Frequency, TICKS_PER_SECOND


class TestFrequency:
    def test_one_ghz_period(self):
        assert Frequency.from_ghz(1).period_ticks == 1000

    def test_800_mhz_period(self):
        assert Frequency.from_mhz(800).period_ticks == 1250

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Frequency(0)
        with pytest.raises(ValueError):
            Frequency(-5)

    def test_rejects_nondividing(self):
        with pytest.raises(ValueError):
            Frequency(3)  # 10^12 / 3 is not an integer tick period

    def test_equality_and_hash(self):
        assert Frequency.from_ghz(1) == Frequency.from_mhz(1000)
        assert hash(Frequency.from_ghz(2)) == hash(Frequency.from_ghz(2))

    def test_repr_units(self):
        assert "GHz" in repr(Frequency.from_ghz(1))
        assert "MHz" in repr(Frequency.from_mhz(800))


class TestClockDomain:
    def test_cycles_to_ticks_roundtrip(self):
        domain = ClockDomain(Frequency.from_ghz(1))
        assert domain.cycles_to_ticks(5) == 5000
        assert domain.ticks_to_cycles(5000) == 5

    def test_ticks_to_cycles_rounds_down(self):
        domain = ClockDomain(Frequency.from_ghz(1))
        assert domain.ticks_to_cycles(1999) == 1

    def test_next_cycle_edge(self):
        domain = ClockDomain(Frequency.from_ghz(1))
        assert domain.next_cycle_edge(0) == 0
        assert domain.next_cycle_edge(1) == 1000
        assert domain.next_cycle_edge(1000) == 1000
        assert domain.next_cycle_edge(1001) == 2000

    def test_ticks_per_second_constant(self):
        assert TICKS_PER_SECOND == 10**12
