"""Unit tests for the event queue kernel."""

import pytest

from repro.sim.eventq import CONTROL_PRIORITY, Event, EventQueue, SimulationExit


class TestScheduling:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(30, lambda: order.append("c"))
        queue.schedule(10, lambda: order.append("a"))
        queue.schedule(20, lambda: order.append("b"))
        queue.simulate()
        assert order == ["a", "b", "c"]

    def test_same_tick_priority_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(10, lambda: order.append("normal"))
        queue.schedule(10, lambda: order.append("control"), priority=CONTROL_PRIORITY)
        queue.simulate()
        assert order == ["control", "normal"]

    def test_same_tick_same_priority_fifo(self):
        queue = EventQueue()
        order = []
        for index in range(5):
            queue.schedule(7, lambda i=index: order.append(i))
        queue.simulate()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_at_absolute(self):
        queue = EventQueue()
        ticks = []
        queue.schedule_at(42, lambda: ticks.append(queue.now))
        queue.simulate()
        assert ticks == [42]

    def test_schedule_in_past_rejected(self):
        queue = EventQueue()
        queue.schedule(5, lambda: None)
        queue.simulate()
        assert queue.now == 5
        with pytest.raises(ValueError):
            queue.schedule_at(3, lambda: None)

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1, lambda: None)

    def test_nested_scheduling_from_callback(self):
        queue = EventQueue()
        seen = []

        def first():
            seen.append(("first", queue.now))
            queue.schedule(5, lambda: seen.append(("second", queue.now)))

        queue.schedule(10, first)
        queue.simulate()
        assert seen == [("first", 10), ("second", 15)]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(10, lambda: fired.append(1))
        event.cancel()
        queue.simulate()
        assert fired == []
        assert event.cancelled

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        keep = queue.schedule(1, lambda: None)
        drop = queue.schedule(2, lambda: None)
        drop.cancel()
        assert len(queue) == 1
        assert keep.when == 1


class TestSimulateControl:
    def test_horizon_stops_before_future_events(self):
        queue = EventQueue()
        fired = []
        queue.schedule(10, lambda: fired.append("early"))
        queue.schedule(100, lambda: fired.append("late"))
        cause = queue.simulate(until=50)
        assert fired == ["early"]
        assert cause == "simulation horizon reached"
        assert queue.now == 50

    def test_simulation_exit_propagates_cause(self):
        queue = EventQueue()

        def bail():
            raise SimulationExit("m5 exit")

        queue.schedule(10, bail)
        queue.schedule(20, lambda: pytest.fail("should not run"))
        cause = queue.simulate()
        assert cause == "m5 exit"
        assert queue.now == 10

    def test_drained_queue_cause(self):
        queue = EventQueue()
        queue.schedule(1, lambda: None)
        assert queue.simulate() == "event queue drained"

    def test_max_events_budget(self):
        queue = EventQueue()
        for index in range(10):
            queue.schedule(index + 1, lambda: None)
        cause = queue.simulate(max_events=3)
        assert cause == "event budget exhausted"
        assert queue.events_run == 3

    def test_peek_next_tick(self):
        queue = EventQueue()
        assert queue.peek_next_tick() is None
        event = queue.schedule(9, lambda: None)
        assert queue.peek_next_tick() == 9
        event.cancel()
        assert queue.peek_next_tick() is None


class TestEventRepr:
    def test_event_repr_mentions_state(self):
        event = Event(5, lambda: None, name="boot")
        assert "boot" in repr(event)
        event.cancel()
        assert "cancelled" in repr(event)
