"""Tests for the IR, the two ISA lowerings, and trace generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.isa import get_isa, ir
from repro.sim.isa.base import InstrClass
from repro.sim.isa.riscv import RiscvISA
from repro.sim.isa.x86 import X86ISA


def simple_program(seed=0, trips=10):
    program = ir.Program("unit", seed=seed)
    buf = program.space.alloc("buf", 4096)
    body = ir.Seq([
        ir.compute_block(ialu=20),
        ir.Loop(ir.touch_block(buf, loads=4, stores=1), trips=trips),
    ])
    program.add_routine(ir.Routine("main", body), entry=True)
    return program


class TestAddressSpace:
    def test_regions_do_not_overlap(self):
        space = ir.AddressSpace()
        first = space.alloc("a", 100)
        second = space.alloc("b", 100)
        assert first.end <= second.base

    def test_alignment(self):
        space = ir.AddressSpace()
        space.alloc("a", 10)
        second = space.alloc("b", 10, align=256)
        assert second.base % 256 == 0

    def test_segments_are_disjoint(self):
        space = ir.AddressSpace()
        heap = space.alloc("h", 64, segment="heap")
        stack = space.alloc("s", 64, segment="stack")
        assert heap.base != stack.base

    def test_find_by_name(self):
        space = ir.AddressSpace()
        region = space.alloc("target", 64)
        assert space.find("target") is region
        with pytest.raises(KeyError):
            space.find("missing")

    def test_bad_inputs(self):
        space = ir.AddressSpace()
        with pytest.raises(ValueError):
            space.alloc("x", 0)
        with pytest.raises(ValueError):
            space.alloc("x", 64, segment="nowhere")


class TestProgramValidation:
    def test_missing_call_target_detected(self):
        program = ir.Program("bad")
        program.add_routine(ir.Routine("main", ir.Call("ghost")), entry=True)
        with pytest.raises(ValueError):
            program.validate()

    def test_duplicate_routine_rejected(self):
        program = ir.Program("dup")
        program.add_routine(ir.Routine("main", ir.compute_block(ialu=1)))
        with pytest.raises(ValueError):
            program.add_routine(ir.Routine("main", ir.compute_block(ialu=1)))

    def test_entry_defaults_to_first(self):
        program = ir.Program("p")
        program.add_routine(ir.Routine("first", ir.compute_block(ialu=1)))
        program.add_routine(ir.Routine("second", ir.compute_block(ialu=1)))
        assert program.entry == "first"


class TestPatterns:
    def test_stride_wraps(self):
        region = ir.Region("r", 0, 128)
        pattern = ir.StridePattern(stride=64)
        import random
        offsets = list(pattern.offsets(region, 4, random.Random(0)))
        assert offsets == [0, 64, 0, 64]

    def test_random_pattern_in_bounds(self):
        import random
        region = ir.Region("r", 0, 256)
        pattern = ir.RandomPattern(align=8)
        for offset in pattern.offsets(region, 100, random.Random(1)):
            assert 0 <= offset < 256
            assert offset % 8 == 0

    def test_hot_cold_concentrates(self):
        import random
        region = ir.Region("r", 0, 10000)
        pattern = ir.HotColdPattern(hot_fraction=0.1, hot_probability=0.95)
        offsets = list(pattern.offsets(region, 500, random.Random(2)))
        hot = sum(1 for offset in offsets if offset < 1000)
        assert hot > 350  # overwhelmingly in the hot prefix


class TestLowering:
    def test_trace_deterministic(self):
        program = simple_program(seed=3)
        assembled = get_isa("riscv").assemble(program)
        first = [(si.pc, addr, taken) for si, addr, taken in assembled.trace(seed=7)]
        second = [(si.pc, addr, taken) for si, addr, taken in assembled.trace(seed=7)]
        assert first == second

    def test_trace_seed_changes_random_addresses(self):
        program = ir.Program("rand")
        buf = program.space.alloc("buf", 1 << 16)
        block = ir.touch_block(buf, loads=64, pattern=ir.RandomPattern())
        program.add_routine(ir.Routine("main", block), entry=True)
        assembled = get_isa("riscv").assemble(program)
        addrs_a = [addr for _si, addr, _t in assembled.trace(seed=1) if addr >= 0]
        addrs_b = [addr for _si, addr, _t in assembled.trace(seed=2) if addr >= 0]
        assert addrs_a != addrs_b

    def test_loop_reuses_pcs(self):
        program = simple_program(trips=3)
        assembled = get_isa("riscv").assemble(program)
        pcs_per_trip = {}
        for si, _addr, _taken in assembled.trace():
            pcs_per_trip.setdefault(si.pc, 0)
            pcs_per_trip[si.pc] += 1
        # Loop-body instructions execute 3 times at the same pc.
        assert max(pcs_per_trip.values()) >= 3

    def test_x86_executes_more_stack_instructions(self):
        program = ir.Program("init")
        buf = program.space.alloc("buf", 1 << 14)
        block = ir.straightline_block(2000, data_region=buf, kind="stack")
        program.add_routine(ir.Routine("main", block), entry=True)
        riscv_count = get_isa("riscv").assemble(program).dynamic_length()
        x86_count = get_isa("x86").assemble(program).dynamic_length()
        assert x86_count > riscv_count * 1.4

    def test_x86_app_compute_denser(self):
        program = ir.Program("hot")
        block = ir.compute_block(ialu=5000, kind="app")
        program.add_routine(ir.Routine("main", block), entry=True)
        riscv_count = get_isa("riscv").assemble(program).dynamic_length()
        x86_count = get_isa("x86").assemble(program).dynamic_length()
        assert x86_count < riscv_count

    def test_x86_code_footprint_larger_for_stack_code(self):
        program = ir.Program("footprint")
        block = ir.straightline_block(3000, kind="stack")
        program.add_routine(ir.Routine("main", block), entry=True)
        riscv_bytes = get_isa("riscv").assemble(program).code_bytes()
        x86_bytes = get_isa("x86").assemble(program).code_bytes()
        assert x86_bytes > riscv_bytes * 1.5

    def test_memory_addresses_inside_region(self):
        program = simple_program()
        buf = program.space.find("buf")
        assembled = get_isa("x86").assemble(program)
        for si, addr, _taken in assembled.trace():
            if si.is_mem:
                assert buf.base <= addr < buf.end

    def test_unrolled_ops_get_distinct_pcs(self):
        program = ir.Program("unroll")
        block = ir.Block([ir.IROp(ir.OP_IALU, count=50, unrolled=True)])
        program.add_routine(ir.Routine("main", block), entry=True)
        assembled = get_isa("riscv").assemble(program)
        pcs = [si.pc for si, _a, _t in assembled.trace() if si.icls == InstrClass.IALU]
        assert len(pcs) == len(set(pcs)) == 50

    def test_loop_backedge_taken_except_last(self):
        program = ir.Program("loop")
        body = ir.Loop(ir.compute_block(ialu=1), trips=4)
        program.add_routine(ir.Routine("main", body), entry=True)
        assembled = get_isa("riscv").assemble(program)
        outcomes = [taken for si, _a, taken in assembled.trace()
                    if si.icls == InstrClass.BRANCH]
        assert outcomes == [True, True, True, False]

    def test_call_descends_into_callee(self):
        program = ir.Program("call")
        program.add_routine(ir.Routine("main", ir.Call("helper")), entry=True)
        program.add_routine(ir.Routine("helper", ir.compute_block(ialu=3)))
        assembled = get_isa("riscv").assemble(program)
        classes = [si.icls for si, _a, _t in assembled.trace()]
        assert InstrClass.CALL in classes
        assert classes.count(InstrClass.IALU) == 3

    def test_recursion_guard(self):
        program = ir.Program("recurse")
        program.add_routine(ir.Routine("main", ir.Call("main")), entry=True)
        assembled = get_isa("riscv").assemble(program)
        with pytest.raises(RecursionError):
            list(assembled.trace())


class TestInstrSizes:
    def test_riscv_sizes_are_2_or_4(self):
        import random
        isa = RiscvISA()
        rng = random.Random(0)
        sizes = {isa.instr_size(rng) for _ in range(200)}
        assert sizes <= {2, 4}
        assert sizes == {2, 4}

    def test_x86_sizes_in_range(self):
        import random
        isa = X86ISA()
        rng = random.Random(0)
        for _ in range(200):
            assert 2 <= isa.instr_size(rng) <= 8

    def test_get_isa_unknown(self):
        with pytest.raises(ValueError):
            get_isa("sparc")


@settings(max_examples=25, deadline=None)
@given(
    ialu=st.integers(min_value=1, max_value=500),
    loads=st.integers(min_value=1, max_value=200),
    trips=st.integers(min_value=1, max_value=20),
    isa_name=st.sampled_from(["riscv", "x86"]),
)
def test_property_dynamic_length_scales_with_trips(ialu, loads, trips, isa_name):
    def build(t):
        program = ir.Program("prop", seed=1)
        buf = program.space.alloc("buf", 4096)
        body = ir.Loop(
            ir.Block([
                ir.IROp(ir.OP_IALU, count=ialu),
                ir.IROp(ir.OP_LOAD, count=loads, region=buf),
            ]),
            trips=t,
        )
        program.add_routine(ir.Routine("main", body), entry=True)
        return get_isa(isa_name).assemble(program).dynamic_length()

    single = build(1)
    many = build(trips)
    # Dynamic length grows linearly in trip count (modulo the fixed ret).
    assert many == single + (trips - 1) * (single - 1)
