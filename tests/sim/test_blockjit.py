"""Hot-block JIT equivalence: tier-3 compiled replay is bit-identical to
the tier-2 interpreter and the legacy trace path — RunResult, full stat
dumps, and trace event logs — across ISAs, CPU models, sampling, and
program shapes.  Repeat counts cross the promotion threshold so the
comparisons genuinely exercise compiled functions, not the interpreter
fallback."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.isa import blockjit, predecode
from repro.sim.system import SimulatedSystem
from tests.sim.test_predecode import build_program

ISAS = ("riscv", "x86", "arm")

#: Replays per comparison: enough for every static block to cross the
#: promotion threshold and then execute compiled at least once.
REPLAYS = blockjit.threshold() + 2


def run_with(jit, program, isa, model, seed, sampling=None):
    previous = blockjit.set_enabled(jit)
    try:
        system = SimulatedSystem("s", isa)
        results = []
        for _ in range(REPLAYS):
            result = system.run(1, program, model=model, seed=seed,
                                sampling=sampling)
            results.append((result.cycles, result.instructions,
                            result.loads, result.stores, result.branches))
        return results, system.dump_stats()
    finally:
        blockjit.set_enabled(previous)


def assert_jit_equivalent(program, isa, model, seed=0, sampling=None):
    compiled, compiled_stats = run_with(True, program, isa, model, seed,
                                        sampling)
    interpreted, interpreted_stats = run_with(False, program, isa, model,
                                              seed, sampling)
    assert compiled == interpreted
    assert compiled_stats == interpreted_stats


class TestEquivalence:
    @pytest.mark.parametrize("isa", ISAS)
    @pytest.mark.parametrize("model", ["atomic", "o3"])
    def test_models_bit_identical(self, isa, model):
        assert_jit_equivalent(build_program(seed=3), isa, model, seed=3)

    @pytest.mark.parametrize("isa", ISAS)
    def test_random_patterns_draw_identically(self, isa):
        program = build_program(seed=5, random_pattern=True)
        assert_jit_equivalent(program, isa, "o3", seed=5)

    @pytest.mark.parametrize("isa", ISAS)
    def test_sampled_bit_identical(self, isa):
        from repro.sim.sampling import SamplingConfig

        program = build_program(seed=9, trips=40)
        config = SamplingConfig(interval=2048, detail=512, warmup=128,
                                jitter=True, min_insts=0)
        assert_jit_equivalent(program, isa, "o3", seed=9, sampling=config)

    def test_warming_equivalent(self):
        """Functional warming (bpred training included) must not see the
        tier: same cache/TLB state, same predictor state."""
        program = build_program(seed=1)
        stats = {}
        for jit in (True, False):
            previous = blockjit.set_enabled(jit)
            try:
                system = SimulatedSystem("w", "riscv")
                system.cpu(1, "o3")  # instantiate so warming trains bpred
                for _ in range(REPLAYS):
                    system.warm(1, program, seed=1)
                stats[jit] = system.dump_stats()
            finally:
                blockjit.set_enabled(previous)
        assert stats[True] == stats[False]

    def test_compiled_units_actually_used(self):
        """The equivalence above must not be vacuous: replaying past the
        threshold promotes blocks and routes executions through them."""
        program = build_program(seed=7)
        previous = blockjit.set_enabled(True)
        blockjit.reset_stats()
        try:
            system = SimulatedSystem("s", "riscv")
            for _ in range(REPLAYS):
                system.run(1, program, model="atomic", seed=7)
        finally:
            blockjit.set_enabled(previous)
        assert blockjit.STATS["compiled_units"] > 0
        assert blockjit.STATS["compiled_calls"] > 0

    def test_mega_block_declined_but_identical(self):
        """Blocks whose generated body would blow the statement budget
        stay interpreted — declined, never half-compiled — and replay
        bit-identically."""
        from repro.sim.isa import ir

        program = ir.Program("mega", seed=2)
        buf = program.space.alloc("buf", 1 << 14)
        boot = ir.straightline_block(32 * blockjit._MAX_STMTS,
                                     data_region=buf)
        program.add_routine(ir.Routine("main", boot), entry=True)
        blockjit.reset_stats()
        compiled = run_with(True, program, "riscv", "atomic", 2)
        declined = blockjit.STATS["declined"]
        interpreted = run_with(False, program, "riscv", "atomic", 2)
        assert compiled == interpreted
        assert declined > 0


class TestTracedEquivalence:
    def test_trace_event_logs_identical(self):
        """The obs layer's frozen event log must not see the JIT tier."""
        from repro.core import smoke
        from repro.core.harness import ExperimentHarness
        from repro.core.scale import SimScale
        from repro.obs.tracer import Tracer
        from repro.workloads.catalog import STANDALONE_FUNCTIONS

        fn = STANDALONE_FUNCTIONS[0]
        scale = SimScale(512, 16)
        captures = {}
        for jit in (True, False):
            smoke._clear_process_caches()
            previous = blockjit.set_enabled(jit)
            try:
                tracer = Tracer()
                harness = ExperimentHarness(isa="riscv", scale=scale,
                                            tracer=tracer)
                harness.measure_function(fn)
                captures[jit] = tracer.freeze()
            finally:
                blockjit.set_enabled(previous)
        assert captures[True] == captures[False]


@settings(max_examples=12, deadline=None)
@given(
    isa=st.sampled_from(ISAS),
    seed=st.integers(min_value=0, max_value=2 ** 16),
    trips=st.integers(min_value=1, max_value=40),
    taken_probability=st.floats(min_value=0.0, max_value=1.0),
    random_pattern=st.booleans(),
    model=st.sampled_from(["atomic", "o3"]),
)
def test_property_equivalence(isa, seed, trips, taken_probability,
                              random_pattern, model):
    program = build_program(seed=seed, trips=trips,
                            taken_probability=taken_probability,
                            random_pattern=random_pattern)
    assert_jit_equivalent(program, isa, model, seed=seed)


def test_predecode_legacy_unaffected_by_jit_toggle():
    """REPRO_PREDECODE=0 must pin the legacy path regardless of the JIT
    toggle: tier 3 sits on top of tier 2, never beside it."""
    program = build_program(seed=11)
    previous_pd = predecode.set_enabled(False)
    previous_jit = blockjit.set_enabled(True)
    try:
        legacy_system = SimulatedSystem("s", "riscv")
        legacy = legacy_system.run(1, program, model="atomic", seed=11)
    finally:
        blockjit.set_enabled(previous_jit)
        predecode.set_enabled(previous_pd)
    system = SimulatedSystem("s", "riscv")
    tiered = system.run(1, program, model="atomic", seed=11)
    assert (legacy.cycles, legacy.instructions) == (
        tiered.cycles, tiered.instructions)
    assert legacy_system.dump_stats() == system.dump_stats()
