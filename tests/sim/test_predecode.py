"""Block predecode cache equivalence: cached replay is bit-identical to
the legacy trace path — RunResult, full stat dumps, and trace event logs
— across ISAs, CPU models, seeds, and program shapes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.isa import ir, predecode
from repro.sim.system import SimulatedSystem

ISAS = ("riscv", "x86", "arm")


def build_program(name="p", seed=0, ialu=120, trips=20, loads=4, stores=2,
                  branches=16, taken_probability=0.7, random_pattern=False,
                  region_size=1 << 14):
    program = ir.Program(name, seed=seed)
    buf = program.space.alloc("buf", region_size)
    pattern = ir.RandomPattern() if random_pattern else None
    init = ir.straightline_block(160, data_region=buf)
    body = ir.Seq([
        ir.compute_block(ialu=ialu, imul=8, falu=6),
        ir.Loop(ir.touch_block(buf, loads=loads, stores=stores,
                               pattern=pattern), trips=trips),
        ir.Block([ir.IROp(ir.OP_BRANCH, count=branches,
                          taken_probability=taken_probability)]),
    ])
    program.add_routine(ir.Routine("helper", init))
    program.add_routine(
        ir.Routine("main", ir.Seq([init, ir.Call("helper"), body])),
        entry=True)
    return program


def run_with(enabled, program, isa, model, seed):
    previous = predecode.set_enabled(enabled)
    try:
        system = SimulatedSystem("s", isa)
        result = system.run(1, program, model=model, seed=seed)
        return result, system.dump_stats()
    finally:
        predecode.set_enabled(previous)


def assert_equivalent(program, isa, model, seed=0):
    cached, cached_stats = run_with(True, program, isa, model, seed)
    legacy, legacy_stats = run_with(False, program, isa, model, seed)
    assert (cached.cycles, cached.instructions, cached.loads,
            cached.stores, cached.branches) == (
        legacy.cycles, legacy.instructions, legacy.loads,
        legacy.stores, legacy.branches)
    assert cached_stats == legacy_stats


class TestEquivalence:
    @pytest.mark.parametrize("isa", ISAS)
    @pytest.mark.parametrize("model", ["atomic", "o3"])
    def test_models_bit_identical(self, isa, model):
        assert_equivalent(build_program(seed=3), isa, model, seed=3)

    @pytest.mark.parametrize("isa", ISAS)
    def test_random_patterns_draw_identically(self, isa):
        program = build_program(seed=5, random_pattern=True)
        assert_equivalent(program, isa, "o3", seed=5)

    def test_warming_equivalent(self):
        program = build_program(seed=1)
        previous = predecode.set_enabled(True)
        try:
            cached_sys = SimulatedSystem("w", "riscv")
            cached_sys.warm(1, program, seed=1)
            predecode.set_enabled(False)
            legacy_sys = SimulatedSystem("w", "riscv")
            legacy_sys.warm(1, program, seed=1)
        finally:
            predecode.set_enabled(previous)
        assert cached_sys.dump_stats() == legacy_sys.dump_stats()

    def test_repeated_replays_reuse_decode(self):
        """A second replay (fresh system, reused decode) is identical."""
        program = build_program(seed=2)
        first_sys = SimulatedSystem("s", "riscv")
        first = first_sys.run(1, program, model="o3", seed=2)
        assembled = first_sys.assemble(program)
        assert getattr(assembled, "_predecode", None)
        again_sys = SimulatedSystem("s", "riscv")
        again = again_sys.run(1, program, model="o3", seed=2)
        assert (first.cycles, first.instructions) == (
            again.cycles, again.instructions)

    def test_program_length_matches_execution(self):
        program = build_program(seed=4)
        system = SimulatedSystem("s", "riscv")
        result = system.run(1, program, model="o3", seed=4)
        assembled = system.assemble(program)
        assert predecode.program_length(assembled) == result.instructions


class TestTracedEquivalence:
    def test_trace_event_logs_identical(self):
        """The obs layer's frozen event log must not see the cache."""
        from repro.core.harness import ExperimentHarness
        from repro.core.scale import SimScale
        from repro.obs.tracer import Tracer
        from repro.workloads.catalog import STANDALONE_FUNCTIONS

        fn = STANDALONE_FUNCTIONS[0]
        scale = SimScale(512, 16)
        captures = {}
        for enabled in (True, False):
            previous = predecode.set_enabled(enabled)
            try:
                tracer = Tracer()
                harness = ExperimentHarness(isa="riscv", scale=scale,
                                            tracer=tracer)
                harness.measure_function(fn)
                captures[enabled] = tracer.freeze()
            finally:
                predecode.set_enabled(previous)
        assert captures[True] == captures[False]


@settings(max_examples=12, deadline=None)
@given(
    isa=st.sampled_from(ISAS),
    seed=st.integers(min_value=0, max_value=2 ** 16),
    trips=st.integers(min_value=1, max_value=40),
    taken_probability=st.floats(min_value=0.0, max_value=1.0),
    random_pattern=st.booleans(),
)
def test_property_equivalence(isa, seed, trips, taken_probability,
                              random_pattern):
    program = build_program(seed=seed, trips=trips,
                            taken_probability=taken_probability,
                            random_pattern=random_pattern)
    assert_equivalent(program, isa, "o3", seed=seed)
