"""Vector-extension tests: config parsing, strip planning, the
scalar-fallback byte-identity anchors, identity/digest threading, and the
RVV-vs-fixed-width stream divergence."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.isa import get_isa, ir
from repro.sim.isa.base import InstrClass
from repro.sim.isa.report import report
from repro.sim.isa.vector import VectorConfig, elements_per_instr, strip_plan
from repro.sim.system import SimulatedSystem

ISAS = ("riscv", "x86", "arm")


def build_vector_program(seed=0, elements=500, ewidth=4, gather=False,
                         scalarize=False):
    """A program around one vector kernel; ``scalarize=True`` builds the
    hand-written scalar twin (what the kernel must fall back to)."""
    program = ir.Program("vkernel", seed=seed)
    src = program.space.alloc("src", 1 << 14)
    dst = program.space.alloc("dst", 1 << 14)
    kernel = ir.vector_block(elements, ewidth=ewidth, load_region=src,
                             store_region=dst, fma_per_element=0.5,
                             alu_per_element=0.25, gather=gather)
    if scalarize:
        kernel = ir.Block([ir.scalar_equivalent(op) for op in kernel.ops],
                          kind=kernel.kind, ilp=kernel.ilp)
    program.add_routine(ir.Routine("main", ir.Seq([
        ir.straightline_block(64, data_region=src),
        kernel,
        ir.Block([ir.IROp(ir.OP_BRANCH, count=8, taken_probability=0.7)]),
    ])), entry=True)
    return program


class TestConfig:
    def test_presets_and_off(self):
        assert VectorConfig.parse(None) is None
        for name in ("off", "none", "scalar", ""):
            assert VectorConfig.parse(name) is None
        assert VectorConfig.parse("rvv128").vlen == 128
        assert VectorConfig.parse("rvv256").vlen == 256
        assert VectorConfig.parse("rvv512").lanes == 4

    def test_parse_key_value(self):
        config = VectorConfig.parse("vlen=192,lanes=3")
        assert (config.vlen, config.lanes) == (192, 3)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            VectorConfig.parse("avx9000")
        with pytest.raises(ValueError):
            VectorConfig.parse("vlen=256,banana=2")

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorConfig(vlen=100)  # not a multiple of 64
        with pytest.raises(ValueError):
            VectorConfig(vlen=32)
        with pytest.raises(ValueError):
            VectorConfig(lanes=0)

    def test_fingerprint_equality_hash(self):
        assert VectorConfig(vlen=256, lanes=2).fingerprint() == "v256.l2"
        assert VectorConfig(vlen=256) == VectorConfig(vlen=256)
        assert VectorConfig(vlen=256) != VectorConfig(vlen=512)
        assert hash(VectorConfig(vlen=128)) == hash(VectorConfig(vlen=128))


class TestStripPlan:
    @given(count=st.integers(1, 5000),
           vlen=st.sampled_from((64, 128, 256, 512)),
           ewidth=st.sampled_from((1, 2, 4, 8)))
    @settings(max_examples=80, deadline=None)
    def test_strips_cover_exactly_the_elements(self, count, vlen, ewidth):
        """Stripmining is lossless: strip totals equal the element count
        the scalar-equivalent stream would issue one-by-one."""
        plan = strip_plan(count, vlen, ewidth)
        epi = elements_per_instr(vlen, ewidth)
        assert sum(plan) == count
        assert all(1 <= strip <= epi for strip in plan)
        assert len(plan) == (count + epi - 1) // epi

    @given(count=st.integers(1, 5000),
           ewidth=st.sampled_from((1, 2, 4, 8)))
    @settings(max_examples=40, deadline=None)
    def test_scalar_equivalent_preserves_counts(self, count, ewidth):
        src = ir.Region("r", 0x1000, 4096)
        op = ir.IROp(ir.OP_VLOAD, count=count, region=src, ewidth=ewidth)
        scalar = ir.scalar_equivalent(op)
        assert scalar.kind == ir.OP_LOAD
        assert scalar.count == count
        assert scalar.region is op.region


class TestScalarFallback:
    """Vector IR with no vector unit must be byte-identical to the
    hand-written scalar program — streams, timing, everything."""

    @pytest.mark.parametrize("isa_name", ISAS)
    def test_stream_identical_per_isa(self, isa_name):
        vector = build_vector_program()
        scalar = build_vector_program(scalarize=True)
        traced_v = [(d[0].pc, d[0].icls, d[1], d[2])
                    for d in get_isa(isa_name).assemble(vector).trace(3)]
        traced_s = [(d[0].pc, d[0].icls, d[1], d[2])
                    for d in get_isa(isa_name).assemble(scalar).trace(3)]
        assert traced_v == traced_s

    @pytest.mark.parametrize("isa_name", ISAS)
    @pytest.mark.parametrize("model", ("atomic", "o3"))
    def test_run_identical_per_isa_and_model(self, isa_name, model):
        runs = []
        for scalarize in (False, True):
            program = build_vector_program(scalarize=scalarize)
            result = SimulatedSystem("s", isa_name).run(
                1, program, model=model, seed=2)
            runs.append((result.cycles, result.instructions, result.loads,
                         result.stores, result.branches))
        assert runs[0] == runs[1]

    def test_gather_fallback_identical(self):
        vector = build_vector_program(gather=True, ewidth=1)
        scalar = build_vector_program(gather=True, ewidth=1, scalarize=True)
        a = SimulatedSystem("s", "riscv").run(1, vector, model="o3", seed=5)
        b = SimulatedSystem("s", "riscv").run(1, scalar, model="o3", seed=5)
        assert (a.cycles, a.instructions) == (b.cycles, b.instructions)


class TestVectorStreams:
    def mix(self, isa_name, config, **kwargs):
        program = build_vector_program(**kwargs)
        assembled = get_isa(isa_name, vector=config).assemble(program)
        return report(assembled)

    def test_rvv_emits_vsetvli_fixed_width_does_not(self):
        rvv = self.mix("riscv", VectorConfig.parse("rvv256"))
        sse = self.mix("x86", VectorConfig.parse("rvv256"))
        neon = self.mix("arm", VectorConfig.parse("rvv256"))
        assert rvv.dynamic_by_class["csr"] > 0
        assert sse.dynamic_by_class["csr"] == 0
        assert neon.dynamic_by_class["csr"] == 0

    def test_vector_shrinks_the_stream(self):
        scalar = self.mix("riscv", None)
        rvv = self.mix("riscv", VectorConfig.parse("rvv256"))
        assert rvv.dynamic_instructions < scalar.dynamic_instructions

    def test_vlen_changes_strip_count(self):
        narrow = self.mix("riscv", VectorConfig.parse("rvv128"))
        wide = self.mix("riscv", VectorConfig.parse("rvv512"))
        assert wide.dynamic_instructions < narrow.dynamic_instructions

    def test_rvv_and_sse_streams_differ(self):
        config = VectorConfig.parse("rvv256")
        rvv = self.mix("riscv", config)
        sse = self.mix("x86", config)
        assert rvv.dynamic_instructions != sse.dynamic_instructions

    def test_sse_width_is_fixed_regardless_of_vlen(self):
        """A fixed-width ISA ignores VLEN: same stream for any setting."""
        narrow = self.mix("x86", VectorConfig.parse("rvv128"))
        wide = self.mix("x86", VectorConfig.parse("rvv512"))
        assert narrow.dynamic_instructions == wide.dynamic_instructions

    @pytest.mark.parametrize("model", ("atomic", "o3"))
    def test_vector_run_deterministic(self, model):
        config = VectorConfig.parse("rvv256")
        results = []
        for _ in range(2):
            program = build_vector_program()
            system = SimulatedSystem("s", "riscv", vector=config)
            result = system.run(1, program, model=model, seed=4)
            results.append((result.cycles, result.instructions,
                            result.loads, result.stores))
        assert results[0] == results[1]

    def test_models_agree_on_vector_instruction_totals(self):
        config = VectorConfig.parse("rvv256")
        program = build_vector_program()
        atomic = SimulatedSystem("s", "riscv", vector=config).run(
            1, program, model="atomic", seed=4)
        o3 = SimulatedSystem("s", "riscv", vector=config).run(
            1, program, model="o3", seed=4)
        assert atomic.instructions == o3.instructions
        assert atomic.loads == o3.loads
        assert atomic.stores == o3.stores


class TestIdentity:
    def test_digest_unchanged_when_vector_none(self):
        """Digests minted before the vector layer existed must stay valid."""
        from repro.core.rescache import measurement_digest

        legacy = measurement_digest("aes-go", "riscv", 2048, 32, 0, ("fp",))
        explicit = measurement_digest("aes-go", "riscv", 2048, 32, 0, ("fp",),
                                      vector=None)
        assert legacy == explicit

    def test_digest_changes_with_vector(self):
        from repro.core.rescache import measurement_digest

        plain = measurement_digest("aes-go", "riscv", 2048, 32, 0, ("fp",))
        vectored = measurement_digest(
            "aes-go", "riscv", 2048, 32, 0, ("fp",),
            vector=VectorConfig.parse("rvv256").fingerprint())
        assert plain != vectored

    def test_spec_identity_tracks_vector(self):
        from repro.core.spec import MeasurementSpec

        plain = MeasurementSpec(function="aes-go", isa="riscv")
        vectored = plain.replace(vector=VectorConfig.parse("rvv256"))
        assert plain != vectored
        assert vectored.replace(vector=None) == plain
        assert hash(vectored.replace(vector=None)) == hash(plain)

    def test_spec_pickle_round_trip(self):
        from repro.core.spec import MeasurementSpec

        spec = MeasurementSpec(function="aes-go", isa="riscv",
                               vector=VectorConfig.parse("rvv512"))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.vector == spec.vector

    def test_fingerprint_separates_vector_ops(self):
        """Program fingerprints must distinguish vector from scalar twins
        (they share the assembled-program cache keyed on fingerprints)."""
        vector = build_vector_program()
        scalar = build_vector_program(scalarize=True)
        assert vector.fingerprint() != scalar.fingerprint()

    def test_measurement_vector_vs_scalar_differ(self):
        from repro.core.parallel import execute_task
        from repro.core.scale import TEST
        from repro.core.spec import MeasurementSpec

        spec = MeasurementSpec(function="matmul-int8", isa="riscv",
                               scale=TEST, seed=0)
        plain = execute_task(spec)
        vectored = execute_task(
            spec.replace(vector=VectorConfig.parse("rvv256")))
        assert vectored.cold.instructions < plain.cold.instructions
