"""Branch-predictor variants (the §6 design-space axis)."""

import pytest

from repro.core.dse import DesignSpace
from repro.core.harness import clear_boot_checkpoint_cache
from repro.core.scale import SimScale
from repro.sim.cpu.bpred import (
    BimodalPredictor,
    GSharePredictor,
    PREDICTORS,
    StaticTakenPredictor,
    TournamentPredictor,
    make_predictor,
)
from repro.sim.isa import ir
from repro.sim.system import SimulatedSystem
from repro.workloads.catalog import get_function


@pytest.fixture(autouse=True)
def _fresh_checkpoints():
    clear_boot_checkpoint_cache()
    yield
    clear_boot_checkpoint_cache()


def accuracy(predictor, outcomes, pc=0x400000):
    correct = sum(
        1 for taken in outcomes if predictor.predict_and_update(pc, taken)
    )
    return correct / len(outcomes)


class TestPredictorVariants:
    def test_registry(self):
        assert set(PREDICTORS) == {"tournament", "gshare", "bimodal",
                                   "static-taken"}
        for kind in PREDICTORS:
            assert make_predictor(kind).kind == kind
        with pytest.raises(ValueError):
            make_predictor("perceptron")

    def test_static_taken_baseline(self):
        predictor = StaticTakenPredictor()
        assert accuracy(predictor, [True] * 100) == 1.0
        assert accuracy(predictor, [False] * 100) == 0.0

    def test_bimodal_learns_bias(self):
        predictor = BimodalPredictor()
        assert accuracy(predictor, [True] * 400) > 0.95
        # Alternating pattern defeats 2-bit counters.
        alternating = BimodalPredictor()
        assert accuracy(alternating, [True, False] * 200) < 0.6

    def test_gshare_learns_alternation(self):
        predictor = GSharePredictor()
        assert accuracy(predictor, [True, False] * 400) > 0.8

    def test_tournament_at_least_as_good_on_patterns(self):
        patterns = {
            "biased": [True] * 400,
            "alternating": [True, False] * 200,
            "period3": [True, True, False] * 150,
        }
        for name, outcomes in patterns.items():
            tournament = accuracy(TournamentPredictor(), outcomes)
            static = accuracy(StaticTakenPredictor(), outcomes)
            assert tournament >= static - 0.15, name
            assert tournament > 0.6, name

    def test_state_roundtrip_all_kinds(self):
        for kind in PREDICTORS:
            predictor = make_predictor(kind)
            for index in range(100):
                predictor.predict_and_update(0x1000 + index * 4, index % 3 == 0)
            clone = make_predictor(kind)
            clone.load_state(predictor.state_dict())
            assert clone.state_dict() == predictor.state_dict()


class TestPredictorInO3:
    def make_branchy_program(self):
        program = ir.Program("branchy", seed=6)
        block = ir.Block([
            ir.IROp(ir.OP_IALU, count=2),
            ir.IROp(ir.OP_BRANCH, count=1, taken_probability=0.85),
        ])
        program.add_routine(ir.Routine("main", ir.Loop(block, trips=3000)),
                            entry=True)
        return program

    def test_predictor_choice_changes_cycles(self):
        from repro.sim.cpu.o3 import O3Config

        program = self.make_branchy_program()
        cycles = {}
        for kind in ("tournament", "static-taken"):
            system = SimulatedSystem("s", "riscv",
                                     o3_config=O3Config(branch_predictor=kind))
            cycles[kind] = system.run(1, program, model="o3").cycles
        # A real predictor beats always-taken on an 85%-taken stream? No —
        # static-taken is right 85% here; the tournament should at least
        # match it after warm-up.
        assert cycles["tournament"] <= cycles["static-taken"] * 1.1

    def test_dse_branch_predictor_axis(self):
        space = DesignSpace(isa="riscv", scale=SimScale(time=2048, space=32))
        space.axis("branch_predictor", ["tournament", "static-taken"])
        result = space.sweep(get_function("fibonacci-go"))
        kinds = {point.settings["branch_predictor"] for point in result.points}
        assert kinds == {"tournament", "static-taken"}
        by_kind = {point.settings["branch_predictor"]: point
                   for point in result.points}
        # The boot/init path is branchy enough for the predictor to matter.
        assert by_kind["tournament"].cold_cycles <= \
            by_kind["static-taken"].cold_cycles * 1.05
