"""Prefetcher model tests."""

import pytest

from repro.sim.mem.hierarchy import CoreMemSystem, MemoryHierarchyConfig
from repro.sim.mem.dram import DramModel
from repro.sim.mem.prefetcher import (
    NextLinePrefetcher,
    Prefetcher,
    StridePrefetcher,
    make_prefetcher,
)
from repro.sim.statistics import StatGroup


def make_core(**overrides):
    stats = StatGroup("sys")
    return CoreMemSystem(0, MemoryHierarchyConfig(**overrides),
                         DramModel(stats_parent=stats), stats)


class TestPrefetcherModels:
    def test_none_never_prefetches(self):
        assert Prefetcher().on_miss(0x400, 10) == []
        assert make_prefetcher("nextline", 0).on_miss(0x400, 10) == []
        assert make_prefetcher("none", 4).on_miss(0x400, 10) == []

    def test_nextline_degree(self):
        prefetcher = NextLinePrefetcher(3)
        assert prefetcher.on_miss(0x400, 10) == [11, 12, 13]

    def test_stride_detects_constant_stride(self):
        prefetcher = StridePrefetcher(degree=2)
        assert prefetcher.on_miss(0x400, 10) == []      # first touch
        assert prefetcher.on_miss(0x400, 14) == []      # stride learned (4)
        assert prefetcher.on_miss(0x400, 18) == [22, 26]  # confirmed

    def test_stride_is_per_pc(self):
        prefetcher = StridePrefetcher(degree=1)
        prefetcher.on_miss(0x400, 10)
        prefetcher.on_miss(0x404, 100)  # different PC, no interference
        prefetcher.on_miss(0x400, 12)
        assert prefetcher.on_miss(0x400, 14) == [16]

    def test_stride_resets_on_break(self):
        prefetcher = StridePrefetcher(degree=1)
        prefetcher.on_miss(0x400, 10)
        prefetcher.on_miss(0x400, 12)
        assert prefetcher.on_miss(0x400, 14) == [16]
        assert prefetcher.on_miss(0x400, 99) == []   # pattern broken
        assert prefetcher.on_miss(0x400, 100) == []  # relearning
        assert prefetcher.on_miss(0x400, 101) == [102]

    def test_table_capacity_evicts(self):
        prefetcher = StridePrefetcher(degree=1, table_entries=2)
        prefetcher.on_miss(0x1, 10)
        prefetcher.on_miss(0x2, 20)
        prefetcher.on_miss(0x3, 30)  # evicts pc 0x1
        assert len(prefetcher._table) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            make_prefetcher("tagged", 2)
        with pytest.raises(ValueError):
            NextLinePrefetcher(0)
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)


class TestPrefetcherInHierarchy:
    def test_stride_prefetcher_covers_strided_scan(self):
        stride_core = make_core(prefetch_d_kind="stride", prefetch_d_degree=4)
        nextline_core = make_core(prefetch_d_kind="nextline",
                                  prefetch_d_degree=4)
        none_core = make_core(prefetch_d_degree=0)
        # Stride of 4 lines (256B): nextline's +1..+4 covers it too, but a
        # 8-line stride beats nextline's reach.
        for core in (stride_core, nextline_core, none_core):
            pc = 0x400000
            for step in range(120):
                core.data_access(step * 512, pc=pc)  # 8-line stride
        assert stride_core.l1d.stat_misses.value() < \
            none_core.l1d.stat_misses.value() / 2
        assert stride_core.l1d.stat_misses.value() < \
            nextline_core.l1d.stat_misses.value()

    def test_kind_none_matches_degree_zero(self):
        a = make_core(prefetch_d_kind="none", prefetch_d_degree=4)
        b = make_core(prefetch_d_degree=0)
        for core in (a, b):
            for step in range(50):
                core.data_access(step * 64)
        assert a.l1d.stat_misses.value() == b.l1d.stat_misses.value()

    def test_flush_resets_stride_state(self):
        core = make_core(prefetch_d_kind="stride", prefetch_d_degree=2)
        for step in range(10):
            core.data_access(step * 512, pc=0x400)
        core.flush_all()
        assert core._dprefetcher._table == {}

    def test_scaled_config_preserves_kinds(self):
        config = MemoryHierarchyConfig(prefetch_d_kind="stride").scaled(16)
        assert config.prefetch_d_kind == "stride"
