"""Sampled-simulation unit tests: config parsing, window schedules, the
bit-identity anchors, and result-cache/spec identity threading."""

import pickle
import random

import pytest

from repro.sim.sampling import (
    DETAIL,
    FAST_FORWARD,
    WARMUP,
    SamplingConfig,
)
from repro.sim.system import SimulatedSystem
from tests.sim.test_predecode import build_program


class TestConfig:
    def test_defaults_and_fingerprint(self):
        config = SamplingConfig()
        assert config.fingerprint() == "i8192.d1024.w256.j1.m6144"

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingConfig(detail=0)
        with pytest.raises(ValueError):
            SamplingConfig(warmup=-1)
        with pytest.raises(ValueError):
            SamplingConfig(interval=512, detail=512, warmup=64)
        with pytest.raises(ValueError):
            SamplingConfig(min_insts=-1)

    def test_parse_presets_and_off(self):
        assert SamplingConfig.parse(None) is None
        for name in ("off", "none", "full", ""):
            assert SamplingConfig.parse(name) is None
        for name in ("fast", "balanced", "accurate"):
            assert isinstance(SamplingConfig.parse(name), SamplingConfig)

    def test_parse_key_value(self):
        config = SamplingConfig.parse(
            "interval=4096,detail=512,warmup=128,jitter=0,min_insts=0")
        assert (config.interval, config.detail, config.warmup,
                config.jitter, config.min_insts) == (4096, 512, 128, False, 0)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            SamplingConfig.parse("turbo")
        with pytest.raises(ValueError):
            SamplingConfig.parse("interval=1,banana=2")

    def test_equality_and_hash(self):
        assert SamplingConfig() == SamplingConfig()
        assert SamplingConfig() != SamplingConfig(detail=512)
        assert hash(SamplingConfig()) == hash(SamplingConfig())

    def test_placement_deterministic(self):
        config = SamplingConfig()
        draws_a = config.placement_rng(3, 7).random()
        draws_b = config.placement_rng(3, 7).random()
        assert draws_a == draws_b
        assert config.placement_rng(3, 8).random() != draws_a


class TestSegments:
    def pull(self, config, rng, until):
        segments = []
        iterator = config.segments(rng)
        while not segments or segments[-1][0] < until:
            segments.append(next(iterator))
        return segments

    def test_first_window_starts_at_zero(self):
        config = SamplingConfig(interval=1024, detail=256, warmup=128)
        first = next(config.segments(random.Random(0)))
        assert first == (256, DETAIL)

    def test_segments_are_contiguous_and_sorted(self):
        config = SamplingConfig(interval=1024, detail=256, warmup=128)
        segments = self.pull(config, random.Random(1), 16 * 1024)
        ends = [end for end, _ in segments]
        assert ends == sorted(ends)
        assert len(set(ends)) == len(ends)

    def test_zero_slack_has_no_fast_forward(self):
        """Zero-slack configs warm continuously (the accuracy regime)."""
        config = SamplingConfig(interval=2048, detail=1984, warmup=64)
        segments = self.pull(config, random.Random(2), 32 * 1024)
        assert all(mode != FAST_FORWARD for _, mode in segments)
        assert any(mode == WARMUP for _, mode in segments)

    def test_slack_produces_fast_forward(self):
        config = SamplingConfig(interval=8192, detail=1024, warmup=256)
        segments = self.pull(config, random.Random(3), 64 * 1024)
        assert any(mode == FAST_FORWARD for _, mode in segments)


class TestAnchors:
    def run_pair(self, config, trips=600, seed=2):
        program = build_program(seed=seed, trips=trips)
        full = SimulatedSystem("s", "riscv").run(
            1, program, model="o3", seed=seed)
        sampled = SimulatedSystem("s", "riscv").run(
            1, program, model="o3", seed=seed, sampling=config)
        return full, sampled

    def test_all_covering_window_bit_identical(self):
        config = SamplingConfig(interval=1 << 24, detail=1 << 24, warmup=0,
                                jitter=False, min_insts=0)
        full, sampled = self.run_pair(config)
        assert (sampled.cycles, sampled.instructions, sampled.loads,
                sampled.stores, sampled.branches) == (
            full.cycles, full.instructions, full.loads, full.stores,
            full.branches)

    def test_short_run_floor_is_exact(self):
        config = SamplingConfig(interval=512, detail=128, warmup=64,
                                min_insts=1 << 30)
        full, sampled = self.run_pair(config)
        assert (sampled.cycles, sampled.instructions) == (
            full.cycles, full.instructions)

    def test_sampled_run_is_functionally_exact(self):
        config = SamplingConfig(interval=2048, detail=512, warmup=256,
                                min_insts=0)
        full, sampled = self.run_pair(config, trips=2000)
        assert sampled.instructions == full.instructions
        assert sampled.loads == full.loads
        assert sampled.stores == full.stores
        assert sampled.branches == full.branches
        assert sampled.cycles != 0

    def test_sampled_timing_is_deterministic(self):
        config = SamplingConfig(interval=2048, detail=512, warmup=256,
                                min_insts=0)
        _, first = self.run_pair(config, trips=2000)
        _, again = self.run_pair(config, trips=2000)
        assert first.cycles == again.cycles


class TestIdentity:
    def test_digest_unchanged_when_sampling_none(self):
        """Digests minted before sampling existed must stay valid."""
        from repro.core.rescache import measurement_digest

        legacy = measurement_digest("aes-go", "riscv", 2048, 32, 0, ("fp",))
        explicit = measurement_digest("aes-go", "riscv", 2048, 32, 0, ("fp",),
                                      sampling=None)
        assert legacy == explicit

    def test_digest_changes_with_sampling(self):
        from repro.core.rescache import measurement_digest

        plain = measurement_digest("aes-go", "riscv", 2048, 32, 0, ("fp",))
        sampled = measurement_digest(
            "aes-go", "riscv", 2048, 32, 0, ("fp",),
            sampling=SamplingConfig().fingerprint())
        assert plain != sampled

    def test_spec_identity_tracks_sampling(self):
        from repro.core.spec import MeasurementSpec

        plain = MeasurementSpec(function="aes-go", isa="riscv")
        sampled = plain.replace(sampling=SamplingConfig())
        assert plain != sampled
        assert sampled.replace(sampling=None) == plain
        assert hash(sampled.replace(sampling=None)) == hash(plain)

    def test_spec_pickle_round_trip(self):
        from repro.core.spec import MeasurementSpec

        spec = MeasurementSpec(function="aes-go", isa="riscv",
                               sampling=SamplingConfig())
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.sampling == spec.sampling
