"""Cross-model invariants over randomly generated programs.

Whatever program the workload layer produces, the three CPU models must
agree on the architectural facts (instruction counts, memory-op counts)
and differ only in timing; checkpoints must replay identically; and both
ISAs must execute the same IR without error.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.isa import get_isa, ir
from repro.sim.system import SimulatedSystem


@st.composite
def ir_programs(draw):
    """Random small IR programs with loops, calls, and mixed blocks."""
    program = ir.Program("prop%d" % draw(st.integers(0, 10**6)),
                         seed=draw(st.integers(0, 1000)))
    buffer_region = program.space.alloc(
        "buf", draw(st.sampled_from([4096, 65536, 1 << 20])))

    def block():
        kind = draw(st.sampled_from(["app", "stack", "rtpath"]))
        ops = []
        if draw(st.booleans()):
            ops.append(ir.IROp(ir.OP_IALU, count=draw(st.integers(1, 200))))
        if draw(st.booleans()):
            pattern = draw(st.sampled_from([
                ir.StridePattern(stride=64),
                ir.RandomPattern(align=8),
                ir.HotColdPattern(),
            ]))
            ops.append(ir.IROp(ir.OP_LOAD, count=draw(st.integers(1, 100)),
                               region=buffer_region, pattern=pattern))
        if draw(st.booleans()):
            ops.append(ir.IROp(ir.OP_STORE, count=draw(st.integers(1, 50)),
                               region=buffer_region))
        if draw(st.booleans()):
            ops.append(ir.IROp(ir.OP_BRANCH, count=draw(st.integers(1, 30)),
                               taken_probability=draw(
                                   st.floats(0.0, 1.0))))
        if not ops:
            ops.append(ir.IROp(ir.OP_IALU, count=1))
        return ir.Block(ops, kind=kind, ilp=draw(st.integers(1, 8)))

    nodes = [block()]
    if draw(st.booleans()):
        nodes.append(ir.Loop(block(), trips=draw(st.integers(1, 10))))
    if draw(st.booleans()):
        program.add_routine(ir.Routine("helper", block()))
        nodes.append(ir.Call("helper"))
    program.add_routine(ir.Routine("main", ir.Seq(nodes)), entry=True)
    return program


@settings(max_examples=30, deadline=None)
@given(program=ir_programs(), isa_name=st.sampled_from(["riscv", "x86", "arm"]))
def test_property_models_agree_on_architectural_counts(program, isa_name):
    atomic_system = SimulatedSystem("a", isa_name)
    o3_system = SimulatedSystem("b", isa_name)
    kvm_system = SimulatedSystem("c", isa_name)
    atomic = atomic_system.run(1, program, model="atomic")
    o3 = o3_system.run(1, program, model="o3")
    kvm = kvm_system.run(1, program, model="kvm")
    assert atomic.instructions == o3.instructions == kvm.instructions
    assert atomic.loads == o3.loads
    assert atomic.stores == o3.stores
    # O3 never slower than the no-overlap in-order model, beyond the fixed
    # pipeline-fill cost and the mispredict squashes the Atomic model does
    # not charge at all.
    pipeline_fill_slack = 64
    mispredicts = o3_system.dump_stats().get("b.cpu1.o3.bpred.mispredicts", 0)
    squash_budget = mispredicts * (o3_system.o3_config.mispredict_penalty + 3)
    assert o3.cycles <= atomic.cycles + pipeline_fill_slack + squash_budget


@settings(max_examples=20, deadline=None)
@given(program=ir_programs())
def test_property_runs_are_deterministic(program):
    def run_once():
        system = SimulatedSystem("s", "riscv", seed=3)
        result = system.run(1, program, model="o3", seed=5)
        return (result.cycles, result.instructions,
                system.dump_stats()["s.core1.l1d.misses"])

    assert run_once() == run_once()


@settings(max_examples=200, deadline=None)
@given(program=ir_programs())
def test_property_checkpoint_restores_timing_exactly(program):
    from repro.sim.checkpoint import restore_checkpoint, take_checkpoint

    system = SimulatedSystem("s", "riscv")
    system.run(1, program, model="o3")
    checkpoint = take_checkpoint(system)
    baseline = system.run(1, program, model="o3").cycles
    system.flush_core(1)
    restore_checkpoint(system, checkpoint)
    assert system.run(1, program, model="o3").cycles == baseline


@settings(max_examples=20, deadline=None)
@given(program=ir_programs())
def test_property_warm_run_never_slower(program):
    system = SimulatedSystem("s", "riscv")
    cold = system.run(1, program, model="o3")
    warm = system.run(1, program, model="o3")
    assert warm.cycles <= cold.cycles


@settings(max_examples=20, deadline=None)
@given(program=ir_programs())
def test_property_isas_execute_same_ir(program):
    lengths = {}
    for isa_name in ("riscv", "x86", "arm"):
        assembled = get_isa(isa_name).assemble(program)
        lengths[isa_name] = assembled.dynamic_length()
        assert lengths[isa_name] > 0
    # Fixed-width ISAs bracket the variable-length one only loosely; the
    # invariant worth holding is every ISA executes the full program.
    assert max(lengths.values()) < 4 * min(lengths.values())
