"""Unit and property tests for the cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.mem.cache import Cache
from repro.sim.statistics import StatGroup


def make_cache(size=1024, assoc=2, line=64, policy="lru"):
    return Cache("test", size, assoc, line, policy, StatGroup("sys"))


class TestGeometry:
    def test_set_count(self):
        cache = make_cache(size=1024, assoc=2, line=64)
        assert cache.num_sets == 8

    def test_bad_line_size_rejected(self):
        with pytest.raises(ValueError):
            make_cache(line=48)

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError):
            make_cache(size=1000)

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ValueError):
            Cache("bad", 3 * 128, 1, 64, stats_parent=StatGroup("s"))


class TestAccessPath:
    def test_first_access_misses_then_hits(self):
        cache = make_cache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.access(0x1004) is True  # same line

    def test_distinct_lines_distinct_fills(self):
        cache = make_cache()
        cache.access(0)
        cache.access(64)
        assert cache.resident_lines() == 2

    def test_lru_eviction_order(self):
        # Direct-mapped equivalent set: assoc 2, force 3 lines into one set.
        cache = make_cache(size=128, assoc=2, line=64)  # 1 set
        cache.access(0 * 64)
        cache.access(1 * 64)
        cache.access(0 * 64)      # refresh line 0
        cache.access(2 * 64)      # evicts line 1 (LRU)
        assert cache.contains_line(0)
        assert not cache.contains_line(1)
        assert cache.contains_line(2)

    def test_writeback_counted_on_dirty_eviction(self):
        cache = make_cache(size=128, assoc=2, line=64)
        cache.access(0, write=True)
        cache.access(64)
        cache.access(128)  # evicts dirty line 0
        assert cache.stat_writebacks.value() == 1

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(size=128, assoc=2, line=64)
        cache.access(0)
        cache.access(64)
        cache.access(128)
        assert cache.stat_writebacks.value() == 0

    def test_stats_accumulate(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stat_accesses.value() == 3
        assert cache.stat_hits.value() == 1
        assert cache.stat_misses.value() == 2


class TestFlushAndState:
    def test_flush_empties_and_counts_dirty(self):
        cache = make_cache()
        cache.access(0, write=True)
        cache.access(64)
        flushed = cache.flush()
        assert flushed == 1
        assert cache.resident_lines() == 0

    def test_state_roundtrip_preserves_contents(self):
        cache = make_cache()
        for addr in (0, 64, 128, 4096):
            cache.access(addr, write=(addr == 64))
        state = cache.state_dict()
        other = make_cache()
        other.load_state(state)
        for addr in (0, 64, 128, 4096):
            assert other.contains_line(addr >> 6)

    def test_state_roundtrip_preserves_lru_order(self):
        cache = make_cache(size=128, assoc=2, line=64)
        cache.access(0)
        cache.access(64)
        cache.access(0)  # 64 is now LRU
        other = make_cache(size=128, assoc=2, line=64)
        other.load_state(cache.state_dict())
        other.access(128)  # should evict line... recency order from state
        assert other.contains_line(0)


class TestPolicies:
    def test_fifo_ignores_touches(self):
        cache = make_cache(size=128, assoc=2, line=64, policy="fifo")
        cache.access(0)
        cache.access(64)
        cache.access(0)       # does not promote in FIFO
        cache.access(128)     # evicts 0 (first in)
        assert not cache.contains_line(0)
        assert cache.contains_line(1)

    def test_random_policy_deterministic_per_seed(self):
        def run():
            cache = make_cache(size=256, assoc=2, line=64, policy="random")
            for addr in range(0, 64 * 40, 64):
                cache.access(addr)
            return cache.state_dict()

        assert run() == run()


class CacheInvariants:
    pass


@settings(max_examples=60, deadline=None)
@given(
    addrs=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300),
    assoc=st.sampled_from([1, 2, 4, 8]),
)
def test_property_occupancy_never_exceeds_capacity(addrs, assoc):
    cache = Cache("prop", 64 * assoc * 8, assoc, 64, "lru", StatGroup("s"))
    for addr in addrs:
        cache.access(addr)
    assert cache.resident_lines() <= cache.num_sets * assoc
    for index, resident in enumerate(cache._sets):
        assert len(resident) <= assoc
        for line in resident:
            assert line & cache._set_mask == index  # set indexing invariant


@settings(max_examples=60, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200))
def test_property_hits_plus_misses_equals_accesses(addrs):
    cache = make_cache()
    for addr in addrs:
        cache.access(addr)
    assert (
        cache.stat_hits.value() + cache.stat_misses.value()
        == cache.stat_accesses.value()
        == len(addrs)
    )


@settings(max_examples=40, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=150))
def test_property_immediate_reaccess_always_hits(addrs):
    cache = make_cache()
    for addr in addrs:
        cache.access(addr)
        assert cache.access(addr) is True
