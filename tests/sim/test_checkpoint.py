"""Checkpoint serialization, store, and restore-fidelity tests."""

import pytest

from repro.sim.checkpoint import (
    Checkpoint,
    CheckpointStore,
    restore_checkpoint,
    take_checkpoint,
)
from repro.sim.isa import ir
from repro.sim.system import SimulatedSystem


def make_system_with_state():
    system = SimulatedSystem("s", "riscv")
    program = ir.Program("warmup", seed=1)
    buf = program.space.alloc("buf", 32 * 1024)
    program.add_routine(
        ir.Routine("main", ir.touch_block(buf, loads=512, stores=64)), entry=True
    )
    system.run(1, program, model="o3")
    return system, program


class TestTakeRestore:
    def test_restore_reproduces_timing(self):
        system, program = make_system_with_state()
        checkpoint = take_checkpoint(system)
        baseline = system.run(1, program, model="o3").cycles
        system.flush_core(1)
        restore_checkpoint(system, checkpoint)
        restored = system.run(1, program, model="o3").cycles
        assert restored == baseline

    def test_checkpoint_immune_to_later_mutation(self):
        system, program = make_system_with_state()
        checkpoint = take_checkpoint(system)
        resident_at_ckpt = system.cores[1].l1d.resident_lines()
        system.flush_core(1)
        restore_checkpoint(system, checkpoint)
        assert system.cores[1].l1d.resident_lines() == resident_at_ckpt

    def test_payload_roundtrip_is_a_copy(self):
        system, _program = make_system_with_state()
        payload = {"containers": ["fib-run1"]}
        checkpoint = take_checkpoint(system, payload=payload)
        payload["containers"].append("mutated")
        restored = restore_checkpoint(system, checkpoint)
        assert restored == {"containers": ["fib-run1"]}


class TestDiskPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        system, program = make_system_with_state()
        checkpoint = take_checkpoint(system, payload={"phase": "boot"})
        path = checkpoint.save(tmp_path / "post-boot.ckpt")
        loaded = Checkpoint.load(path)
        assert loaded.payload == {"phase": "boot"}
        system.flush_core(1)
        restore_checkpoint(system, loaded)
        baseline = system.run(1, program, model="o3").cycles
        assert baseline > 0

    def test_version_check(self, tmp_path):
        system, _program = make_system_with_state()
        checkpoint = take_checkpoint(system)
        checkpoint.version = 99
        path = checkpoint.save(tmp_path / "bad.ckpt")
        with pytest.raises(ValueError):
            Checkpoint.load(path)

    def test_load_rejects_non_checkpoint(self, tmp_path):
        import pickle

        path = tmp_path / "junk.ckpt"
        with open(path, "wb") as handle:
            pickle.dump({"not": "a checkpoint"}, handle)
        with pytest.raises(TypeError):
            Checkpoint.load(path)


class TestCheckpointStore:
    def test_memory_store(self):
        system, _program = make_system_with_state()
        store = CheckpointStore()
        store.put("boot", take_checkpoint(system))
        assert "boot" in store
        assert "other" not in store
        assert store.names() == ["boot"]

    def test_disk_backed_store_survives_reload(self, tmp_path):
        system, _program = make_system_with_state()
        store = CheckpointStore(directory=tmp_path)
        store.put("boot", take_checkpoint(system, payload={"n": 1}))
        fresh = CheckpointStore(directory=tmp_path)
        assert fresh.get("boot").payload == {"n": 1}

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            CheckpointStore().get("ghost")
