"""TLB, DRAM, hierarchy and prefetcher tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.mem.dram import DramModel
from repro.sim.mem.hierarchy import CoreMemSystem, MemoryHierarchyConfig
from repro.sim.mem.tlb import PAGE_SIZE, Tlb
from repro.sim.statistics import StatGroup


def make_core(space_scale=1, **overrides):
    config = MemoryHierarchyConfig(**overrides)
    if space_scale > 1:
        config = config.scaled(space_scale)
    stats = StatGroup("sys")
    return CoreMemSystem(1, config, DramModel(stats_parent=stats), stats)


class TestTlb:
    def test_hit_after_fill(self):
        tlb = Tlb("t", entries=4, stats_parent=StatGroup("s"))
        assert tlb.translate(0x1000) > 0   # miss
        assert tlb.translate(0x1000) == 0  # hit
        assert tlb.translate(0x1234) == 0  # same page

    def test_capacity_eviction_lru(self):
        tlb = Tlb("t", entries=2, stats_parent=StatGroup("s"))
        tlb.translate(0 * PAGE_SIZE)
        tlb.translate(1 * PAGE_SIZE)
        tlb.translate(0 * PAGE_SIZE)      # refresh page 0
        tlb.translate(2 * PAGE_SIZE)      # evicts page 1
        assert tlb.translate(0 * PAGE_SIZE) == 0
        assert tlb.translate(1 * PAGE_SIZE) > 0

    def test_walk_cache_softens_misses(self):
        tlb = Tlb("t", entries=1, stats_parent=StatGroup("s"))
        first = tlb.translate(0x0000)
        tlb.translate(PAGE_SIZE)            # evicts page 0, same directory
        revisit = tlb.translate(0x0000)     # walk cache hit
        assert revisit < first

    def test_flush(self):
        tlb = Tlb("t", stats_parent=StatGroup("s"))
        tlb.translate(0x5000)
        tlb.flush()
        assert tlb.translate(0x5000) > 0

    def test_state_roundtrip(self):
        tlb = Tlb("t", stats_parent=StatGroup("s"))
        for page in range(10):
            tlb.translate(page * PAGE_SIZE)
        clone = Tlb("t", stats_parent=StatGroup("s2"))
        clone.load_state(tlb.state_dict())
        assert clone.resident() == tlb.resident()

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            Tlb("t", entries=0)


class TestDram:
    def test_row_buffer_hit_cheaper(self):
        dram = DramModel(stats_parent=StatGroup("s"))
        first = dram.access(0, now_cycle=0)
        hit = dram.access(64, now_cycle=10**6)  # same row, quiet queue
        assert hit < first

    def test_row_conflict_costs_precharge(self):
        dram = DramModel(banks=1, row_bytes=4096, stats_parent=StatGroup("s"))
        dram.access(0, now_cycle=0)
        conflict = dram.access(8192, now_cycle=10**6)   # other row, same bank
        hit = dram.access(8192 + 64, now_cycle=2 * 10**6)
        assert conflict > hit

    def test_queue_pressure_under_bursts(self):
        dram = DramModel(stats_parent=StatGroup("s"))
        dram.access(0, now_cycle=0)
        burst = dram.access(64, now_cycle=1)           # clustered
        dram2 = DramModel(stats_parent=StatGroup("s2"))
        dram2.access(0, now_cycle=0)
        quiet = dram2.access(64, now_cycle=10**6)      # spread out
        assert burst > quiet

    def test_stats_split(self):
        dram = DramModel(stats_parent=StatGroup("s"))
        dram.access(0)
        dram.access(64, now_cycle=10**6)
        assert dram.stat_row_hits.value() == 1
        assert dram.stat_row_conflicts.value() == 1

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            DramModel(banks=0)


class TestHierarchy:
    def test_latency_ordering_l1_l2_dram(self):
        core = make_core()
        miss = core.data_access(0x10000)           # all the way to DRAM
        core.l1d.flush()
        l2_hit = core.data_access(0x10000)         # L1 miss, L2 hit
        l1_hit = core.data_access(0x10000)
        assert miss > l2_hit > l1_hit

    def test_ifetch_and_data_use_separate_l1s(self):
        core = make_core()
        core.ifetch(0x400000)
        assert core.l1i.stat_accesses.value() == 1
        assert core.l1d.stat_accesses.value() == 0
        core.data_access(0x400000)
        assert core.l1d.stat_accesses.value() == 1

    def test_flush_all_restores_cold(self):
        core = make_core()
        core.data_access(0x2000)
        warm = core.data_access(0x2000)
        core.flush_all()
        cold = core.data_access(0x2000)
        assert cold > warm

    def test_warm_touch_fills_without_latency_effects(self):
        core = make_core()
        core.warm_touch(0x3000, is_ifetch=False)
        assert core.data_access(0x3000) <= core.config.l1_latency + 50

    def test_state_roundtrip(self):
        core = make_core()
        for addr in range(0, 64 * 64, 64):
            core.data_access(addr)
            core.ifetch(0x400000 + addr)
        clone = make_core()
        clone.load_state(core.state_dict())
        # Warmed state restored: accesses hit.
        assert clone.data_access(0) <= clone.config.l1_latency + 10

    def test_scaled_config_shrinks_capacities_not_latency(self):
        full = MemoryHierarchyConfig()
        scaled = full.scaled(16)
        assert scaled.l1d_size == full.l1d_size // 16
        assert scaled.l2_size == full.l2_size // 16
        assert scaled.l1_latency == full.l1_latency
        assert scaled.l2_latency == full.l2_latency

    def test_scaled_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            MemoryHierarchyConfig().scaled(0)


class TestPrefetchers:
    def test_iprefetch_covers_sequential_code(self):
        with_prefetch = make_core(prefetch_i_degree=4)
        without = make_core(prefetch_i_degree=0)
        for core in (with_prefetch, without):
            for addr in range(0x400000, 0x400000 + 64 * 128, 64):
                core.ifetch(addr)
        assert with_prefetch.l1i.stat_misses.value() < \
            without.l1i.stat_misses.value() / 2

    def test_dprefetch_covers_streaming_loads(self):
        with_prefetch = make_core(prefetch_d_degree=4)
        without = make_core(prefetch_d_degree=0)
        for core in (with_prefetch, without):
            for addr in range(0, 64 * 128, 64):
                core.data_access(addr)
        assert with_prefetch.l1d.stat_misses.value() < \
            without.l1d.stat_misses.value()

    def test_prefetch_fills_counted(self):
        core = make_core(prefetch_i_degree=2)
        core.ifetch(0x400000)
        assert core.stat_prefetches.value() == 2

    def test_prefetch_does_not_inflate_demand_stats(self):
        core = make_core(prefetch_i_degree=8)
        core.ifetch(0x400000)
        assert core.l1i.stat_accesses.value() == 1


@settings(max_examples=25, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 22),
                      min_size=1, max_size=200))
def test_property_latency_always_at_least_l1(addrs):
    core = make_core()
    for addr in addrs:
        assert core.data_access(addr) >= core.config.l1_latency
        assert core.ifetch(addr) >= core.config.l1_latency
