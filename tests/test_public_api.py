"""The stable import surface: every advertised name must resolve.

The serving redesign promoted :mod:`repro.serverless` and
:mod:`repro.core` to stable public APIs — downstream scripts import
Platform, Router, ScalingConfig, ClusterConfig and friends from the
package, not from submodules.  This suite pins that contract: each
package declares ``__all__``, every name in it resolves, and the
platform seam's core types are reachable from the documented homes.
"""

import importlib

import pytest

PUBLIC_PACKAGES = ("repro.serverless", "repro.core", "repro.faults")


@pytest.mark.parametrize("package", PUBLIC_PACKAGES)
def test_declares_all(package):
    module = importlib.import_module(package)
    assert isinstance(getattr(module, "__all__", None), list), (
        "%s must declare __all__" % package)
    assert module.__all__, "%s.__all__ must not be empty" % package


@pytest.mark.parametrize("package", PUBLIC_PACKAGES)
def test_every_exported_name_resolves(package):
    module = importlib.import_module(package)
    missing = [name for name in module.__all__
               if not hasattr(module, name)]
    assert not missing, (
        "%s.__all__ advertises unresolvable names: %s" % (package, missing))


@pytest.mark.parametrize("package", PUBLIC_PACKAGES)
def test_no_duplicate_exports(package):
    module = importlib.import_module(package)
    assert len(module.__all__) == len(set(module.__all__))


def test_platform_seam_is_reachable_from_serverless():
    from repro.serverless import (
        ClusterConfig,
        ClusterPlatform,
        Platform,
        Router,
        ScalingConfig,
        ServeResult,
        SingleHostPlatform,
        make_platform,
    )

    assert issubclass(SingleHostPlatform, Platform)
    assert issubclass(ClusterPlatform, Platform)
    assert issubclass(ClusterPlatform, Router)
    assert isinstance(make_platform("riscv"), SingleHostPlatform)
    assert ScalingConfig is not None and ServeResult is not None


def test_cluster_config_rides_on_core():
    # The measurement package re-exports ClusterConfig (it is a spec
    # field, like ScalingConfig), and both homes are the same class.
    from repro.core import ClusterConfig as core_config
    from repro.serverless import ClusterConfig as serverless_config

    assert core_config is serverless_config


def test_node_down_error_single_home():
    from repro.db.cluster import NodeDownError as db_error
    from repro.faults import NodeDownError as faults_error

    assert db_error is faults_error
    assert issubclass(faults_error, RuntimeError)
