"""ML-inference workload family: catalog registration, functional
determinism, and the RVV-vs-fixed-width measurement divergence."""

import pytest

from repro.core.parallel import execute_task
from repro.core.scale import TEST
from repro.core.spec import MeasurementSpec
from repro.sim.isa.vector import VectorConfig
from repro.workloads.catalog import all_functions, get_function
from repro.workloads.mlinfer import (
    ML_FUNCTION_NAMES,
    EmbeddingLookupFunction,
    MatmulFunction,
    make_ml_functions,
)


class _Ctx:
    """Minimal invocation-context stub for direct handler calls."""

    def __init__(self):
        self.metrics = {}

    def meter(self, key, amount):
        self.metrics[key] = self.metrics.get(key, 0) + amount


class TestRegistration:
    def test_all_four_resolve_by_name(self):
        assert len(ML_FUNCTION_NAMES) == 4
        for name in ML_FUNCTION_NAMES:
            function = get_function(name)
            assert function.suite == "ml"
            assert function.runtime_name == "python"

    def test_not_in_default_batches(self):
        """The family is addressable by name only: the thesis's default
        measurement batches must not grow new members."""
        default_names = {fn.name for fn in all_functions(include_extras=True)}
        assert not default_names.intersection(ML_FUNCTION_NAMES)

    def test_images_build_for_all_arches(self):
        for function in make_ml_functions():
            for arch in ("riscv", "x86", "arm"):
                assert function.image(arch).compressed_size_mb > 0

    def test_matmul_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            MatmulFunction("bf16")


class TestHandlers:
    @pytest.mark.parametrize("name", ML_FUNCTION_NAMES)
    def test_handler_deterministic(self, name):
        function = get_function(name)
        payload = function.default_payload(sequence=3)
        first, second = _Ctx(), _Ctx()
        assert function.handler(payload, first) == function.handler(
            payload, second)
        assert first.metrics == second.metrics
        assert first.metrics  # every handler meters its work

    def test_int8_output_stays_in_range(self):
        function = MatmulFunction("int8")
        ctx = _Ctx()
        result = function.handler(function.default_payload(), ctx)
        dim = result["dim"]
        assert -128 * dim * dim <= result["checksum"] <= 127 * dim * dim

    def test_embedding_bag_sums_table_rows(self):
        function = EmbeddingLookupFunction()
        ctx = _Ctx()
        result = function.handler({"indices": [0]}, ctx)
        assert result["checksum"] == sum(function._table[0])


class TestMeasurements:
    def measure(self, name, isa, vector=None, seed=0):
        return execute_task(MeasurementSpec(
            function=name, isa=isa, scale=TEST, seed=seed, vector=vector))

    @pytest.mark.parametrize("name", ML_FUNCTION_NAMES)
    def test_deterministic_per_seed(self, name):
        config = VectorConfig.parse("rvv256")
        first = self.measure(name, "riscv", vector=config)
        again = self.measure(name, "riscv", vector=config)
        assert first.cold.cycles == again.cold.cycles
        assert first.warm.instructions == again.warm.instructions

    def test_rvv_and_x86_streams_differ(self):
        """Same config, two ISA lowerings: stripmined RVV vs fixed-width
        SSE must produce different instruction streams."""
        config = VectorConfig.parse("rvv256")
        for name in ML_FUNCTION_NAMES:
            riscv = self.measure(name, "riscv", vector=config)
            x86 = self.measure(name, "x86", vector=config)
            assert riscv.cold.instructions != x86.cold.instructions

    def test_vector_beats_scalar_on_instructions(self):
        config = VectorConfig.parse("rvv256")
        scalar = self.measure("matmul-fp32", "riscv")
        vectored = self.measure("matmul-fp32", "riscv", vector=config)
        assert vectored.cold.instructions < scalar.cold.instructions
        assert vectored.warm.instructions < scalar.warm.instructions
