"""Map-reduce word-count tests: real semantics and chain composition."""

import pytest

from repro.core.harness import ExperimentHarness, clear_boot_checkpoint_cache
from repro.core.scale import SimScale
from repro.serverless.engine import install_docker
from repro.serverless.faas import FaasPlatform
from repro.workloads.mapreduce import (
    deploy_wordcount,
    synth_corpus,
    word_count,
)


@pytest.fixture(autouse=True)
def _fresh_checkpoints():
    clear_boot_checkpoint_cache()
    yield
    clear_boot_checkpoint_cache()


def make_platform(shards=3):
    platform = FaasPlatform(install_docker("riscv"))
    driver = deploy_wordcount(platform, "riscv", shards=shards)
    return platform, driver


class TestWordCountSemantics:
    def test_word_count_counts(self):
        counts = word_count("the cat and the hat")
        assert counts == {"the": 2, "cat": 1, "and": 1, "hat": 1}

    def test_distributed_result_matches_sequential(self):
        platform, driver = make_platform(shards=4)
        corpus = synth_corpus(words=500, seed=99)
        record = platform.invoke(driver.name, {"corpus": corpus})
        sequential = word_count(corpus)
        assert record.result["total_words"] == sum(sequential.values())
        assert record.result["distinct"] == len(sequential)
        top_word, top_count = record.result["top"][0]
        assert sequential[top_word] == top_count
        assert top_count == max(sequential.values())

    def test_shard_count_controls_fanout(self):
        platform, driver = make_platform(shards=5)
        record = platform.invoke(driver.name, driver.default_payload(0))
        mappers = [child for child in record.children
                   if child.function == "wordcount-mapper-go"]
        reducers = [child for child in record.children
                    if child.function == "wordcount-reducer-go"]
        assert len(mappers) == 5
        assert len(reducers) == 1

    def test_single_shard_degenerate_case(self):
        platform, driver = make_platform(shards=1)
        record = platform.invoke(driver.name, {"corpus": "alpha beta alpha"})
        assert record.result["total_words"] == 3
        assert record.result["distinct"] == 2

    def test_empty_corpus(self):
        platform, driver = make_platform()
        record = platform.invoke(driver.name, {"corpus": ""})
        assert record.result["total_words"] == 0


class TestMapReduceMeasurement:
    def test_cold_fanout_amplifies_cold_start(self):
        harness = ExperimentHarness(isa="riscv",
                                    scale=SimScale(time=2048, space=32))
        measurement = harness.measure_pipeline(deploy_wordcount)
        assert measurement.cold.cycles > 3 * measurement.warm.cycles
        cold_children = [child for child in measurement.records[0].children
                         if child.cold]
        # Mapper and reducer each cold exactly once on the first request.
        assert {child.function for child in cold_children} == {
            "wordcount-mapper-go", "wordcount-reducer-go",
        }

    def test_warm_chain_all_warm(self):
        platform, driver = make_platform()
        platform.invoke(driver.name, driver.default_payload(0))
        record = platform.invoke(driver.name, driver.default_payload(1))
        assert record.children
        assert not any(child.cold for child in record.children)
