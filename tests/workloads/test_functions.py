"""Functional tests for every vSwarm handler and the work models."""

import pytest

from repro.core.scale import SimScale
from repro.db import CassandraStore
from repro.serverless.engine import install_docker
from repro.serverless.faas import FaasPlatform
from repro.workloads.catalog import (
    HOTEL_FUNCTIONS,
    ONLINESHOP_FUNCTIONS,
    STANDALONE_FUNCTIONS,
    all_functions,
    get_function,
)
from repro.workloads.hotel import HotelSuite

SCALE = SimScale(time=2048, space=32)


def invoke_once(function, services=None, payload=None, sequence=0):
    engine = install_docker("riscv")
    engine.registry.push(function.image("riscv"))
    platform = FaasPlatform(engine)
    platform.deploy(function.name, function.name, function.runtime_name,
                    function.handler, services=services or {})
    return platform.invoke(
        function.name,
        payload if payload is not None else function.default_payload(sequence),
    )


class TestCatalog:
    def test_counts(self):
        assert len(STANDALONE_FUNCTIONS) == 9
        assert len(ONLINESHOP_FUNCTIONS) == 6
        assert len(HOTEL_FUNCTIONS) == 6
        assert len(all_functions()) == 21

    def test_names_unique(self):
        names = [fn.name for fn in all_functions()]
        assert len(names) == len(set(names))

    def test_get_function(self):
        assert get_function("aes-go").runtime_name == "go"
        with pytest.raises(KeyError):
            get_function("nope")

    def test_every_function_has_images_for_both_arches(self):
        for function in all_functions():
            assert function.image("x86").compressed_size_mb > 0
            assert function.image("riscv").compressed_size_mb > 0


class TestStandaloneHandlers:
    def test_fibonacci_computes(self):
        record = invoke_once(get_function("fibonacci-go"), payload={"n": 10})
        # fib(10) = 55 (modular arithmetic does not bite at this size)
        assert record.result["fib_mod"] == 55

    def test_fibonacci_rejects_negative(self):
        function = get_function("fibonacci-go")
        engine = install_docker("riscv")
        engine.registry.push(function.image("riscv"))
        platform = FaasPlatform(engine)
        platform.deploy(function.name, function.name, "go", function.handler)
        with pytest.raises(ValueError):
            platform.invoke(function.name, {"n": -1})

    def test_aes_ciphertext_is_real(self):
        from repro.workloads.crypto import aes128_encrypt

        record = invoke_once(get_function("aes-python"),
                             payload={"plaintext": "attack at dawn",
                                      "key": "0123456789abcdef"})
        expected = aes128_encrypt(b"attack at dawn", b"0123456789abcdef")
        assert record.result["ciphertext_prefix"] == expected[:32].hex()

    def test_auth_digest_is_real_hmac(self):
        from repro.workloads.crypto import hmac_sha256

        record = invoke_once(get_function("auth-nodejs"),
                             payload={"token": "tok-123", "user": "bob"})
        digest = hmac_sha256(b"vswarm-auth-service-secret-key", b"bob:tok-123")
        assert record.result["digest_prefix"] == digest[:16].hex()


class TestOnlineShopHandlers:
    def test_product_catalog_search(self):
        record = invoke_once(get_function("productcatalogservice-go"),
                             payload={"query": "clothing"})
        assert record.result["products"]
        assert record.metrics["scanned"] == 120

    def test_shipping_quote(self):
        record = invoke_once(get_function("shippingservice-go"))
        assert record.result["cost_usd"] > 8.99

    def test_recommendations_exclude_cart(self):
        record = invoke_once(get_function("recommendationservice-python"),
                             payload={"product_ids": ["OLJ00001"]})
        assert "OLJ00001" not in record.result["recommendations"]
        assert len(record.result["recommendations"]) == 5

    def test_email_renders(self):
        record = invoke_once(get_function("emailservice-python"))
        assert record.result["sent"]
        assert record.result["bytes"] > 100

    def test_currency_conversion(self):
        record = invoke_once(get_function("currencyservice-nodejs"),
                             payload={"from": "USD", "to": "EUR",
                                      "units": 100, "nanos": 0})
        # 100 USD -> EUR at the boutique's fixed rates.
        assert 80 <= record.result["units"] <= 95

    def test_currency_rejects_unknown(self):
        function = get_function("currencyservice-nodejs")
        engine = install_docker("riscv")
        engine.registry.push(function.image("riscv"))
        platform = FaasPlatform(engine)
        platform.deploy(function.name, function.name, "nodejs", function.handler)
        with pytest.raises(ValueError):
            platform.invoke(function.name, {"from": "XXX", "to": "EUR"})

    def test_payment_luhn_validation(self):
        record = invoke_once(get_function("paymentservice-nodejs"),
                             payload={"card_number": "4539578763621486",
                                      "amount_usd": 10})
        assert record.result["charged"]
        bad = invoke_once(get_function("paymentservice-nodejs"),
                          payload={"card_number": "4539578763621487",
                                   "amount_usd": 10})
        assert not bad.result["charged"]


class TestHotelHandlers:
    @pytest.fixture()
    def suite(self):
        return HotelSuite(CassandraStore())

    def _platform(self, suite):
        engine = install_docker("riscv")
        platform = FaasPlatform(engine)
        for function in suite.functions:
            engine.registry.push(function.image("riscv"))
            platform.deploy(function.name, function.name, function.runtime_name,
                            function.handler, services=suite.services_for(function))
        return platform

    def test_geo_returns_nearby_hotels(self, suite):
        platform = self._platform(suite)
        record = platform.invoke("hotel-geo-go",
                                 {"lat": 37.9, "lon": 23.7, "radius_km": 100})
        assert record.result["hotel_ids"]

    def test_user_login_correct_and_wrong_password(self, suite):
        platform = self._platform(suite)
        ok = platform.invoke("hotel-user-go",
                             {"username": "user0003", "password": "pass0003"})
        assert ok.result["authorized"]
        bad = platform.invoke("hotel-user-go",
                              {"username": "user0003", "password": "wrong"})
        assert not bad.result["authorized"]

    def test_rate_returns_sorted_plans(self, suite):
        platform = self._platform(suite)
        record = platform.invoke("hotel-rate-go",
                                 {"hotel_ids": ["h0001", "h0002"],
                                  "in_date": "2015-04-01"})
        rates = [plan["room_type"]["bookable_rate"]
                 for plan in record.result["plans"]]
        assert rates == sorted(rates)
        assert len(rates) == 6

    def test_reservation_books_and_persists(self, suite):
        platform = self._platform(suite)
        record = platform.invoke("hotel-reservation-go", {
            "hotel_id": "h0005", "customer": "user0001",
            "in_date": "2015-04-02", "out_date": "2015-04-04",
        })
        assert record.result["booked"]
        stored = suite.db.query("reservations", hotel_id="h0005")
        assert len(stored) == 1

    def test_profile_cache_miss_then_hit(self, suite):
        platform = self._platform(suite)
        first = platform.invoke("hotel-profile-go", {"hotel_ids": ["h0000"]})
        assert first.metrics.get("cache_misses") == 1
        second = platform.invoke("hotel-profile-go", {"hotel_ids": ["h0000"]})
        assert second.metrics.get("cache_hits") == 1
        assert second.receipts["db"].ops == 0  # served entirely from cache

    def test_profile_payloads_are_large(self, suite):
        platform = self._platform(suite)
        record = platform.invoke("hotel-profile-go",
                                 {"hotel_ids": ["h0001", "h0002"]})
        assert record.response_bytes > 20_000

    def test_recommendation_ranking(self, suite):
        platform = self._platform(suite)
        record = platform.invoke("hotel-recommendation-go", {"require": "rate"})
        assert len(record.result["hotel_ids"]) == 5
        with pytest.raises(ValueError):
            platform.invoke("hotel-recommendation-go", {"require": "stars"})


class TestWorkModels:
    def test_cold_program_contains_init_warm_does_not(self):
        function = get_function("fibonacci-python")
        cold_record = invoke_once(function)
        assert cold_record.cold
        program_cold = function.invocation_program(cold_record, {}, SCALE)
        assert "init" in program_cold.routines

        engine = install_docker("riscv")
        engine.registry.push(function.image("riscv"))
        platform = FaasPlatform(engine)
        platform.deploy(function.name, function.name, "python", function.handler)
        platform.invoke(function.name, function.default_payload())
        warm_record = platform.invoke(function.name, function.default_payload(1))
        program_warm = function.invocation_program(warm_record, {}, SCALE)
        assert "init" not in program_warm.routines

    def test_warm_programs_share_request_addresses(self):
        # The PC/address stability property warm locality relies on.
        function = get_function("aes-go")
        engine = install_docker("riscv")
        engine.registry.push(function.image("riscv"))
        platform = FaasPlatform(engine)
        platform.deploy(function.name, function.name, "go", function.handler)
        platform.invoke(function.name, function.default_payload())
        warm_a = platform.invoke(function.name, function.default_payload(1))
        warm_b = platform.invoke(function.name, function.default_payload(2))
        from repro.sim.isa import get_isa

        isa = get_isa("riscv")
        asm_a = isa.assemble(function.invocation_program(warm_a, {}, SCALE))
        asm_b = isa.assemble(function.invocation_program(warm_b, {}, SCALE))
        pcs_a = [si.pc for si, _addr, _t in asm_a.trace()]
        pcs_b = [si.pc for si, _addr, _t in asm_b.trace()]
        assert pcs_a == pcs_b

    def test_different_functions_different_addresses(self):
        # ASLR-style placement: distinct functions must not share lines.
        fn_a = get_function("aes-go")
        fn_b = get_function("auth-go")
        record_a = invoke_once(fn_a)
        record_b = invoke_once(fn_b)
        prog_a = fn_a.invocation_program(record_a, {}, SCALE)
        prog_b = fn_b.invocation_program(record_b, {}, SCALE)
        assert prog_a.space.aslr_offset != prog_b.space.aslr_offset

    def test_dynamic_length_scales_down_with_time(self):
        function = get_function("fibonacci-go")
        record = invoke_once(function)
        from repro.sim.isa import get_isa

        isa = get_isa("riscv")
        small = isa.assemble(function.invocation_program(
            record, {}, SimScale(time=4096, space=32))).dynamic_length()
        large = isa.assemble(function.invocation_program(
            record, {}, SimScale(time=1024, space=32))).dynamic_length()
        assert 2.0 < large / small < 8.0  # roughly 4x
