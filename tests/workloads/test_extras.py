"""Extension workloads: compression, image-rotate, the chained pipeline."""

import zlib

import pytest

from repro.core.harness import ExperimentHarness, clear_boot_checkpoint_cache
from repro.core.scale import SimScale
from repro.serverless.engine import install_docker
from repro.serverless.faas import FaasPlatform, InvocationContext, InvocationRecord
from repro.workloads.catalog import EXTRA_FUNCTIONS, all_functions, get_function
from repro.workloads.extras import deploy_video_pipeline

SCALE = SimScale(time=2048, space=32)


@pytest.fixture(autouse=True)
def _fresh_checkpoints():
    clear_boot_checkpoint_cache()
    yield
    clear_boot_checkpoint_cache()


def run_handler(function, payload=None):
    record = InvocationRecord(function.name, function.runtime_name, True, 32, 1)
    context = InvocationContext(record, {}, {})
    record.result = function.handler(
        payload if payload is not None else function.default_payload(), context)
    return record


class TestCatalogIntegration:
    def test_extras_not_in_default_catalog(self):
        assert len(all_functions()) == 21
        assert len(all_functions(include_extras=True)) == 25

    def test_extras_resolvable_by_name(self):
        assert get_function("compression-go").suite == "extras"
        assert get_function("video-streaming-go").runtime_name == "go"

    def test_extras_have_images(self):
        for function in EXTRA_FUNCTIONS:
            assert function.image("riscv").compressed_size_mb > 0
            assert function.image("x86").compressed_size_mb > 0


class TestCompression:
    def test_real_zlib_results(self):
        function = get_function("compression-go")
        record = run_handler(function)
        data = function.default_payload()["data"].encode()
        assert record.result["compressed"] == len(zlib.compress(data, 6))
        assert record.result["crc32"] == zlib.crc32(data)
        assert record.result["ratio"] > 2  # repetitive words compress well

    def test_incompressible_payload(self):
        import os
        function = get_function("compression-go")
        blob = os.urandom(512).hex()  # hex of random: ~2x entropy density
        record = run_handler(function, {"data": blob})
        assert record.result["ratio"] < 2.1


class TestImageRotate:
    def test_rotation_geometry(self):
        function = get_function("image-rotate-python")
        record = run_handler(function, {"width": 8, "height": 4, "seed": 1})
        # 90 degree rotation swaps dimensions.
        assert record.result["width"] == 4
        assert record.result["height"] == 8

    def test_rotation_content(self):
        function = get_function("image-rotate-python")
        frame = [[1, 2], [3, 4]]  # rotate cw: [[3,1],[4,2]]
        record = run_handler(function, {"frame": frame})
        # checksum = sum(first row) + sum(last row) = (3+1) + (4+2)
        assert record.result["checksum"] == 10


class TestRecognition:
    def test_classifies_deterministically(self):
        function = get_function("recognition-python")
        first = run_handler(function)
        second = run_handler(function)
        assert first.result == second.result
        assert 0 <= first.result["class"] < 10

    def test_requires_frame(self):
        function = get_function("recognition-python")
        with pytest.raises(ValueError):
            run_handler(function, {"frame": []})


class TestChainedPipeline:
    def test_first_request_cold_starts_every_stage(self):
        platform = FaasPlatform(install_docker("riscv"))
        driver = deploy_video_pipeline(platform, "riscv")
        record = platform.invoke(driver.name, driver.default_payload(0))
        cold_children = [child for child in record.children if child.cold]
        assert {child.function for child in cold_children} == {
            "image-rotate-python", "recognition-python",
        }

    def test_warm_chain_stays_warm(self):
        platform = FaasPlatform(install_docker("riscv"))
        driver = deploy_video_pipeline(platform, "riscv")
        platform.invoke(driver.name, driver.default_payload(0))
        record = platform.invoke(driver.name, driver.default_payload(1))
        assert record.children
        assert not any(child.cold for child in record.children)

    def test_frames_parameter_scales_children(self):
        platform = FaasPlatform(install_docker("riscv"))
        driver = deploy_video_pipeline(platform, "riscv")
        record = platform.invoke(driver.name, {"frames": 3})
        # 2 children per frame: decode + recognize.
        assert len(record.children) == 6

    def test_measure_pipeline_amplifies_cold_start(self):
        harness = ExperimentHarness(isa="riscv", scale=SCALE)
        pipeline = harness.measure_pipeline(deploy_video_pipeline)
        assert pipeline.cold.cycles > 5 * pipeline.warm.cycles
        # The cold driver request embeds three cold inits (driver + 2 stages):
        # it must dwarf a lone cold function of the same runtime.
        clear_boot_checkpoint_cache()
        harness2 = ExperimentHarness(isa="riscv", scale=SCALE)
        single = harness2.measure_function(get_function("compression-go"))
        assert pipeline.cold.cycles > single.cold.cycles
