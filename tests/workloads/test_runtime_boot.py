"""Runtime models, boot programs, and the work builder."""

import pytest

from repro.core.scale import SimScale
from repro.db import CassandraStore, MongoStore
from repro.sim.isa import get_isa, ir
from repro.workloads.boot import build_boot_program, build_db_boot_program
from repro.workloads.builder import WorkBuilder
from repro.workloads.runtime import RUNTIMES, get_runtime

SCALE = SimScale(time=1024, space=16)


class TestRuntimeModels:
    def test_registry_complete(self):
        assert set(RUNTIMES) == {"go", "python", "nodejs"}

    def test_go_is_compiled(self):
        assert not get_runtime("go").interpreted

    def test_python_dispatch_cost_linear(self):
        python = get_runtime("python")
        assert python.dispatch_cost(100, jit_warm=False) == \
            2 * python.dispatch_cost(50, jit_warm=False)

    def test_nodejs_jit_collapses_dispatch(self):
        nodejs = get_runtime("nodejs")
        cold = nodejs.dispatch_cost(100, jit_warm=False)
        warm = nodejs.dispatch_cost(100, jit_warm=True)
        assert warm < cold / 5

    def test_python_cold_path_is_heaviest(self):
        # The import-everything story: python has the largest init budget.
        budgets = {name: model.init_instructions
                   for name, model in RUNTIMES.items()}
        assert max(budgets, key=budgets.get) == "python"

    def test_unknown_runtime(self):
        with pytest.raises(ValueError):
            get_runtime("rust")


class TestBootPrograms:
    def test_riscv_boot_includes_opensbi_stage(self):
        riscv = build_boot_program("riscv", SCALE)
        x86 = build_boot_program("x86", SCALE)
        riscv_length = get_isa("riscv").assemble(riscv).dynamic_length()
        x86_length = get_isa("x86").assemble(x86).dynamic_length()
        # Same stack except the extra SBI stage (stack-kind expansion on
        # x86 cancels only partially at this size; compare on riscv).
        riscv_no_sbi = build_boot_program("x86", SCALE)
        assert riscv_length > get_isa("riscv").assemble(
            riscv_no_sbi).dynamic_length()
        assert x86_length > 0

    def test_container_engine_stage_optional(self):
        with_engine = build_boot_program("riscv", SCALE)
        without = build_boot_program("riscv", SCALE,
                                     with_container_engine=False)
        isa = get_isa("riscv")
        assert isa.assemble(with_engine).dynamic_length() > \
            isa.assemble(without).dynamic_length()

    def test_db_boot_scales_with_store_profile(self):
        isa = get_isa("riscv")
        cassandra = build_db_boot_program(CassandraStore(), "riscv", SCALE)
        mongo = build_db_boot_program(MongoStore(), "riscv", SCALE)
        assert isa.assemble(cassandra).dynamic_length() > \
            2 * isa.assemble(mongo).dynamic_length()

    def test_fidelity_trades_instructions(self):
        isa = get_isa("riscv")
        fine = build_db_boot_program(MongoStore(), "riscv", SCALE, fidelity=8)
        coarse = build_db_boot_program(MongoStore(), "riscv", SCALE,
                                       fidelity=128)
        assert isa.assemble(fine).dynamic_length() > \
            isa.assemble(coarse).dynamic_length()


class TestWorkBuilder:
    def make_builder(self, cold=True, runtime="go", **kwargs):
        return WorkBuilder("unit-fn", get_runtime(runtime), SCALE,
                           cold=cold, **kwargs)

    def test_build_once_only(self):
        builder = self.make_builder()
        builder.compute(ialu=10)
        builder.build()
        with pytest.raises(RuntimeError):
            builder.build()

    def test_cold_program_has_init_routine(self):
        cold_builder = self.make_builder(cold=True)
        cold_builder.compute(ialu=10)
        assert "init" in cold_builder.build().routines
        warm_builder = self.make_builder(cold=False)
        warm_builder.compute(ialu=10)
        assert "init" not in warm_builder.build().routines

    def test_compute_requires_work(self):
        builder = self.make_builder()
        with pytest.raises(ValueError):
            builder.compute()

    def test_touch_requires_traffic(self):
        builder = self.make_builder()
        region = builder.region("r", 4096)
        with pytest.raises(ValueError):
            builder.touch(region)

    def test_touch_unallocated_named_region(self):
        builder = self.make_builder()
        with pytest.raises(ValueError):
            builder.touch("ghost", loads=10)
        builder.touch("fresh", loads=10, region_bytes=8192)  # auto-allocates

    def test_region_caching(self):
        builder = self.make_builder()
        assert builder.region("r", 4096) is builder.region("r", 9999)

    def test_loop_collects_structure(self):
        builder = self.make_builder()
        with builder.loop(trips=5):
            builder.compute(ialu=10, scaled=False)
        program = builder.build()
        isa = get_isa("riscv")
        assembled = isa.assemble(program)
        from repro.sim.isa.base import InstrClass

        backedges = sum(
            1 for si, _a, taken in assembled.trace()
            if si.icls == InstrClass.BRANCH and taken
        )
        assert backedges >= 4  # 5 trips -> 4 taken backedges

    def test_interpreted_runtime_adds_dispatch(self):
        # On the same runtime, interpreted work costs ~6x native work
        # (5 dispatch ops + 1 app op per unit for CPython).
        isa = get_isa("riscv")

        def length(native, units):
            builder = self.make_builder(runtime="python", cold=False)
            builder.compute(ialu=units, native=native)
            return isa.assemble(builder.build()).dynamic_length()

        baseline = length(native=True, units=1)
        interpreted_delta = length(native=False, units=200_000) - baseline
        native_delta = length(native=True, units=200_000) - baseline
        assert interpreted_delta > 4 * native_delta

    def test_native_bypasses_dispatch(self):
        a = self.make_builder(runtime="python", cold=False)
        a.compute(ialu=10_000, native=True)
        b = self.make_builder(runtime="python", cold=False)
        b.compute(ialu=10_000, native=False)
        isa = get_isa("riscv")
        assert isa.assemble(a.build()).dynamic_length() < \
            isa.assemble(b.build()).dynamic_length()

    def test_cold_connect_only_affects_cold(self):
        cold_builder = self.make_builder(cold=True)
        cold_builder.cold_connect("database")
        cold_builder.compute(ialu=10)
        warm_builder = self.make_builder(cold=False)
        warm_builder.cold_connect("database")  # silently ignored
        warm_builder.compute(ialu=10)
        isa = get_isa("riscv")
        assert isa.assemble(cold_builder.build()).dynamic_length() > \
            isa.assemble(warm_builder.build()).dynamic_length() * 3

    def test_service_work_noop_on_idle_receipt(self):
        from repro.db.engine import WorkReceipt

        builder = self.make_builder(cold=False)
        builder.service_work("db", WorkReceipt(), 1 << 20)
        builder.compute(ialu=1)
        program = builder.build()
        assert "svc.db.data" not in [r.name for r in program.space.regions]
