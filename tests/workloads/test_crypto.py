"""Crypto substrate tests: our AES/SHA against the standard library."""

import hashlib
import hmac as std_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import crypto


class TestSha256:
    @pytest.mark.parametrize("message", [
        b"", b"abc", b"a" * 55, b"b" * 56, b"c" * 63, b"d" * 64, b"e" * 1000,
    ])
    def test_matches_hashlib(self, message):
        assert crypto.sha256(message) == hashlib.sha256(message).digest()

    def test_chunk_count(self):
        assert crypto.sha256_chunk_count(0) == 1
        assert crypto.sha256_chunk_count(55) == 1
        assert crypto.sha256_chunk_count(56) == 2
        assert crypto.sha256_chunk_count(119) == 2
        assert crypto.sha256_chunk_count(120) == 3


class TestHmac:
    def test_matches_stdlib(self):
        key, message = b"secret-key", b"the message body"
        assert crypto.hmac_sha256(key, message) == \
            std_hmac.new(key, message, hashlib.sha256).digest()

    def test_long_key_hashed_first(self):
        key = b"k" * 100
        assert crypto.hmac_sha256(key, b"m") == \
            std_hmac.new(key, b"m", hashlib.sha256).digest()


class TestAes:
    def test_fips197_vector(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        ciphertext = crypto.aes128_encrypt(plaintext, key)
        assert ciphertext.hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_zero_padding_to_block(self):
        ciphertext = crypto.aes128_encrypt(b"short", b"0" * 16)
        assert len(ciphertext) == 16

    def test_multi_block(self):
        ciphertext = crypto.aes128_encrypt(b"x" * 40, b"0" * 16)
        assert len(ciphertext) == 48

    def test_ecb_identical_blocks_identical_ciphertext(self):
        ciphertext = crypto.aes128_encrypt(b"A" * 32, b"0" * 16)
        assert ciphertext[:16] == ciphertext[16:32]

    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            crypto.aes128_encrypt(b"data", b"short")

    def test_block_count(self):
        assert crypto.aes_block_count(0) == 1
        assert crypto.aes_block_count(16) == 1
        assert crypto.aes_block_count(17) == 2


@settings(max_examples=30, deadline=None)
@given(message=st.binary(max_size=300))
def test_property_sha256_always_matches_hashlib(message):
    assert crypto.sha256(message) == hashlib.sha256(message).digest()


@settings(max_examples=20, deadline=None)
@given(key=st.binary(min_size=1, max_size=100), message=st.binary(max_size=200))
def test_property_hmac_always_matches_stdlib(key, message):
    assert crypto.hmac_sha256(key, message) == \
        std_hmac.new(key, message, hashlib.sha256).digest()
