"""Documentation health: links resolve, docstring policy holds.

The link test runs the same pure-python checker CI uses
(``tools/check_links.py``); the docstring test mirrors the ruff
``D100``/``D101``/``D104`` selection CI enforces, so a violation fails
locally without ruff installed.
"""

import ast
import importlib.util
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")


def _load_checker():
    path = os.path.join(REPO_ROOT, "tools", "check_links.py")
    spec = importlib.util.spec_from_file_location("check_links", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestMarkdownLinks:
    def test_repo_markdown_links_resolve(self):
        checker = _load_checker()
        files = checker.default_files(REPO_ROOT)
        assert os.path.join(REPO_ROOT, "README.md") in files
        assert os.path.join(REPO_ROOT, "DESIGN.md") in files
        assert any(os.sep + "docs" + os.sep in f for f in files)
        broken = {f: checker.check_file(f) for f in files}
        broken = {f: b for f, b in broken.items() if b}
        assert not broken, "broken markdown links: %r" % broken

    def test_checker_catches_breakage(self, tmp_path):
        checker = _load_checker()
        doc = tmp_path / "doc.md"
        doc.write_text(
            "# Title\n"
            "[good](doc.md) [bad](missing.md) [web](https://x.invalid/)\n"
            "[good-anchor](#title) [bad-anchor](#nope)\n"
            "```\n[fenced](also-missing.md)\n```\n",
            encoding="utf-8",
        )
        broken = checker.check_file(str(doc))
        assert [target for target, _ in broken] == ["missing.md", "#nope"]


def _python_modules():
    for dirpath, _, names in os.walk(SRC_ROOT):
        for name in sorted(names):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


class TestDocstringPolicy:
    """Local mirror of CI's ``ruff check --select D100,D101,D104``."""

    def test_every_module_and_public_class_documented(self):
        violations = []
        for path in _python_modules():
            rel = os.path.relpath(path, REPO_ROOT)
            with open(path, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=rel)
            if ast.get_docstring(tree) is None:  # D100 / D104
                violations.append("%s: missing module docstring" % rel)
            for node in ast.walk(tree):
                if (isinstance(node, ast.ClassDef)
                        and not node.name.startswith("_")
                        and ast.get_docstring(node) is None):  # D101
                    violations.append("%s:%d: class %s missing docstring"
                                      % (rel, node.lineno, node.name))
        assert not violations, "\n".join(violations)

    def test_scan_covers_the_tree(self):
        modules = list(_python_modules())
        assert len(modules) > 80  # the whole package, not a subset
        assert any(p.endswith("__init__.py") for p in modules)
