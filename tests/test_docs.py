"""Documentation health: links resolve, docstring policy holds.

The link test runs the same pure-python checker CI uses
(``tools/check_links.py``), cross-file anchors included; the docstring
tests mirror the ruff selections CI enforces — ``D100``/``D101``/
``D104`` tree-wide plus ``D102``/``D103`` over ``repro.experiments`` —
so a violation fails locally without ruff installed.
"""

import ast
import importlib.util
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")


def _load_checker():
    path = os.path.join(REPO_ROOT, "tools", "check_links.py")
    spec = importlib.util.spec_from_file_location("check_links", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestMarkdownLinks:
    def test_repo_markdown_links_resolve(self):
        checker = _load_checker()
        files = checker.default_files(REPO_ROOT)
        assert os.path.join(REPO_ROOT, "README.md") in files
        assert os.path.join(REPO_ROOT, "DESIGN.md") in files
        assert any(os.sep + "docs" + os.sep in f for f in files)
        broken = {f: checker.check_file(f) for f in files}
        broken = {f: b for f, b in broken.items() if b}
        assert not broken, "broken markdown links: %r" % broken

    def test_checker_catches_breakage(self, tmp_path):
        checker = _load_checker()
        doc = tmp_path / "doc.md"
        doc.write_text(
            "# Title\n"
            "[good](doc.md) [bad](missing.md) [web](https://x.invalid/)\n"
            "[good-anchor](#title) [bad-anchor](#nope)\n"
            "```\n[fenced](also-missing.md)\n```\n",
            encoding="utf-8",
        )
        broken = checker.check_file(str(doc))
        assert [target for target, _ in broken] == ["missing.md", "#nope"]

    def test_checker_validates_cross_file_anchors(self, tmp_path):
        checker = _load_checker()
        other = tmp_path / "other.md"
        other.write_text("# Real Section\n## Dup\ntext\n## Dup\n",
                         encoding="utf-8")
        doc = tmp_path / "doc.md"
        doc.write_text(
            "# Doc\n"
            "[ok](other.md#real-section) [dead](other.md#not-there)\n"
            "[dup1](other.md#dup) [dup2](other.md#dup-1)\n"
            "[dup3](other.md#dup-2)\n",
            encoding="utf-8",
        )
        broken = checker.check_file(str(doc))
        assert [target for target, _ in broken] == [
            "other.md#not-there", "other.md#dup-2"]
        reasons = [reason for _, reason in broken]
        assert all("other.md" in reason for reason in reasons)


def _python_modules():
    for dirpath, _, names in os.walk(SRC_ROOT):
        for name in sorted(names):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


class TestDocstringPolicy:
    """Local mirror of CI's ``ruff check --select D100,D101,D104``."""

    def test_every_module_and_public_class_documented(self):
        violations = []
        for path in _python_modules():
            rel = os.path.relpath(path, REPO_ROOT)
            with open(path, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=rel)
            if ast.get_docstring(tree) is None:  # D100 / D104
                violations.append("%s: missing module docstring" % rel)
            for node in ast.walk(tree):
                if (isinstance(node, ast.ClassDef)
                        and not node.name.startswith("_")
                        and ast.get_docstring(node) is None):  # D101
                    violations.append("%s:%d: class %s missing docstring"
                                      % (rel, node.lineno, node.name))
        assert not violations, "\n".join(violations)

    def test_scan_covers_the_tree(self):
        modules = list(_python_modules())
        assert len(modules) > 80  # the whole package, not a subset
        assert any(p.endswith("__init__.py") for p in modules)

    def test_experiments_package_functions_documented(self):
        """Mirror of CI's D102/D103 gate over ``repro.experiments``.

        The experiments package ships fully docstringed: every public
        function and public method (of a public class) needs one, not
        just modules and classes.
        """
        package = os.path.join(SRC_ROOT, "experiments")
        violations = []
        for path in sorted(os.listdir(package)):
            if not path.endswith(".py"):
                continue
            full = os.path.join(package, path)
            rel = os.path.relpath(full, REPO_ROOT)
            with open(full, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=rel)
            for node in tree.body:
                if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and not node.name.startswith("_")
                        and ast.get_docstring(node) is None):  # D103
                    violations.append("%s:%d: function %s missing docstring"
                                      % (rel, node.lineno, node.name))
                if isinstance(node, ast.ClassDef) and \
                        not node.name.startswith("_"):
                    for member in node.body:
                        if (isinstance(member, (ast.FunctionDef,
                                                ast.AsyncFunctionDef))
                                and not member.name.startswith("_")
                                and ast.get_docstring(member) is None):
                            violations.append(  # D102
                                "%s:%d: method %s.%s missing docstring"
                                % (rel, member.lineno, node.name,
                                   member.name))
        assert not violations, "\n".join(violations)
