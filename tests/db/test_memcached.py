"""Memcached slab cache tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.memcached import MemcachedCache


class TestBasics:
    def test_set_get(self):
        cache = MemcachedCache()
        cache.set("k", {"v": 1})
        assert cache.get("k") == {"v": 1}

    def test_miss_returns_none_and_counts(self):
        cache = MemcachedCache()
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_delete(self):
        cache = MemcachedCache()
        cache.set("k", 1)
        assert cache.delete("k") is True
        assert cache.get("k") is None
        assert cache.delete("k") is False

    def test_overwrite_updates_value_and_accounting(self):
        cache = MemcachedCache()
        cache.set("k", "small")
        used_small = cache.used_bytes
        cache.set("k", "x" * 1000)
        assert cache.get("k") == "x" * 1000
        assert cache.used_bytes > used_small
        assert len(cache) == 1

    def test_hit_rate(self):
        cache = MemcachedCache()
        cache.set("k", 1)
        cache.get("k")
        cache.get("gone")
        assert cache.hit_rate == 0.5

    def test_flush_all(self):
        cache = MemcachedCache()
        cache.set("a", 1)
        cache.set("b", 2)
        cache.flush_all()
        assert len(cache) == 0
        assert cache.used_bytes == 0


class TestTtl:
    def test_expiry_by_logical_clock(self):
        cache = MemcachedCache()
        cache.set("k", "v", ttl=5)
        assert cache.get("k") == "v"
        cache.tick(5)
        assert cache.get("k") is None

    def test_default_ttl_applies(self):
        cache = MemcachedCache(default_ttl=2)
        cache.set("k", "v")
        cache.tick(2)
        assert cache.get("k") is None


class TestSlabsAndEviction:
    def test_items_land_in_size_class(self):
        cache = MemcachedCache()
        cache.set("tiny", 1)
        cache.set("big", "x" * 5000)
        assert cache._key_slab["tiny"] == 64
        assert cache._key_slab["big"] == 8192

    def test_capacity_enforced_with_lru_eviction(self):
        cache = MemcachedCache(capacity_bytes=64 * 1024)
        for index in range(2000):
            cache.set("k%d" % index, index)
        assert cache.used_bytes <= cache.capacity_bytes
        assert cache.evictions > 0
        # Newest keys survive, oldest were evicted.
        assert cache.get("k1999") == 1999
        assert cache.get("k0") is None

    def test_lru_refresh_protects_hot_key(self):
        cache = MemcachedCache(capacity_bytes=64 * 1024)
        cache.set("hot", "value")
        for index in range(1500):
            cache.get("hot")
            cache.set("filler%d" % index, index)
        assert cache.get("hot") == "value"

    def test_oversized_item_rejected(self):
        cache = MemcachedCache(capacity_bytes=1 << 20)
        with pytest.raises(ValueError):
            cache.set("huge", "x" * (1 << 20))

    def test_too_small_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemcachedCache(capacity_bytes=1024)

    def test_receipt_metering(self):
        cache = MemcachedCache()
        cache.set("k", "x" * 100)
        cache.get("k")
        receipt = cache.take_receipt()
        assert receipt.bytes_written > 100
        assert receipt.bytes_read > 100


@settings(max_examples=25, deadline=None)
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["set", "get", "delete"]),
            st.text(alphabet="abc", min_size=1, max_size=3),
        ),
        max_size=200,
    )
)
def test_property_accounting_consistent(operations):
    cache = MemcachedCache(capacity_bytes=128 * 1024)
    shadow = {}
    for op, key in operations:
        if op == "set":
            cache.set(key, key * 3)
            shadow[key] = key * 3
        elif op == "get":
            value = cache.get(key)
            if value is not None:
                assert value == shadow.get(key)
        else:
            cache.delete(key)
            shadow.pop(key, None)
    assert cache.used_bytes >= 0
    assert len(cache) <= len(shadow)
    recomputed = sum(chunk for chunk in cache._key_slab.values())
    assert recomputed == cache.used_bytes


class TestGetMulti:
    def test_single_round_trip_for_many_keys(self):
        cache = MemcachedCache()
        for index in range(5):
            cache.set("k%d" % index, index)
        cache.take_receipt()
        found = cache.get_multi(["k0", "k3", "missing"])
        assert found == {"k0": 0, "k3": 3}
        receipt = cache.take_receipt()
        assert receipt.ops == 1            # one batched round trip
        assert receipt.rows_returned == 2
        assert receipt.structure_misses == 1

    def test_get_multi_refreshes_lru(self):
        cache = MemcachedCache(capacity_bytes=64 * 1024)
        cache.set("hot", "value")
        for index in range(1200):
            cache.get_multi(["hot"])
            cache.set("filler%d" % index, index)
        assert cache.get("hot") == "value"

    def test_get_multi_respects_ttl(self):
        cache = MemcachedCache()
        cache.set("k", "v", ttl=2)
        cache.tick(2)
        assert cache.get_multi(["k"]) == {}
