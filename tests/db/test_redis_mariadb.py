"""Redis and MariaDB specific behaviour beyond the shared store contract."""

import pytest

from repro.db.mariadb import MariaDbStore, TableSchema
from repro.db.redis import RedisStore


class TestRedisCommands:
    def test_string_commands(self):
        redis = RedisStore()
        redis.set_value("k", "hello")
        assert redis.get_value("k") == "hello"
        assert redis.get_value("missing") is None

    def test_hash_commands(self):
        redis = RedisStore()
        redis.hset("user:1", "name", "alice")
        redis.hset("user:1", "city", "athens")
        assert redis.hget("user:1", "name") == "alice"
        assert redis.hgetall("user:1") == {"name": "alice", "city": "athens"}
        assert redis.hget("user:1", "missing") is None

    def test_sorted_set_range_query(self):
        redis = RedisStore()
        for name, score in (("a", 1.0), ("b", 5.0), ("c", 9.0)):
            redis.zadd("scores", score, name)
        assert redis.zrange_by_score("scores", 2.0, 8.0) == ["b"]
        assert redis.zrange_by_score("scores", 0.0, 10.0) == ["a", "b", "c"]

    def test_zadd_updates_score(self):
        redis = RedisStore()
        redis.zadd("scores", 1.0, "a")
        redis.zadd("scores", 7.0, "a")
        assert redis.zrange_by_score("scores", 6.0, 8.0) == ["a"]
        assert redis.zrange_by_score("scores", 0.0, 2.0) == []

    def test_record_interface_keys_tracked_in_zset(self):
        redis = RedisStore()
        redis.put("rooms", "r1", {"rate": 100})
        redis.put("rooms", "r2", {"rate": 200})
        redis.delete("rooms", "r1")
        assert [row["rate"] for row in redis.scan("rooms")] == [200]

    def test_metering_counts_structure_misses(self):
        redis = RedisStore()
        redis.take_receipt()
        redis.get_value("nope")
        redis.hget("nope", "f")
        assert redis.take_receipt().structure_misses == 2


class TestMariaDbSchema:
    def test_schema_validates_columns(self):
        schema = TableSchema(["id", "city"], primary_key="id")
        schema.validate({"id": "a", "city": "athens"})
        with pytest.raises(ValueError):
            schema.validate({"id": "a", "planet": "mars"})

    def test_primary_key_must_be_a_column(self):
        with pytest.raises(ValueError):
            TableSchema(["city"], primary_key="id")

    def test_explicit_create_table(self):
        store = MariaDbStore()
        store.create_table("rooms", ["id", "city", "rate"])
        store.put("rooms", "r1", {"city": "athens", "rate": 100})
        assert store.get("rooms", "r1")["city"] == "athens"

    def test_duplicate_table_rejected(self):
        store = MariaDbStore()
        store.create_table("t", ["id"])
        with pytest.raises(ValueError):
            store.create_table("t", ["id"])

    def test_insert_with_unknown_column_rejected(self):
        store = MariaDbStore()
        store.create_table("t", ["id", "a"])
        with pytest.raises(ValueError):
            store.put("t", "k", {"b": 1})

    def test_select_projection(self):
        store = MariaDbStore()
        store.create_table("rooms", ["id", "city", "rate"])
        store.put("rooms", "r1", {"city": "athens", "rate": 100})
        rows = store.select("rooms", ["city"], rate=100)
        assert rows == [{"city": "athens"}]

    def test_select_unknown_column_rejected(self):
        store = MariaDbStore()
        store.create_table("rooms", ["id", "city"])
        with pytest.raises(ValueError):
            store.select("rooms", ["stars"])

    def test_implicit_schema_from_first_put(self):
        store = MariaDbStore()
        store.put("auto", "k", {"x": 1})
        assert "auto" in store.tables()
        # Implicit schema is fixed after creation.
        with pytest.raises(ValueError):
            store.put("auto", "k2", {"y": 2})

    def test_pk_index_sorted_scan(self):
        store = MariaDbStore()
        for key in ("c", "a", "b"):
            store.put("t", key, {"v": key})
        assert [row["v"] for row in store.scan("t")] == ["a", "b", "c"]
