"""Cassandra LSM engine internals: memtable, SSTables, bloom, compaction."""

import pytest

from repro.db.cassandra import BloomFilter, CassandraStore, SSTable


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(expected_keys=100)
        keys = ["key%d" % index for index in range(100)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(key) for key in keys)

    def test_mostly_rejects_absent_keys(self):
        bloom = BloomFilter(expected_keys=200)
        for index in range(200):
            bloom.add("present%d" % index)
        false_positives = sum(
            1 for index in range(1000) if bloom.might_contain("absent%d" % index)
        )
        assert false_positives < 100  # well under 10%


class TestSSTable:
    def test_sorted_and_searchable(self):
        sstable = SSTable([("b", {"v": 2}), ("a", {"v": 1}), ("c", {"v": 3})])
        assert sstable.keys == ["a", "b", "c"]
        found, value = sstable.get("b")
        assert found and value == {"v": 2}
        found, _value = sstable.get("zz")
        assert not found


class TestLsmBehaviour:
    def test_flush_at_threshold(self):
        store = CassandraStore(memtable_flush_threshold=8, compaction_threshold=100)
        for index in range(20):
            store.put("t", "k%02d" % index, {"v": index})
        assert store.flushes == 2
        assert store.sstable_count("t") == 2
        # All data still readable across memtable + sstables.
        for index in range(20):
            assert store.get("t", "k%02d" % index)["v"] == index

    def test_compaction_merges_runs(self):
        store = CassandraStore(memtable_flush_threshold=4, compaction_threshold=3)
        for index in range(24):
            store.put("t", "k%02d" % index, {"v": index})
        assert store.compactions >= 1
        assert store.sstable_count("t") < 3
        for index in range(24):
            assert store.get("t", "k%02d" % index)["v"] == index

    def test_newer_sstable_wins(self):
        store = CassandraStore(memtable_flush_threshold=2, compaction_threshold=100)
        store.put("t", "k", {"v": "old"})
        store.put("t", "pad1", {"v": 0})  # triggers flush
        store.put("t", "k", {"v": "new"})
        store.put("t", "pad2", {"v": 0})  # second flush
        assert store.get("t", "k")["v"] == "new"

    def test_tombstones_survive_flush(self):
        store = CassandraStore(memtable_flush_threshold=2, compaction_threshold=100)
        store.put("t", "k", {"v": 1})
        store.put("t", "pad", {"v": 0})
        store.delete("t", "k")
        store.put("t", "pad2", {"v": 0})
        assert store.get("t", "k") is None

    def test_compaction_drops_tombstones(self):
        store = CassandraStore(memtable_flush_threshold=2, compaction_threshold=2)
        store.put("t", "k", {"v": 1})
        store.put("t", "pad", {"v": 0})
        store.delete("t", "k")
        store.put("t", "pad2", {"v": 0})  # flush + compaction
        assert store.get("t", "k") is None
        assert store.count("t") == 2

    def test_flush_all(self):
        store = CassandraStore(memtable_flush_threshold=1000)
        store.put("t", "k", {"v": 1})
        store.flush_all()
        assert store.sstable_count("t") == 1
        assert store.get("t", "k")["v"] == 1

    def test_read_path_cost_grows_with_sstables(self):
        # A key buried under several runs costs more probes than a
        # memtable-resident key.
        store = CassandraStore(memtable_flush_threshold=2, compaction_threshold=100)
        store.put("t", "old", {"v": 1})
        store.put("t", "pad0", {"v": 0})
        for index in range(6):
            store.put("t", "pad%d" % (index + 1), {"v": 0})
        store.take_receipt()
        store.get("t", "old")
        buried = store.take_receipt()
        store.put("t", "fresh", {"v": 2})
        store.take_receipt()
        store.get("t", "fresh")
        fresh = store.take_receipt()
        assert buried.structure_misses + buried.index_probes > fresh.structure_misses

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CassandraStore(memtable_flush_threshold=0)
        with pytest.raises(ValueError):
            CassandraStore(compaction_threshold=1)

    def test_boot_profile_is_jvm_heavy(self):
        assert CassandraStore.boot_profile.jvm
        from repro.db.mongodb import MongoStore

        # "five times slower compared to the MongoDB boot time" (§3.3.3.2)
        assert CassandraStore.boot_profile.instructions >= 4 * MongoStore.boot_profile.instructions
