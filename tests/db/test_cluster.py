"""Cassandra cluster tests: partitioning, replication, failure handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.cluster import CassandraCluster, NodeDownError


class TestTopology:
    def test_replica_count_and_distinctness(self):
        cluster = CassandraCluster(nodes=4, replication=3)
        for index in range(50):
            owners = cluster.replicas_for("key%d" % index)
            assert len(owners) == 3
            assert len(set(owners)) == 3

    def test_keys_spread_across_nodes(self):
        cluster = CassandraCluster(nodes=4, replication=1, num_tokens=32)
        ownership = {node: 0 for node in range(4)}
        for index in range(400):
            ownership[cluster.replicas_for("key%d" % index)[0]] += 1
        # Virtual nodes balance the ring: nobody owns everything or nothing.
        assert min(ownership.values()) > 20
        assert max(ownership.values()) < 250

    def test_ring_is_deterministic(self):
        first = CassandraCluster(nodes=4, replication=2, num_tokens=16)
        second = CassandraCluster(nodes=4, replication=2, num_tokens=16)
        for index in range(40):
            key = "key%d" % index
            assert first.replicas_for(key) == second.replicas_for(key)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CassandraCluster(nodes=0)
        with pytest.raises(ValueError):
            CassandraCluster(nodes=2, replication=3)
        with pytest.raises(ValueError):
            CassandraCluster(consistency="TWO")


class TestReplication:
    def test_put_get_roundtrip(self):
        cluster = CassandraCluster(nodes=3, replication=2)
        cluster.put("t", "k", {"v": 1})
        assert cluster.get("t", "k") == {"v": 1}

    def test_data_on_exactly_replication_nodes(self):
        cluster = CassandraCluster(nodes=4, replication=2)
        cluster.put("t", "k", {"v": 1})
        holders = sum(
            1 for node in cluster.nodes if node.get("t", "k") is not None
        )
        assert holders == 2

    def test_read_survives_single_node_failure(self):
        cluster = CassandraCluster(nodes=3, replication=2, consistency="ONE")
        cluster.put("t", "k", {"v": "precious"})
        primary = cluster.replicas_for("k")[0]
        cluster.fail_node(primary)
        assert cluster.get("t", "k") == {"v": "precious"}

    def test_quorum_fails_when_majority_down(self):
        cluster = CassandraCluster(nodes=3, replication=3, consistency="QUORUM")
        cluster.put("t", "k", {"v": 1})
        cluster.fail_node(0)
        cluster.fail_node(1)
        with pytest.raises(NodeDownError):
            cluster.get("t", "k")

    def test_all_consistency_needs_every_replica(self):
        cluster = CassandraCluster(nodes=3, replication=2, consistency="ALL")
        cluster.put("t", "k", {"v": 1})
        cluster.fail_node(cluster.replicas_for("k")[0])
        with pytest.raises(NodeDownError):
            cluster.get("t", "k")

    def test_recovered_node_serves_again(self):
        cluster = CassandraCluster(nodes=3, replication=3, consistency="QUORUM")
        cluster.put("t", "k", {"v": 1})
        cluster.fail_node(0)
        cluster.fail_node(1)
        cluster.recover_node(0)
        assert cluster.get("t", "k") == {"v": 1}

    def test_scan_deduplicates_replicas(self):
        cluster = CassandraCluster(nodes=3, replication=3)
        for index in range(10):
            cluster.put("t", "k%d" % index, {"v": index})
        rows = list(cluster.scan("t"))
        assert len(rows) == 10

    def test_delete_across_replicas(self):
        cluster = CassandraCluster(nodes=3, replication=2)
        cluster.put("t", "k", {"v": 1})
        assert cluster.delete("t", "k")
        assert cluster.get("t", "k") is None


class TestClusterAsDatastore:
    def test_receipts_accumulate_coordinator_work(self):
        cluster = CassandraCluster(nodes=3, replication=2)
        cluster.put("t", "k", {"v": "x" * 100})
        receipt = cluster.take_receipt()
        # Two replica writes, each with payload bytes.
        assert receipt.bytes_written > 200
        assert receipt.ops >= 3  # coordinator + 2 node ops

    def test_hotel_suite_runs_on_a_cluster(self):
        from repro.workloads.hotel import HotelSuite

        suite = HotelSuite(CassandraCluster(nodes=3, replication=2))
        function = suite.functions[2]  # user
        from repro.serverless.engine import install_docker
        from repro.serverless.faas import FaasPlatform

        platform = FaasPlatform(install_docker("riscv"))
        platform.engine.registry.push(function.image("riscv"))
        platform.deploy(function.name, function.name, "go", function.handler,
                        services=suite.services_for(function))
        record = platform.invoke(function.name,
                                 {"username": "user0005", "password": "pass0005"})
        assert record.result["authorized"]

    def test_query_filters(self):
        cluster = CassandraCluster(nodes=2, replication=2)
        cluster.put("t", "a", {"city": "athens"})
        cluster.put("t", "b", {"city": "zurich"})
        assert len(cluster.query("t", city="athens")) == 1


@settings(max_examples=20, deadline=None)
@given(
    entries=st.dictionaries(st.text(alphabet="abcdef", min_size=1, max_size=5),
                            st.integers(), min_size=1, max_size=30),
    nodes=st.integers(min_value=1, max_value=5),
)
def test_property_cluster_behaves_like_dict(entries, nodes):
    cluster = CassandraCluster(nodes=nodes,
                               replication=min(2, nodes))
    for key, value in entries.items():
        cluster.put("t", key, {"v": value})
    for key, value in entries.items():
        assert cluster.get("t", key)["v"] == value
