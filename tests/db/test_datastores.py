"""Shared behavioural tests across all primary datastores."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import DATASTORES, make_datastore


@pytest.fixture(params=sorted(DATASTORES))
def store(request):
    return make_datastore(request.param)


class TestCrud:
    def test_put_get_roundtrip(self, store):
        store.put("hotels", "h1", {"name": "Grand", "city": "Athens"})
        assert store.get("hotels", "h1") == {"name": "Grand", "city": "Athens"} or \
            store.get("hotels", "h1")["name"] == "Grand"  # mariadb adds id column

    def test_get_missing_returns_none(self, store):
        store.put("hotels", "h1", {"name": "Grand"})
        assert store.get("hotels", "nope") is None

    def test_overwrite_replaces(self, store):
        store.put("t", "k", {"v": 1})
        store.put("t", "k", {"v": 2})
        assert store.get("t", "k")["v"] == 2

    def test_delete(self, store):
        store.put("t", "k", {"v": 1})
        assert store.delete("t", "k") is True
        assert store.get("t", "k") is None
        assert store.delete("t", "k") is False

    def test_tables_are_isolated(self, store):
        store.put("a", "k", {"v": "a"})
        store.put("b", "k", {"v": "b"})
        assert store.get("a", "k")["v"] == "a"
        assert store.get("b", "k")["v"] == "b"

    def test_scan_returns_all_records(self, store):
        for index in range(10):
            store.put("t", "k%02d" % index, {"v": index})
        records = list(store.scan("t"))
        assert len(records) == 10
        assert sorted(record["v"] for record in records) == list(range(10))

    def test_query_equality_filter(self, store):
        store.put("rooms", "r1", {"city": "athens", "rate": 100})
        store.put("rooms", "r2", {"city": "zurich", "rate": 200})
        store.put("rooms", "r3", {"city": "athens", "rate": 150})
        athens = store.query("rooms", city="athens")
        assert len(athens) == 2
        assert all(record["city"] == "athens" for record in athens)

    def test_count(self, store):
        for index in range(5):
            store.put("t", str(index), {"v": index})
        assert store.count("t") == 5

    def test_returned_records_are_copies(self, store):
        store.put("t", "k", {"v": 1})
        record = store.get("t", "k")
        record["v"] = 999
        assert store.get("t", "k")["v"] == 1


class TestMetering:
    def test_receipt_accumulates_and_harvests(self, store):
        store.put("t", "k", {"v": "x" * 100})
        receipt = store.take_receipt()
        assert receipt.bytes_written > 100
        assert store.take_receipt().total_bytes() == 0  # harvested

    def test_get_hit_reads_bytes(self, store):
        store.put("t", "k", {"v": "y" * 200})
        store.take_receipt()
        store.get("t", "k")
        receipt = store.take_receipt()
        assert receipt.bytes_read > 200
        assert receipt.rows_returned == 1

    def test_get_miss_counts_structure_miss(self, store):
        store.put("t", "k", {"v": 1})
        store.take_receipt()
        store.get("t", "missing")
        assert store.take_receipt().structure_misses >= 1

    def test_scan_work_scales_with_rows(self, store):
        for index in range(20):
            store.put("t", "k%03d" % index, {"v": index})
        store.take_receipt()
        list(store.scan("t"))
        few = store.take_receipt().rows_scanned
        for index in range(20, 100):
            store.put("t", "k%03d" % index, {"v": index})
        store.take_receipt()
        list(store.scan("t"))
        many = store.take_receipt().rows_scanned
        assert many > few

    def test_data_bytes_grows(self, store):
        before = store.data_bytes()
        store.put("t", "k", {"payload": "z" * 500})
        assert store.data_bytes() > before + 400


class TestReceiptApi:
    def test_unknown_field_rejected(self, store):
        with pytest.raises(KeyError):
            store.receipt.add(frobs=1)

    def test_merge(self, store):
        from repro.db.engine import WorkReceipt

        first = WorkReceipt()
        first.add(bytes_read=10)
        second = WorkReceipt()
        second.add(bytes_read=5, cpu_work=3)
        first.merge(second)
        assert first.bytes_read == 15
        assert first.cpu_work == 3


@settings(max_examples=20, deadline=None)
@given(
    entries=st.dictionaries(
        st.text(alphabet="abcdefgh", min_size=1, max_size=6),
        st.integers(min_value=0, max_value=10**6),
        min_size=1,
        max_size=40,
    ),
    name=st.sampled_from(sorted(DATASTORES)),
)
def test_property_store_behaves_like_dict(entries, name):
    store = make_datastore(name)
    for key, value in entries.items():
        store.put("t", key, {"v": value})
    for key, value in entries.items():
        assert store.get("t", key)["v"] == value
    assert store.count("t") == len(entries)
