"""SQL front-end tests for the MariaDB-like store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.sql import SqlEngine, SqlError, tokenize


@pytest.fixture()
def engine():
    sql = SqlEngine()
    sql.execute("CREATE TABLE rooms (id, city, rate)")
    sql.execute("INSERT INTO rooms (id, city, rate) VALUES ('r1', 'athens', 120)")
    sql.execute("INSERT INTO rooms (id, city, rate) VALUES ('r2', 'zurich', 310)")
    sql.execute("INSERT INTO rooms (id, city, rate) VALUES ('r3', 'athens', 95)")
    return sql


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a FROM t WHERE x = 'y'")
        kinds = [kind for kind, _value in tokens]
        assert kinds == ["keyword", "word", "keyword", "word", "keyword",
                         "word", "symbol", "string"]

    def test_numbers_and_operators(self):
        tokens = tokenize("rate >= 12.5")
        assert ("symbol", ">=") in tokens
        assert ("number", "12.5") in tokens

    def test_garbage_rejected(self):
        with pytest.raises(SqlError):
            tokenize("SELECT ;;; FROM")


class TestSelect:
    def test_select_star(self, engine):
        rows = engine.execute("SELECT * FROM rooms")
        assert len(rows) == 3

    def test_projection(self, engine):
        rows = engine.execute("SELECT city FROM rooms WHERE id = 'r1'")
        assert rows == [{"city": "athens"}]

    def test_where_equality_and_comparison(self, engine):
        rows = engine.execute(
            "SELECT id FROM rooms WHERE city = 'athens' AND rate < 100")
        assert [row["id"] for row in rows] == ["r3"]

    def test_order_by_desc_limit(self, engine):
        rows = engine.execute("SELECT id FROM rooms ORDER BY rate DESC LIMIT 2")
        assert [row["id"] for row in rows] == ["r2", "r1"]

    def test_order_by_asc_default(self, engine):
        rows = engine.execute("SELECT id FROM rooms ORDER BY rate")
        assert [row["id"] for row in rows] == ["r3", "r1", "r2"]

    def test_not_equal(self, engine):
        rows = engine.execute("SELECT id FROM rooms WHERE city <> 'athens'")
        assert [row["id"] for row in rows] == ["r2"]

    def test_empty_result(self, engine):
        assert engine.execute("SELECT * FROM rooms WHERE rate > 9999") == []


class TestMutations:
    def test_insert_visible(self, engine):
        engine.execute("INSERT INTO rooms (id, city, rate) VALUES ('r4', 'paris', 200)")
        rows = engine.execute("SELECT * FROM rooms WHERE id = 'r4'")
        assert rows[0]["city"] == "paris"

    def test_delete_with_predicate(self, engine):
        engine.execute("DELETE FROM rooms WHERE city = 'athens'")
        assert len(engine.execute("SELECT * FROM rooms")) == 1

    def test_delete_all(self, engine):
        engine.execute("DELETE FROM rooms")
        assert engine.execute("SELECT * FROM rooms") == []

    def test_create_adds_implicit_id(self):
        sql = SqlEngine()
        sql.execute("CREATE TABLE notes (body)")
        sql.execute("INSERT INTO notes (id, body) VALUES ('n1', 'hello')")
        assert sql.execute("SELECT body FROM notes") == [{"body": "hello"}]

    def test_escaped_quote_in_string(self, engine):
        engine.execute(
            "INSERT INTO rooms (id, city, rate) VALUES ('r9', 'l\\'aquila', 80)")
        rows = engine.execute("SELECT city FROM rooms WHERE id = 'r9'")
        assert rows == [{"city": "l'aquila"}]


class TestErrors:
    @pytest.mark.parametrize("statement", [
        "UPDATE rooms SET rate = 1",            # unsupported verb
        "SELECT FROM rooms",                    # missing column list
        "SELECT * FROM rooms WHERE rate ~ 1",   # bad operator
        "INSERT INTO rooms (id) VALUES ('a', 'b')",  # arity mismatch
        "SELECT * FROM rooms LIMIT -1",
        "SELECT * FROM rooms extra",
        "",
    ])
    def test_rejected(self, engine, statement):
        with pytest.raises(SqlError):
            engine.execute(statement)


class TestMetering:
    def test_parse_cost_charged(self, engine):
        engine.store.take_receipt()
        engine.execute("SELECT * FROM rooms")
        receipt = engine.store.take_receipt()
        assert receipt.cpu_work > 0
        assert receipt.rows_scanned == 3


@settings(max_examples=25, deadline=None)
@given(
    rates=st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                   max_size=25, unique=True),
    threshold=st.integers(min_value=0, max_value=1000),
)
def test_property_where_matches_python_filter(rates, threshold):
    sql = SqlEngine()
    sql.execute("CREATE TABLE t (id, rate)")
    for index, rate in enumerate(rates):
        sql.execute("INSERT INTO t (id, rate) VALUES ('k%d', %d)" % (index, rate))
    rows = sql.execute("SELECT rate FROM t WHERE rate >= %d" % threshold)
    assert sorted(row["rate"] for row in rows) == \
        sorted(rate for rate in rates if rate >= threshold)
