"""Seed robustness: the paper's orderings are not seed artifacts."""

import pytest

from repro.core.harness import ExperimentHarness, clear_boot_checkpoint_cache
from repro.core.scale import SimScale
from repro.workloads.catalog import get_function

SCALE = SimScale(time=2048, space=32)
SEEDS = (0, 7, 1234)


@pytest.fixture(autouse=True)
def _fresh_checkpoints():
    clear_boot_checkpoint_cache()
    yield
    clear_boot_checkpoint_cache()


def measure(name, isa, seed):
    clear_boot_checkpoint_cache()
    harness = ExperimentHarness(isa=isa, scale=SCALE, seed=seed)
    return harness.measure_function(get_function(name))


@pytest.mark.parametrize("seed", SEEDS)
def test_cold_exceeds_warm_across_seeds(seed):
    measurement = measure("fibonacci-go", "riscv", seed)
    assert measurement.cold.cycles > measurement.warm.cycles


@pytest.mark.parametrize("seed", SEEDS)
def test_riscv_beats_x86_across_seeds(seed):
    riscv = measure("aes-go", "riscv", seed)
    x86 = measure("aes-go", "x86", seed)
    assert riscv.cold.cycles < x86.cold.cycles
    assert riscv.warm.cycles < x86.warm.cycles
    assert riscv.cold.instructions < x86.cold.instructions


def test_python_cold_cliff_across_seeds():
    for seed in SEEDS:
        go = measure("fibonacci-go", "riscv", seed)
        python = measure("fibonacci-python", "riscv", seed)
        assert python.cold_warm_cycle_ratio > 1.5 * go.cold_warm_cycle_ratio, seed


def test_seed_changes_addresses_not_orderings():
    # Different seeds shuffle random address draws; measurements differ in
    # detail but agree on every claim above.
    cycles = {seed: measure("auth-go", "riscv", seed).cold.cycles
              for seed in SEEDS}
    assert len(set(cycles.values())) >= 1  # may coincide, usually differ
    spread = max(cycles.values()) / min(cycles.values())
    assert spread < 1.3  # stable within a modest band
