"""Tests for the scaled-machine methodology helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scale import BENCH, NATIVE, SimScale, TEST


class TestSimScale:
    def test_native_is_identity(self):
        assert NATIVE.instrs(12345) == 12345
        assert NATIVE.data_bytes(99999) == 99999

    def test_instrs_floor_one(self):
        assert SimScale(time=1000, space=1).instrs(5) == 1

    def test_data_floor(self):
        assert SimScale(time=1, space=1000).data_bytes(100, floor=256) == 256

    def test_projection_inverts_time_scaling(self):
        scale = SimScale(time=256, space=16)
        assert scale.project_cycles(1000) == 256000

    def test_invalid_divisors(self):
        with pytest.raises(ValueError):
            SimScale(time=0)
        with pytest.raises(ValueError):
            SimScale(space=0)

    def test_presets_ordering(self):
        assert NATIVE.time < BENCH.time < TEST.time

    def test_equality_and_hash(self):
        assert SimScale(8, 4) == SimScale(8, 4)
        assert SimScale(8, 4) != SimScale(8, 2)
        assert hash(SimScale(8, 4)) == hash(SimScale(8, 4))


@settings(max_examples=50, deadline=None)
@given(
    count=st.integers(min_value=1, max_value=10**9),
    time=st.integers(min_value=1, max_value=10**4),
)
def test_property_scaling_monotone_and_bounded(count, time):
    scale = SimScale(time=time, space=1)
    scaled = scale.instrs(count)
    assert 1 <= scaled
    assert scaled <= count or scaled == 1
    # projecting back overshoots by at most one scale quantum
    assert abs(scale.project_cycles(scaled) - count) <= time
