"""MeasurementSpec and measure() dispatcher tests."""

import pickle

import pytest

from repro.core import reproduce
from repro.core.harness import clear_boot_checkpoint_cache
from repro.core.parallel import MeasurementTask, run_measurement_matrix
from repro.core.rescache import ResultCache
from repro.core.scale import BENCH, SimScale
from repro.core.spec import MeasurementSpec

SCALE = SimScale(time=4096, space=32)


@pytest.fixture(autouse=True)
def _fresh_checkpoints():
    clear_boot_checkpoint_cache()
    yield
    clear_boot_checkpoint_cache()


class TestSpecSemantics:
    def test_keyword_only(self):
        with pytest.raises(TypeError):
            MeasurementSpec("fibonacci-python")

    def test_defaults(self):
        spec = MeasurementSpec(function="aes-go")
        assert spec.isa == "riscv"
        assert spec.scale == BENCH
        assert spec.seed == 0
        assert spec.requests == 10
        assert spec.db is None
        assert spec.trace is False

    def test_scale_and_explicit_axes_conflict(self):
        with pytest.raises(TypeError):
            MeasurementSpec(function="aes-go", scale=SCALE, time=512)

    def test_function_objects_reduce_to_names(self):
        from repro.workloads.catalog import get_function

        spec = MeasurementSpec(function=get_function("aes-go"))
        assert spec.function == "aes-go"

    def test_immutable(self):
        spec = MeasurementSpec(function="aes-go")
        with pytest.raises(AttributeError):
            spec.isa = "x86"

    def test_replace(self):
        spec = MeasurementSpec(function="aes-go", isa="riscv", scale=SCALE)
        other = spec.replace(isa="x86")
        assert other.isa == "x86"
        assert other.function == "aes-go"
        assert other.scale == SCALE
        assert spec.isa == "riscv"

    def test_equality_and_hash(self):
        one = MeasurementSpec(function="aes-go", isa="riscv", scale=SCALE)
        two = MeasurementSpec(function="aes-go", isa="riscv", scale=SCALE)
        assert one == two
        assert hash(one) == hash(two)
        assert one != two.replace(seed=1)

    def test_pickle_round_trip(self):
        spec = MeasurementSpec(function="aes-go", scale=SCALE, trace=True)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.trace is True

    def test_measurement_task_alias(self):
        assert MeasurementTask is MeasurementSpec


class TestMeasureDispatcher:
    def test_single_function(self):
        batch = reproduce.measure(
            MeasurementSpec(function="fibonacci-python", isa="riscv",
                            scale=SCALE), jobs=1, cache=False)
        assert sorted(batch) == ["fibonacci-python"]
        assert batch["fibonacci-python"].cold.cycles > 0

    def test_suite_alias_expansion(self):
        specs = reproduce._expand_spec(
            MeasurementSpec(function="hotel", isa="riscv", scale=SCALE))
        assert len(specs) == 6
        assert all(point.db == "cassandra" for point in specs)
        specs = reproduce._expand_spec(
            MeasurementSpec(function="standalone+shop", isa="riscv",
                            scale=SCALE))
        assert len(specs) == 15
        assert all(point.db is None for point in specs)

    def test_db_only_reaches_hotel_functions(self):
        specs = reproduce._expand_spec(
            MeasurementSpec(function="fibonacci-python", db="redis"))
        assert specs[0].db is None
        specs = reproduce._expand_spec(
            MeasurementSpec(function="hotel-geo-go", db="redis"))
        assert specs[0].db == "redis"

    def test_removed_shims_never_warn_they_raise(self):
        # The PR-2 deprecation shims are gone: any call is a hard error
        # naming the replacement, not a DeprecationWarning + forward.
        from repro.workloads.catalog import get_function

        function = get_function("fibonacci-python")
        with pytest.raises(RuntimeError, match=r"measure_functions\(\) was "
                                               r"removed"):
            reproduce.measure_functions([function], "riscv", SCALE,
                                        jobs=1, cache=False)
        with pytest.raises(RuntimeError, match=r"measure_hotel\(\) was "
                                               r"removed"):
            reproduce.measure_hotel("riscv", SCALE, db="redis",
                                    jobs=1, cache=False)
        with pytest.raises(RuntimeError,
                           match=r"measure_standalone_shop\(\) was removed"):
            reproduce.measure_standalone_shop("riscv", SCALE)


class TestTracedSpecCacheBypass:
    def test_traced_points_never_touch_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        spec = MeasurementSpec(function="fibonacci-python", isa="riscv",
                               scale=SCALE, trace=True)
        [first] = run_measurement_matrix([spec], jobs=1, cache=cache)
        assert first.trace is not None
        assert cache.stats()["entries"] == 0

        untraced = spec.replace(trace=False)
        run_measurement_matrix([untraced], jobs=1, cache=cache)
        assert cache.stats()["entries"] == 1
        # and a cache hit never satisfies a traced request
        clear_boot_checkpoint_cache()
        [again] = run_measurement_matrix([spec], jobs=1, cache=cache)
        assert again.trace is not None
