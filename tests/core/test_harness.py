"""Harness protocol tests: setup/evaluation modes, checkpoints, results."""

import pytest

from repro.core.config import PlatformConfig, platform_for
from repro.core.harness import (
    ExperimentHarness,
    clear_boot_checkpoint_cache,
)
from repro.core.results import (
    MeasurementTable,
    cold_warm_table,
    geometric_mean,
    isa_comparison_table,
)
from repro.core.scale import SimScale
from repro.workloads.catalog import get_function

SCALE = SimScale(time=2048, space=32)


@pytest.fixture(autouse=True)
def _isolated_checkpoints():
    clear_boot_checkpoint_cache()
    yield
    clear_boot_checkpoint_cache()


class TestProtocol:
    def test_measure_returns_cold_and_warm(self):
        harness = ExperimentHarness(isa="riscv", scale=SCALE)
        measurement = harness.measure_function(get_function("fibonacci-go"))
        assert measurement.cold.cycles > measurement.warm.cycles
        assert measurement.cold.instructions > measurement.warm.instructions
        assert len(measurement.records) == 10
        assert measurement.records[0].cold
        assert not any(record.cold for record in measurement.records[1:])

    def test_requests_parameter(self):
        harness = ExperimentHarness(isa="riscv", scale=SCALE)
        measurement = harness.measure_function(get_function("aes-go"), requests=4)
        assert len(measurement.records) == 4
        with pytest.raises(ValueError):
            harness.measure_function(get_function("aes-go"), requests=1)

    def test_deterministic_across_harnesses(self):
        def run():
            clear_boot_checkpoint_cache()
            harness = ExperimentHarness(isa="riscv", scale=SCALE, seed=7)
            measurement = harness.measure_function(get_function("auth-go"))
            return (measurement.cold.cycles, measurement.warm.cycles,
                    measurement.cold.l1i_misses)

        assert run() == run()

    def test_stats_come_from_server_core(self):
        harness = ExperimentHarness(isa="riscv", scale=SCALE)
        measurement = harness.measure_function(get_function("fibonacci-go"))
        assert "sys.core1.l1d.misses" in measurement.cold.raw_dump

    def test_payload_factory_threads_through(self):
        harness = ExperimentHarness(isa="riscv", scale=SCALE)
        measurement = harness.measure_function(
            get_function("fibonacci-go"),
            payload_factory=lambda sequence: {"n": 50 + sequence},
        )
        assert measurement.records[0].result["n"] == 50
        assert measurement.records[9].result["n"] == 59

    def test_boot_checkpoint_cached_across_harnesses(self):
        first = ExperimentHarness(isa="riscv", scale=SCALE)
        first.measure_function(get_function("fibonacci-go"))
        second = ExperimentHarness(isa="riscv", scale=SCALE)
        second.prepare()
        # Same object: served from the cache, not re-booted.
        assert second._boot_checkpoint is first._boot_checkpoint

    def test_layered_boot_reuses_shared_prefix(self, monkeypatch):
        """Two service sets sharing a prefix boot the shared services
        once: the second prepare restores the cached layer and runs only
        the new service's boot program."""
        from repro.db.cassandra import CassandraStore
        from repro.workloads.hotel import HotelSuite

        runs = []
        original = ExperimentHarness._run_setup_program

        def counting(self, program):
            runs.append(program.name)
            return original(self, program)

        monkeypatch.setattr(ExperimentHarness, "_run_setup_program",
                            counting)
        suite = HotelSuite(CassandraStore())
        functions = {fn.short_name: fn for fn in suite.functions}
        first = ExperimentHarness(isa="riscv", scale=SCALE)
        first.prepare(service_stores=ExperimentHarness._stores_of(
            suite.services_for(functions["geo"])))
        booted = len(runs)
        assert booted == 2  # base boot + cassandra
        second = ExperimentHarness(isa="riscv", scale=SCALE)
        second.prepare(service_stores=ExperimentHarness._stores_of(
            suite.services_for(functions["rate"])))
        # Only memcached's boot ran; base + cassandra came from layers.
        assert len(runs) == booted + 1

    def test_layered_boot_measures_like_straight_through(self):
        """Continuing from a restored layer is state-identical to booting
        straight through: measuring in either prepare order gives the
        same counters.  (Stat *group* presence can differ — a harness
        that restored every layer never instantiates the setup CPU's
        stat group — so zero-valued keys are normalised out.)"""
        from repro.db.cassandra import CassandraStore
        from repro.workloads.hotel import HotelSuite

        def measure(order):
            clear_boot_checkpoint_cache()
            suite = HotelSuite(CassandraStore())
            functions = {fn.short_name: fn for fn in suite.functions}
            out = {}
            for name in order:
                harness = ExperimentHarness(isa="riscv", scale=SCALE)
                out[name] = harness.measure_function(
                    functions[name],
                    services=suite.services_for(functions[name]))
            return out

        def nonzero(dump):
            return {key: value for key, value in dump.items() if value}

        forward = measure(["geo", "rate"])
        reverse = measure(["rate", "geo"])
        for name in ("geo", "rate"):
            for phase in ("cold", "warm"):
                a = getattr(forward[name], phase)
                b = getattr(reverse[name], phase)
                for field in type(a).FIELDS:
                    assert getattr(a, field) == getattr(b, field), (
                        name, phase, field)
                assert nonzero(a.raw_dump) == nonzero(b.raw_dump)

    def test_kvm_setup_falls_back_on_instability(self):
        harness = ExperimentHarness(isa="riscv", scale=SCALE, setup_cpu="kvm",
                                    seed=0)
        harness.prepare()
        # With seed 0 the KVM checkpoint op freezes and the harness
        # falls back, recording the workaround.
        assert harness.setup_cpu in ("kvm", "atomic")
        measurement = harness.measure_function(get_function("fibonacci-go"))
        if harness.setup_cpu == "atomic":
            assert any("KVM froze" in note for note in measurement.setup_notes)


class TestPlatformConfig:
    def test_common_parameters_identical_across_isas(self):
        assert platform_for("riscv").common_parameters() == \
            platform_for("x86").common_parameters()

    def test_specifics_differ(self):
        assert platform_for("riscv").specific_parameters() != \
            platform_for("x86").specific_parameters()

    def test_unknown_isa(self):
        with pytest.raises(ValueError):
            platform_for("mips")

    def test_custom_config_flows_into_system(self):
        from repro.sim.mem.hierarchy import MemoryHierarchyConfig

        config = PlatformConfig(
            isa="riscv", os_name="Ubuntu",
            mem_config=MemoryHierarchyConfig(l2_size=256 * 1024),
        )
        harness = ExperimentHarness(isa="riscv", scale=SCALE,
                                    platform_config=config)
        assert harness.system.mem_config.l2_size == 256 * 1024 // SCALE.space


class TestResults:
    def make_measurements(self):
        harness = ExperimentHarness(isa="riscv", scale=SCALE)
        return {"fibonacci-go": harness.measure_function(get_function("fibonacci-go"))}

    def test_cold_warm_table(self):
        table = cold_warm_table("t", self.make_measurements(),
                                metric=lambda stats: stats.cycles,
                                metric_name="cycles")
        assert table.labels() == ["fibonacci-go"]
        cold, warm = table.rows[0][1], table.rows[0][2]
        assert cold > warm
        assert "fibonacci-go" in table.render()

    def test_isa_comparison_table_intersects(self):
        measurements = self.make_measurements()
        table = isa_comparison_table("t", measurements, measurements,
                                     metric=lambda stats: stats.cycles)
        assert len(table.rows) == 1
        assert len(table.columns) == 4

    def test_table_row_arity_checked(self):
        table = MeasurementTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("x", 1)

    def test_column_accessor(self):
        table = MeasurementTable("t", ["a"])
        table.add_row("r1", 10)
        table.add_row("r2", 20)
        assert table.column("a") == [10, 20]

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0, 5]) == 5.0  # zeros skipped
