"""Environment-knob hardening: malformed integer knobs must warn and fall
back to their defaults instead of crashing — including at import time for
the block-JIT thresholds."""

import os
import subprocess
import sys

import pytest

from repro.core.parallel import resolve_jobs
from repro.envknobs import env_int


class TestEnvInt:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_int("REPRO_TEST_KNOB", 42) == 42

    def test_empty_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "")
        assert env_int("REPRO_TEST_KNOB", 42) == 42

    def test_valid_value_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "7")
        assert env_int("REPRO_TEST_KNOB", 42) == 7

    def test_garbage_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "many")
        with pytest.warns(UserWarning, match="REPRO_TEST_KNOB"):
            assert env_int("REPRO_TEST_KNOB", 42) == 42


class TestResolveJobsFallback:
    def test_bad_repro_jobs_warns_and_uses_cores(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.warns(UserWarning, match="REPRO_JOBS"):
            assert resolve_jobs() == (os.cpu_count() or 1)

    def test_explicit_argument_bypasses_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        assert resolve_jobs(3) == 3


class TestBlockjitImportTime:
    """The JIT thresholds are read at import time; a malformed value used
    to raise ValueError before any measurement could run."""

    def _import_blockjit(self, env):
        merged = dict(os.environ, **env)
        return subprocess.run(
            [sys.executable, "-c",
             "import warnings; warnings.simplefilter('ignore'); "
             "from repro.sim.isa import blockjit; "
             "print(blockjit._THRESHOLD, blockjit._MAX_STMTS)"],
            capture_output=True, text=True, env=merged,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)))))

    def test_bad_threshold_survives_import(self):
        result = self._import_blockjit({"REPRO_JIT_THRESHOLD": "yes",
                                        "PYTHONPATH": "src"})
        assert result.returncode == 0, result.stderr
        threshold, max_stmts = result.stdout.split()
        assert int(threshold) == 2  # the documented default

    def test_bad_max_stmts_survives_import(self):
        result = self._import_blockjit({"REPRO_JIT_MAX_STMTS": "unbounded",
                                        "PYTHONPATH": "src"})
        assert result.returncode == 0, result.stderr
        threshold, max_stmts = result.stdout.split()
        assert int(max_stmts) == 3072  # the documented default
