"""Reproduce-module and remaining-CLI tests."""

import pytest

from repro.cli import main
from repro.core import reproduce
from repro.core.harness import clear_boot_checkpoint_cache
from repro.core.scale import SimScale
from repro.core.spec import MeasurementSpec

SCALE = SimScale(time=4096, space=32)


@pytest.fixture(autouse=True)
def _fresh_checkpoints():
    clear_boot_checkpoint_cache()
    yield
    clear_boot_checkpoint_cache()


class TestReproduceLibrary:
    def test_measure_standalone_shop_batch(self):
        batch = reproduce.measure(
            MeasurementSpec(function="standalone+shop", isa="riscv",
                            scale=SCALE))
        assert len(batch) == 15
        assert all(m.cold.cycles > m.warm.cycles for m in batch.values())

    def test_measure_hotel_with_database_choice(self):
        batch = reproduce.measure(
            MeasurementSpec(function="hotel", isa="riscv", scale=SCALE,
                            db="redis"))
        assert len(batch) == 6

    def test_progress_callback(self):
        seen = []
        reproduce.measure(
            MeasurementSpec(function="aes-go", isa="riscv", scale=SCALE),
            progress=seen.append,
        )
        assert seen == ["measured aes-go on riscv"]

    @pytest.mark.parametrize("shim", ["measure_functions",
                                      "measure_standalone_shop",
                                      "measure_hotel"])
    def test_removed_shims_raise_with_migration_hint(self, shim):
        with pytest.raises(RuntimeError) as excinfo:
            getattr(reproduce, shim)("riscv", SCALE)
        message = str(excinfo.value)
        assert message.startswith("%s() was removed" % shim)
        assert "MeasurementSpec" in message
        assert "measure(" in message

    def test_qemu_comparison_covers_both_databases(self):
        results = reproduce.qemu_database_comparison()
        databases = {db for db, _fn in results}
        assert databases == {"mongodb", "cassandra"}
        assert len(results) == 12

    def test_reproduce_all_writes_figures(self, tmp_path):
        batches = reproduce.reproduce_all(scale=SCALE, output_dir=tmp_path)
        assert set(batches) == {
            "riscv_standalone_shop", "x86_standalone_shop",
            "riscv_hotel", "x86_hotel", "qemu_db_comparison",
        }
        written = {path.name for path in tmp_path.glob("*.txt")}
        assert "fig4_04.txt" in written
        assert "fig4_19.txt" in written
        assert len(written) == 9
        content = (tmp_path / "fig4_15.txt").read_text()
        assert "riscv_cold_cycles" in content
        assert "█" in content  # the chart rendered too


class TestRemainingCli:
    def test_suite_command(self, capsys):
        assert main(["suite", "standalone", "--time-scale", "4096",
                     "--space-scale", "32"]) == 0
        out = capsys.readouterr().out
        assert "auth-nodejs" in out

    def test_hotel_suite_with_db(self, capsys):
        assert main(["suite", "hotel", "--db", "redis", "--time-scale",
                     "4096", "--space-scale", "32"]) == 0
        out = capsys.readouterr().out
        assert "hotel-profile-go" in out

    def test_lukewarm_command(self, capsys):
        assert main(["lukewarm", "aes-go", "--time-scale", "4096",
                     "--space-scale", "32"]) == 0
        out = capsys.readouterr().out
        assert "lukewarm" in out

    def test_pipeline_command(self, capsys):
        assert main(["pipeline", "--time-scale", "4096",
                     "--space-scale", "32"]) == 0
        out = capsys.readouterr().out
        assert "downstream invocations" in out

    def test_dbcompare_command(self, capsys):
        assert main(["dbcompare"]) == 0
        out = capsys.readouterr().out
        assert "mongo_cold" in out
        assert "profile" in out

    def test_reproduce_command(self, capsys, tmp_path):
        out_dir = str(tmp_path / "figures")
        assert main(["reproduce", "--out", out_dir, "--time-scale", "4096",
                     "--space-scale", "32"]) == 0
        assert (tmp_path / "figures" / "fig4_04.txt").exists()
