"""Determinism of the parallel measurement engine.

The tentpole guarantee: worker count never changes a result.  The serial
path (jobs=1) and the process pool (jobs=2) must produce bit-identical
stats — every counter in the raw dump, not just headline cycles — for
both standalone and database-backed (hotel) samples.
"""

import pytest

from repro.core.harness import ExperimentHarness, clear_boot_checkpoint_cache
from repro.core.parallel import (
    MeasurementTask,
    execute_task,
    resolve_jobs,
    run_measurement_matrix,
    task_digest,
)
from repro.core.scale import SimScale
from repro.workloads.catalog import HOTEL_FUNCTIONS, get_function

SCALE = SimScale(time=4096, space=32)


@pytest.fixture(autouse=True)
def _fresh_checkpoints():
    clear_boot_checkpoint_cache()
    yield
    clear_boot_checkpoint_cache()


def sample_tasks():
    return [
        MeasurementTask(function="aes-go", isa="riscv",
                        time=SCALE.time, space=SCALE.space),
        MeasurementTask(function="fibonacci-python", isa="riscv",
                        time=SCALE.time, space=SCALE.space),
        MeasurementTask(function=HOTEL_FUNCTIONS[0].name, isa="riscv",
                        time=SCALE.time, space=SCALE.space, db="redis"),
        MeasurementTask(function=HOTEL_FUNCTIONS[5].name, isa="x86",
                        time=SCALE.time, space=SCALE.space, db="redis"),
    ]


def assert_identical(left, right):
    """Full-stat equality: every counter of cold and warm must match.

    The raw dumps are compared on their nonzero entries: a harness that
    reuses a cached boot checkpoint never instantiates the atomic setup
    core, so its zero-valued stat names are legitimately absent from the
    dump while every measured counter must still agree exactly.
    """
    assert left.function == right.function
    assert left.isa == right.isa
    for phase in ("cold", "warm"):
        left_stats = getattr(left, phase)
        right_stats = getattr(right, phase)
        assert left_stats.as_dict() == right_stats.as_dict(), phase
        left_dump = {k: v for k, v in left_stats.raw_dump.items() if v}
        right_dump = {k: v for k, v in right_stats.raw_dump.items() if v}
        assert left_dump == right_dump, phase
    assert len(left.records) == len(right.records)


class TestSerialParallelEquality:
    def test_parallel_matches_serial_bit_for_bit(self):
        tasks = sample_tasks()
        serial = run_measurement_matrix(tasks, jobs=1, cache=False)
        clear_boot_checkpoint_cache()
        parallel = run_measurement_matrix(tasks, jobs=2, cache=False)
        for left, right in zip(serial, parallel):
            assert_identical(left, right)

    def test_matrix_order_is_task_order(self):
        tasks = sample_tasks()
        results = run_measurement_matrix(tasks, jobs=2, cache=False)
        assert [m.function for m in results] == [t.function for t in tasks]
        assert [m.isa for m in results] == [t.isa for t in tasks]

    def test_execute_task_equals_direct_harness(self):
        # The scheduler's unit of work is exactly the serial protocol.
        task = MeasurementTask(function="aes-go", isa="riscv",
                               time=SCALE.time, space=SCALE.space)
        scheduled = execute_task(task)
        clear_boot_checkpoint_cache()
        harness = ExperimentHarness(isa="riscv", scale=SCALE, seed=0)
        direct = harness.measure_function(get_function("aes-go"))
        assert_identical(scheduled, direct)


class TestCacheIdentity:
    def test_cache_hit_returns_identical_measurement(self, tmp_path):
        from repro.core.rescache import ResultCache

        tasks = sample_tasks()[:2]
        cache = ResultCache(tmp_path / "rescache")
        cold = run_measurement_matrix(tasks, jobs=1, cache=cache)
        assert cache.hits == 0 and cache.misses == len(tasks)

        clear_boot_checkpoint_cache()
        warm = run_measurement_matrix(tasks, jobs=1, cache=cache)
        assert cache.hits == len(tasks)
        for left, right in zip(cold, warm):
            assert_identical(left, right)

    def test_hotel_tasks_cache_too(self, tmp_path):
        from repro.core.rescache import ResultCache

        task = MeasurementTask(function=HOTEL_FUNCTIONS[1].name, isa="riscv",
                               time=SCALE.time, space=SCALE.space, db="redis")
        cache = ResultCache(tmp_path / "rescache")
        (cold,) = run_measurement_matrix([task], jobs=1, cache=cache)
        (warm,) = run_measurement_matrix([task], jobs=1, cache=cache)
        assert cache.hits == 1
        assert_identical(cold, warm)


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_default_is_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_floor_of_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestDigests:
    def test_digest_distinguishes_every_key_component(self):
        base = MeasurementTask(function="aes-go", isa="riscv",
                               time=SCALE.time, space=SCALE.space)
        variants = [
            MeasurementTask(function="auth-go", isa="riscv",
                            time=SCALE.time, space=SCALE.space),
            MeasurementTask(function="aes-go", isa="x86",
                            time=SCALE.time, space=SCALE.space),
            MeasurementTask(function="aes-go", isa="riscv",
                            time=SCALE.time * 2, space=SCALE.space),
            MeasurementTask(function="aes-go", isa="riscv",
                            time=SCALE.time, space=SCALE.space * 2),
            MeasurementTask(function="aes-go", isa="riscv",
                            time=SCALE.time, space=SCALE.space, seed=1),
            MeasurementTask(function="aes-go", isa="riscv",
                            time=SCALE.time, space=SCALE.space, db="redis"),
            MeasurementTask(function="aes-go", isa="riscv",
                            time=SCALE.time, space=SCALE.space, requests=4),
        ]
        digests = {task_digest(task) for task in variants}
        digests.add(task_digest(base))
        assert len(digests) == len(variants) + 1

    def test_digest_sees_platform_config(self):
        from repro.core.config import platform_for
        from repro.core.dse import DesignSpace

        base = MeasurementTask(function="aes-go", isa="riscv",
                               time=SCALE.time, space=SCALE.space)
        space = DesignSpace(isa="riscv", scale=SCALE)
        tweaked = MeasurementTask(
            function="aes-go", isa="riscv", time=SCALE.time,
            space=SCALE.space,
            platform=space._platform_for({"l2_size": 64 * 1024}))
        stock = MeasurementTask(
            function="aes-go", isa="riscv", time=SCALE.time,
            space=SCALE.space, platform=platform_for("riscv"))
        assert task_digest(base) == task_digest(stock)
        assert task_digest(base) != task_digest(tweaked)
