"""Chaos measurements through the core: spec identity, determinism,
cache bypass, and the zero-overhead disabled path."""

import pickle

import pytest

from repro.core.harness import clear_boot_checkpoint_cache
from repro.core.parallel import execute_task, run_measurement_matrix
from repro.core.rescache import ResultCache
from repro.core.scale import SimScale
from repro.core.spec import MeasurementSpec
from repro.faults import FaultPlan, FaultSpec

SCALE = SimScale(time=4096, space=32)


@pytest.fixture(autouse=True)
def _fresh_checkpoints():
    clear_boot_checkpoint_cache()
    yield
    clear_boot_checkpoint_cache()


def chaos_spec(**overrides):
    fields = dict(function="fibonacci-go", isa="riscv",
                  time=SCALE.time, space=SCALE.space,
                  faults=FaultPlan.chaos(seed=7))
    fields.update(overrides)
    return MeasurementSpec(**fields)


class TestSpecWithFaults:
    def test_identity_includes_the_fault_plan(self):
        assert chaos_spec() == chaos_spec()
        assert chaos_spec() != chaos_spec(faults=FaultPlan.chaos(seed=8))
        assert chaos_spec() != chaos_spec(faults=None)
        assert hash(chaos_spec()) == hash(chaos_spec())

    def test_replace_swaps_the_plan(self):
        spec = chaos_spec()
        plain = spec.replace(faults=None)
        assert plain.faults is None
        assert plain.function == spec.function

    def test_pickles_with_the_plan(self):
        spec = chaos_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.faults == spec.faults

    def test_repr_mentions_faults(self):
        assert "faults=" in repr(chaos_spec())
        assert "faults=" not in repr(chaos_spec(faults=None))


class TestChaosDeterminism:
    def test_two_chaos_runs_bit_identical(self):
        """The acceptance property: same plan, same seed, bit-identical
        measurement — records, metrics and raw stat dumps included."""
        first = execute_task(chaos_spec())
        clear_boot_checkpoint_cache()
        second = execute_task(chaos_spec())
        assert first.as_dict(full=True) == second.as_dict(full=True)

    def test_chaos_actually_injects(self):
        plan = FaultPlan.chaos(seed=7, rate=0.3)
        measurement = execute_task(chaos_spec(faults=plan))
        injected = sum(
            amount for record in measurement.records
            for key, amount in record.metrics.items()
            if key.startswith("faults."))
        assert injected > 0

    def test_different_fault_seeds_diverge(self):
        rate = 0.3
        low = execute_task(chaos_spec(faults=FaultPlan.chaos(seed=1, rate=rate)))
        clear_boot_checkpoint_cache()
        high = execute_task(chaos_spec(faults=FaultPlan.chaos(seed=2, rate=rate)))

        def fault_profile(measurement):
            return [sorted(record.metrics.items())
                    for record in measurement.records]

        assert fault_profile(low) != fault_profile(high)


class TestZeroOverheadDisabledPath:
    def test_no_plan_bit_identical_to_plain_measurement(self):
        """With faults=None the measurement must equal the pre-fault
        pipeline's output exactly — the fault layer adds nothing."""
        plain_spec = chaos_spec(faults=None)
        first = execute_task(plain_spec)
        clear_boot_checkpoint_cache()
        second = execute_task(plain_spec)
        assert first.as_dict(full=True) == second.as_dict(full=True)
        for record in first.records:
            assert not any(key.startswith(("faults.", "retries.",
                                           "resilience."))
                           for key in record.metrics)

    def test_empty_plan_equals_no_plan(self):
        """A plan with no armed sites must not perturb the measurement:
        the hook plumbing itself is behaviourally invisible."""
        plain = execute_task(chaos_spec(faults=None))
        clear_boot_checkpoint_cache()
        empty = execute_task(chaos_spec(faults=FaultPlan(seed=7, specs=())))
        plain_dict = plain.as_dict(full=True)
        empty_dict = empty.as_dict(full=True)
        assert plain_dict == empty_dict


class TestCacheBypass:
    def test_faulted_specs_bypass_the_result_cache(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = chaos_spec()
        run_measurement_matrix([spec], jobs=1, cache=cache)
        assert cache.stats()["entries"] == 0  # not written...
        plain = spec.replace(faults=None)
        run_measurement_matrix([plain], jobs=1, cache=cache)
        assert cache.stats()["entries"] == 1  # ...while plain specs are

    def test_chaos_result_not_served_from_plain_entry(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        plain = chaos_spec(faults=None)
        run_measurement_matrix([plain], jobs=1, cache=cache)
        clear_boot_checkpoint_cache()
        chaotic = chaos_spec(faults=FaultPlan.chaos(seed=7, rate=0.3))
        [measurement] = run_measurement_matrix([chaotic], jobs=1, cache=cache)
        injected = sum(
            amount for record in measurement.records
            for key, amount in record.metrics.items()
            if key.startswith("faults."))
        assert injected > 0  # freshly simulated, not the cached plain run
