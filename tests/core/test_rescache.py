"""Result-cache semantics, CLI maintenance, and the policy-rebuild fix."""

import os
import pickle

import pytest

from repro.cli import main
from repro.core.rescache import (
    ResultCache,
    cache_enabled,
    default_cache_dir,
    measurement_digest,
    resolve_cache,
)


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = measurement_digest("aes-go", "riscv", 2048, 32, 0, ("fp",))
        assert cache.get(digest) is None
        assert cache.put(digest, {"payload": 42})
        assert cache.get(digest) == {"payload": 42}
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = measurement_digest("aes-go", "riscv", 2048, 32, 0, ("fp",))
        cache.put(digest, "value")
        path = tmp_path / ("%s.pkl" % digest)
        # Different corruptions raise different exceptions out of
        # pickle.load (UnpicklingError, ValueError, EOFError); every
        # one of them must read as a miss, never crash.
        for garbage in (b"not a pickle", b"garbage\n", b""):
            path.write_bytes(garbage)
            assert cache.get(digest) is None

    def test_version_skew_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = measurement_digest("aes-go", "riscv", 2048, 32, 0, ("fp",))
        path = tmp_path / ("%s.pkl" % digest)
        with open(path, "wb") as handle:
            pickle.dump({"version": -1, "measurement": "stale"}, handle)
        assert cache.get(digest) is None

    def test_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(3):
            cache.put(measurement_digest("fn%d" % index, "riscv", 1, 1, 0, ()),
                      index)
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        assert cache.clear() == 3
        assert cache.stats()["entries"] == 0

    def test_unusable_root_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        cache = ResultCache(blocker / "sub")
        digest = measurement_digest("aes-go", "riscv", 2048, 32, 0, ())
        assert cache.get(digest) is None
        assert not cache.put(digest, "value")

    def test_digest_includes_code_salt(self, monkeypatch):
        import repro.core.rescache as rescache

        before = measurement_digest("aes-go", "riscv", 2048, 32, 0, ())
        monkeypatch.setattr(rescache, "CODE_SALT", "rescache-v999")
        after = measurement_digest("aes-go", "riscv", 2048, 32, 0, ())
        assert before != after


class TestEnvironmentKnobs:
    def test_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_cache_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        assert not cache_enabled()
        assert resolve_cache(None) is None
        monkeypatch.setenv("REPRO_RESULT_CACHE", "1")
        assert cache_enabled()

    def test_resolve_cache_variants(self, tmp_path):
        assert resolve_cache(False) is None
        explicit = ResultCache(tmp_path)
        assert resolve_cache(explicit) is explicit
        assert isinstance(resolve_cache(True), ResultCache)


class TestCacheCli:
    def test_stats_and_clear(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ResultCache()
        cache.put(measurement_digest("aes-go", "riscv", 2048, 32, 0, ()), 1)

        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out

        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out
        assert cache.stats()["entries"] == 0


class TestPolicyRebuild:
    def test_flush_and_restore_preserve_policy_kwargs(self):
        from repro.sim.mem.cache import Cache

        # A random-policy cache built with a custom seed must rebuild the
        # same policies on flush/load_state, not silently fall back to
        # the per-set default.
        cache = Cache("l1t", size_bytes=4096, assoc=2, line_size=64,
                      policy="random", policy_kwargs={"seed": 1234})
        for line in range(64):
            cache.access_line(line)
        cache.flush()
        rebuilt = cache._policies[0]
        reference = Cache("l1r", size_bytes=4096, assoc=2, line_size=64,
                          policy="random", policy_kwargs={"seed": 1234})
        assert rebuilt._rng.getstate() == reference._policies[0]._rng.getstate()

    def test_state_round_trip_with_kwargs(self):
        from repro.sim.mem.cache import Cache

        cache = Cache("l1t", size_bytes=4096, assoc=2, line_size=64,
                      policy="random", policy_kwargs={"seed": 7})
        for line in range(200):
            cache.access_line(line * 3, write=(line % 5 == 0))
        state = cache.state_dict()

        twin = Cache("l1t", size_bytes=4096, assoc=2, line_size=64,
                     policy="random", policy_kwargs={"seed": 7})
        twin.load_state(state)
        assert twin.state_dict() == state

    def test_make_policy_rejects_unknown_kwargs(self):
        from repro.sim.mem.replacement import make_policy

        with pytest.raises(TypeError):
            make_policy("lru", banana=1)


class TestScoreboardSizing:
    def test_large_register_files_do_not_crash(self):
        # The satellite fix: reg_ready must scale with O3Config, not a
        # hard-coded 160.
        from repro.core.config import platform_for
        from repro.core.harness import ExperimentHarness
        from repro.core.scale import SimScale
        from repro.sim.cpu.o3 import O3Config
        from repro.core.config import PlatformConfig
        from repro.workloads.catalog import get_function

        base = platform_for("riscv")
        platform = PlatformConfig(
            isa="riscv", os_name=base.os_name,
            kernel_version=base.kernel_version, compiler=base.compiler,
            num_cores=base.num_cores, mem_config=base.mem_config,
            o3_config=O3Config(int_regs=1024, float_regs=1024),
        )
        harness = ExperimentHarness(isa="riscv",
                                    scale=SimScale(time=4096, space=32),
                                    platform_config=platform)
        measurement = harness.measure_function(get_function("aes-go"))
        assert measurement.cold.cycles > 0

    def test_tiny_config_keeps_isa_floor(self):
        # Even a config with small rename files must cover the ISA's
        # architectural register indices.
        from repro.sim.isa.base import NUM_ARCH_REGS
        from repro.sim.cpu.o3 import O3Config

        cfg = O3Config(int_regs=16, float_regs=16)
        floor = max(NUM_ARCH_REGS + 32, cfg.int_regs + cfg.float_regs)
        assert floor >= NUM_ARCH_REGS
