"""Sampling calibration: the ``accurate`` preset must hold sampled CPI
within the documented 5% of full-detail CPI on every seed function, with
the instruction stream functionally exact throughout."""

import pytest

from repro.core.calibration import CalibrationReport, calibrate
from repro.sim.sampling import SamplingConfig

CPI_BOUND = 0.05


@pytest.fixture(scope="module")
def report():
    return calibrate(SamplingConfig.parse("accurate"))


def test_requires_a_sampling_config():
    with pytest.raises(ValueError):
        calibrate(None)


def test_covers_full_catalog(report):
    from repro.workloads.catalog import (
        HOTEL_FUNCTIONS,
        ONLINESHOP_FUNCTIONS,
        STANDALONE_FUNCTIONS,
    )

    expected = {fn.name for fn in STANDALONE_FUNCTIONS}
    expected |= {fn.name for fn in ONLINESHOP_FUNCTIONS}
    expected |= {fn.name for fn in HOTEL_FUNCTIONS}
    assert {row.function for row in report.rows} == expected
    # Cold and warm phases for every function.
    assert len(report.rows) == 2 * len(expected)


def test_functionally_exact(report):
    assert report.functional_exact
    for row in report.rows:
        assert row.insts_match, row.function


def test_cpi_error_within_documented_bound(report):
    report.assert_bounded(CPI_BOUND)
    assert report.worst_cpi_error <= CPI_BOUND


def test_assert_bounded_raises_when_exceeded(report):
    if report.worst_cpi_error == 0.0:
        pytest.skip("zero measured error; nothing to exceed")
    with pytest.raises(AssertionError):
        report.assert_bounded(report.worst_cpi_error / 2)


def test_report_renders(report):
    text = report.render()
    assert "worst" in text
    assert report.worst.function in text


def test_report_round_trips_rows(report):
    assert isinstance(report, CalibrationReport)
    for row in report.rows:
        assert row.full_cycles > 0
        assert row.sampled_cycles > 0
        assert row.phase in ("cold", "warm")
