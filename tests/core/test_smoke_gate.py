"""Phase-gate semantics for the bench-smoke trajectory: the gate must
fail closed on broken baselines and surface (not hide) brand-new phases."""

import pytest

from repro.core.smoke import (
    GATED_PHASES,
    phase_gate_skips,
    phase_regressions,
    wall_regression,
)


def entry(**phases):
    """A minimal trajectory entry with the given phase wall-clocks."""
    data = {"wall_s": 10.0}
    for name, wall in phases.items():
        data[name] = {"wall_s": wall}
    return data


class TestPhaseRegressions:
    def test_normal_ratio(self):
        previous = entry(sampled=2.0, ml_infer=1.0)
        current = entry(sampled=3.0, ml_infer=1.0)
        changes = phase_regressions(previous, current)
        assert changes["sampled"] == pytest.approx(0.5)
        assert changes["ml_infer"] == pytest.approx(0.0)

    def test_new_phase_is_skipped_not_gated(self):
        """First append after a phase lands: no baseline, no gate — the
        canonical case is ml_infer's first appearance."""
        previous = entry(sampled=2.0)
        current = entry(sampled=2.0, ml_infer=1.0)
        changes = phase_regressions(previous, current)
        assert "ml_infer" not in changes
        assert phase_gate_skips(previous, current) == ["ml_infer"]

    def test_no_previous_entry_gates_nothing(self):
        current = entry(sampled=2.0, ml_infer=1.0)
        assert phase_regressions(None, current) == {}
        assert set(phase_gate_skips(None, current)) == {"sampled", "ml_infer"}

    def test_zero_baseline_wall_fails_closed(self):
        previous = entry(sampled=0.0)
        current = entry(sampled=2.0)
        with pytest.raises(ValueError, match="baseline wall_s"):
            phase_regressions(previous, current)

    def test_missing_baseline_wall_fails_closed(self):
        previous = {"wall_s": 10.0, "sampled": {"note": "no wall recorded"}}
        current = entry(sampled=2.0)
        with pytest.raises(ValueError, match="baseline wall_s"):
            phase_regressions(previous, current)

    def test_vanished_phase_fails_closed(self):
        previous = entry(ml_infer=1.0)
        current = entry()
        with pytest.raises(ValueError, match="vanished"):
            phase_regressions(previous, current)

    def test_zero_current_wall_fails_closed(self):
        previous = entry(jit=1.0)
        current = entry(jit=0.0)
        with pytest.raises(ValueError, match="failing closed"):
            phase_regressions(previous, current)

    def test_ml_infer_is_gated(self):
        assert "ml_infer" in GATED_PHASES


class TestWallRegression:
    def test_missing_walls_are_uncomparable(self):
        assert wall_regression(None, {"wall_s": 1.0}) is None
        assert wall_regression({"wall_s": 0.0}, {"wall_s": 1.0}) is None

    def test_ratio(self):
        assert wall_regression({"wall_s": 2.0},
                               {"wall_s": 3.0}) == pytest.approx(0.5)
