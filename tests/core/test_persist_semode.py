"""Persistence, stats.txt rendering, and SE-mode tests."""

import json

import pytest

from repro.core.harness import ExperimentHarness, clear_boot_checkpoint_cache
from repro.core.persist import (
    diff_measurements,
    load_measurements,
    measurement_to_dict,
    render_stats_txt,
    save_measurements,
    write_stats_txt,
)
from repro.core.scale import SimScale
from repro.sim.isa import ir
from repro.sim.semode import fs_vs_se_gap, se_run
from repro.workloads.catalog import get_function

SCALE = SimScale(time=2048, space=32)


@pytest.fixture(autouse=True)
def _fresh_checkpoints():
    clear_boot_checkpoint_cache()
    yield
    clear_boot_checkpoint_cache()


def measure(name="fibonacci-go", seed=0):
    harness = ExperimentHarness(isa="riscv", scale=SCALE, seed=seed)
    return harness.measure_function(get_function(name))


class TestPersistence:
    def test_measurement_to_dict_fields(self):
        snapshot = measurement_to_dict(measure())
        assert snapshot["function"] == "fibonacci-go"
        assert snapshot["isa"] == "riscv"
        assert snapshot["cold"]["cycles"] > snapshot["warm"]["cycles"]
        assert snapshot["requests"] == 10
        assert snapshot["cold"]["cpi"] > 0

    def test_save_load_roundtrip(self, tmp_path):
        measurement = measure()
        path = save_measurements({"fibonacci-go": measurement},
                                 tmp_path / "run.json",
                                 metadata={"isa": "riscv"})
        loaded = load_measurements(path)
        assert loaded["fibonacci-go"]["cold"]["cycles"] == measurement.cold.cycles

    def test_saved_file_is_valid_json(self, tmp_path):
        path = save_measurements({"fibonacci-go": measure()},
                                 tmp_path / "run.json")
        document = json.loads(path.read_text())
        assert document["format_version"] == 1

    def test_version_check_on_load(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "measurements": {}}))
        with pytest.raises(ValueError):
            load_measurements(path)

    def test_diff_flags_regressions(self, tmp_path):
        measurement = measure()
        path = save_measurements({"fibonacci-go": measurement},
                                 tmp_path / "baseline.json")
        baseline = load_measurements(path)
        # Fabricate a 2x regression.
        regressed = {
            "fibonacci-go": {
                "cold": {"cycles": measurement.cold.cycles * 2},
                "warm": {"cycles": measurement.warm.cycles},
            }
        }
        ratios = diff_measurements(baseline, regressed)
        assert ratios["fibonacci-go"] == pytest.approx(2.0)


class TestStatsTxt:
    def test_render_layout(self):
        text = render_stats_txt({"sys.cpu1.o3.numCycles": 1234,
                                 "sys.core1.l1d.missRate": 0.125},
                                descriptions={"sys.cpu1.o3.numCycles": "cycles"})
        assert text.startswith("---------- Begin Simulation Statistics")
        assert "sys.cpu1.o3.numCycles" in text
        assert "# cycles" in text
        assert "0.125000" in text

    def test_write_to_disk(self, tmp_path):
        measurement = measure()
        path = write_stats_txt(measurement.cold.raw_dump, tmp_path / "stats.txt")
        content = path.read_text()
        assert "sys.core1.l1d.misses" in content

    def test_real_dump_renders(self):
        measurement = measure()
        text = render_stats_txt(measurement.cold.raw_dump)
        # Every stat made it through.
        assert text.count("\n") >= len(measurement.cold.raw_dump)


class TestSEMode:
    def make_program(self, syscalls=2):
        program = ir.Program("userprog", seed=4)
        buf = program.space.alloc("buf", 32 * 1024)
        body = ir.Seq([
            ir.compute_block(ialu=2000),
            ir.touch_block(buf, loads=256, stores=32),
            ir.Block([ir.IROp(ir.OP_SYSCALL, count=syscalls)], kind="stack"),
        ])
        program.add_routine(ir.Routine("main", body), entry=True)
        return program

    def test_se_run_executes_program(self):
        result = se_run(self.make_program())
        assert result.cycles > 0
        assert result.instructions > 2000

    def test_syscalls_counted(self):
        result = se_run(self.make_program(syscalls=3))
        assert result.syscalls >= 3

    def test_se_mode_needs_no_boot(self):
        # A fresh SE system starts cold: first touch misses.
        result = se_run(self.make_program())
        assert result.stats["se.core0.l1d.misses"] > 0

    def test_atomic_model_selectable(self):
        o3 = se_run(self.make_program(), model="o3")
        atomic = se_run(self.make_program(), model="atomic")
        assert atomic.cycles > o3.cycles  # no pipeline overlap

    def test_fs_vs_se_gap_quantifies_the_stack(self):
        fs_cold, se_cycles = fs_vs_se_gap(get_function("fibonacci-python"), SCALE)
        # SE mode sees the user program on an empty machine, FS mode the
        # booted platform: the FS cold number is the meaningful one, but
        # both include the runtime init instructions here — the gap is
        # microarchitectural context, bounded but real.
        assert fs_cold > 0 and se_cycles > 0
