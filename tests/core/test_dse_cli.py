"""Tests for the DSE API, the lukewarm protocol, and the CLI."""

import pytest

from repro.cli import main
from repro.core.dse import DesignSpace, KNOWN_AXES
from repro.core.harness import ExperimentHarness, clear_boot_checkpoint_cache
from repro.core.scale import SimScale
from repro.workloads.catalog import get_function

SCALE = SimScale(time=2048, space=32)


@pytest.fixture(autouse=True)
def _isolated_checkpoints():
    clear_boot_checkpoint_cache()
    yield
    clear_boot_checkpoint_cache()


class TestDesignSpace:
    def test_cartesian_product_size(self):
        space = DesignSpace(isa="riscv", scale=SCALE)
        space.axis("l2_size", [128 * 1024, 512 * 1024])
        space.axis("rob_entries", [64, 192])
        result = space.sweep(get_function("fibonacci-go"))
        assert len(result) == 4
        settings = {tuple(sorted(point.settings.items())) for point in result.points}
        assert len(settings) == 4

    def test_bigger_l2_never_slower_cold(self):
        space = DesignSpace(isa="riscv", scale=SCALE)
        space.axis("l2_size", [64 * 1024, 1024 * 1024])
        result = space.sweep(get_function("fibonacci-python"))
        small, big = result.points
        assert big.cold_cycles <= small.cold_cycles

    def test_prefetcher_helps_cold_start(self):
        space = DesignSpace(isa="riscv", scale=SCALE)
        space.axis("prefetch_i_degree", [0, 4])
        result = space.sweep(get_function("fibonacci-python"))
        off, on = result.points
        assert on.cold_cycles < off.cold_cycles

    def test_sensitivity_identifies_the_live_knob(self):
        space = DesignSpace(isa="riscv", scale=SCALE)
        space.axis("prefetch_i_degree", [0, 4])
        space.axis("sq_entries", [32, 33])  # inert for this workload
        result = space.sweep(get_function("fibonacci-python"))
        sensitivity = result.sensitivity()
        assert sensitivity["prefetch_i_degree"] > sensitivity["sq_entries"]

    def test_best_and_worst(self):
        space = DesignSpace(isa="riscv", scale=SCALE)
        space.axis("l2_size", [64 * 1024, 512 * 1024])
        result = space.sweep(get_function("aes-go"))
        assert result.best().cold_cycles <= result.worst().cold_cycles

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace().axis("btb_rainbows", [1])

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace().axis("l2_size", [])

    def test_sweep_without_axes_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace().sweep(get_function("aes-go"))

    def test_render_mentions_axes(self):
        space = DesignSpace(isa="riscv", scale=SCALE)
        space.axis("replacement", ["lru", "fifo"])
        result = space.sweep(get_function("aes-go"))
        text = result.render()
        assert "replacement" in text and "lru" in text

    def test_axes_cover_caches_pipeline_and_prefetchers(self):
        # The §6 wishlist: caches, branch predictors (penalty), prefetchers.
        assert "l2_size" in KNOWN_AXES
        assert "mispredict_penalty" in KNOWN_AXES
        assert "prefetch_i_degree" in KNOWN_AXES


class TestLukewarm:
    def test_lukewarm_between_warm_and_cold(self):
        harness = ExperimentHarness(isa="riscv", scale=SimScale(time=512, space=16))
        measurement = harness.measure_lukewarm(
            function=get_function("aes-go"),
            intruder=get_function("fibonacci-python"),
        )
        assert measurement.warm.cycles < measurement.lukewarm.cycles
        assert measurement.lukewarm.cycles < measurement.cold.cycles
        assert measurement.lukewarm_slowdown > 1.2

    def test_lukewarm_instruction_count_matches_warm(self):
        # Lukewarm is a microarchitectural effect: same software work.
        harness = ExperimentHarness(isa="riscv", scale=SimScale(time=512, space=16))
        measurement = harness.measure_lukewarm(
            function=get_function("auth-go"),
            intruder=get_function("fibonacci-nodejs"),
        )
        assert measurement.lukewarm.instructions == measurement.warm.instructions


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fibonacci-go" in out
        assert "hotel-profile-go" in out

    def test_measure(self, capsys):
        assert main(["measure", "fibonacci-go", "--time-scale", "2048",
                     "--space-scale", "32"]) == 0
        out = capsys.readouterr().out
        assert "cold (request 1)" in out
        assert "cold/warm cycle ratio" in out

    def test_compare_two_isas(self, capsys):
        assert main(["compare", "aes-go", "--isas", "riscv,x86",
                     "--time-scale", "2048", "--space-scale", "32"]) == 0
        out = capsys.readouterr().out
        assert "riscv_cold_cyc" in out

    def test_sizes_all_arches(self, capsys):
        assert main(["sizes"]) == 0
        out = capsys.readouterr().out
        assert "n/a" not in out.split("\n")[1]  # fibonacci-go exists everywhere

    def test_sizes_single_arch(self, capsys):
        assert main(["sizes", "--arch", "riscv"]) == 0
        out = capsys.readouterr().out
        assert "132.62MB" in out

    def test_dse(self, capsys):
        assert main(["dse", "fibonacci-go", "--axis",
                     "prefetch_i_degree=0,4", "--time-scale", "2048",
                     "--space-scale", "32"]) == 0
        out = capsys.readouterr().out
        assert "sensitivity" in out
        assert "best point" in out

    def test_dse_bad_axis_spec(self):
        with pytest.raises(SystemExit):
            main(["dse", "fibonacci-go", "--axis", "l2_size"])

    def test_unknown_function_errors(self):
        with pytest.raises(KeyError):
            main(["measure", "no-such-function"])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
