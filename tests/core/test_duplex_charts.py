"""Duplex (two-core) harness and ASCII chart tests."""

import pytest

from repro.analysis.charts import grouped_hbar_chart, sparkline
from repro.core.duplex import DuplexHarness, build_client_program
from repro.core.harness import clear_boot_checkpoint_cache
from repro.core.results import MeasurementTable
from repro.core.scale import SimScale
from repro.workloads.catalog import get_function

SCALE = SimScale(time=2048, space=32)


@pytest.fixture(autouse=True)
def _fresh_checkpoints():
    clear_boot_checkpoint_cache()
    yield
    clear_boot_checkpoint_cache()


class TestDuplex:
    def test_end_to_end_decomposition(self):
        harness = DuplexHarness(isa="riscv", scale=SCALE)
        measurement = harness.measure_duplex(get_function("fibonacci-go"))
        cold = measurement.cold_sample
        assert cold.cold
        assert cold.response_time == \
            cold.client_cycles + cold.network_cycles + cold.server_cycles
        assert cold.client_cycles > 0
        assert cold.network_cycles > 0

    def test_server_dominates_response_time(self):
        # The thesis measures the server core because that is where the
        # request's time goes.
        harness = DuplexHarness(isa="riscv", scale=SCALE)
        measurement = harness.measure_duplex(get_function("fibonacci-python"))
        assert measurement.cold_sample.server_share > 0.7
        assert measurement.warm_sample.server_share > 0.5

    def test_warm_end_to_end_faster(self):
        harness = DuplexHarness(isa="riscv", scale=SCALE)
        measurement = harness.measure_duplex(get_function("aes-go"))
        assert measurement.warm_sample.response_time < \
            measurement.cold_sample.response_time

    def test_server_stats_match_basic_harness_shape(self):
        harness = DuplexHarness(isa="riscv", scale=SCALE)
        measurement = harness.measure_duplex(get_function("auth-go"))
        assert measurement.cold.cycles > measurement.warm.cycles
        assert measurement.cold.l2_misses >= measurement.warm.l2_misses

    def test_network_latency_knob(self):
        harness = DuplexHarness(isa="riscv", scale=SCALE)
        slow = harness.measure_duplex(get_function("fibonacci-go"),
                                      network_oneway_cycles=2_000_000)
        clear_boot_checkpoint_cache()
        harness2 = DuplexHarness(isa="riscv", scale=SCALE)
        fast = harness2.measure_duplex(get_function("fibonacci-go"),
                                       network_oneway_cycles=2_000)
        assert slow.warm_sample.response_time > fast.warm_sample.response_time

    def test_client_program_scales_with_payload(self):
        small = build_client_program("f", 64, 64, SCALE)
        large = build_client_program("f", 64 * 1024, 64 * 1024, SCALE)
        from repro.sim.isa import get_isa

        isa = get_isa("riscv")
        assert isa.assemble(large).dynamic_length() > \
            isa.assemble(small).dynamic_length()


class TestCharts:
    def test_bars_scale_to_maximum(self):
        chart = grouped_hbar_chart("t", ["a", "b"],
                                   {"v": [10, 20]}, width=10)
        lines = [line for line in chart.splitlines() if "█" in line]
        assert lines[1].count("█") == 10          # the max fills the width
        assert 4 <= lines[0].count("█") <= 6      # half-scale bar

    def test_value_formatting(self):
        chart = grouped_hbar_chart("t", ["a"], {"v": [1_500_000]})
        assert "1.50M" in chart

    def test_series_length_checked(self):
        with pytest.raises(ValueError):
            grouped_hbar_chart("t", ["a", "b"], {"v": [1]})

    def test_empty_labels_rejected(self):
        with pytest.raises(ValueError):
            grouped_hbar_chart("t", [], {})

    def test_sparkline_levels(self):
        line = sparkline([0, 10])
        assert line[0] == "▁" and line[1] == "█"
        assert sparkline([5, 5, 5]) == "▁▁▁"
        assert sparkline([]) == ""

    def test_measurement_table_chart(self):
        table = MeasurementTable("demo", ["cold", "warm"])
        table.add_row("fn-a", 100, 10)
        table.add_row("fn-b", 50, 20)
        chart = table.render_chart(width=20)
        assert "fn-a" in chart and "cold" in chart

    def test_table_chart_requires_numeric_columns(self):
        table = MeasurementTable("demo", ["note"])
        table.add_row("fn", "text")
        with pytest.raises(ValueError):
            table.render_chart()
