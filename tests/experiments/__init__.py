"""Tier-1 tests for the declarative experiment layer."""
