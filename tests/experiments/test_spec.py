"""ExperimentSpec: roundtrip, fingerprints, matrix expansion, validation."""

import json

import pytest

from repro.experiments import ExperimentSpec, platform_for_memory
from repro.experiments.spec import (
    MAX_L2_BYTES,
    MEASURE_KNOBS,
    MEMORY_REFERENCE_MB,
    MIN_L2_BYTES,
    SPEC_SCHEMA,
)


def sweep_spec(**overrides):
    document = {
        "name": "sweep",
        "kind": "measure",
        "base": {"function": "hotel-profile-go", "db": "cassandra",
                 "time_scale": 2048, "space_scale": 32},
        "axes": [["memory_mb", [256, 512]], ["isa", ["riscv", "x86"]]],
        "cost": {"usd_per_kwh": 0.25},
    }
    document.update(overrides)
    return ExperimentSpec.from_dict(document)


class TestRoundtrip:
    def test_dict_roundtrip_is_identity(self):
        spec = sweep_spec()
        document = spec.as_dict()
        again = ExperimentSpec.from_dict(document)
        assert again == spec
        assert again.as_dict() == document
        assert again.fingerprint() == spec.fingerprint()

    def test_as_dict_resolves_defaults(self):
        spec = ExperimentSpec.from_dict({"name": "mini", "kind": "measure"})
        document = spec.as_dict()
        assert document["schema"] == SPEC_SCHEMA
        assert document["base"] == dict(MEASURE_KNOBS)
        assert document["axes"] == []
        assert document["cost"] == {}

    def test_json_wire_form_roundtrips(self):
        spec = sweep_spec()
        wire = json.dumps(spec.as_dict())
        assert ExperimentSpec.from_dict(json.loads(wire)) == spec

    def test_yaml_roundtrip(self):
        yaml = pytest.importorskip("yaml")
        spec = sweep_spec()
        again = ExperimentSpec.from_yaml(yaml.safe_dump(spec.as_dict()))
        assert again == spec

    def test_schema_mismatch_rejected(self):
        document = sweep_spec().as_dict()
        document["schema"] = "repro.experiments.spec/v99"
        with pytest.raises(ValueError, match="schema"):
            ExperimentSpec.from_dict(document)

    def test_unknown_top_level_key_rejected(self):
        document = sweep_spec().as_dict()
        document["extra"] = 1
        with pytest.raises(ValueError, match="unknown spec keys"):
            ExperimentSpec.from_dict(document)


class TestFingerprint:
    def test_stable_across_spellings(self):
        via_dict = sweep_spec()
        via_ctor = ExperimentSpec(
            name="sweep", kind="measure",
            base={"function": "hotel-profile-go", "db": "cassandra",
                  "time_scale": 2048, "space_scale": 32},
            axes=(("memory_mb", (256, 512)), ("isa", ("riscv", "x86"))),
            cost={"usd_per_kwh": 0.25})
        assert via_ctor.fingerprint() == via_dict.fingerprint()
        assert via_ctor == via_dict

    def test_sensitive_to_every_part(self):
        spec = sweep_spec()
        assert spec.with_base(seed=1).fingerprint() != spec.fingerprint()
        assert sweep_spec(name="other").fingerprint() != spec.fingerprint()
        assert sweep_spec(cost={}).fingerprint() != spec.fingerprint()
        reordered = sweep_spec(axes=[["isa", ["riscv", "x86"]],
                                     ["memory_mb", [256, 512]]])
        assert reordered.fingerprint() != spec.fingerprint()

    def test_catalog_perf_cost_pin(self):
        # The committed artifact embeds this digest; a spec change must
        # consciously regenerate benchmarks/output/experiments/.
        from repro.experiments import get_experiment

        assert get_experiment("perf-cost").fingerprint() == \
            "22aa675dcd208d85"


class TestExpansion:
    def test_declared_order_last_axis_fastest(self):
        points = sweep_spec().expand()
        assert len(points) == 4
        assert [p.settings for p in points] == [
            {"memory_mb": 256, "isa": "riscv"},
            {"memory_mb": 256, "isa": "x86"},
            {"memory_mb": 512, "isa": "riscv"},
            {"memory_mb": 512, "isa": "x86"},
        ]
        assert points[0].knobs["function"] == "hotel-profile-go"
        assert points[0].label() == "memory_mb=256 isa=riscv"

    def test_no_axes_is_a_single_point(self):
        spec = ExperimentSpec(name="solo", kind="measure")
        points = spec.expand()
        assert len(points) == 1 == spec.point_count()
        assert points[0].settings == {}

    def test_measurement_spec_lowering(self):
        points = sweep_spec().expand()
        lowered = points[0].measurement_spec()
        assert lowered.function == "hotel-profile-go"
        assert lowered.isa == "riscv"
        assert lowered.db == "cassandra"
        assert lowered.scale.time == 2048 and lowered.scale.space == 32
        # 256 MB buys half the canonical L2 slice; 512 MB is canonical
        # (platform None keeps measurement digests byte-identical).
        assert lowered.platform.mem_config.l2_size == 256 * 1024
        assert points[2].measurement_spec().platform is None

    def test_hotel_db_defaults_to_cassandra(self):
        spec = ExperimentSpec(name="h", kind="measure",
                              base={"function": "hotel-geo-go"})
        assert spec.expand()[0].measurement_spec().db == "cassandra"
        plain = ExperimentSpec(name="p", kind="measure",
                               base={"function": "fibonacci-go",
                                     "db": "mongodb"})
        assert plain.expand()[0].measurement_spec().db is None

    def test_serve_points_do_not_lower(self):
        spec = ExperimentSpec(name="s", kind="serve")
        with pytest.raises(ValueError, match="measure-kind"):
            spec.expand()[0].measurement_spec()


class TestMemoryPlatform:
    def test_reference_grant_is_canonical(self):
        assert platform_for_memory("riscv", MEMORY_REFERENCE_MB) is None

    def test_slice_scales_and_clamps(self):
        assert platform_for_memory("riscv", 256).mem_config.l2_size \
            == 256 * 1024
        assert platform_for_memory("x86", 2048).mem_config.l2_size \
            == 2048 * 1024
        assert platform_for_memory("riscv", 16).mem_config.l2_size \
            == MIN_L2_BYTES
        assert platform_for_memory("riscv", 65536).mem_config.l2_size \
            == MAX_L2_BYTES

    def test_only_l2_differs_from_canonical(self):
        from repro.core.config import platform_for

        base = platform_for("riscv")
        override = platform_for_memory("riscv", 1024)
        assert override.isa == base.isa
        assert override.o3_config is base.o3_config
        assert override.mem_config.l1d_size == base.mem_config.l1d_size


class TestValidation:
    def test_rejects_bad_inputs(self):
        cases = [
            (dict(name="", kind="measure"), "name"),
            (dict(name="two words", kind="measure"), "whitespace"),
            (dict(name="x", kind="drive"), "kind"),
            (dict(name="x", kind="measure", base={"rps": 9.0}), "knob"),
            (dict(name="x", kind="measure",
                  axes=[("nope", [1])]), "axis"),
            (dict(name="x", kind="measure",
                  axes=[("isa", [])]), "at least one"),
            (dict(name="x", kind="measure",
                  axes=[("isa", ["riscv"]), ("isa", ["x86"])]), "duplicate"),
            (dict(name="x", kind="measure",
                  cost={"usd_per_lightyear": 1.0}), "cost rate"),
            (dict(name="x", kind="measure",
                  base={"memory_mb": 0}), "memory_mb"),
            (dict(name="x", kind="serve",
                  base={"profile": "tsunami"}), "profile"),
            (dict(name="x", kind="serve",
                  base={"placement": "everywhere"}), "placement"),
            (dict(name="x", kind="measure",
                  axes=[("memory_mb", [[128]])]), "scalar"),
        ]
        for kwargs, fragment in cases:
            with pytest.raises(ValueError, match=fragment):
                ExperimentSpec(**kwargs)

    def test_immutable(self):
        spec = sweep_spec()
        with pytest.raises(AttributeError):
            spec.name = "renamed"
        base = spec.base
        base["seed"] = 99
        assert spec.base["seed"] == 0  # accessor returns a copy

    def test_with_base_override(self):
        spec = sweep_spec()
        reseeded = spec.with_base(seed=7)
        assert reseeded.seed == 7
        assert reseeded.name == spec.name
        assert reseeded.axes == spec.axes
        assert spec.seed == 0
