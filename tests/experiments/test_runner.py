"""Runner + artifacts: determinism, row shapes, the results contract."""

import json

import pytest

from repro.core.rescache import ResultCache
from repro.experiments import (
    RESULT_SCHEMA,
    ExperimentSpec,
    instance_ticks,
    load_result,
    render_markdown,
    run_experiment,
)

MEASURE_SPEC = ExperimentSpec(
    name="mini-measure", kind="measure",
    base={"function": "fibonacci-go", "time_scale": 2048,
          "space_scale": 32},
    axes=[("memory_mb", [256, 512])])

SERVE_SPEC = ExperimentSpec(
    name="mini-serve", kind="serve",
    base={"function": "fibonacci-python", "profile": "burst", "rps": 100.0,
          "arrivals": 80},
    axes=[("target_concurrency", [1, 2])])


class TestByteIdentity:
    def test_measure_artifact_identical_cold_then_warm_cache(self, tmp_path):
        # Run 1 populates a fresh cache; run 2 is all cache hits.  The
        # dict->pickle->dict roundtrip must not perturb a single byte.
        cache = ResultCache(tmp_path / "rescache")
        first = run_experiment(MEASURE_SPEC, cache=cache)
        second = run_experiment(MEASURE_SPEC, cache=cache)
        assert cache.hits > 0
        assert first.to_json() == second.to_json()
        assert first.render_markdown() == second.render_markdown()

    def test_serve_artifact_identical_across_runs(self):
        first = run_experiment(SERVE_SPEC)
        second = run_experiment(SERVE_SPEC)
        assert first.to_json() == second.to_json()

    def test_written_files_roundtrip(self, tmp_path):
        result = run_experiment(SERVE_SPEC)
        json_path, md_path = result.write(tmp_path / "out")
        assert json_path.name == "mini-serve.json"
        assert md_path.read_text() == result.render_markdown()
        document = load_result(json_path)
        assert document["schema"] == RESULT_SCHEMA
        assert document["fingerprint"] == SERVE_SPEC.fingerprint()
        assert render_markdown(document) == result.render_markdown()

    def test_load_result_refuses_unknown_schema(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "someone.elses/v7"}))
        with pytest.raises(ValueError, match="unsupported result schema"):
            load_result(bogus)


class TestMeasureRows:
    def test_row_shape_and_cost_columns(self, tmp_path):
        result = run_experiment(MEASURE_SPEC,
                                cache=ResultCache(tmp_path / "c"))
        assert result.columns[:1] == ["memory_mb"]
        assert "p99_ms" in result.columns and "usd_per_1m" in result.columns
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["cold_ms"] > row["warm_ms"] > 0
            assert row["p99_ms"] >= row["p50_ms"] > 0
            assert row["usd_per_1m"] > 0
            detail = row["detail"]
            assert detail["cold_cycles"] > detail["warm_cycles"]
            assert detail["warm_cost"]["total_usd"] > 0
        # Bigger grant => bigger CPU share => lower latency.
        assert result.rows[0]["warm_ms"] > result.rows[1]["warm_ms"]

    def test_progress_reports_every_point(self, tmp_path):
        lines = []
        run_experiment(MEASURE_SPEC, cache=ResultCache(tmp_path / "c"),
                       progress=lines.append)
        assert len(lines) == 2
        assert "memory_mb=256" in lines[0]


class TestServeRows:
    def test_row_shape_and_tail_latency(self):
        result = run_experiment(SERVE_SPEC)
        assert result.columns[0] == "target_concurrency"
        assert "node_failures" not in result.columns  # single-host study
        for row in result.rows:
            assert row["served"] + row["rejected"] == 80
            assert row["p99_ms"] >= row["p50_ms"]
            assert row["instance_gb_s"] > 0
            assert row["usd_per_1m"] > 0

    def test_cluster_studies_grow_cluster_columns(self):
        spec = ExperimentSpec(
            name="mini-cluster", kind="serve",
            base={"function": "fibonacci-python", "rps": 100.0,
                  "arrivals": 60, "nodes": 2, "node_fail": 0.1},
            axes=[("placement", ["binpack", "spread"])])
        result = run_experiment(spec)
        assert result.columns[-2:] == ["node_failures", "cross_node"]
        assert all("node_failures" in row for row in result.rows)


class TestInstanceTicks:
    class FakeResult:
        def __init__(self, samples, finished_at):
            self.samples = samples
            self.finished_at = finished_at

    def test_integrates_stepwise(self):
        # 1 instance over [0,10), 3 over [10,30), 2 until tick 50.
        fake = self.FakeResult(
            samples=[(0, 0, 0, 1), (10, 0, 0, 3), (30, 0, 0, 2)],
            finished_at=50)
        assert instance_ticks(fake) == 1 * 10 + 3 * 20 + 2 * 20

    def test_empty_timeline(self):
        assert instance_ticks(self.FakeResult([], 100)) == 0
