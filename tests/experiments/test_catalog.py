"""The named catalog: entries build, are documented, and match the
committed artifacts."""

import json
import os

import pytest

from repro.experiments import (
    CATALOG,
    RESULT_SCHEMA,
    experiment_names,
    get_experiment,
    iter_experiments,
)

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
CATALOG_DOC = os.path.join(REPO_ROOT, "docs", "EXPERIMENT_CATALOG.md")
ARTIFACT_DIR = os.path.join(REPO_ROOT, "benchmarks", "output", "experiments")


class TestCatalogEntries:
    def test_every_entry_builds_and_expands(self):
        specs = iter_experiments()
        assert len(specs) >= 4
        for spec in specs:
            points = spec.expand()
            assert len(points) == spec.point_count() >= 2
            assert spec.name in CATALOG

    def test_both_kinds_present(self):
        kinds = {spec.kind for spec in iter_experiments()}
        assert kinds == {"measure", "serve"}

    def test_unknown_name_is_a_helpful_keyerror(self):
        with pytest.raises(KeyError, match="perf-cost"):
            get_experiment("perf-cots")


class TestCatalogDocumentation:
    """docs/EXPERIMENT_CATALOG.md must cover every named study."""

    def test_every_entry_has_a_doc_section(self):
        with open(CATALOG_DOC, "r", encoding="utf-8") as handle:
            text = handle.read()
        missing = [name for name in experiment_names()
                   if ("### `%s`" % name) not in text]
        assert not missing, ("catalog entries undocumented in "
                             "docs/EXPERIMENT_CATALOG.md: %s" % missing)


class TestCommittedArtifacts:
    """benchmarks/output/experiments/ holds a current artifact per entry."""

    def test_artifacts_exist_and_match_spec_fingerprints(self):
        stale = []
        for spec in iter_experiments():
            path = os.path.join(ARTIFACT_DIR, "%s.json" % spec.name)
            assert os.path.isfile(path), "missing artifact %s" % path
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            assert document["schema"] == RESULT_SCHEMA
            if document["fingerprint"] != spec.fingerprint():
                stale.append(spec.name)
        assert not stale, (
            "catalog spec changed without regenerating artifacts "
            "(python -m repro experiment run <name>): %s" % stale)
