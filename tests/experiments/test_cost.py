"""Cost model: numeric regression pins and billing-shape properties."""

import pytest

from repro.core.harness import RequestStats
from repro.experiments.cost import (
    COST_RATE_FIELDS,
    CostModel,
    cpu_share,
)

#: A hand-picked request profile with easy-to-audit event counts.
STATS = RequestStats.from_dict({
    "cycles": 1_000_000,
    "instructions": 500_000,
    "l1i_accesses": 300_000,
    "l1d_accesses": 200_000,
    "l1i_misses": 10_000,
    "l1d_misses": 5_000,
    "l2_accesses": 15_000,
    "l2_misses": 2_000,
    "branch_mispredicts": 1_000,
})


class TestCpuShare:
    def test_lambda_knee(self):
        assert cpu_share(1769) == 1.0
        assert cpu_share(4096) == 1.0  # clamped at one full vCPU
        assert cpu_share(512) == pytest.approx(512 / 1769.0)
        with pytest.raises(ValueError):
            cpu_share(0)


class TestInvocationCostPin:
    """Regression pin: these exact dollars must not drift silently."""

    def test_pinned_breakdown(self):
        breakdown = CostModel().invocation_cost(STATS, memory_mb=512,
                                                time_scale=1)
        # duration: 1e6 cycles @ 1 GHz on a 512/1769 CPU share.
        assert breakdown.duration_s == pytest.approx(3.455078125e-3,
                                                     rel=1e-12)
        assert breakdown.gb_s == pytest.approx(1.7275390625e-3, rel=1e-12)
        assert breakdown.compute_usd == pytest.approx(2.8793893359375e-8,
                                                      rel=1e-9)
        assert breakdown.request_usd == pytest.approx(2.0e-7, rel=1e-12)
        # energy: 105_050 nJ dynamic + 350_000 nJ static = 455_050 nJ
        # -> J/3.6e6 * 0.10 $/kWh * 1.35 PUE.
        assert breakdown.energy_usd == pytest.approx(1.7064375e-11, rel=1e-9)
        assert breakdown.total_usd == pytest.approx(
            breakdown.compute_usd + breakdown.request_usd
            + breakdown.energy_usd, rel=1e-12)

    def test_time_scale_projects_native(self):
        model = CostModel()
        scaled = model.invocation_cost(STATS, memory_mb=1769, time_scale=512)
        unscaled = model.invocation_cost(STATS, memory_mb=1769, time_scale=1)
        assert scaled.duration_s == pytest.approx(512 * unscaled.duration_s)
        assert scaled.energy_usd == pytest.approx(512 * unscaled.energy_usd)

    def test_compute_cost_flat_below_knee_for_fixed_work(self):
        # memory × (1/memory-share duration) cancels below the vCPU
        # knee: for identical cycles, GB-s (and compute $) are constant.
        model = CostModel()
        low = model.invocation_cost(STATS, memory_mb=128, time_scale=1)
        high = model.invocation_cost(STATS, memory_mb=1024, time_scale=1)
        assert low.gb_s == pytest.approx(high.gb_s, rel=1e-12)
        assert low.duration_s > high.duration_s


class TestServingCostPin:
    def test_pinned_uptime_billing(self):
        share = CostModel().serving_cost(instance_ticks=10_000, admitted=100,
                                         memory_mb=1024)
        assert share.duration_s == pytest.approx(0.1, rel=1e-12)
        assert share.gb_s == pytest.approx(0.1, rel=1e-12)
        assert share.compute_usd == pytest.approx(1.6667e-6, rel=1e-9)
        assert share.request_usd == pytest.approx(2.0e-7, rel=1e-12)
        assert share.energy_usd == 0.0
        assert share.total_usd * 1e6 == pytest.approx(1.8667, rel=1e-6)

    def test_needs_admitted_requests(self):
        with pytest.raises(ValueError, match="admitted"):
            CostModel().serving_cost(instance_ticks=100, admitted=0,
                                     memory_mb=512)


class TestModelConfig:
    def test_overrides_and_fingerprint(self):
        model = CostModel.from_overrides({"usd_per_kwh": 0.25})
        assert model.usd_per_kwh == 0.25
        assert model.usd_per_gb_s == CostModel().usd_per_gb_s
        assert model.fingerprint() != CostModel().fingerprint()
        assert set(model.as_dict()) == set(COST_RATE_FIELDS)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError, match="unknown cost rates"):
            CostModel.from_overrides({"usd_per_parsec": 1.0})
        with pytest.raises(ValueError, match="negative"):
            CostModel(usd_per_gb_s=-1.0)
        with pytest.raises(ValueError, match="pue"):
            CostModel(pue=0.5)
