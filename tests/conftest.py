"""Shared tier-1 fixtures: keep the persistent result cache hermetic.

The measurement engine caches ``FunctionMeasurement`` results on disk by
default (``repro.core.rescache``).  Tests must neither read a developer's
warm cache (stale entries would mask simulator changes) nor pollute it,
so the whole session is pointed at a throwaway directory.  Caching
itself stays enabled — the cache layer is part of what the suite tests.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _hermetic_result_cache(tmp_path_factory):
    root = tmp_path_factory.mktemp("rescache")
    saved = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield
    if saved is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = saved
