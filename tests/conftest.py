"""Shared tier-1 fixtures: keep the persistent result cache hermetic.

The measurement engine caches ``FunctionMeasurement`` results on disk by
default (``repro.core.rescache``).  Tests must neither read a developer's
warm cache (stale entries would mask simulator changes) nor pollute it,
so the whole session is pointed at a throwaway directory.  Caching
itself stays enabled — the cache layer is part of what the suite tests.

Hypothesis runs under a pinned, derandomized profile so CI failures
reproduce exactly on any machine: example generation derives from the
test body alone, never a random seed or an example database.  Override
with ``HYPOTHESIS_PROFILE=dev`` to explore fresh examples locally.
"""

import os

import pytest

try:  # hypothesis is a test-only dependency; property tests skip without it
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "ci",
        derandomize=True,
        database=None,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("dev", database=None, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
except ImportError:  # pragma: no cover
    pass


@pytest.fixture(scope="session", autouse=True)
def _hermetic_result_cache(tmp_path_factory):
    root = tmp_path_factory.mktemp("rescache")
    saved = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield
    if saved is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = saved
