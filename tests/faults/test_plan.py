"""FaultPlan / FaultInjector: determinism, immutability, metering."""

import pickle

import pytest

from repro.faults import FAULT_SITES, FaultPlan, FaultSpec, InjectedFault


class TestFaultSpec:
    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError):
            FaultSpec("nope.site", 0.5)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultSpec("faas.handler", 1.5)
        with pytest.raises(ValueError):
            FaultSpec("faas.handler", -0.1)

    def test_immutable(self):
        spec = FaultSpec("faas.handler", 0.5)
        with pytest.raises(AttributeError):
            spec.rate = 1.0

    def test_equality_and_hash(self):
        assert FaultSpec("rpc.drop", 0.2) == FaultSpec("rpc.drop", 0.2)
        assert FaultSpec("rpc.drop", 0.2) != FaultSpec("rpc.drop", 0.3)
        assert hash(FaultSpec("rpc.drop", 0.2)) == hash(FaultSpec("rpc.drop", 0.2))


class TestFaultPlan:
    def test_rejects_duplicate_sites(self):
        with pytest.raises(ValueError):
            FaultPlan(specs=[FaultSpec("rpc.drop", 0.1),
                             FaultSpec("rpc.drop", 0.2)])

    def test_immutable_hashable_picklable(self):
        plan = FaultPlan.chaos(seed=7)
        with pytest.raises(AttributeError):
            plan.seed = 9
        assert plan == FaultPlan.chaos(seed=7)
        assert plan != FaultPlan.chaos(seed=8)
        assert hash(plan) == hash(FaultPlan.chaos(seed=7))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.fingerprint() == plan.fingerprint()

    def test_chaos_arms_every_failure_mode(self):
        plan = FaultPlan.chaos(seed=0, rate=0.25, stall_ticks=16)
        sites = {spec.site for spec in plan.specs}
        assert sites <= set(FAULT_SITES)
        assert {"engine.create", "faas.handler", "rpc.drop",
                "db.timeout", "emu.disk"} <= sites
        assert plan.spec_for("faas.cold_start").ticks == 16
        assert plan.spec_for("engine.stop") is None


class TestFaultInjector:
    def test_same_plan_same_decisions(self):
        plan = FaultPlan(seed=3, specs=[FaultSpec("faas.handler", 0.3)])
        first = [plan.arm().should_fire("faas.handler") for _ in range(1)]
        sequence_a = [fire for injector in [plan.arm()]
                      for fire in [injector.should_fire("faas.handler")
                                   for _ in range(50)]]
        sequence_b = [fire for injector in [plan.arm()]
                      for fire in [injector.should_fire("faas.handler")
                                   for _ in range(50)]]
        assert sequence_a == sequence_b
        assert any(sequence_a) and not all(sequence_a)
        assert first[0] == sequence_a[0]

    def test_sites_draw_independently(self):
        """Interleaving draws across sites cannot perturb any site's
        sequence — the core of the determinism contract."""
        plan = FaultPlan(seed=5, specs=[FaultSpec("rpc.drop", 0.4),
                                        FaultSpec("db.timeout", 0.4)])
        solo = plan.arm()
        solo_drops = [solo.should_fire("rpc.drop") for _ in range(30)]
        mixed = plan.arm()
        mixed_drops = []
        for index in range(30):
            mixed.should_fire("db.timeout")  # interleaved foreign draws
            mixed_drops.append(mixed.should_fire("rpc.drop"))
        assert mixed_drops == solo_drops

    def test_unarmed_site_never_fires_or_draws(self):
        plan = FaultPlan(seed=1, specs=[FaultSpec("rpc.drop", 1.0)])
        injector = plan.arm()
        assert not injector.should_fire("engine.create")
        assert injector.snapshot() == {}

    def test_max_fires_caps_the_budget(self):
        plan = FaultPlan(seed=0, specs=[
            FaultSpec("faas.handler", 1.0, max_fires=2)])
        injector = plan.arm()
        fires = [injector.should_fire("faas.handler") for _ in range(5)]
        assert fires == [True, True, False, False, False]
        assert injector.fired["faas.handler"] == 2

    def test_maybe_raise_carries_the_site(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec("emu.disk", 1.0)])
        injector = plan.arm()
        with pytest.raises(InjectedFault) as caught:
            injector.maybe_raise("emu.disk")
        assert caught.value.site == "emu.disk"

    def test_maybe_raise_with_domain_exception(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec("engine.stop", 1.0)])
        with pytest.raises(KeyError):
            plan.arm().maybe_raise("engine.stop", exception=KeyError)

    def test_snapshot_is_a_copy(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec("rpc.drop", 1.0)])
        injector = plan.arm()
        before = injector.snapshot()
        injector.should_fire("rpc.drop")
        assert before == {}
        assert injector.snapshot() == {"rpc.drop": 1}
        assert injector.total_fired() == 1
