"""RetryPolicy, CircuitBreaker and ResilientCache behaviour."""

import pytest

from repro.db import make_datastore
from repro.db.memcached import MemcachedCache
from repro.faults import (
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    ResilientCache,
    RetryBudgetExceeded,
    RetryPolicy,
)


class Flaky:
    """Callable failing the first ``failures`` times."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError("boom #%d" % self.calls)
        return "ok"


class TestRetryPolicy:
    def test_success_first_try_costs_nothing(self):
        result, attempts, backoff = RetryPolicy().call(Flaky(0), "op")
        assert (result, attempts, backoff) == ("ok", 1, 0)

    def test_retries_until_success(self):
        policy = RetryPolicy(attempts=3, backoff_ticks=4)
        result, attempts, backoff = policy.call(Flaky(2), "op")
        assert result == "ok"
        assert attempts == 3
        assert backoff == sum(policy.backoff_for("op", n) for n in (1, 2))

    def test_budget_exhaustion_raises_with_last_error(self):
        with pytest.raises(RetryBudgetExceeded) as caught:
            RetryPolicy(attempts=2).call(Flaky(5), "op")
        assert caught.value.attempts == 2
        assert "boom #2" in str(caught.value.last_error)

    def test_backoff_is_deterministic_and_exponential(self):
        policy_a = RetryPolicy(attempts=5, backoff_ticks=4, jitter_seed=9)
        policy_b = RetryPolicy(attempts=5, backoff_ticks=4, jitter_seed=9)
        delays_a = [policy_a.backoff_for("label", n) for n in range(1, 5)]
        delays_b = [policy_b.backoff_for("label", n) for n in range(1, 5)]
        assert delays_a == delays_b
        # base doubles each retry; jitter < backoff_ticks keeps ordering
        for retry, delay in enumerate(delays_a, start=1):
            base = 4 * 2 ** (retry - 1)
            assert base <= delay < base + 4

    def test_deadline_budget_caps_summed_backoff(self):
        policy = RetryPolicy(attempts=10, backoff_ticks=8, deadline_ticks=10)
        with pytest.raises(RetryBudgetExceeded) as caught:
            policy.call(Flaky(99), "op")
        assert caught.value.attempts < 10

    def test_advance_observes_every_backoff(self):
        ticks = []
        policy = RetryPolicy(attempts=3, backoff_ticks=4)
        policy.call(Flaky(2), "op", advance=ticks.append)
        assert sum(ticks) == sum(policy.backoff_for("op", n) for n in (1, 2))

    def test_from_plan(self):
        plan = FaultPlan(seed=11, retry_attempts=5, retry_backoff=2,
                         retry_deadline=64)
        policy = RetryPolicy.from_plan(plan)
        assert (policy.attempts, policy.backoff_ticks,
                policy.jitter_seed, policy.deadline_ticks) == (5, 2, 11, 64)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=10)
        for now in (1, 2):
            breaker.record_failure(now)
            assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(3)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        assert not breaker.allow(5)

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=4)
        breaker.record_failure(0)
        assert not breaker.allow(2)
        assert breaker.allow(4)  # cooldown elapsed -> half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=4)
        breaker.record_failure(0)
        assert breaker.allow(4)
        breaker.record_failure(4)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        assert not breaker.allow(6)


class TestResilientCache:
    def make_cache(self, rate=1.0, **breaker_kwargs):
        plan = FaultPlan(seed=0, specs=[FaultSpec("db.timeout", rate)])
        breaker = CircuitBreaker(**breaker_kwargs) if breaker_kwargs else None
        return ResilientCache(MemcachedCache(), injector=plan.arm(),
                              breaker=breaker)

    def test_passthrough_without_faults(self):
        cache = ResilientCache(MemcachedCache())
        cache.set("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert cache.take_fault_metrics() == {}

    def test_timeout_degrades_to_miss(self):
        cache = self.make_cache(rate=1.0)
        cache.cache.set("k", {"v": 1})  # populate the wrapped cache directly
        assert cache.get("k") is None
        assert cache.get_multi(["k"]) == {}
        metrics = cache.take_fault_metrics()
        assert metrics["timeouts"] == 2
        assert metrics["fallbacks"] == 2

    def test_degraded_writes_are_dropped(self):
        cache = self.make_cache(rate=1.0)
        cache.set("k", {"v": 1})
        assert len(cache.cache) == 0

    def test_breaker_trips_then_recovers(self):
        cache = self.make_cache(rate=1.0, failure_threshold=2, cooldown=3)
        for _ in range(2):
            cache.get("k")
        assert cache.breaker_state == CircuitBreaker.OPEN
        assert cache.take_fault_metrics()["breaker_trips"] == 1

    def test_fall_through_serves_from_backing_db(self):
        """The graceful-degradation story end to end: memcached down,
        the cached handler's miss path serves from the primary DB."""
        from repro.workloads.hotel import HotelSuite, RateFunction

        suite = HotelSuite(make_datastore("redis"))
        function = RateFunction()
        services = dict(suite.services_for(function))
        assert "memcached" in services
        plan = FaultPlan(seed=0, specs=[FaultSpec("db.timeout", 1.0)])
        services["memcached"] = ResilientCache(services["memcached"],
                                               injector=plan.arm())

        from repro.serverless.faas import InvocationContext, InvocationRecord

        record = InvocationRecord(function.name, "go", cold=True,
                                  request_bytes=0, sequence=1)
        context = InvocationContext(record, services, {})
        result = function.handler(function.default_payload(0), context)
        assert result  # served despite the cache being down
        metrics = services["memcached"].take_fault_metrics()
        assert metrics["fallbacks"] >= 1
