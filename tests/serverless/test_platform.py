"""Platform-seam tests: cluster config, bit-identity, chaos, digests."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st


def fib_handler(payload, ctx):
    n = payload.get("n", 10)
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    ctx.meter("app.work")
    return {"fib": a}


def make_router(seed=0, scaling=None):
    from repro.serverless.container import base_image
    from repro.serverless.engine import install_docker
    from repro.serverless.router import Router

    engine = install_docker("riscv")
    engine.registry.push(base_image("python", "riscv"))
    router = Router(engine, seed=seed)
    router.deploy("fn", "python-default", "python", fib_handler,
                  scaling=scaling)
    return router


def make_platform(cluster=None, seed=0, scaling=None):
    from repro.serverless.container import base_image
    from repro.serverless.platform import make_platform as build

    platform = build("riscv", cluster=cluster, seed=seed)
    platform.registry.push(base_image("python", "riscv"))
    platform.deploy("fn", "python-default", "python", fib_handler,
                    scaling=scaling)
    return platform


def burst(seed=0, requests=120, rps=80):
    from repro.serverless.loadgen import arrival_ticks

    return arrival_ticks("burst", rps=rps, requests=requests, seed=seed)


def run_signature(result):
    """Everything observable about a serve run, for byte-identity diffs."""
    return (result.event_log(),
            [record.as_dict() for record in result.records],
            list(result.samples),
            list(result.node_samples),
            result.summary())


class TestClusterConfig:
    def test_validation(self):
        from repro.serverless.platform import ClusterConfig

        with pytest.raises(ValueError):
            ClusterConfig(nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(placement="random")
        with pytest.raises(ValueError):
            ClusterConfig(node_capacity=0)
        with pytest.raises(ValueError):
            ClusterConfig(hop_ticks=-1)
        with pytest.raises(ValueError):
            ClusterConfig(node_fail_rate=1.5)
        with pytest.raises(ValueError):
            ClusterConfig(node_recover_ticks=0)

    def test_immutable_replace_and_roundtrip(self):
        from repro.serverless.platform import ClusterConfig

        config = ClusterConfig(nodes=3, placement="spread")
        with pytest.raises(AttributeError):
            config.nodes = 5
        changed = config.replace(node_capacity=4)
        assert changed.nodes == 3
        assert changed.node_capacity == 4
        assert config.node_capacity is None  # original untouched
        with pytest.raises(TypeError):
            config.replace(machines=9)
        assert ClusterConfig.from_dict(config.as_dict()) == config
        assert hash(changed) == hash(
            ClusterConfig.from_dict(changed.as_dict()))

    def test_pickle_and_fingerprint(self):
        from repro.serverless.platform import ClusterConfig

        config = ClusterConfig(nodes=4, placement="spread",
                               node_fail_rate=0.1)
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.fingerprint() == config.fingerprint()
        assert config.fingerprint() != ClusterConfig(nodes=4).fingerprint()


class TestBitIdentity:
    def test_single_host_platform_matches_raw_router(self):
        from repro.serverless.platform import SingleHostPlatform

        router = make_router(seed=5)
        direct = router.serve("fn", burst(seed=5))
        platform = make_platform(seed=5)
        assert isinstance(platform, SingleHostPlatform)
        routed = platform.serve("fn", burst(seed=5))
        assert run_signature(direct) == run_signature(routed)

    def test_one_node_cluster_matches_single_host(self):
        from repro.serverless.platform import ClusterConfig, ClusterPlatform

        single = make_platform(seed=7).serve("fn", burst(seed=7))
        platform = make_platform(cluster=ClusterConfig(nodes=1), seed=7)
        assert isinstance(platform, ClusterPlatform)
        clustered = platform.serve("fn", burst(seed=7))
        assert run_signature(single) == run_signature(clustered)

    def test_factory_dispatch(self):
        from repro.serverless.platform import (
            ClusterConfig,
            ClusterPlatform,
            SingleHostPlatform,
            make_platform,
        )

        assert isinstance(make_platform("riscv"), SingleHostPlatform)
        cluster = make_platform("riscv", cluster=ClusterConfig(nodes=2))
        assert isinstance(cluster, ClusterPlatform)
        assert "2-node" in cluster.description


class TestClusterDeterminism:
    def test_same_seed_byte_identical_at_four_nodes(self):
        from repro.serverless.platform import ClusterConfig

        config = ClusterConfig(nodes=4, placement="spread",
                               node_fail_rate=0.08)
        runs = []
        for _ in range(2):
            platform = make_platform(cluster=config, seed=11)
            runs.append(run_signature(
                platform.serve("fn", burst(seed=11, requests=150))))
        assert runs[0] == runs[1]

    def test_seed_changes_the_run(self):
        from repro.serverless.platform import ClusterConfig

        config = ClusterConfig(nodes=3, placement="binpack")
        one = make_platform(cluster=config, seed=1).serve(
            "fn", burst(seed=1))
        two = make_platform(cluster=config, seed=2).serve(
            "fn", burst(seed=2))
        assert run_signature(one) != run_signature(two)


class TestClusterBehaviour:
    def test_cross_node_requests_pay_metered_hops(self):
        from repro.serverless.platform import ClusterConfig

        platform = make_platform(
            cluster=ClusterConfig(nodes=3, placement="spread"), seed=3)
        result = platform.serve("fn", burst(seed=3, requests=150))
        assert result.cross_node > 0
        crossed = [record for record in result.records
                   if "serve.cross_node" in record.metrics]
        assert len(crossed) == result.cross_node
        for record in crossed:
            assert record.metrics["serve.hop_ticks"] >= \
                2 * platform.cluster.hop_ticks
            assert "serve.node" in record.metrics
        # The ingress front-ends metered the forwarded wire bytes.
        assert sum(node.channel.bytes_out for node in platform.nodes) > 0

    def test_summary_reports_the_cluster(self):
        from repro.serverless.platform import ClusterConfig

        platform = make_platform(
            cluster=ClusterConfig(nodes=3, placement="spread"), seed=3)
        result = platform.serve("fn", burst(seed=3))
        assert "3 nodes (spread)" in result.summary()
        assert result.as_dict()["cluster"]["nodes"] == 3
        # Single-host results carry no cluster keys at all.
        single = make_platform(seed=3).serve("fn", burst(seed=3))
        assert "cluster" not in single.as_dict()
        assert "nodes" not in single.summary()

    def test_node_failure_kills_inflight_and_recovers(self):
        from repro.faults import NodeDownError
        from repro.serverless.platform import ClusterConfig

        config = ClusterConfig(nodes=3, placement="spread",
                               node_fail_rate=0.15, node_recover_ticks=200)
        platform = make_platform(cluster=config, seed=0)
        result = platform.serve("fn", burst(seed=0, requests=300, rps=80))
        log = result.event_log()
        assert "node-down" in log
        assert "node-up" in log
        assert result.node_failures() > 0
        killed = [record for record in result.records
                  if record.error and NodeDownError.__name__ in record.error]
        assert killed, "a node died with work in flight"
        for record in killed:
            assert not record.ok
            assert record.metrics.get("faults.cluster.node_down") == 1

    def test_node_chaos_never_blacks_out_the_cluster(self):
        from repro.serverless.platform import ClusterConfig

        config = ClusterConfig(nodes=2, node_fail_rate=1.0,
                               node_recover_ticks=5000)
        platform = make_platform(cluster=config, seed=0)
        result = platform.serve("fn", burst(seed=0, requests=60))
        # Rate 1.0 downs a node on the very first evaluation, but the
        # survivor must keep serving: the run completes, and at least
        # the non-killed requests succeed.
        assert len(result.records) == 60
        assert any(record.ok for record in result.records)
        assert sum(1 for node in platform.nodes if node.up) >= 1

    def test_binpack_consolidates_spread_spreads(self):
        from repro.serverless.platform import ClusterConfig
        from repro.serverless.scaler import ScalingConfig

        scaling = ScalingConfig(min_instances=4, max_instances=4)
        spread = make_platform(
            cluster=ClusterConfig(nodes=4, placement="spread"),
            seed=0, scaling=scaling)
        spread.serve("fn", burst(seed=0, requests=40))
        populations = sorted(node.population for node in spread.nodes)
        assert populations == [1, 1, 1, 1]
        binpack = make_platform(
            cluster=ClusterConfig(nodes=4, placement="binpack"),
            seed=0, scaling=scaling)
        binpack.serve("fn", burst(seed=0, requests=40))
        assert sorted(node.population
                      for node in binpack.nodes) == [0, 0, 0, 4]

    @settings(max_examples=20, deadline=None)
    @given(
        nodes=st.integers(min_value=2, max_value=4),
        capacity=st.integers(min_value=1, max_value=3),
        placement=st.sampled_from(("binpack", "spread")),
        seed=st.integers(min_value=0, max_value=40),
    )
    def test_placement_never_exceeds_node_capacity(self, nodes, capacity,
                                                   placement, seed):
        from repro.serverless.platform import ClusterConfig

        config = ClusterConfig(nodes=nodes, placement=placement,
                               node_capacity=capacity)
        platform = make_platform(cluster=config, seed=seed)
        result = platform.serve("fn", burst(seed=seed, requests=80))
        for _tick, counts in result.node_samples:
            assert all(count <= capacity for count in counts), (
                "capacity %d violated: %r" % (capacity, counts))
        assert all(node.population <= capacity for node in platform.nodes)


class TestClusterSpecIdentity:
    def test_cluster_extends_spec_identity_and_digest(self):
        from repro.core.parallel import task_digest
        from repro.core.rescache import measurement_digest
        from repro.core.spec import MeasurementSpec
        from repro.serverless.platform import ClusterConfig

        plain = MeasurementSpec(function="fibonacci-python")
        clustered = plain.replace(cluster=ClusterConfig(nodes=3))
        assert plain != clustered
        assert task_digest(plain) != task_digest(clustered)
        # Specs minted before the cluster field existed hash the same:
        # a None cluster must not perturb any pre-existing digest.
        legacy = measurement_digest(
            "fibonacci-python", "riscv", 2048, 32, 0, ("fp",))
        explicit = measurement_digest(
            "fibonacci-python", "riscv", 2048, 32, 0, ("fp",), cluster=None)
        assert legacy == explicit

    def test_spec_round_trips_with_cluster(self):
        from repro.core.spec import MeasurementSpec
        from repro.serverless.platform import ClusterConfig

        spec = MeasurementSpec(function="aes-go",
                               cluster=ClusterConfig(nodes=2))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.cluster == ClusterConfig(nodes=2)


class TestDbClusterFaultSite:
    def test_one_error_taxonomy(self):
        import repro.db.cluster as db_cluster
        from repro.faults import NodeDownError
        from repro.faults.plan import FAULT_SITES

        assert db_cluster.NodeDownError is NodeDownError
        assert "cluster.node_down" in FAULT_SITES

    def test_armed_injector_downs_cassandra_nodes(self):
        from repro.db.cluster import CassandraCluster, NodeDownError
        from repro.faults import FaultPlan, FaultSpec

        cluster = CassandraCluster(nodes=2, replication=2,
                                   consistency="ALL")
        cluster.faults = FaultPlan(seed=0, specs=[
            FaultSpec("cluster.node_down", 1.0)]).arm()
        # Rate 1.0: the first operation's draw downs the highest-indexed
        # live node, and ALL consistency can no longer be met.
        with pytest.raises(NodeDownError):
            cluster.put("users", "alice", {"name": "Alice"})
        assert cluster.live_nodes() == 1
        # Deterministic: a fresh cluster with the same plan fails the
        # same way.
        again = CassandraCluster(nodes=2, replication=2, consistency="ALL")
        again.faults = FaultPlan(seed=0, specs=[
            FaultSpec("cluster.node_down", 1.0)]).arm()
        with pytest.raises(NodeDownError):
            again.put("users", "alice", {"name": "Alice"})

    def test_unarmed_cluster_never_draws(self):
        from repro.db.cluster import CassandraCluster

        cluster = CassandraCluster(nodes=2, replication=2,
                                   consistency="ALL")
        cluster.put("users", "alice", {"name": "Alice"})
        assert cluster.get("users", "alice")["name"] == "Alice"
        assert cluster.live_nodes() == 2
