"""Container image / registry / engine tests."""

import pytest

from repro.serverless.container import (
    BASE_IMAGE_CATALOG,
    ContainerImage,
    ImageLayer,
    ImageRegistry,
    MB,
    base_image,
)
from repro.serverless.engine import (
    REQUIRED_KERNEL_FEATURES,
    ContainerEngine,
    EngineError,
    install_docker,
)


class TestImages:
    def test_compressed_size_sums_layers(self):
        image = ContainerImage("app", "x86", [ImageLayer("a", MB), ImageLayer("b", 2 * MB)])
        assert image.compressed_size_mb == pytest.approx(3.0)

    def test_with_layer_is_immutable_build_step(self):
        image = ContainerImage("app", "x86", [ImageLayer("base", MB)])
        bigger = image.with_layer(ImageLayer("app", MB))
        assert len(image.layers) == 1
        assert len(bigger.layers) == 2

    def test_bad_arch_rejected(self):
        with pytest.raises(ValueError):
            ContainerImage("app", "sparc", [])

    def test_negative_layer_rejected(self):
        with pytest.raises(ValueError):
            ImageLayer("bad", -1)


class TestBaseImageCatalog:
    def test_go_images_exist_for_both_arches(self):
        assert base_image("go", "x86").compressed_size_mb > 0
        assert base_image("go", "riscv").compressed_size_mb > 0

    def test_no_alpine_for_riscv(self):
        # The porting pain point of §3.5.1.
        with pytest.raises(LookupError):
            base_image("python", "riscv", variant="alpine")
        assert base_image("python", "x86", variant="alpine") is not None

    def test_riscv_python_base_bigger_than_x86(self):
        riscv = base_image("python", "riscv").compressed_size_mb
        x86 = base_image("python", "x86").compressed_size_mb
        assert riscv > x86

    def test_riscv_nodejs_base_smaller_than_x86(self):
        riscv = base_image("nodejs", "riscv").compressed_size_mb
        x86 = base_image("nodejs", "x86").compressed_size_mb
        assert riscv < x86

    def test_unknown_combo_raises_keyerror(self):
        with pytest.raises(KeyError):
            base_image("rust", "x86")

    def test_catalog_covers_all_runtimes(self):
        runtimes = {runtime for runtime, _arch, _variant in BASE_IMAGE_CATALOG}
        assert runtimes == {"go", "python", "nodejs"}


class TestRegistry:
    def test_push_pull_roundtrip(self):
        registry = ImageRegistry()
        image = base_image("go", "riscv")
        registry.push(image)
        assert registry.pull("go-default", "riscv") is image

    def test_pull_wrong_arch_fails(self):
        registry = ImageRegistry()
        registry.push(base_image("go", "x86"))
        with pytest.raises(LookupError):
            registry.pull("go-default", "riscv")

    def test_search_with_arch_filter(self):
        registry = ImageRegistry()
        registry.push(base_image("go", "x86"))
        registry.push(base_image("go", "riscv"))
        registry.push(base_image("python", "riscv"))
        hits = registry.search("go", arch="riscv")
        assert len(hits) == 1
        assert hits[0].arch == "riscv"


class TestEngine:
    def make_engine(self, arch="riscv"):
        engine = install_docker(arch)
        engine.registry.push(base_image("go", arch))
        return engine

    def test_riscv_docker_built_from_source(self):
        assert install_docker("riscv").installed_from_source
        assert not install_docker("x86").installed_from_source

    def test_pull_create_start_stop(self):
        engine = self.make_engine()
        engine.pull("go-default")
        container = engine.create("go-default", name="fib")
        assert not container.running
        engine.start("fib")
        assert engine.ps() == [container]
        engine.stop("fib")
        assert engine.ps() == []
        engine.remove("fib")
        assert engine.ps(all_states=True) == []

    def test_create_without_pull_fails(self):
        engine = self.make_engine()
        with pytest.raises(EngineError):
            engine.create("go-default")

    def test_kernel_feature_gate(self):
        engine = ContainerEngine("riscv", kernel_features=["CONFIG_NAMESPACES"])
        missing = engine.check_kernel()
        assert "CONFIG_OVERLAY_FS" in missing
        with pytest.raises(EngineError):
            engine.ensure_operational()

    def test_full_feature_kernel_passes(self):
        engine = ContainerEngine("x86", kernel_features=list(REQUIRED_KERNEL_FEATURES))
        assert engine.check_kernel() == []
        engine.ensure_operational()

    def test_wrong_arch_image_load_rejected(self):
        engine = self.make_engine("x86")
        with pytest.raises(EngineError):
            engine.load_image(base_image("go", "riscv"))

    def test_double_start_rejected(self):
        engine = self.make_engine()
        engine.pull("go-default")
        engine.create("go-default", name="c")
        engine.start("c")
        with pytest.raises(EngineError):
            engine.start("c")

    def test_remove_running_rejected(self):
        engine = self.make_engine()
        engine.pull("go-default")
        engine.create("go-default", name="c")
        engine.start("c")
        with pytest.raises(EngineError):
            engine.remove("c")

    def test_cpu_pinning_recorded(self):
        engine = self.make_engine()
        engine.pull("go-default")
        container = engine.create("go-default", cpu_pin=1)
        assert container.cpu_pin == 1
