"""Regression pin: the serving layer and the sim statistics share ONE
percentile implementation.  The tree briefly carried two copies that
could drift apart on interpolation convention; these tests pin both the
object identity and the numeric behaviour."""

import random

import pytest

from repro.serverless import metrics as serving_metrics
from repro.sim import statistics as sim_statistics


class TestSharedImplementation:
    def test_same_object(self):
        """Not merely equal behaviour: literally the same function."""
        assert serving_metrics.percentile is sim_statistics.percentile

    def test_identical_output_over_random_samples(self):
        rng = random.Random(11)
        for _ in range(50):
            values = [rng.uniform(0, 1000)
                      for _ in range(rng.randrange(1, 40))]
            for fraction in (0.0, 0.25, 0.5, 0.95, 0.99, 1.0):
                for method in ("linear", "nearest"):
                    assert serving_metrics.percentile(
                        values, fraction, method=method
                    ) == sim_statistics.percentile(
                        values, fraction, method=method)

    def test_linear_interpolates(self):
        assert sim_statistics.percentile([1, 2, 3, 4], 0.5) == 2.5

    def test_nearest_returns_observed_sample(self):
        values = [3, 1, 4, 1, 5]
        result = sim_statistics.percentile(values, 0.5, method="nearest")
        assert result in values

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            sim_statistics.percentile([], 0.5)
        with pytest.raises(ValueError):
            sim_statistics.percentile([1], 1.5)
        with pytest.raises(ValueError):
            sim_statistics.percentile([1], 0.5, method="cubic")
