"""FaaS lifecycle, RPC, and load generator tests."""

import pytest

from repro.db.memcached import MemcachedCache
from repro.serverless.container import base_image
from repro.serverless.engine import install_docker
from repro.serverless.faas import FaasPlatform, FunctionState, KeepAlivePolicy
from repro.serverless.loadgen import LoadGenerator
from repro.serverless.rpc import RpcChannel, RpcError


def make_platform(arch="riscv", policy=None):
    engine = install_docker(arch)
    engine.registry.push(base_image("go", arch))
    return FaasPlatform(engine, policy=policy)


def echo_handler(payload, ctx):
    ctx.meter("echoes")
    return {"echo": payload}


class TestLifecycle:
    def test_first_invocation_is_cold(self):
        platform = make_platform()
        platform.deploy("fib", "go-default", "go", echo_handler)
        assert platform.state_of("fib") == FunctionState.DEAD
        record = platform.invoke("fib", {"n": 10})
        assert record.cold
        assert platform.state_of("fib") == FunctionState.WAITING

    def test_subsequent_invocations_warm(self):
        platform = make_platform()
        platform.deploy("fib", "go-default", "go", echo_handler)
        platform.invoke("fib")
        for _ in range(5):
            assert not platform.invoke("fib").cold

    def test_kill_forces_next_cold(self):
        platform = make_platform()
        platform.deploy("fib", "go-default", "go", echo_handler)
        platform.invoke("fib")
        platform.kill("fib")
        assert platform.state_of("fib") == FunctionState.DEAD
        assert platform.invoke("fib").cold

    def test_idle_timeout_reaps_instance(self):
        platform = make_platform(policy=KeepAlivePolicy(idle_timeout=3.0))
        platform.deploy("fib", "go-default", "go", echo_handler)
        platform.deploy("aes", "go-default", "go", echo_handler)
        platform.invoke("fib")
        for _ in range(4):  # each invocation advances the clock by 1
            platform.invoke("aes")
        assert platform.state_of("fib") == FunctionState.DEAD
        assert platform.state_of("aes") == FunctionState.WAITING

    def test_warm_pool_cap_evicts_lru(self):
        platform = make_platform(policy=KeepAlivePolicy(idle_timeout=1000, max_warm=2))
        for name in ("f1", "f2", "f3"):
            platform.deploy(name, "go-default", "go", echo_handler)
        platform.invoke("f1")
        platform.invoke("f2")
        platform.invoke("f3")
        states = {name: platform.state_of(name) for name in ("f1", "f2", "f3")}
        assert states["f1"] == FunctionState.DEAD  # least recently used
        assert states["f2"] == FunctionState.WAITING
        assert states["f3"] == FunctionState.WAITING

    def test_duplicate_deploy_rejected(self):
        platform = make_platform()
        platform.deploy("fib", "go-default", "go", echo_handler)
        with pytest.raises(ValueError):
            platform.deploy("fib", "go-default", "go", echo_handler)

    def test_cold_start_counts(self):
        platform = make_platform()
        platform.deploy("fib", "go-default", "go", echo_handler)
        platform.invoke("fib")
        platform.kill("fib")
        platform.invoke("fib")
        assert platform.function("fib").cold_starts == 2

    def test_container_created_and_pinned_on_cold_start(self):
        platform = make_platform()
        platform.deploy("fib", "go-default", "go", echo_handler)
        platform.invoke("fib")
        containers = platform.engine.ps()
        assert len(containers) == 1
        assert containers[0].cpu_pin == platform.server_core


class TestInvocationRecords:
    def test_payload_sizes_recorded(self):
        platform = make_platform()
        platform.deploy("fib", "go-default", "go", echo_handler)
        record = platform.invoke("fib", {"blob": "x" * 500})
        assert record.request_bytes > 500
        assert record.response_bytes > 500
        assert record.result == {"echo": {"blob": "x" * 500}}

    def test_service_receipts_attached(self):
        platform = make_platform()
        cache = MemcachedCache()

        def handler(payload, ctx):
            ctx.service("memcached").set("k", "v" * 100)
            ctx.service("memcached").get("k")
            return {}

        platform.deploy("cached", "go-default", "go", handler,
                        services={"memcached": cache})
        record = platform.invoke("cached")
        assert record.receipts["memcached"].bytes_written > 100
        assert record.receipts["memcached"].bytes_read > 100

    def test_receipts_isolated_per_request(self):
        platform = make_platform()
        cache = MemcachedCache()

        def handler(payload, ctx):
            ctx.service("memcached").get("probe")
            return {}

        platform.deploy("f", "go-default", "go", handler,
                        services={"memcached": cache})
        first = platform.invoke("f")
        second = platform.invoke("f")
        assert first.receipts["memcached"].structure_misses == 1
        assert second.receipts["memcached"].structure_misses == 1

    def test_metrics_via_context(self):
        platform = make_platform()
        platform.deploy("fib", "go-default", "go", echo_handler)
        record = platform.invoke("fib")
        assert record.metrics["echoes"] == 1

    def test_unknown_service_error_is_descriptive(self):
        platform = make_platform()

        def handler(payload, ctx):
            return ctx.service("database")

        platform.deploy("f", "go-default", "go", handler)
        with pytest.raises(KeyError, match="database"):
            platform.invoke("f")


class TestRpc:
    def test_call_roundtrip(self):
        channel = RpcChannel("test")
        channel.register("GetFib", lambda payload: {"value": payload["n"] * 2})
        response = channel.call("GetFib", {"n": 21})
        assert response.ok
        assert response.payload == {"value": 42}

    def test_unknown_method(self):
        channel = RpcChannel()
        with pytest.raises(RpcError):
            channel.call("Nope")

    def test_handler_exception_becomes_status(self):
        channel = RpcChannel()

        def bad(payload):
            raise ValueError("boom")

        channel.register("Bad", bad)
        response = channel.call("Bad")
        assert not response.ok
        assert response.status == "INTERNAL"

    def test_wire_bytes_metered(self):
        channel = RpcChannel()
        channel.register("Echo", lambda payload: payload)
        channel.call("Echo", {"data": "x" * 100})
        assert channel.bytes_in > 100
        assert channel.bytes_out > 100

    def test_duplicate_registration_rejected(self):
        channel = RpcChannel()
        channel.register("M", lambda payload: None)
        with pytest.raises(ValueError):
            channel.register("M", lambda payload: None)


class TestLoadGenerator:
    def test_ten_request_protocol(self):
        platform = make_platform()
        platform.deploy("fib", "go-default", "go", echo_handler)
        log = LoadGenerator(platform).run_session("fib", requests=10)
        assert len(log) == 10
        assert log.cold.sequence == 1
        assert log.warm.sequence == 10
        assert sum(1 for record in log if record.cold) == 1

    def test_payload_factory(self):
        platform = make_platform()
        platform.deploy("fib", "go-default", "go", echo_handler)
        log = LoadGenerator(platform).run_session(
            "fib", requests=3, payload_factory=lambda i: {"n": i}
        )
        assert [record.result["echo"]["n"] for record in log] == [0, 1, 2]

    def test_payload_and_factory_mutually_exclusive(self):
        platform = make_platform()
        platform.deploy("fib", "go-default", "go", echo_handler)
        with pytest.raises(ValueError):
            LoadGenerator(platform).run_session(
                "fib", payload={}, payload_factory=lambda i: {}
            )

    def test_interleaved_sessions_round_robin(self):
        platform = make_platform()
        for name in ("f1", "f2"):
            platform.deploy(name, "go-default", "go", echo_handler)
        logs = LoadGenerator(platform).interleaved_session(["f1", "f2"], rounds=3)
        assert len(logs["f1"]) == 3
        assert len(logs["f2"]) == 3
        assert logs["f1"].cold.sequence == 1
