"""Trace-driven arrival generation + open-loop timing separation."""

import pytest


class TestArrivalTicks:
    def test_deterministic_per_seed(self):
        from repro.serverless.loadgen import ARRIVAL_PROFILES, arrival_ticks

        for profile in ARRIVAL_PROFILES:
            first = arrival_ticks(profile, rps=80, requests=100, seed=9)
            second = arrival_ticks(profile, rps=80, requests=100, seed=9)
            assert first == second
            assert first != arrival_ticks(profile, rps=80, requests=100,
                                          seed=10)

    def test_shape_and_ordering(self):
        from repro.serverless.loadgen import arrival_ticks

        ticks = arrival_ticks("poisson", rps=50, requests=200, seed=1)
        assert len(ticks) == 200
        assert all(isinstance(tick, int) for tick in ticks)
        assert ticks == sorted(ticks)

    def test_burst_concentrates_arrivals(self):
        from repro.serverless.loadgen import (
            BURST_ON_TICKS,
            BURST_PERIOD_TICKS,
            arrival_ticks,
        )

        ticks = arrival_ticks("burst", rps=100, requests=300, seed=4)
        in_window = sum(1 for tick in ticks
                        if tick % BURST_PERIOD_TICKS < BURST_ON_TICKS)
        assert in_window == len(ticks)  # the off phase has zero rate

    def test_mean_rate_matches_rps(self):
        from repro.serverless.loadgen import TICKS_PER_SECOND, arrival_ticks

        rps = 50.0
        ticks = arrival_ticks("diurnal", rps=rps, requests=2000, seed=2)
        observed = len(ticks) / (ticks[-1] / float(TICKS_PER_SECOND))
        assert observed == pytest.approx(rps, rel=0.25)

    def test_validation(self):
        from repro.serverless.loadgen import arrival_ticks

        with pytest.raises(ValueError):
            arrival_ticks("poisson", rps=0, requests=10)
        with pytest.raises(ValueError):
            arrival_ticks("poisson", rps=10, requests=0)
        with pytest.raises(ValueError):
            arrival_ticks("tsunami", rps=10, requests=10)


class TestOpenLoopTimingSeparation:
    def make_generator(self):
        from repro.serverless.container import base_image
        from repro.serverless.engine import install_docker
        from repro.serverless.faas import FaasPlatform
        from repro.serverless.loadgen import LoadGenerator

        engine = install_docker("riscv")
        engine.registry.push(base_image("go", "riscv"))
        platform = FaasPlatform(engine)
        platform.deploy("fn", "go-default", "go", lambda payload, ctx: {})
        return LoadGenerator(platform)

    def test_queue_delay_reported_separately_from_service(self):
        """Regression: queueing delay must not fold into service time.

        With a service time far above the mean gap, the single-server
        backlog grows and queue delay dominates — and every record must
        satisfy sojourn = queue + service exactly.
        """
        log = self.make_generator().open_loop_session(
            "fn", requests=40, mean_interarrival=5.0, seed=3,
            service_ticks=20.0)
        queued = 0
        for record in log:
            metrics = record.metrics
            assert metrics["timing.service_ticks"] == 20.0
            assert metrics["timing.sojourn_ticks"] == pytest.approx(
                metrics["timing.queue_ticks"] + metrics["timing.service_ticks"])
            queued += metrics["timing.queue_ticks"] > 0
        assert queued > len(log.records) // 2

    def test_zero_service_keeps_historical_behaviour(self):
        # The default models an infinitely fast server: nothing queues,
        # and the cold/warm pattern is untouched by the timing meters.
        log = self.make_generator().open_loop_session(
            "fn", requests=30, mean_interarrival=5.0, seed=3)
        for record in log:
            assert record.metrics["timing.queue_ticks"] == 0.0
            assert record.metrics["timing.sojourn_ticks"] == 0.0

    def test_service_ticks_validation(self):
        with pytest.raises(ValueError):
            self.make_generator().open_loop_session(
                "fn", requests=1, mean_interarrival=1, service_ticks=-1)
