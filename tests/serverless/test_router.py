"""Serving-layer tests: router, autoscaler, determinism, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st


def make_router(seed=0, scaling=None, tracer=None, faults=None,
                runtime="python"):
    from repro.serverless.container import base_image
    from repro.serverless.engine import install_docker
    from repro.serverless.router import Router

    engine = install_docker("riscv")
    engine.registry.push(base_image(runtime, "riscv"))

    def handler(payload, ctx):
        n = payload.get("n", 10)
        a, b = 0, 1
        for _ in range(n):
            a, b = b, a + b
        ctx.meter("app.work")
        return {"fib": a}

    router = Router(engine, seed=seed, tracer=tracer, faults=faults)
    router.deploy("fn", "%s-default" % runtime, runtime, handler,
                  scaling=scaling)
    return router


class TestScalingConfig:
    def test_validation(self):
        from repro.serverless.scaler import ScalingConfig

        with pytest.raises(ValueError):
            ScalingConfig(target_concurrency=0)
        with pytest.raises(ValueError):
            ScalingConfig(min_instances=5, max_instances=2)
        with pytest.raises(ValueError):
            ScalingConfig(panic_window=700, stable_window=600)
        with pytest.raises(ValueError):
            ScalingConfig(panic_threshold=1.0)
        with pytest.raises(ValueError):
            ScalingConfig(queue_capacity=0)

    def test_immutable_replace_and_roundtrip(self):
        from repro.serverless.scaler import ScalingConfig

        config = ScalingConfig(target_concurrency=3)
        with pytest.raises(AttributeError):
            config.target_concurrency = 5
        changed = config.replace(max_instances=2, min_instances=1)
        assert changed.target_concurrency == 3
        assert changed.max_instances == 2
        assert config.max_instances == 8  # original untouched
        assert ScalingConfig.from_dict(config.as_dict()) == config
        assert hash(changed) == hash(ScalingConfig.from_dict(changed.as_dict()))

    def test_pinned_disables_autoscaling(self):
        from repro.serverless.scaler import ScalingConfig

        pinned = ScalingConfig.pinned(instances=2)
        assert pinned.min_instances == pinned.max_instances == 2

    def test_fingerprint_distinguishes_knobs(self):
        from repro.serverless.scaler import ScalingConfig

        assert (ScalingConfig().fingerprint()
                != ScalingConfig(queue_capacity=32).fingerprint())


class TestWindowedAverage:
    def test_step_signal_weighting(self):
        from repro.serverless.scaler import windowed_average

        # Value 4 holds for ticks [10, 20), value 0 after: over the
        # window [0, 20] that is 10 ticks of 0 and 10 ticks of 4.
        samples = [(10, 4), (20, 0)]
        assert windowed_average(samples, now=20, window=20) == pytest.approx(2.0)

    def test_empty_and_point_windows(self):
        from repro.serverless.scaler import windowed_average

        assert windowed_average([], now=100, window=10) == 0.0
        # A sample landing exactly at `now` has held for zero ticks: the
        # window saw only the implicit leading zeros.
        assert windowed_average([(5, 7)], now=5, window=10) == 0.0
        # Once the value has held across the whole window it dominates.
        assert windowed_average([(5, 7)], now=15, window=10) == 7.0


class TestServeDeterminism:
    def run_once(self, seed):
        from repro.serverless.loadgen import arrival_ticks
        from repro.serverless.scaler import ScalingConfig

        router = make_router(seed=seed, scaling=ScalingConfig(
            target_concurrency=2, max_instances=6))
        arrivals = arrival_ticks("burst", rps=150, requests=120, seed=seed)
        return router.serve("fn", arrivals,
                            payload_factory=lambda i: {"n": 8 + i % 4})

    def test_same_seed_byte_identical(self):
        first = self.run_once(seed=7)
        second = self.run_once(seed=7)
        assert first.event_log() == second.event_log()
        assert first.summary() == second.summary()
        assert ([r.as_dict() for r in first.records]
                == [r.as_dict() for r in second.records])
        assert first.samples == second.samples

    def test_different_seed_differs(self):
        assert (self.run_once(seed=1).event_log()
                != self.run_once(seed=2).event_log())

    def test_burst_triggers_scale_up_and_tail_metrics(self):
        from repro.serverless.metrics import MetricsCollector
        from repro.serverless.scaler import ScalingEvent

        result = self.run_once(seed=7)
        assert result.scale_ups() >= 1
        assert result.peak_instances > 1
        assert result.max_queue_depth > 0
        assert result.sojourn_percentile(0.99) >= result.sojourn_percentile(0.50)
        kinds = {event.kind for event in result.events}
        assert ScalingEvent.UP in kinds
        collector = MetricsCollector()
        collector.observe_all(result.records)
        rendering = collector.render_serving()
        assert "qdelay" in rendering and "p99" in rendering


class TestRouterMechanics:
    def test_cold_then_warm_and_scale_to_zero(self):
        from repro.serverless.scaler import ScalingConfig

        router = make_router(scaling=ScalingConfig(
            max_instances=2, scale_to_zero_after=200, evaluate_every=20))
        result = router.serve("fn", [0, 5, 10])
        admitted = result.admitted
        assert admitted[0].cold
        assert not admitted[-1].cold
        # After the drain + idle timeout the pool is empty and the engine
        # holds no containers — scale-to-zero reclaimed everything.
        assert not router.pool("fn").instances
        assert router.engine.ps(all_states=True) == []

    def test_admission_control_rejects_overflow(self):
        from repro.serverless.scaler import ScalingConfig

        router = make_router(scaling=ScalingConfig(
            target_concurrency=1, max_instances=1, min_instances=1,
            queue_capacity=2, cold_start_ticks=64))
        result = router.serve("fn", [0] * 10)
        assert result.rejected > 0
        assert result.rejected + len(result.admitted) == 10
        for record in result.records:
            if "serve.rejected" in record.metrics:
                assert not record.ok
                assert "queue full" in record.error
            else:
                assert record.metrics["timing.sojourn_ticks"] == (
                    record.metrics["timing.queue_ticks"]
                    + record.metrics["timing.service_ticks"])

    def test_arrivals_must_be_sorted(self):
        router = make_router()
        with pytest.raises(ValueError):
            router.serve("fn", [10, 5])

    def test_deploy_duplicate_and_unknown_function(self):
        router = make_router()
        with pytest.raises(ValueError):
            router.deploy("fn", "python-default", "python",
                          lambda payload, ctx: {})
        with pytest.raises(KeyError):
            router.serve("ghost", [0])

    def test_handler_crash_recycles_instance(self):
        from repro.serverless.container import base_image
        from repro.serverless.engine import install_docker
        from repro.serverless.router import Router
        from repro.serverless.scaler import ScalingConfig, ScalingEvent

        engine = install_docker("riscv")
        engine.registry.push(base_image("python", "riscv"))

        def handler(payload, ctx):
            if payload.get("explode"):
                raise RuntimeError("boom")
            return {}

        router = Router(engine)
        router.deploy("flaky", "python-default", "python", handler,
                      scaling=ScalingConfig(max_instances=1, min_instances=1))
        result = router.serve("flaky", [0, 200, 400],
                              payload_factory=lambda i: {"explode": i == 1})
        admitted = result.admitted
        assert admitted[1].error is not None
        assert any(event.kind == ScalingEvent.RECYCLE
                   for event in result.events)
        # The replacement instance serves the third request cold.
        assert admitted[2].ok and admitted[2].cold

    def test_scaling_events_on_tracer_lane(self):
        from repro.obs import TRACK_SCALING, Tracer
        from repro.serverless.loadgen import arrival_ticks
        from repro.serverless.scaler import ScalingConfig

        tracer = Tracer()
        router = make_router(tracer=tracer, scaling=ScalingConfig(
            target_concurrency=2, max_instances=4))
        arrivals = arrival_ticks("burst", rps=150, requests=60, seed=3)
        router.serve("fn", arrivals)
        tracks = {event[3] for event in tracer.events}
        assert tracks == {TRACK_SCALING}
        cats = {event[2] for event in tracer.events}
        assert "serving" in cats and "scaling" in cats
        # The router stamps spans with its own ticks and never advances
        # the shared tracer clock.
        assert tracer.now == 0

    def test_chaos_serve_is_deterministic(self):
        from repro.faults import FaultInjector, FaultPlan
        from repro.serverless.loadgen import arrival_ticks
        from repro.serverless.scaler import ScalingConfig

        def run():
            plan = FaultPlan.chaos(seed=11, rate=0.2)
            router = make_router(
                seed=5, faults=FaultInjector(plan),
                scaling=ScalingConfig(target_concurrency=2, max_instances=4))
            arrivals = arrival_ticks("poisson", rps=80, requests=60, seed=5)
            return router.serve("fn", arrivals)

        first, second = run(), run()
        assert first.event_log() == second.event_log()
        assert ([r.as_dict() for r in first.records]
                == [r.as_dict() for r in second.records])
        injected = sum(amount for record in first.records
                       for key, amount in record.metrics.items()
                       if key.startswith("faults."))
        assert injected > 0


def busy_intervals_by_instance(tracer):
    """Reconstruct per-instance service intervals from serve spans."""
    intervals = {}
    for ph, name, cat, _track, ts, dur, args in tracer.events:
        if ph != "X" or cat != "serving" or not name.startswith("serve:"):
            continue
        start = ts + args["queue_ticks"]
        intervals.setdefault(args["instance"], []).append((start, ts + dur))
    return intervals


class TestConcurrencyInvariant:
    @settings(max_examples=25)
    @given(
        gaps=st.lists(st.integers(min_value=0, max_value=40),
                      min_size=1, max_size=40),
        target=st.integers(min_value=1, max_value=3),
        max_instances=st.integers(min_value=1, max_value=4),
        queue_capacity=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_busy_never_exceeds_target_concurrency(
            self, gaps, target, max_instances, queue_capacity, seed):
        """The router's hard bound: per-instance concurrency <= target.

        Verified externally: the serve spans on the scaling track carry
        (instance, queue delay, sojourn), which reconstructs every
        instance's busy intervals; no tick may be covered more than
        ``target_concurrency`` times.
        """
        from repro.obs import Tracer
        from repro.serverless.scaler import ScalingConfig

        tracer = Tracer()
        router = make_router(seed=seed, tracer=tracer, scaling=ScalingConfig(
            target_concurrency=target, max_instances=max_instances,
            queue_capacity=queue_capacity))
        arrivals = []
        tick = 0
        for gap in gaps:
            tick += gap
            arrivals.append(tick)
        result = router.serve("fn", arrivals)
        assert len(result.records) == len(arrivals)
        for instance, intervals in busy_intervals_by_instance(tracer).items():
            points = sorted(
                {edge for interval in intervals for edge in interval})
            for point in points:
                overlap = sum(1 for lo, hi in intervals if lo <= point < hi)
                assert overlap <= target, (
                    "instance %s served %d concurrent requests (target %d)"
                    % (instance, overlap, target))


class TestPipelineBitIdentity:
    def test_measurement_unchanged_by_serving(self):
        """The cycle-accurate pipeline must not notice the serving layer.

        A measurement taken before any serving, and the same spec
        measured again after a full autoscaled serve run in the same
        process, must be bit-identical — the serving layer shares the
        engine/faas machinery but may not leak state into measurements.
        """
        from repro.core.parallel import execute_task
        from repro.core.spec import MeasurementSpec
        from repro.serverless.loadgen import arrival_ticks

        spec = MeasurementSpec(function="fibonacci-python", isa="riscv",
                               time=2048, space=32)
        # Warm the process-local boot-checkpoint cache first: the very
        # first in-process measurement carries zero-valued atomic-CPU
        # stat keys in raw_dump that checkpoint-restored runs don't — a
        # pre-existing quirk this test is not about.
        execute_task(spec)
        before = execute_task(spec).as_dict(full=True)
        router = make_router(seed=3)
        router.serve("fn", arrival_ticks("burst", rps=100, requests=40,
                                         seed=3))
        after = execute_task(spec).as_dict(full=True)
        assert before == after

    def test_scaling_extends_spec_identity_and_digest(self):
        from repro.core.parallel import task_digest
        from repro.core.rescache import measurement_digest
        from repro.core.spec import MeasurementSpec
        from repro.serverless.scaler import ScalingConfig

        plain = MeasurementSpec(function="fibonacci-python")
        scaled = plain.replace(scaling=ScalingConfig())
        assert plain != scaled
        assert task_digest(plain) != task_digest(scaled)
        # Specs minted before the scaling field existed hash the same:
        # a None scaling must not perturb any pre-existing digest.
        legacy = measurement_digest(
            "fibonacci-python", "riscv", 2048, 32, 0, ("fp",))
        explicit = measurement_digest(
            "fibonacci-python", "riscv", 2048, 32, 0, ("fp",), scaling=None)
        assert legacy == explicit
