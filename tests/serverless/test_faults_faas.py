"""Fault injection through the FaaS stack + lifecycle bugfix regressions."""

import pytest

from repro.faults import FaultPlan, FaultSpec, RetryBudgetExceeded
from repro.serverless.container import base_image
from repro.serverless.engine import EngineError, install_docker
from repro.serverless.faas import FaasPlatform, FunctionState, KeepAlivePolicy
from repro.serverless.loadgen import LoadGenerator
from repro.serverless.rpc import RpcChannel


def make_platform(arch="riscv", policy=None, faults=None, retry_policy=None):
    engine = install_docker(arch, faults=faults)
    engine.registry.push(base_image("go", arch))
    return FaasPlatform(engine, policy=policy, faults=faults,
                        retry_policy=retry_policy)


def echo_handler(payload, ctx):
    return {"echo": payload}


def crashing_handler(payload, ctx):
    raise ValueError("handler bug")


class TestKillLeakRegression:
    def test_remove_runs_even_when_stop_raises(self):
        """The historical leak: one try/except around stop+remove skipped
        remove whenever stop raised, stranding a container per recycle."""
        platform = make_platform()
        platform.deploy("fib", "go-default", "go", echo_handler)
        platform.invoke("fib")
        # Stop the container out from under the platform so kill's stop
        # raises "not running" — remove must still happen.
        platform.engine.stop(platform.function("fib").container_name)
        platform.kill("fib")
        assert platform.engine.ps(all_states=True) == []
        assert platform.function("fib").container_name is None

    def test_container_table_stays_bounded_across_recycles(self):
        platform = make_platform()
        platform.deploy("fib", "go-default", "go", echo_handler)
        for cycle in range(25):
            platform.invoke("fib")
            if cycle % 2:  # alternate: externally-stopped and normal kills
                platform.engine.stop(platform.function("fib").container_name)
            platform.kill("fib")
            assert len(platform.engine.ps(all_states=True)) <= 1
        assert platform.engine.ps(all_states=True) == []

    def test_crash_recycle_cycles_stay_bounded(self):
        platform = make_platform()
        platform.deploy("bad", "go-default", "go", crashing_handler)
        for _ in range(10):
            record = platform.invoke("bad", raise_errors=False)
            assert not record.ok
            assert len(platform.engine.ps(all_states=True)) <= 1
        assert platform.engine.ps(all_states=True) == []


class TestColdStartPartialFailure:
    def test_start_failure_cleans_up_created_container(self):
        """create succeeds, start fails: the half-made container must be
        removed and the instance left cleanly dead."""
        plan = FaultPlan(seed=0, specs=[FaultSpec("engine.start", 1.0)],
                         retry_attempts=2)
        platform = make_platform(faults=plan.arm())
        platform.deploy("fib", "go-default", "go", echo_handler)
        with pytest.raises(RetryBudgetExceeded):
            platform.invoke("fib")
        instance = platform.function("fib")
        assert instance.state == FunctionState.DEAD
        assert instance.container_name is None
        assert platform.engine.ps(all_states=True) == []

    def test_cold_start_failure_as_error_record(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec("engine.start", 1.0)],
                         retry_attempts=2)
        platform = make_platform(faults=plan.arm())
        platform.deploy("fib", "go-default", "go", echo_handler)
        record = platform.invoke("fib", raise_errors=False)
        assert not record.ok
        assert "RetryBudgetExceeded" in record.error
        assert platform.state_of("fib") == FunctionState.DEAD
        assert platform.engine.ps(all_states=True) == []

    def test_next_invocation_retries_from_scratch(self):
        plan = FaultPlan(seed=0,
                         specs=[FaultSpec("engine.start", 1.0, max_fires=2)],
                         retry_attempts=1)
        platform = make_platform(faults=plan.arm())
        platform.deploy("fib", "go-default", "go", echo_handler)
        for _ in range(2):
            assert not platform.invoke("fib", raise_errors=False).ok
        record = platform.invoke("fib")  # fault budget exhausted: clean boot
        assert record.ok and record.cold

    def test_transient_start_failure_recovered_by_retry(self):
        plan = FaultPlan(seed=0,
                         specs=[FaultSpec("engine.start", 1.0, max_fires=1)],
                         retry_attempts=3)
        platform = make_platform(faults=plan.arm())
        platform.deploy("fib", "go-default", "go", echo_handler)
        record = platform.invoke("fib")
        assert record.ok
        assert record.metrics["retries.cold_start"] == 1
        assert record.metrics["faults.engine.start"] == 1
        assert len(platform.engine.ps()) == 1


class TestRecycleAndEviction:
    def test_handler_crash_recycles_instance_to_dead(self):
        platform = make_platform()
        platform.deploy("bad", "go-default", "go", crashing_handler)
        record = platform.invoke("bad", raise_errors=False)
        assert not record.ok
        assert record.error.startswith("ValueError")
        assert record.result == {"error": record.error}
        assert platform.state_of("bad") == FunctionState.DEAD
        assert platform.invoke("bad", raise_errors=False).cold

    def test_overflow_evicts_oldest_last_used_first(self):
        policy = KeepAlivePolicy(idle_timeout=1000, max_warm=2)
        platform = make_platform(policy=policy)
        for name in ("f1", "f2", "f3", "f4"):
            platform.deploy(name, "go-default", "go", echo_handler)
        platform.invoke("f1")  # last_used = 1
        platform.invoke("f2")  # last_used = 2
        platform.invoke("f3")  # f1 (oldest) evicted at clock 3
        assert platform.state_of("f1") == FunctionState.DEAD
        assert platform.state_of("f2") == FunctionState.WAITING
        platform.invoke("f4")  # f2 now the oldest
        assert platform.state_of("f2") == FunctionState.DEAD
        assert platform.state_of("f3") == FunctionState.WAITING
        assert platform.state_of("f4") == FunctionState.WAITING

    def test_victim_ordering_is_oldest_first(self):
        policy = KeepAlivePolicy(idle_timeout=1000, max_warm=1)
        platform = make_platform(policy=policy)
        instances = []
        for index, name in enumerate(("a", "b", "c")):
            instance = platform.deploy(name, "go-default", "go", echo_handler)
            instance.state = FunctionState.WAITING
            instance.last_used = 10 - index  # a newest, c oldest
            instances.append(instance)
        victims = policy.victims(instances, now=10)
        assert [victim.name for victim in victims] == ["c", "b"]


class TestInjectedCrashStatistics:
    def test_request_log_error_count_and_cold_rate(self):
        plan = FaultPlan(seed=2, specs=[FaultSpec("faas.handler", 0.4)],
                         retry_attempts=1)  # no retries: every fire is a 500
        platform = make_platform(faults=plan.arm())
        platform.deploy("fib", "go-default", "go", echo_handler)
        log = LoadGenerator(platform).run_session("fib", requests=20, raise_errors=False)
        errors = sum(1 for record in log if not record.ok)
        assert log.error_count == errors
        assert 0 < log.error_count < 20
        # each crash recycles the instance, so the next request is cold
        assert log.cold_count == 1 + sum(
            1 for record in list(log)[:-1] if not record.ok)
        assert log.cold_rate == log.cold_count / 20

    def test_retries_recover_most_crashes(self):
        plan = FaultPlan(seed=2, specs=[FaultSpec("faas.handler", 0.4)],
                         retry_attempts=4)
        platform = make_platform(faults=plan.arm())
        platform.deploy("fib", "go-default", "go", echo_handler)
        log = LoadGenerator(platform).run_session("fib", requests=20, raise_errors=False)
        retried = sum(record.metrics.get("retries.handler", 0)
                      for record in log)
        assert retried > 0
        assert log.error_count < retried  # recovery beats failure

    def test_crash_statistics_deterministic_across_runs(self):
        def run():
            plan = FaultPlan(seed=6, specs=[FaultSpec("faas.handler", 0.3)])
            platform = make_platform(faults=plan.arm())
            platform.deploy("fib", "go-default", "go", echo_handler)
            log = LoadGenerator(platform).run_session("fib", requests=15, raise_errors=False)
            return [(record.cold, record.ok, dict(record.metrics))
                    for record in log]

        assert run() == run()


class TestRpcFaults:
    def test_drop_returns_unavailable(self):
        channel = RpcChannel("geo")
        channel.register("near", lambda payload: {"hotels": []})
        channel.faults = FaultPlan(
            seed=0, specs=[FaultSpec("rpc.drop", 1.0, max_fires=1)]).arm()
        dropped = channel.call("near")
        assert dropped.status == "UNAVAILABLE"
        assert channel.drops == 1
        assert channel.call("near").ok  # budget spent; service recovers

    def test_latency_spike_metered(self):
        channel = RpcChannel("geo")
        channel.register("near", lambda payload: {"hotels": []})
        channel.faults = FaultPlan(
            seed=0, specs=[FaultSpec("rpc.latency", 1.0, ticks=32,
                                     max_fires=2)]).arm()
        assert channel.call("near").ok
        assert channel.latency_ticks == 32

    def test_no_faults_no_overhead_fields_touched(self):
        channel = RpcChannel("geo")
        channel.register("near", lambda payload: {"hotels": []})
        assert channel.call("near").ok
        assert channel.drops == 0 and channel.latency_ticks == 0


class TestEngineFaults:
    def test_engine_sites_raise_engine_error(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec("engine.create", 1.0)])
        engine = install_docker("riscv", faults=plan.arm())
        engine.registry.push(base_image("go", "riscv"))
        engine.pull("go-default")
        with pytest.raises(EngineError, match="injected engine fault"):
            engine.create("go-default")

    def test_stall_elapses_platform_clock(self):
        plan = FaultPlan(seed=0, specs=[
            FaultSpec("faas.cold_start", 1.0, ticks=32, max_fires=1)])
        platform = make_platform(faults=plan.arm())
        platform.deploy("fib", "go-default", "go", echo_handler)
        record = platform.invoke("fib")
        assert record.metrics["faults.stall_ticks"] == 32
        assert platform.clock == 1.0 + 32  # advance_clock + stall
