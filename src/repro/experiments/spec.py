"""Declarative experiment specs: one immutable object names a study.

An :class:`ExperimentSpec` is to a *study* what
:class:`~repro.core.spec.MeasurementSpec` is to a single matrix point: a
picklable value object that states everything the run depends on.  It
holds a **base** scenario (one knob dict, shared by every point — the
same shape as the ``common_scenario`` YAML anchor pattern in
SNIPPETS.md) and an ordered list of **axes**; :meth:`ExperimentSpec.expand`
takes the cartesian product of the axes over the base and yields one
:class:`ExperimentPoint` per combination, in declared order.

Two kinds of study exist:

* ``kind="measure"`` — each point lowers to a
  :class:`~repro.core.spec.MeasurementSpec` and runs the ten-request
  cycle-accurate protocol through the parallel engine and the result
  cache (reruns are warm).
* ``kind="serve"`` — each point drives a seeded arrival trace through
  the autoscaled router (:mod:`repro.serverless`), the service-level
  path (queueing, cold starts, eviction, cluster placement).

Both kinds expose a ``memory_mb`` knob, the serverless *instance size*.
On the measure path it buys microarchitecture: the platform's LLC slice
scales linearly with the memory grant (512 MB ⇔ the canonical 512 KB
L2), the same resource-isolation model Lambda uses for CPU shares.  The
cost model (:mod:`repro.experiments.cost`) completes the story by
scaling CPU time share with the same grant, so the classic perf-cost
memory sweep has a real knee.

Like every config object in this repo (kw-only, ``__slots__``,
``fingerprint()``, ``as_dict``/``from_dict``), the spec is hand-rolled
rather than a dataclass: CI runs Python 3.9, which lacks
``dataclass(kw_only=True)``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.config import PlatformConfig, platform_for
from repro.core.scale import SimScale
from repro.core.spec import MeasurementSpec
from repro.serverless.loadgen import ARRIVAL_PROFILES
from repro.serverless.platform import PLACEMENT_POLICIES
from repro.sim.mem.hierarchy import MemoryHierarchyConfig

#: Version tag embedded in every serialized spec (and, transitively, in
#: every result artifact).  Bump on any incompatible shape change.
SPEC_SCHEMA = "repro.experiments.spec/v1"

#: The two study kinds (see module docstring).
KINDS = ("measure", "serve")

#: ``memory_mb`` grant that maps to the canonical platform (Table 4.1's
#: 512 KB L2).  Other grants scale the LLC slice linearly.
MEMORY_REFERENCE_MB = 512

#: LLC-slice clamp: no grant shrinks the L2 below 64 KB or grows it
#: past 4 MB, keeping every swept platform inside the simulator's
#: validated geometry range.
MIN_L2_BYTES = 64 * 1024
MAX_L2_BYTES = 4 * 1024 * 1024

#: Base-scenario knobs for ``kind="measure"`` studies, with defaults.
#: Any knob may also appear as an axis.
MEASURE_KNOBS: Dict[str, Any] = {
    "function": "fibonacci-python",
    "isa": "riscv",
    "db": None,
    "seed": 0,
    "requests": 10,
    "time_scale": 2048,
    "space_scale": 32,
    "memory_mb": MEMORY_REFERENCE_MB,
    "sampling": None,
    "vector": None,
}

#: Base-scenario knobs for ``kind="serve"`` studies, with defaults.
SERVE_KNOBS: Dict[str, Any] = {
    "function": "fibonacci-python",
    "isa": "riscv",
    "db": None,
    "seed": 0,
    "profile": "poisson",
    "rps": 100.0,
    "arrivals": 200,
    "memory_mb": MEMORY_REFERENCE_MB,
    "target_concurrency": 1,
    "min_instances": 0,
    "max_instances": 8,
    "queue_capacity": 64,
    "scale_to_zero_after": 1200,
    "nodes": 0,
    "placement": "binpack",
    "node_capacity": None,
    "node_fail": 0.0,
}

_KNOBS_BY_KIND = {"measure": MEASURE_KNOBS, "serve": SERVE_KNOBS}

_SCALAR_TYPES = (str, int, float, bool, type(None))


def platform_for_memory(isa: str, memory_mb: int) -> Optional[PlatformConfig]:
    """The platform a ``memory_mb`` instance grant buys on ``isa``.

    Models FaaS resource isolation: the instance's last-level-cache
    slice scales linearly with its memory grant
    (:data:`MEMORY_REFERENCE_MB` ⇔ the canonical 512 KB L2), clamped to
    [:data:`MIN_L2_BYTES`, :data:`MAX_L2_BYTES`].  Returns ``None`` for
    the reference grant so the default memory keeps the canonical
    platform — and therefore byte-identical measurement digests with
    plain ``repro measure`` runs.
    """
    if memory_mb <= 0:
        raise ValueError("memory_mb must be positive, got %r" % (memory_mb,))
    base = platform_for(isa)
    l2_size = int(base.mem_config.l2_size * memory_mb / MEMORY_REFERENCE_MB)
    l2_size = max(MIN_L2_BYTES, min(l2_size, MAX_L2_BYTES))
    if l2_size == base.mem_config.l2_size:
        return None
    mem_kwargs = {key: getattr(base.mem_config, key)
                  for key in MemoryHierarchyConfig().__dict__}
    mem_kwargs["l2_size"] = l2_size
    return PlatformConfig(
        isa=base.isa,
        os_name=base.os_name,
        kernel_version=base.kernel_version,
        compiler=base.compiler,
        num_cores=base.num_cores,
        mem_config=MemoryHierarchyConfig(**mem_kwargs),
        o3_config=base.o3_config,
    )


def _require_scalar(context: str, value: Any) -> None:
    if not isinstance(value, _SCALAR_TYPES):
        raise ValueError("%s must be a JSON scalar, got %r" % (context, value))


class ExperimentPoint:
    """One cell of an expanded experiment matrix.

    ``settings`` holds just the axis assignment (what varies);
    ``knobs`` is the fully resolved scenario (base merged with
    settings).  Points are produced by :meth:`ExperimentSpec.expand` in
    deterministic declared-axis order.
    """

    __slots__ = ("kind", "settings", "knobs")

    def __init__(self, kind: str, settings: Dict[str, Any],
                 knobs: Dict[str, Any]):
        self.kind = kind
        self.settings = dict(settings)
        self.knobs = dict(knobs)

    def label(self) -> str:
        """Human-readable axis assignment, e.g. ``memory_mb=256 isa=riscv``."""
        if not self.settings:
            return "(single point)"
        return " ".join("%s=%s" % (key, value)
                        for key, value in self.settings.items())

    def resolved_db(self) -> Optional[str]:
        """The datastore this point binds: the ``db`` knob, defaulting to
        cassandra for hotel-suite functions (mirroring
        :func:`repro.core.reproduce.measure`) and ``None`` elsewhere."""
        from repro.workloads.catalog import get_function

        function = get_function(self.knobs["function"])
        if function.suite == "hotel":
            return self.knobs["db"] or "cassandra"
        return None

    def measurement_spec(self) -> MeasurementSpec:
        """Lower a measure-kind point to the core measurement spec.

        The ``memory_mb`` knob becomes a platform override (see
        :func:`platform_for_memory`), which the result cache already
        keys on via the platform fingerprint — so experiment reruns are
        warm and bit-identical per seed.
        """
        if self.kind != "measure":
            raise ValueError("only measure-kind points lower to "
                             "MeasurementSpec (kind=%r)" % self.kind)
        knobs = self.knobs
        sampling = vector = None
        if knobs["sampling"]:
            from repro.sim.sampling import SamplingConfig

            sampling = SamplingConfig.parse(knobs["sampling"])
        if knobs["vector"]:
            from repro.sim.isa.vector import VectorConfig

            vector = VectorConfig.parse(knobs["vector"])
        return MeasurementSpec(
            function=knobs["function"],
            isa=knobs["isa"],
            scale=SimScale(time=knobs["time_scale"],
                           space=knobs["space_scale"]),
            seed=knobs["seed"],
            db=self.resolved_db(),
            requests=knobs["requests"],
            platform=platform_for_memory(knobs["isa"], knobs["memory_mb"]),
            sampling=sampling,
            vector=vector,
        )

    def __repr__(self) -> str:
        return "ExperimentPoint(%s, %s)" % (self.kind, self.label())


class ExperimentSpec:
    """An immutable, fingerprinted description of one named study.

    Keyword-only.  ``base`` overrides the kind's default scenario
    (:data:`MEASURE_KNOBS` / :data:`SERVE_KNOBS`); ``axes`` is an
    ordered sequence of ``(knob, values)`` pairs whose cartesian product
    defines the matrix; ``cost`` overrides
    :class:`~repro.experiments.cost.CostModel` rates.  Unknown knobs,
    axes or cost keys are errors — a spec either describes a runnable
    study or refuses to construct.

    Value semantics: equality and hashing go through
    :meth:`fingerprint`, a digest of the canonical serialized form, so
    two specs that would run the same study compare equal regardless of
    how their dicts were spelled.
    """

    __slots__ = ("name", "title", "kind", "_base", "_axes", "_cost")

    def __init__(self, *, name: str, kind: str, title: str = "",
                 base: Optional[Dict[str, Any]] = None,
                 axes: Optional[Iterable[Tuple[str, Iterable[Any]]]] = None,
                 cost: Optional[Dict[str, float]] = None):
        from repro.experiments.cost import COST_RATE_FIELDS

        if not name or not isinstance(name, str):
            raise ValueError("experiment name must be a non-empty string")
        if any(ch.isspace() for ch in name):
            raise ValueError("experiment name must not contain whitespace: "
                             "%r" % name)
        if kind not in KINDS:
            raise ValueError("kind must be one of %s, got %r"
                             % ("/".join(KINDS), kind))
        defaults = _KNOBS_BY_KIND[kind]
        merged = dict(defaults)
        for key, value in (base or {}).items():
            if key not in defaults:
                raise ValueError("unknown %s knob %r (known: %s)"
                                 % (kind, key, ", ".join(sorted(defaults))))
            _require_scalar("base knob %r" % key, value)
            merged[key] = value
        normalized_axes: List[Tuple[str, Tuple[Any, ...]]] = []
        seen = set()
        for axis_name, values in (axes or ()):
            if axis_name not in defaults:
                raise ValueError("unknown %s axis %r (known: %s)"
                                 % (kind, axis_name,
                                    ", ".join(sorted(defaults))))
            if axis_name in seen:
                raise ValueError("duplicate axis %r" % axis_name)
            seen.add(axis_name)
            values = tuple(values)
            if not values:
                raise ValueError("axis %r needs at least one value"
                                 % axis_name)
            for value in values:
                _require_scalar("axis %r value" % axis_name, value)
            normalized_axes.append((axis_name, values))
        cost_overrides = {}
        for key, value in (cost or {}).items():
            if key not in COST_RATE_FIELDS:
                raise ValueError("unknown cost rate %r (known: %s)"
                                 % (key, ", ".join(COST_RATE_FIELDS)))
            cost_overrides[key] = float(value)
        self._set("name", name)
        self._set("title", title or name)
        self._set("kind", kind)
        self._set("_base", merged)
        self._set("_axes", tuple(normalized_axes))
        self._set("_cost", cost_overrides)
        self._validate_scenario()

    def _set(self, attribute: str, value: Any) -> None:
        object.__setattr__(self, attribute, value)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("ExperimentSpec is immutable; build a new one")

    def _validate_scenario(self) -> None:
        """Cross-knob checks over every value a knob can take."""
        def candidates(knob: str) -> Tuple[Any, ...]:
            for axis_name, values in self._axes:
                if axis_name == knob:
                    return values
            return (self._base[knob],)

        for memory_mb in candidates("memory_mb"):
            if not isinstance(memory_mb, int) or memory_mb <= 0:
                raise ValueError("memory_mb must be a positive int, got %r"
                                 % (memory_mb,))
        if self.kind == "serve":
            for profile in candidates("profile"):
                if profile not in ARRIVAL_PROFILES:
                    raise ValueError("unknown arrival profile %r (known: %s)"
                                     % (profile,
                                        ", ".join(ARRIVAL_PROFILES)))
            for placement in candidates("placement"):
                if placement not in PLACEMENT_POLICIES:
                    raise ValueError("unknown placement %r (known: %s)"
                                     % (placement,
                                        ", ".join(PLACEMENT_POLICIES)))

    # -- accessors ----------------------------------------------------

    @property
    def base(self) -> Dict[str, Any]:
        """The fully resolved base scenario (a defensive copy)."""
        return dict(self._base)

    @property
    def axes(self) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
        """The declared axes, in declared order."""
        return self._axes

    @property
    def cost_overrides(self) -> Dict[str, float]:
        """Cost-model rate overrides (a defensive copy)."""
        return dict(self._cost)

    @property
    def seed(self) -> int:
        """The base scenario's seed."""
        return self._base["seed"]

    def point_count(self) -> int:
        """Matrix size: the product of the axis lengths."""
        count = 1
        for _, values in self._axes:
            count *= len(values)
        return count

    # -- serialization ------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Canonical plain-data form; ``from_dict`` roundtrips it."""
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "title": self.title,
            "kind": self.kind,
            "base": dict(self._base),
            "axes": [[name, list(values)] for name, values in self._axes],
            "cost": dict(self._cost),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        """Build a spec from plain data (the YAML/JSON wire form).

        ``schema`` is optional on input but must match
        :data:`SPEC_SCHEMA` when present; missing base knobs take the
        kind's defaults; unknown top-level keys are errors.
        """
        if not isinstance(data, dict):
            raise ValueError("experiment spec must be a mapping, got %r"
                             % type(data).__name__)
        data = dict(data)
        schema = data.pop("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise ValueError("unsupported spec schema %r (expected %r)"
                             % (schema, SPEC_SCHEMA))
        known = {"name", "title", "kind", "base", "axes", "cost"}
        unknown = set(data) - known
        if unknown:
            raise ValueError("unknown spec keys: %s"
                             % ", ".join(sorted(unknown)))
        axes = data.get("axes") or []
        return cls(
            name=data.get("name", ""),
            title=data.get("title", ""),
            kind=data.get("kind", ""),
            base=data.get("base") or {},
            axes=[(axis[0], axis[1]) for axis in axes],
            cost=data.get("cost") or {},
        )

    @classmethod
    def from_yaml(cls, text: str) -> "ExperimentSpec":
        """Parse a YAML document into a spec (shared-scenario style).

        PyYAML is an optional dependency — the CI image installs only
        the test toolchain — so the import is gated and the error says
        what to do.  JSON being a YAML subset, ``from_dict`` +
        ``json.loads`` always works without it.
        """
        try:
            import yaml
        except ImportError:  # pragma: no cover - depends on environment
            raise RuntimeError(
                "PyYAML is not installed; pass a JSON spec (json.loads + "
                "ExperimentSpec.from_dict) or install pyyaml")
        return cls.from_dict(yaml.safe_load(text))

    def fingerprint(self) -> str:
        """Stable content digest of the canonical form (16 hex chars).

        Two specs that describe the same study — same kind, resolved
        base, axes, and cost rates — share a fingerprint, however their
        input dicts were spelled.  The fingerprint is embedded in every
        result artifact, so an artifact names exactly the study that
        produced it.
        """
        blob = json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def with_base(self, **overrides: Any) -> "ExperimentSpec":
        """A copy with base knobs replaced (e.g. a CLI ``--seed``)."""
        merged = dict(self._base)
        merged.update(overrides)
        return ExperimentSpec(name=self.name, title=self.title,
                              kind=self.kind, base=merged,
                              axes=self._axes, cost=self._cost)

    # -- expansion ----------------------------------------------------

    def expand(self) -> List[ExperimentPoint]:
        """The matrix: one point per cartesian-product combination.

        Axes iterate in declared order with the last axis fastest —
        ``axes=[("a", [1, 2]), ("b", [x, y])]`` yields
        ``(1,x), (1,y), (2,x), (2,y)`` — so row order in rendered tables
        matches the declaration.
        """
        names = [name for name, _ in self._axes]
        points = []
        for combo in itertools.product(*[values for _, values in self._axes]):
            settings = dict(zip(names, combo))
            knobs = dict(self._base)
            knobs.update(settings)
            points.append(ExperimentPoint(self.kind, settings, knobs))
        return points

    # -- value semantics ----------------------------------------------

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, ExperimentSpec):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __repr__(self) -> str:
        return ("ExperimentSpec(name=%r, kind=%r, %d axes, %d points)"
                % (self.name, self.kind, len(self._axes),
                   self.point_count()))
