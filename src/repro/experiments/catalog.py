"""The named experiment catalog: reusable, documented studies.

Each entry is a plain :meth:`~repro.experiments.spec.ExperimentSpec.from_dict`
document (no YAML dependency), so the catalog itself demonstrates the
wire form a ``--spec`` file uses.  Every entry here must have a matching
section in ``docs/EXPERIMENT_CATALOG.md`` — a tier-1 test enforces it —
and its committed result artifact lives under
``benchmarks/output/experiments/``.

Run one with ``python -m repro experiment run <name>``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.spec import ExperimentSpec

#: The catalog documents, in presentation order (dict insertion order).
CATALOG: Dict[str, dict] = {
    "perf-cost": {
        "name": "perf-cost",
        "title": "Perf-cost memory sweep: $ vs p99 across instance sizes "
                 "and ISAs (SeBS's perf-cost experiment).",
        "kind": "measure",
        "base": {
            "function": "hotel-profile-go",
            "db": "cassandra",
            "time_scale": 2048,
            "space_scale": 32,
        },
        "axes": [
            ["memory_mb", [128, 256, 512, 1024, 2048]],
            ["isa", ["riscv", "x86"]],
        ],
    },
    "db-shootout": {
        "name": "db-shootout",
        "title": "MongoDB vs Cassandra vs MariaDB backing the hotel "
                 "application under an identical scenario.",
        "kind": "measure",
        "base": {
            "function": "hotel-profile-go",
            "isa": "riscv",
            "time_scale": 2048,
            "space_scale": 32,
        },
        "axes": [
            ["db", ["cassandra", "mongodb", "mariadb"]],
            ["function", ["hotel-geo-go", "hotel-profile-go"]],
        ],
    },
    "cold-start-eviction": {
        "name": "cold-start-eviction",
        "title": "Cold-start eviction study: keep-alive horizon vs "
                 "cold-start rate and provisioned-uptime cost under "
                 "diurnal traffic.",
        "kind": "serve",
        "base": {
            "function": "fibonacci-python",
            "profile": "diurnal",
            "rps": 40.0,
            "arrivals": 300,
            "target_concurrency": 2,
        },
        "axes": [
            ["scale_to_zero_after", [60, 240, 960]],
        ],
    },
    "concurrency-sweep": {
        "name": "concurrency-sweep",
        "title": "Concurrency sweep: per-instance target concurrency vs "
                 "tail latency and cost under bursty traffic.",
        "kind": "serve",
        "base": {
            "function": "fibonacci-go",
            "profile": "burst",
            "rps": 150.0,
            "arrivals": 200,
        },
        "axes": [
            ["target_concurrency", [1, 2, 4, 8]],
        ],
    },
    "placement-chaos": {
        "name": "placement-chaos",
        "title": "Cluster placement under node chaos: binpack vs spread "
                 "on a 3-node cluster with failing nodes.",
        "kind": "serve",
        "base": {
            "function": "fibonacci-python",
            "profile": "poisson",
            "rps": 150.0,
            "arrivals": 250,
            "seed": 7,
            "nodes": 3,
            "node_fail": 0.2,
            "target_concurrency": 2,
            "max_instances": 9,
        },
        "axes": [
            ["placement", ["binpack", "spread"]],
        ],
    },
}


def experiment_names() -> List[str]:
    """Catalog entry names, in presentation order."""
    return list(CATALOG)


def get_experiment(name: str) -> ExperimentSpec:
    """Build the named catalog entry (KeyError on unknown names)."""
    try:
        document = CATALOG[name]
    except KeyError:
        raise KeyError("no catalog experiment %r (known: %s)"
                       % (name, ", ".join(experiment_names())))
    spec = ExperimentSpec.from_dict(document)
    assert spec.name == name, "catalog key/name mismatch for %r" % name
    return spec


def iter_experiments() -> List[ExperimentSpec]:
    """Every catalog entry, built, in presentation order."""
    return [get_experiment(name) for name in experiment_names()]
