"""Declarative experiments: named, fingerprinted, reproducible studies.

The layer ROADMAP item 4 asks for, modeled on how SeBS evaluates
commercial clouds: instead of ad hoc CLI invocations, a *study* is a
value — an immutable :class:`~repro.experiments.spec.ExperimentSpec`
that names a base scenario and the axes to sweep — and running it
yields a versioned, byte-reproducible artifact
(:class:`~repro.experiments.artifact.ExperimentResult`) with latency
**and dollar-cost** columns (:class:`~repro.experiments.cost.CostModel`).

Quick tour::

    from repro.experiments import get_experiment, run_experiment

    spec = get_experiment("perf-cost")      # from the named catalog
    result = run_experiment(spec)           # warm + parallel via rescache
    result.write("benchmarks/output/experiments")

or from the command line: ``python -m repro experiment run perf-cost``.
See ``docs/EXPERIMENT_CATALOG.md`` for every named study and the
results contract.
"""

from repro.experiments.artifact import (
    RESULT_SCHEMA,
    ExperimentResult,
    load_result,
    render_markdown,
)
from repro.experiments.catalog import (
    CATALOG,
    experiment_names,
    get_experiment,
    iter_experiments,
)
from repro.experiments.cost import (
    COST_RATE_FIELDS,
    CostBreakdown,
    CostModel,
    cpu_share,
)
from repro.experiments.runner import instance_ticks, run_experiment
from repro.experiments.spec import (
    KINDS,
    SPEC_SCHEMA,
    ExperimentPoint,
    ExperimentSpec,
    platform_for_memory,
)

__all__ = [
    "CATALOG",
    "COST_RATE_FIELDS",
    "CostBreakdown",
    "CostModel",
    "ExperimentPoint",
    "ExperimentResult",
    "ExperimentSpec",
    "KINDS",
    "RESULT_SCHEMA",
    "SPEC_SCHEMA",
    "cpu_share",
    "experiment_names",
    "get_experiment",
    "instance_ticks",
    "iter_experiments",
    "load_result",
    "platform_for_memory",
    "render_markdown",
    "run_experiment",
]
