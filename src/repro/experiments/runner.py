"""Execute an :class:`~repro.experiments.spec.ExperimentSpec`.

One entry point, :func:`run_experiment`, for both study kinds:

* **measure** — every point lowers to a
  :class:`~repro.core.spec.MeasurementSpec` and the whole matrix is
  scheduled through :func:`repro.core.parallel.run_measurement_matrix`,
  so points fan out over workers and the result cache short-circuits
  anything already measured.  Latency columns come from the protocol's
  proxy distribution — one cold request followed by ``requests - 1``
  warm ones, each projected to native milliseconds on the point's CPU
  share — which is the documented p50/p99 assumption on this path (the
  cycle-accurate protocol measures requests 1 and 10, not a trace).
* **serve** — every point drives a seeded arrival trace through the
  autoscaled router; latency percentiles are *real* sojourn-time tails
  over the admitted requests, and cost is billed on provisioned
  instance uptime (see :meth:`repro.experiments.cost.CostModel.serving_cost`).

Everything is deterministic per seed: same spec + same seed produce a
byte-identical result artifact, warm cache or cold.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.parallel import run_measurement_matrix
from repro.experiments.artifact import ExperimentResult
from repro.experiments.cost import SECONDS_PER_TICK, CostModel
from repro.experiments.spec import ExperimentPoint, ExperimentSpec
from repro.sim.statistics import percentile

#: Metric columns every measure-kind row carries (after the axis columns).
MEASURE_COLUMNS = ("cold_ms", "warm_ms", "p50_ms", "p99_ms", "energy_mj",
                   "usd_per_1m")

#: Metric columns every serve-kind row carries (after the axis columns).
SERVE_COLUMNS = ("served", "rejected", "cold_starts", "p50_ms", "p99_ms",
                 "instance_gb_s", "usd_per_1m")

#: Extra serve columns appended when any point runs a multi-node cluster.
CLUSTER_COLUMNS = ("node_failures", "cross_node")


def instance_ticks(result) -> int:
    """∫ instances dt over a serve run's sampled timeline, in ticks.

    ``result.samples`` records ``(tick, queue, in_flight, instances)``
    on every change; each instance count holds until the next sample,
    and the final count holds until ``finished_at``.  This is the
    provisioned-uptime integral the serving cost model bills on.
    """
    samples = result.samples
    if not samples:
        return 0
    total = 0
    for current, following in zip(samples, samples[1:]):
        total += current[3] * max(0, following[0] - current[0])
    last = samples[-1]
    total += last[3] * max(0, result.finished_at - last[0])
    return total


def _measure_rows(points: List[ExperimentPoint], cost_model: CostModel,
                  jobs: Optional[int], cache, progress) -> List[Dict[str, Any]]:
    """Run the matrix through the parallel engine; one row per point."""
    tasks = [point.measurement_spec() for point in points]
    measured = run_measurement_matrix(tasks, jobs=jobs, cache=cache)
    rows = []
    for point, measurement in zip(points, measured):
        knobs = point.knobs
        cold = cost_model.invocation_cost(measurement.cold,
                                          memory_mb=knobs["memory_mb"],
                                          time_scale=knobs["time_scale"])
        warm = cost_model.invocation_cost(measurement.warm,
                                          memory_mb=knobs["memory_mb"],
                                          time_scale=knobs["time_scale"])
        requests = knobs["requests"]
        durations = [cold.duration_s] + [warm.duration_s] * (requests - 1)
        mean_usd = (cold.total_usd
                    + warm.total_usd * (requests - 1)) / requests
        energy_mj = (cost_model.energy_model.estimate(measurement.warm).joules
                     * knobs["time_scale"] * 1e3)
        row: Dict[str, Any] = dict(point.settings)
        row.update({
            "cold_ms": cold.duration_s * 1e3,
            "warm_ms": warm.duration_s * 1e3,
            "p50_ms": percentile(durations, 0.50) * 1e3,
            "p99_ms": percentile(durations, 0.99) * 1e3,
            "energy_mj": energy_mj,
            "usd_per_1m": mean_usd * 1e6,
            "detail": {
                "cold_cycles": measurement.cold.cycles,
                "warm_cycles": measurement.warm.cycles,
                "cold_cost": cold.as_dict(),
                "warm_cost": warm.as_dict(),
            },
        })
        rows.append(row)
        if progress is not None:
            progress("measured %s" % point.label())
    return rows


def _serve_point(point: ExperimentPoint):
    """One deterministic serve run, mirroring ``python -m repro serve``."""
    from repro.serverless.loadgen import arrival_ticks
    from repro.serverless.platform import ClusterConfig, make_platform
    from repro.serverless.scaler import ScalingConfig
    from repro.workloads.catalog import get_function

    knobs = point.knobs
    function = get_function(knobs["function"])
    services: Dict[str, Any] = {}
    db = point.resolved_db()
    if db is not None:
        from repro.db import make_datastore
        from repro.workloads.hotel import HotelSuite

        services = HotelSuite(make_datastore(db)).services_for(function)
    cluster = None
    if knobs["nodes"]:
        cluster = ClusterConfig(nodes=knobs["nodes"],
                                placement=knobs["placement"],
                                node_capacity=knobs["node_capacity"],
                                node_fail_rate=knobs["node_fail"])
    platform = make_platform(knobs["isa"], cluster=cluster,
                             seed=knobs["seed"])
    platform.registry.push(function.image(knobs["isa"]))
    scaling = ScalingConfig(
        target_concurrency=knobs["target_concurrency"],
        min_instances=knobs["min_instances"],
        max_instances=knobs["max_instances"],
        queue_capacity=knobs["queue_capacity"],
        scale_to_zero_after=knobs["scale_to_zero_after"])
    platform.deploy(function.name, function.name, function.runtime_name,
                    function.handler, services=services, scaling=scaling)
    arrivals = arrival_ticks(knobs["profile"], rps=knobs["rps"],
                             requests=knobs["arrivals"], seed=knobs["seed"])
    return platform.serve(function.name, arrivals,
                          payload_factory=function.default_payload)


def _serve_rows(points: List[ExperimentPoint], cost_model: CostModel,
                progress) -> List[Dict[str, Any]]:
    """Serve every point in declared order; one row per point."""
    rows = []
    for point in points:
        result = _serve_point(point)
        admitted = len(result.admitted)
        ticks = instance_ticks(result)
        row: Dict[str, Any] = dict(point.settings)
        row.update({
            "served": admitted,
            "rejected": result.rejected,
            "cold_starts": result.cold_starts,
            "p50_ms": result.sojourn_percentile(0.50),
            "p99_ms": result.sojourn_percentile(0.99),
            "instance_gb_s": (point.knobs["memory_mb"] / 1024.0)
                             * ticks * SECONDS_PER_TICK,
        })
        if admitted:
            share = cost_model.serving_cost(
                instance_ticks=ticks, admitted=admitted,
                memory_mb=point.knobs["memory_mb"])
            row["usd_per_1m"] = share.total_usd * 1e6
            row["detail"] = {"per_request_cost": share.as_dict()}
        else:
            row["usd_per_1m"] = None
            row["detail"] = {}
        row["detail"].update({
            "instance_ticks": ticks,
            "node_failures": result.node_failures(),
            "cross_node": result.cross_node,
        })
        if point.knobs["nodes"] and point.knobs["nodes"] > 1:
            row["node_failures"] = result.node_failures()
            row["cross_node"] = result.cross_node
        rows.append(row)
        if progress is not None:
            progress("served %s" % point.label())
    return rows


def run_experiment(spec: ExperimentSpec, *, jobs: Optional[int] = None,
                   cache=None, progress=None) -> ExperimentResult:
    """Expand, execute, and price a study; returns the result artifact.

    ``jobs``/``cache`` flow to the parallel measurement engine
    (measure kind only — serve runs are single-process event loops and
    are never cached, matching the ``serve`` CLI verb).  ``progress``
    is an optional callable taking one human-readable line per
    completed point.
    """
    points = spec.expand()
    cost_model = CostModel.from_overrides(spec.cost_overrides)
    axis_columns = [name for name, _ in spec.axes]
    if spec.kind == "measure":
        rows = _measure_rows(points, cost_model, jobs, cache, progress)
        columns = axis_columns + list(MEASURE_COLUMNS)
    else:
        rows = _serve_rows(points, cost_model, progress)
        columns = axis_columns + list(SERVE_COLUMNS)
        if any(point.knobs["nodes"] and point.knobs["nodes"] > 1
               for point in points):
            columns += list(CLUSTER_COLUMNS)
    return ExperimentResult(spec=spec, cost_model=cost_model,
                            columns=columns, rows=rows)
