"""A serverless $-cost model on top of the event-count energy model.

The paper benchmarks RISC-V serverless *performance*; what a deployer
actually optimizes is **dollars at a latency target**.  This module
turns measurements into money with three configurable rates (Lambda
eu-west-1 list prices as defaults) plus an energy-to-$ projection that
rides :class:`repro.sim.energy.EnergyModel` — so per-ISA event-count
differences (instruction counts, cache misses) surface as per-ISA
operating-cost differences.

Two billing shapes, matching the two experiment kinds:

* **Request-duration billing** (measure kind, Lambda-style):
  ``GB-s = memory × duration`` per invocation, where duration is the
  simulated cycle count projected to native seconds and stretched by
  the instance's fractional CPU share — small grants get a slice of a
  core (:data:`FULL_CPU_SHARE_MB` ⇔ one full vCPU, Lambda's 1769 MB).
  Together with the LLC-slice perf effect
  (:func:`repro.experiments.spec.platform_for_memory`) this produces the
  classic U-shaped $-vs-memory curve: more memory costs more per GB-s
  but finishes sooner.
* **Instance-uptime billing** (serve kind, Knative/provisioned-style):
  GB-s integrate *provisioned instance seconds* over the serve
  timeline, idle or not — which is what makes keep-alive vs cold-start
  (the eviction study) a real cost tradeoff.

As with the energy model, absolute dollars are not the claim; relative
shapes across ISAs, memory grants and scaling policies are.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.sim.energy import CYCLES_PER_SECOND, EnergyModel

#: $/GB-s of compute (Lambda x86 eu-west-1 list price).
DEFAULT_USD_PER_GB_S = 1.6667e-05

#: $ per invocation (Lambda's $0.20 per 1M requests).
DEFAULT_USD_PER_INVOCATION = 2.0e-07

#: $/kWh for the energy-to-$ projection (EU industrial electricity).
DEFAULT_USD_PER_KWH = 0.10

#: Datacenter power usage effectiveness multiplier on IT energy.
DEFAULT_PUE = 1.35

#: Memory grant (MB) that buys one full vCPU-second per second; smaller
#: grants run on a proportional CPU share (Lambda's 1769 MB knee).
FULL_CPU_SHARE_MB = 1769.0

#: The serving layer's logical clock: 1 tick = 1 ms (see
#: :data:`repro.serverless.loadgen.TICKS_PER_SECOND`).
SECONDS_PER_TICK = 0.001

#: The configurable rates, in serialized order (also the set of legal
#: ``cost:`` override keys in an experiment spec).
COST_RATE_FIELDS = ("usd_per_gb_s", "usd_per_invocation", "usd_per_kwh",
                    "pue")


def cpu_share(memory_mb: float) -> float:
    """Fractional vCPU a memory grant buys, clamped to one full core."""
    if memory_mb <= 0:
        raise ValueError("memory_mb must be positive, got %r" % (memory_mb,))
    return min(memory_mb / FULL_CPU_SHARE_MB, 1.0)


class CostBreakdown:
    """Where one invocation's (or one request's share of) money goes."""

    __slots__ = ("duration_s", "gb_s", "compute_usd", "request_usd",
                 "energy_usd")

    def __init__(self, *, duration_s: float, gb_s: float, compute_usd: float,
                 request_usd: float, energy_usd: float):
        self.duration_s = duration_s
        self.gb_s = gb_s
        self.compute_usd = compute_usd
        self.request_usd = request_usd
        self.energy_usd = energy_usd

    @property
    def total_usd(self) -> float:
        """Billed compute + per-request fee + projected energy cost."""
        return self.compute_usd + self.request_usd + self.energy_usd

    def as_dict(self) -> Dict[str, float]:
        """Plain-data form for result artifacts."""
        return {
            "duration_s": self.duration_s,
            "gb_s": self.gb_s,
            "compute_usd": self.compute_usd,
            "request_usd": self.request_usd,
            "energy_usd": self.energy_usd,
            "total_usd": self.total_usd,
        }

    def __repr__(self) -> str:
        return "CostBreakdown($%.3g/req, %.3gs)" % (self.total_usd,
                                                    self.duration_s)


class CostModel:
    """Configurable rates applied to measurements and serve results."""

    __slots__ = ("usd_per_gb_s", "usd_per_invocation", "usd_per_kwh", "pue",
                 "energy_model")

    def __init__(self, *, usd_per_gb_s: float = DEFAULT_USD_PER_GB_S,
                 usd_per_invocation: float = DEFAULT_USD_PER_INVOCATION,
                 usd_per_kwh: float = DEFAULT_USD_PER_KWH,
                 pue: float = DEFAULT_PUE,
                 energy_model: Optional[EnergyModel] = None):
        for label, value in (("usd_per_gb_s", usd_per_gb_s),
                             ("usd_per_invocation", usd_per_invocation),
                             ("usd_per_kwh", usd_per_kwh)):
            if value < 0:
                raise ValueError("%s cannot be negative" % label)
        if pue < 1.0:
            raise ValueError("pue cannot be below 1.0 (that would mean the "
                             "datacenter creates energy)")
        self.usd_per_gb_s = usd_per_gb_s
        self.usd_per_invocation = usd_per_invocation
        self.usd_per_kwh = usd_per_kwh
        self.pue = pue
        self.energy_model = energy_model or EnergyModel()

    @classmethod
    def from_overrides(cls, overrides: Optional[Dict[str, float]] = None,
                       energy_model: Optional[EnergyModel] = None
                       ) -> "CostModel":
        """Defaults with an experiment spec's ``cost:`` dict applied."""
        overrides = dict(overrides or {})
        unknown = set(overrides) - set(COST_RATE_FIELDS)
        if unknown:
            raise ValueError("unknown cost rates: %s"
                             % ", ".join(sorted(unknown)))
        return cls(energy_model=energy_model, **overrides)

    def as_dict(self) -> Dict[str, float]:
        """The rates, for embedding in result artifacts."""
        return {field: getattr(self, field) for field in COST_RATE_FIELDS}

    def fingerprint(self) -> str:
        """Compact rate identity, e.g. ``gbs1.67e-05.inv2e-07.kwh0.1.pue1.35``."""
        return "gbs%g.inv%g.kwh%g.pue%g" % (
            self.usd_per_gb_s, self.usd_per_invocation, self.usd_per_kwh,
            self.pue)

    def _energy_usd(self, joules: float) -> float:
        """Project IT joules to dollars: J → kWh × rate × PUE."""
        return joules / 3.6e6 * self.usd_per_kwh * self.pue

    def invocation_cost(self, stats, *, memory_mb: int,
                        time_scale: int = 1) -> CostBreakdown:
        """Bill one measured request Lambda-style (request duration).

        ``stats`` is a :class:`~repro.core.harness.RequestStats`;
        ``time_scale`` projects scaled simulation cycles back to native
        cycles (see ``repro.core.scale``).  Duration is native seconds
        at the 1 GHz clock divided by the grant's CPU share — a
        128 MB instance runs the same cycles on ~7% of a core.
        """
        native_cycles = stats.cycles * time_scale
        duration_s = native_cycles / CYCLES_PER_SECOND / cpu_share(memory_mb)
        gb_s = (memory_mb / 1024.0) * duration_s
        joules = self.energy_model.estimate(stats).joules * time_scale
        return CostBreakdown(
            duration_s=duration_s,
            gb_s=gb_s,
            compute_usd=gb_s * self.usd_per_gb_s,
            request_usd=self.usd_per_invocation,
            energy_usd=self._energy_usd(joules),
        )

    def serving_cost(self, *, instance_ticks: float, admitted: int,
                     memory_mb: int) -> CostBreakdown:
        """Bill a serve run Knative-style (provisioned instance uptime).

        ``instance_ticks`` is ∫ instances dt over the serve timeline
        (idle keep-alive time included — that is the point), as
        computed by :func:`repro.experiments.runner.instance_ticks`.
        Returns the **per-admitted-request** share of the run's bill.
        """
        if admitted <= 0:
            raise ValueError("serving cost needs at least one admitted "
                             "request")
        uptime_s = instance_ticks * SECONDS_PER_TICK
        gb_s = (memory_mb / 1024.0) * uptime_s
        compute_usd = gb_s * self.usd_per_gb_s
        return CostBreakdown(
            duration_s=uptime_s / admitted,
            gb_s=gb_s / admitted,
            compute_usd=compute_usd / admitted,
            request_usd=self.usd_per_invocation,
            energy_usd=0.0,
        )

    def __repr__(self) -> str:
        return "CostModel(%s)" % self.fingerprint()
