"""Versioned result artifacts: the contract an experiment run emits.

Every run writes two files under an output directory (the CLI default
is ``benchmarks/output/experiments/``):

* ``<name>.json`` — the machine-readable artifact, tagged with
  :data:`RESULT_SCHEMA`.  It embeds the full serialized spec, the
  spec's fingerprint, the cost-model rates, the column order, and one
  row per matrix point (axis values, metric columns, and a ``detail``
  sub-object with the raw cost breakdowns).  Serialization is
  ``sort_keys=True`` with no timestamps, so the same spec + seed
  produce a **byte-identical** file on every run — ``diff`` is the
  replay check, as in the CI smoke jobs.
* ``<name>.md`` — the same rows rendered as a GitHub-flavored markdown
  table for humans (and for committing next to the paper's figures).

``repro.experiments.result/v1`` shape::

    {"schema": "repro.experiments.result/v1",
     "fingerprint": "<16-hex spec digest>",
     "experiment": {...ExperimentSpec.as_dict()...},
     "cost_model": {"usd_per_gb_s": ..., "usd_per_invocation": ...,
                    "usd_per_kwh": ..., "pue": ...},
     "columns": ["memory_mb", ..., "p99_ms", "usd_per_1m"],
     "rows": [{...}, ...]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

#: Version tag on every result artifact.  Bump on any incompatible
#: shape change; readers must refuse schemas they do not know.
RESULT_SCHEMA = "repro.experiments.result/v1"


def _format_cell(value: Any) -> str:
    """Deterministic human formatting for one table cell."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


def render_markdown(document: Dict[str, Any]) -> str:
    """Render a result document (the ``as_dict`` form) as markdown.

    Module-level (rather than a method only) so ``experiment render``
    can re-render a loaded JSON artifact without re-running anything.
    """
    experiment = document["experiment"]
    cost = document["cost_model"]
    columns: List[str] = document["columns"]
    lines = [
        "# %s" % experiment["name"],
        "",
        experiment["title"],
        "",
        "- kind: `%s`" % experiment["kind"],
        "- schema: `%s`" % document["schema"],
        "- spec fingerprint: `%s`" % document["fingerprint"],
        "- seed: %d" % experiment["base"]["seed"],
        "- axes: %s" % (", ".join(
            "`%s` (%d values)" % (name, len(values))
            for name, values in experiment["axes"]) or "(none)"),
        "- cost model: $%.4g/GB-s, $%.4g/invocation, $%.4g/kWh, PUE %.4g"
        % (cost["usd_per_gb_s"], cost["usd_per_invocation"],
           cost["usd_per_kwh"], cost["pue"]),
        "",
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---:" for _ in columns) + " |",
    ]
    for row in document["rows"]:
        lines.append("| " + " | ".join(
            _format_cell(row.get(column)) for column in columns) + " |")
    lines.append("")
    return "\n".join(lines)


class ExperimentResult:
    """One executed study: the spec, its pricing, and the row matrix."""

    __slots__ = ("spec", "cost_model", "columns", "rows")

    def __init__(self, *, spec, cost_model, columns: List[str],
                 rows: List[Dict[str, Any]]):
        self.spec = spec
        self.cost_model = cost_model
        self.columns = list(columns)
        self.rows = rows

    def as_dict(self) -> Dict[str, Any]:
        """The artifact document (see module docstring for the shape)."""
        return {
            "schema": RESULT_SCHEMA,
            "fingerprint": self.spec.fingerprint(),
            "experiment": self.spec.as_dict(),
            "cost_model": self.cost_model.as_dict(),
            "columns": list(self.columns),
            "rows": self.rows,
        }

    def to_json(self) -> str:
        """Canonical JSON text — byte-identical for identical studies."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"

    def render_markdown(self) -> str:
        """The human-readable table (see :func:`render_markdown`)."""
        return render_markdown(self.as_dict())

    def write(self, directory) -> Tuple[Path, Path]:
        """Write ``<name>.json`` + ``<name>.md`` under ``directory``."""
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        json_path = target / ("%s.json" % self.spec.name)
        md_path = target / ("%s.md" % self.spec.name)
        json_path.write_text(self.to_json())
        md_path.write_text(self.render_markdown())
        return json_path, md_path


def load_result(path) -> Dict[str, Any]:
    """Load and schema-check a result artifact written by :meth:`~ExperimentResult.write`."""
    with open(path) as handle:
        document = json.load(handle)
    schema = document.get("schema")
    if schema != RESULT_SCHEMA:
        raise ValueError("%s: unsupported result schema %r (expected %r)"
                         % (path, schema, RESULT_SCHEMA))
    return document
