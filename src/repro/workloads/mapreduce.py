"""vSwarm's map-reduce (corral-style) benchmark: serverless word count.

A Go driver splits the corpus into shards, invokes one *mapper* per shard
(real tokenization and counting), then a single *reducer* that merges the
partial counts — all through the FaaS platform, so a cold run pays
mapper-fleet cold starts exactly like a corral job hitting fresh Lambda
sandboxes.
"""

from __future__ import annotations

import random
import re
from typing import Any, Dict, List

from repro.serverless.faas import FaasPlatform
from repro.sim.isa import ir
from repro.workloads.extras import Downstream
from repro.workloads.function import VSwarmFunction

_WORD_RE = re.compile(r"[a-z']+")

_CORPUS_WORDS = (
    "serverless computing has emerged as a competitive cloud paradigm the "
    "open source riscv isa has gained interest and the first riscv systems "
    "appear in the server market functions boot cold and warm and the "
    "provider keeps instances waiting to amortize initialization"
).split()


def synth_corpus(words: int = 1200, seed: int = 13) -> str:
    """A deterministic synthetic corpus of serverless-flavoured prose."""
    rng = random.Random(seed)
    return " ".join(rng.choice(_CORPUS_WORDS) for _ in range(words))


def word_count(text: str) -> Dict[str, int]:
    """Sequential word count: the ground truth the job must match."""
    counts: Dict[str, int] = {}
    for word in _WORD_RE.findall(text.lower()):
        counts[word] = counts.get(word, 0) + 1
    return counts


class MapperFunction(VSwarmFunction):
    """Go: tokenize one shard and emit partial counts."""

    suite = "mapreduce"
    app_layer_mb = {"x86": 1.6, "riscv": 1.4}

    def __init__(self):
        super().__init__("wordcount-mapper-go", "go")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"shard": synth_corpus(words=300, seed=sequence)}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        shard = payload.get("shard", "")
        counts = word_count(shard)
        ctx.meter("tokens", sum(counts.values()))
        return {"counts": counts}

    def build_work(self, builder, record, services) -> None:
        tokens = int(record.metrics.get("tokens", 100))
        table = builder.region("wc.hash", 64 * 1024)
        builder.touch(table, loads=tokens * 2, stores=tokens,
                      pattern=ir.RandomPattern(align=16), native=True)
        builder.compute(ialu=tokens * 35, native=True)
        builder.branches(tokens * 3, predictability=0.8)


class ReducerFunction(VSwarmFunction):
    """Go: merge partial counts into the final tally."""

    suite = "mapreduce"
    app_layer_mb = {"x86": 1.6, "riscv": 1.4}

    def __init__(self):
        super().__init__("wordcount-reducer-go", "go")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"partials": [word_count(synth_corpus(words=100, seed=s))
                             for s in range(2)]}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        partials: List[Dict[str, int]] = payload.get("partials", [])
        merged: Dict[str, int] = {}
        for partial in partials:
            for word, count in partial.items():
                merged[word] = merged.get(word, 0) + count
        ctx.meter("keys", sum(len(partial) for partial in partials))
        top = sorted(merged.items(), key=lambda item: (-item[1], item[0]))[:5]
        return {"total_words": sum(merged.values()), "distinct": len(merged),
                "top": top}

    def build_work(self, builder, record, services) -> None:
        keys = int(record.metrics.get("keys", 50))
        table = builder.region("wc.merge", 32 * 1024)
        builder.touch(table, loads=keys * 2, stores=keys,
                      pattern=ir.RandomPattern(align=16), native=True)
        builder.compute(ialu=keys * 25, native=True)


class WordCountDriverFunction(VSwarmFunction):
    """Go: shard the corpus, fan out mappers, reduce."""

    suite = "mapreduce"
    app_layer_mb = {"x86": 1.9, "riscv": 1.7}
    required_services = ("mapper", "reducer")

    def __init__(self, shards: int = 3):
        super().__init__("wordcount-driver-go", "go")
        self.shards = shards

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"corpus": synth_corpus(words=900, seed=sequence + 31)}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        corpus = payload.get("corpus", "")
        words = corpus.split()
        shards = max(1, self.shards)
        shard_size = max(1, (len(words) + shards - 1) // shards)
        mapper: Downstream = ctx.service("mapper")
        reducer: Downstream = ctx.service("reducer")
        partials = []
        for start in range(0, len(words), shard_size):
            shard = " ".join(words[start:start + shard_size])
            partials.append(mapper.call(ctx.record, {"shard": shard})["counts"])
        result = reducer.call(ctx.record, {"partials": partials})
        ctx.meter("shards", len(partials))
        return result

    def build_work(self, builder, record, services) -> None:
        shards = int(record.metrics.get("shards", self.shards))
        builder.compute(ialu=shards * 5_000 + 2_000, native=True)
        for child in record.children:
            child_function = _MR_TARGETS.get(child.function)
            if child_function is None:
                continue
            builder.straightline(120_000, kind="rtpath")  # fan-out hop
            if child.cold:
                builder.straightline(
                    child_function.runtime.init_instructions
                    * child_function.init_factor,
                    kind="stack",
                )
            child_function.build_work(builder, child, services)


_MR_TARGETS: Dict[str, VSwarmFunction] = {}


def deploy_wordcount(platform: FaasPlatform, arch: str = "riscv",
                     shards: int = 3):
    """Deploy the map-reduce job; returns the driver function."""
    mapper = MapperFunction()
    reducer = ReducerFunction()
    driver = WordCountDriverFunction(shards=shards)
    for function in (mapper, reducer, driver):
        platform.engine.registry.push(function.image(arch))
    platform.deploy(mapper.name, mapper.name, "go", mapper.handler)
    platform.deploy(reducer.name, reducer.name, "go", reducer.handler)
    platform.deploy(
        driver.name, driver.name, "go", driver.handler,
        services={
            "mapper": Downstream(platform, mapper.name),
            "reducer": Downstream(platform, reducer.name),
        },
    )
    _MR_TARGETS[mapper.name] = mapper
    _MR_TARGETS[reducer.name] = reducer
    return driver
