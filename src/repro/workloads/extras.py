"""Extension workloads: the rest of the vSwarm catalog (§6 future work).

"We plan to port the rest of the vSwarm applications to RISC-V and enable
their execution in the gem5 simulator."  These models extend the ported
set with three more vSwarm families:

* **compression** — zlib-compresses the request payload (for real, via
  the standard library) and returns size statistics;
* **image-rotate** — rotates an in-memory greyscale image 90° (real
  matrix transpose-and-reverse);
* **video-analytics** — the chained pipeline: a Go *streaming* driver
  invokes the Python *decoder*, which invokes the Python *recognition*
  stage (a real fixed-point dot-product classifier).  Chained invocations
  flow through the FaaS platform, so each stage's cold start, receipts
  and work model compose into the driver's measured request.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Dict, List, Optional

from repro.serverless.faas import FaasPlatform
from repro.sim.isa import ir
from repro.workloads.function import VSwarmFunction

FRAME_WIDTH = 64
FRAME_HEIGHT = 48
CLASSES = 10


class Downstream:
    """A chained-function client: invokes a target through the platform.

    Registered as a service so handlers stay platform-agnostic; every call
    records the child's invocation record onto the caller's record, which
    is how the work models compose.
    """

    def __init__(self, platform: FaasPlatform, target: str):
        self.platform = platform
        self.target = target

    def call(self, record, payload: Dict[str, Any]) -> Any:
        child = self.platform.invoke(self.target, payload)
        record.children.append(child)
        return child.result


class CompressionFunction(VSwarmFunction):
    """Go: zlib-compress the payload (vSwarm's compression benchmark)."""

    suite = "extras"
    app_layer_mb = {"x86": 1.8, "riscv": 1.5}

    def __init__(self):
        super().__init__("compression-go", "go")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        rng = random.Random(17)
        words = ["serverless", "riscv", "gem5", "vswarm", "container", "cold"]
        text = " ".join(rng.choice(words) for _ in range(800))
        return {"data": text}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        data = payload.get("data", "").encode()
        compressed = zlib.compress(data, level=6)
        ctx.meter("input_bytes", len(data))
        ctx.meter("output_bytes", len(compressed))
        return {
            "original": len(data),
            "compressed": len(compressed),
            "ratio": round(len(data) / max(1, len(compressed)), 3),
            "crc32": zlib.crc32(data),
        }

    def build_work(self, builder, record, services) -> None:
        input_bytes = int(record.metrics.get("input_bytes", 4096))
        window = builder.region("compress.window", 32 * 1024)
        # LZ77 window probes + Huffman coding: ~60 instrs/byte native.
        builder.touch(window, loads=input_bytes * 3,
                      pattern=ir.HotColdPattern(hot_fraction=0.25,
                                                hot_probability=0.8),
                      native=True)
        builder.compute(ialu=input_bytes * 60, native=True, ilp=2)
        builder.branches(input_bytes * 4, predictability=0.75)


class ImageRotateFunction(VSwarmFunction):
    """Python: rotate a greyscale frame 90 degrees clockwise."""

    suite = "extras"
    app_layer_mb = {"x86": 3.4, "riscv": 3.5}
    image_variant = "grpc-prebuilt"

    def __init__(self):
        super().__init__("image-rotate-python", "python")

    @staticmethod
    def _synth_frame(width: int, height: int, seed: int) -> List[List[int]]:
        rng = random.Random(seed)
        return [[rng.randrange(256) for _x in range(width)] for _y in range(height)]

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"width": FRAME_WIDTH, "height": FRAME_HEIGHT, "seed": 3}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        width = int(payload.get("width", FRAME_WIDTH))
        height = int(payload.get("height", FRAME_HEIGHT))
        frame = payload.get("frame") or self._synth_frame(
            width, height, int(payload.get("seed", 0)))
        # Real rotation: transpose then reverse rows.
        rotated = [list(row) for row in zip(*frame[::-1])]
        ctx.meter("pixels", width * height)
        checksum = sum(rotated[0]) + sum(rotated[-1])
        return {"width": len(rotated[0]), "height": len(rotated),
                "checksum": checksum}

    def build_work(self, builder, record, services) -> None:
        pixels = int(record.metrics.get("pixels", FRAME_WIDTH * FRAME_HEIGHT))
        frame_region = builder.region("rotate.frame", pixels * 8)
        builder.touch(frame_region, loads=pixels, stores=pixels,
                      stride=8, native=False)
        builder.compute(ialu=pixels * 4, native=False)


class RecognitionFunction(VSwarmFunction):
    """Python: classify a frame with a fixed-point linear model."""

    suite = "extras"
    app_layer_mb = {"x86": 3.8, "riscv": 3.9}
    image_variant = "grpc-prebuilt"
    #: model weights load on import
    init_factor = 1.2

    def __init__(self):
        super().__init__("recognition-python", "python")
        rng = random.Random(29)
        self._weights = [
            [rng.randrange(-8, 9) for _ in range(FRAME_WIDTH)]
            for _class in range(CLASSES)
        ]

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        frame = ImageRotateFunction._synth_frame(FRAME_WIDTH, FRAME_HEIGHT, 5)
        return {"frame": frame}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        frame = payload.get("frame")
        if not frame:
            raise ValueError("recognition needs a frame")
        # Column means -> one feature vector, then a real dot product per class.
        height = len(frame)
        features = [sum(row[x] for row in frame) // height
                    for x in range(len(frame[0]))]
        scores = [
            sum(w * f for w, f in zip(weights, features))
            for weights in self._weights
        ]
        best = max(range(len(scores)), key=scores.__getitem__)
        ctx.meter("macs", len(self._weights) * len(features))
        return {"class": best, "score": scores[best]}

    def build_work(self, builder, record, services) -> None:
        macs = int(record.metrics.get("macs", CLASSES * FRAME_WIDTH))
        weights_region = builder.region("recog.weights",
                                        CLASSES * FRAME_WIDTH * 4)
        builder.touch(weights_region, loads=macs, stride=4, native=True)
        builder.compute(imul=macs, ialu=macs, native=True, ilp=4)


class StreamingDriverFunction(VSwarmFunction):
    """Go: the video-analytics driver — decode a frame, then classify it.

    Each request drives the whole chain through the platform; its measured
    work is its own plus every downstream stage's (cold starts included,
    exactly like a fan-out request hitting a cold pipeline).
    """

    suite = "extras"
    app_layer_mb = {"x86": 2.1, "riscv": 1.9}
    required_services = ("decoder", "recognition")

    def __init__(self):
        super().__init__("video-streaming-go", "go")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"segment": "seg-%04d" % sequence, "frames": 2}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        decoder: Downstream = ctx.service("decoder")
        recognition: Downstream = ctx.service("recognition")
        frames = int(payload.get("frames", 1))
        classes = []
        for index in range(frames):
            rotated = decoder.call(ctx.record, {
                "width": FRAME_WIDTH, "height": FRAME_HEIGHT,
                "seed": index + 11,
            })
            frame = ImageRotateFunction._synth_frame(
                rotated["width"], rotated["height"], index + 11)
            verdict = recognition.call(ctx.record, {"frame": frame})
            classes.append(verdict["class"])
        ctx.meter("frames", frames)
        return {"segment": payload.get("segment", ""), "classes": classes}

    def build_work(self, builder, record, services) -> None:
        frames = int(record.metrics.get("frames", 1))
        # Driver-side segment handling.
        builder.compute(ialu=frames * 3_000, native=True)
        # Compose the downstream stages' work, plus an RPC hop each.
        for child in record.children:
            child_function = _CHAIN_TARGETS.get(child.function)
            if child_function is None:
                continue
            builder.straightline(120_000, kind="rtpath")  # inter-function hop
            if child.cold:
                builder.straightline(
                    child_function.runtime.init_instructions
                    * child_function.init_factor,
                    kind="stack",
                )
            child_function.build_work(builder, child, services)


def make_extras() -> List[VSwarmFunction]:
    """The extension workloads, pipeline stages included."""
    return [
        CompressionFunction(),
        ImageRotateFunction(),
        RecognitionFunction(),
        StreamingDriverFunction(),
    ]


#: Chain wiring: child function name -> model (for work composition).
_CHAIN_TARGETS: Dict[str, VSwarmFunction] = {}


def deploy_video_pipeline(platform: FaasPlatform, arch: str = "riscv"):
    """Deploy the three-stage video-analytics chain onto a platform.

    Returns the driver function; invoke it via ``platform.invoke``.
    """
    decoder = ImageRotateFunction()
    recognition = RecognitionFunction()
    driver = StreamingDriverFunction()
    for function in (decoder, recognition, driver):
        platform.engine.registry.push(function.image(arch))
    platform.deploy(decoder.name, decoder.name, decoder.runtime_name,
                    decoder.handler)
    platform.deploy(recognition.name, recognition.name,
                    recognition.runtime_name, recognition.handler)
    platform.deploy(
        driver.name, driver.name, driver.runtime_name, driver.handler,
        services={
            "decoder": Downstream(platform, decoder.name),
            "recognition": Downstream(platform, recognition.name),
        },
    )
    _CHAIN_TARGETS[decoder.name] = decoder
    _CHAIN_TARGETS[recognition.name] = recognition
    return driver
