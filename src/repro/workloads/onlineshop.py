"""The Online Shop suite — six functions from Google's Online Boutique
(Table 3.3): product catalog and shipping in Go, recommendation and email
in Python, currency and payment in NodeJS.

The catalog is real in-memory data shared (as in the original, where the
recommendation service is used with the product catalog) between the Go
catalog service and the Python recommender.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from repro.db.engine import encoded_size
from repro.sim.isa import ir
from repro.workloads.function import VSwarmFunction

_CATEGORIES = ("accessories", "clothing", "footwear", "home", "beauty", "kitchen")


def build_catalog(products: int = 120, seed: int = 7) -> List[Dict[str, Any]]:
    """A deterministic product catalog with realistic field shapes."""
    rng = random.Random(seed)
    catalog = []
    for index in range(products):
        catalog.append({
            "id": "OLJ%05d" % index,
            "name": "product-%d" % index,
            "description": "A fine %s item. " % rng.choice(_CATEGORIES) * 6,
            "picture": "/static/img/products/%d.jpg" % index,
            "price_usd": {"units": rng.randrange(5, 200), "nanos": rng.randrange(10**9)},
            "categories": rng.sample(_CATEGORIES, k=rng.randrange(1, 3)),
        })
    return catalog


#: Shared catalog instance (module-level, like the services' loaded JSON).
CATALOG = build_catalog()
CATALOG_BYTES = encoded_size(CATALOG)
#: In-memory representation is fatter than the JSON wire form.
CATALOG_MEMORY_BYTES = CATALOG_BYTES * 4

#: Conversion rates the currency service ships with.
CURRENCY_RATES = {
    "EUR": 1.0, "USD": 1.1305, "JPY": 126.40, "GBP": 0.85970,
    "CAD": 1.5231, "CHF": 1.1327, "AUD": 1.61, "SEK": 10.46,
}


class OnlineShopFunction(VSwarmFunction):
    """Base for the six Online Boutique functions."""

    suite = "onlineshop"


class ProductCatalogService(OnlineShopFunction):
    """Go: list products or search by category / id."""

    app_layer_mb = {"x86": 3.51, "riscv": 3.43}

    def __init__(self):
        super().__init__("productcatalogservice-go", "go")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"query": _CATEGORIES[sequence % len(_CATEGORIES)]}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        query = payload.get("query", "")
        matches = [
            product for product in CATALOG
            if query in product["categories"] or query == product["id"]
        ]
        ctx.meter("scanned", len(CATALOG))
        ctx.meter("matched", len(matches))
        return {"products": [product["id"] for product in matches]}

    def build_work(self, builder, record, services) -> None:
        scanned = int(record.metrics.get("scanned", len(CATALOG)))
        catalog_region = builder.region("shop.catalog", CATALOG_MEMORY_BYTES)
        builder.touch(catalog_region, load_bytes=CATALOG_MEMORY_BYTES,
                      pattern=ir.StridePattern(stride=64), native=True)
        builder.compute(ialu=scanned * 40, native=True)  # string compares
        builder.branches(scanned * 3, predictability=0.85)


class ShippingService(OnlineShopFunction):
    """Go: quote shipping cost from an address and a cart."""

    app_layer_mb = {"x86": 3.50, "riscv": 3.40}

    def __init__(self):
        super().__init__("shippingservice-go", "go")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {
            "address": {"zip": "10679", "country": "GR"},
            "items": [{"id": "OLJ%05d" % i, "quantity": i + 1} for i in range(4)],
        }

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        items = payload.get("items", [])
        quantity = sum(int(item.get("quantity", 1)) for item in items)
        # The boutique's quote formula: flat fee + per-item cost.
        cost_usd = 8.99 + 0.50 * quantity
        ctx.meter("items", len(items))
        return {"cost_usd": round(cost_usd, 2), "tracking_id": "TRK%08d" % (quantity * 37)}

    def build_work(self, builder, record, services) -> None:
        items = int(record.metrics.get("items", 4))
        builder.compute(ialu=items * 120 + 400, falu=items * 20 + 40, native=True)


class RecommendationService(OnlineShopFunction):
    """Python: recommend products related to the cart (uses the catalog)."""

    app_layer_mb = {"x86": 3.59, "riscv": 3.48}
    image_variant = "grpc-prebuilt"
    #: Drags in the product-catalog client on top of the gRPC stack.
    init_factor = 1.15

    def __init__(self):
        super().__init__("recommendationservice-python", "python")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"product_ids": ["OLJ%05d" % (sequence + offset) for offset in range(3)]}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        wanted = set(payload.get("product_ids", []))
        rng = random.Random(len(wanted))
        candidates = [product["id"] for product in CATALOG if product["id"] not in wanted]
        picks = rng.sample(candidates, k=min(5, len(candidates)))
        ctx.meter("scanned", len(CATALOG))
        return {"recommendations": picks}

    def build_work(self, builder, record, services) -> None:
        scanned = int(record.metrics.get("scanned", len(CATALOG)))
        catalog_region = builder.region("shop.catalog", CATALOG_MEMORY_BYTES)
        builder.touch(catalog_region, load_bytes=CATALOG_MEMORY_BYTES // 2,
                      pattern=ir.StridePattern(stride=96), native=False)
        builder.compute(ialu=scanned * 15, native=False)


class EmailService(OnlineShopFunction):
    """Python: render an order-confirmation email from a template.

    Deliberately small data footprint — the thesis singles emailservice
    out for its low L2 miss count and correspondingly mild cold start
    (Fig 4.12/4.13).
    """

    app_layer_mb = {"x86": 3.20, "riscv": 3.26}
    image_variant = "grpc-prebuilt"
    #: Lean import set (templates only): the mild cold start and low L2
    #: miss count the thesis singles out (Fig 4.12/4.13).
    init_factor = 0.55

    TEMPLATE = (
        "Dear {name},\n\nYour order {order} has shipped and will arrive at "
        "{address}.\n\nItems:\n{items}\n\nThank you for shopping with us!\n"
    )

    def __init__(self):
        super().__init__("emailservice-python", "python")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {
            "name": "Georgia", "order": "ORD-%06d" % sequence,
            "address": "Panepistimiou 30, Athens",
            "items": ["OLJ%05d x1" % index for index in range(3)],
        }

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        body = self.TEMPLATE.format(
            name=payload.get("name", "customer"),
            order=payload.get("order", "ORD-0"),
            address=payload.get("address", ""),
            items="\n".join(payload.get("items", [])),
        )
        ctx.meter("body_bytes", len(body))
        return {"sent": True, "bytes": len(body)}

    def build_work(self, builder, record, services) -> None:
        body_bytes = int(record.metrics.get("body_bytes", 256))
        template_region = builder.region("shop.email_template", 4 * 1024)
        builder.touch(template_region, load_bytes=2048, store_bytes=body_bytes,
                      stride=32, native=False)
        builder.compute(ialu=body_bytes * 6, native=False)


class CurrencyService(OnlineShopFunction):
    """NodeJS: convert prices between currencies."""

    app_layer_mb = {"x86": 4.52, "riscv": 4.74}

    def __init__(self):
        super().__init__("currencyservice-nodejs", "nodejs")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"from": "USD", "to": "EUR", "units": 19, "nanos": 990000000}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        source = payload.get("from", "USD")
        target = payload.get("to", "EUR")
        if source not in CURRENCY_RATES or target not in CURRENCY_RATES:
            raise ValueError("unsupported currency pair %s->%s" % (source, target))
        amount = payload.get("units", 0) + payload.get("nanos", 0) / 1e9
        converted = amount / CURRENCY_RATES[source] * CURRENCY_RATES[target]
        ctx.meter("conversions", 1)
        return {"units": int(converted), "nanos": int((converted % 1) * 1e9),
                "currency": target}

    def build_work(self, builder, record, services) -> None:
        conversions = int(record.metrics.get("conversions", 1))
        rates_region = builder.region("shop.rates", 2 * 1024)
        builder.touch(rates_region, loads=conversions * 12, stride=16, native=False)
        builder.compute(falu=conversions * 60, ialu=conversions * 200, native=False)


class PaymentService(OnlineShopFunction):
    """NodeJS: validate a card (real Luhn checksum) and charge it."""

    app_layer_mb = {"x86": 3.44, "riscv": 46.94}  # riscv build vendored deps

    def __init__(self):
        super().__init__("paymentservice-nodejs", "nodejs")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"card_number": "4539578763621486", "amount_usd": 42.5}

    @staticmethod
    def luhn_valid(number: str) -> bool:
        digits = [int(ch) for ch in number if ch.isdigit()]
        if len(digits) < 12:
            return False
        checksum = 0
        for index, digit in enumerate(reversed(digits)):
            if index % 2 == 1:
                digit *= 2
                if digit > 9:
                    digit -= 9
            checksum += digit
        return checksum % 10 == 0

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        number = str(payload.get("card_number", ""))
        valid = self.luhn_valid(number)
        ctx.meter("digits", len(number))
        if not valid:
            return {"charged": False, "reason": "invalid card"}
        transaction = "TXN-%010d" % (hash((number, payload.get("amount_usd"))) % 10**10)
        return {"charged": True, "transaction_id": transaction}

    def build_work(self, builder, record, services) -> None:
        digits = int(record.metrics.get("digits", 16))
        builder.compute(ialu=digits * 30 + 500, native=False)
        builder.branches(digits * 2, predictability=0.7)


def make_onlineshop() -> List[OnlineShopFunction]:
    """All six Online Shop functions, Table 3.3 order."""
    return [
        ProductCatalogService(),
        ShippingService(),
        RecommendationService(),
        EmailService(),
        CurrencyService(),
        PaymentService(),
    ]
