"""WorkBuilder: turns one function invocation into an IR program.

The builder is the bridge between the functional world (handlers that
really computed something, datastores that really answered queries) and
the simulated world (instruction and address streams).  For each
invocation it assembles a program with this shape::

    main:
        [init]          # cold starts only: runtime bring-up, imports,
                        # JIT compilation, DB driver connection setup
        request:        # every request, same program counters:
            runtime per-request overhead (RPC loop, kernel net stack)
            request deserialization
            handler work   (emitted by the function model, shaped by the
                            runtime's execution regime)
            response serialization

Address stability: runtime regions are pre-allocated in a fixed order and
the ``request`` routine is laid out before the cold-only ``init`` routine,
so all warm invocations of a function touch identical code and data
addresses — the property warm-execution locality depends on.

Scaling: dynamic instruction counts are divided by ``scale.time`` and
footprints by ``scale.space`` (see :mod:`repro.core.scale`).  Counts
passed to the emission methods are *native* unless ``scaled=False``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Union

from repro.core.scale import SimScale
from repro.db.engine import WorkReceipt
from repro.sim.isa import ir
from repro.workloads.runtime import RuntimeModel

_SERIALIZE_INSTRS_PER_BYTE = 5
_DB_CONNECT_INSTRS = 8_000_000  # driver topology discovery + prepared stmts
_CACHE_CONNECT_INSTRS = 600_000

#: Native instructions per unit of datastore work, by service class.  A
#: primary-database operation crosses a container boundary into a full
#: query engine (CQL parse, plan, JVM execution for Cassandra), while a
#: memcached op is a thin slab lookup — the asymmetry behind the hotel
#: suite's cold/warm cliff.
SERVICE_COSTS = {
    "db": {
        "op": 1_500_000, "row_scanned": 4_000, "row_returned": 25_000,
        "byte": 40, "probe": 3_000, "cpu": 50,
    },
    "memcached": {
        "op": 40_000, "row_scanned": 500, "row_returned": 2_000,
        "byte": 1, "probe": 500, "cpu": 10,
    },
}
_DEFAULT_SERVICE_COST = {
    "op": 500_000, "row_scanned": 2_000, "row_returned": 10_000,
    "byte": 10, "probe": 1_000, "cpu": 25,
}


#: Code-revisitation factors: dynamic instructions per distinct static
#: instruction on the two big straight-line paths.  Init paths re-enter
#: library routines heavily; the per-request RPC path somewhat less.
#: Default init-path code revisitation (runtimes override; see
#: RuntimeModel.init_code_reuse).
INIT_CODE_REUSE = 8
REQUEST_CODE_REUSE = 1
#: Driver/query call graphs revisit less: connections walk mostly unique
#: code, per-request driver paths re-enter shared helpers.
CONNECT_CODE_REUSE = 2
SERVICE_CODE_REUSE = 4


def _reused_straightline(scaled_instrs: int, data_region, kind: str,
                         reuse: int) -> ir.StructureNode:
    """A straight-line path with ``reuse``-fold code revisitation.

    Lowered as a loop over a footprint of ``scaled_instrs / reuse``
    distinct instructions: dynamic count is preserved, the I-footprint
    shrinks by the reuse factor, and iterations re-touch the same lines —
    matching how real init code repeatedly calls allocator/linker/libc
    routines rather than executing megabytes of unique code.
    """
    if reuse <= 1:
        return ir.straightline_block(scaled_instrs, data_region=data_region, kind=kind)
    body = ir.straightline_block(
        max(1, scaled_instrs // reuse), data_region=data_region, kind=kind,
    )
    return ir.Loop(body, trips=reuse)


class WorkBuilder:
    """Collects IR for one invocation and assembles the program."""

    def __init__(
        self,
        function_name: str,
        runtime: RuntimeModel,
        scale: SimScale,
        cold: bool,
        jit_warm: bool = False,
        seed: int = 0,
        init_factor: float = 1.0,
    ):
        mode = "cold" if cold else "warm"
        self.runtime = runtime
        self.scale = scale
        self.cold = cold
        self.jit_warm = jit_warm
        #: Per-function weight on the runtime init path: functions with a
        #: lean import set (the thesis's emailservice) cold-start cheaper
        #: than ones dragging in heavy dependency trees.
        self.init_factor = init_factor
        self.program = ir.Program("%s.%s" % (function_name, mode), seed=seed)
        self._regions: Dict[str, ir.Region] = {}
        self._handler_nodes: List[ir.StructureNode] = []
        self._stack: List[List[ir.StructureNode]] = [self._handler_nodes]
        self._cold_extra_instrs = 0.0
        self._built = False
        #: Set by work models when the response is a pre-marshalled cached
        #: blob (memcached hit): reply serialization is a copy, not an encode.
        self.response_passthrough = False

        # Fixed-order runtime regions: identical bases in cold and warm
        # programs of the same function.
        self._rt_init_data = self.region("rt.init_data", runtime.init_data_bytes or 4096)
        self._rt_overhead_data = self.region("rt.overhead_data", runtime.overhead_data_bytes)
        self._rt_interp = self.region("rt.interp", max(4096, runtime.interp_table_bytes))
        self._req_buf = self.region("rt.request_buf", 16 * 1024)
        self._resp_buf = self.region("rt.response_buf", 64 * 1024)

    # -- regions --------------------------------------------------------------

    def region(self, name: str, native_bytes: int, segment: str = "heap") -> ir.Region:
        """Get-or-create a named data region (space-scaled)."""
        if name not in self._regions:
            self._regions[name] = self.program.space.alloc(
                name, self.scale.data_bytes(native_bytes), segment=segment
            )
        return self._regions[name]

    # -- emission -----------------------------------------------------------------

    def _emit(self, node: ir.StructureNode) -> None:
        self._stack[-1].append(node)

    def _count(self, native: float, scaled: bool) -> int:
        return self.scale.instrs(native) if scaled else max(1, int(round(native)))

    def compute(
        self,
        ialu: float = 0,
        imul: float = 0,
        idiv: float = 0,
        falu: float = 0,
        fmul: float = 0,
        fdiv: float = 0,
        native: bool = False,
        ilp: int = 4,
        scaled: bool = True,
    ) -> None:
        """Handler compute.  ``native=True`` bypasses the interpreter
        (C extensions, crypto libraries); otherwise the runtime's
        execution regime wraps the work in dispatch cost."""
        units = ialu + imul + idiv + falu + fmul + fdiv
        if units <= 0:
            raise ValueError("compute needs at least one op unit")
        self._dispatch(units, native, scaled)
        ops = []
        for kind, count in (
            (ir.OP_IALU, ialu), (ir.OP_IMUL, imul), (ir.OP_IDIV, idiv),
            (ir.OP_FALU, falu), (ir.OP_FMUL, fmul), (ir.OP_FDIV, fdiv),
        ):
            if count > 0:
                ops.append(ir.IROp(kind, count=self._count(count, scaled)))
        self._emit(ir.Block(ops, kind="app", ilp=ilp))

    def _dispatch(self, units: float, native: bool, scaled: bool) -> None:
        """Interpreter/JIT dispatch work around ``units`` of app work."""
        if native or not self.runtime.interpreted:
            return
        dispatch_ialu = self.runtime.dispatch_cost(units, self.jit_warm)
        if dispatch_ialu <= 0:
            return
        dispatch_loads = units * self.runtime.dispatch_loads_per_unit
        if self.runtime.jit and self.jit_warm:
            dispatch_loads *= self.runtime.jitted_dispatch_factor
        ops = [ir.IROp(ir.OP_IALU, count=self._count(dispatch_ialu, scaled))]
        if dispatch_loads >= 1:
            ops.append(
                ir.IROp(
                    ir.OP_LOAD,
                    count=self._count(dispatch_loads, scaled),
                    region=self._rt_interp,
                    pattern=ir.HotColdPattern(hot_fraction=0.08, hot_probability=0.92),
                )
            )
        self._emit(ir.Block(ops, kind="stack", ilp=2))

    def touch(
        self,
        region: Union[str, ir.Region],
        load_bytes: float = 0,
        store_bytes: float = 0,
        loads: Optional[float] = None,
        stores: Optional[float] = None,
        stride: int = 64,
        pattern: Optional[ir.AddressPattern] = None,
        native: bool = True,
        ialu_per_access: int = 2,
        region_bytes: Optional[int] = None,
    ) -> None:
        """Memory traffic over a data region.

        Byte quantities are native and space-scaled (an access per
        ``stride`` bytes of the *scaled* footprint); explicit ``loads`` /
        ``stores`` counts are native and time-scaled.
        """
        if isinstance(region, str):
            if region_bytes is None and region not in self._regions:
                raise ValueError("region %r not allocated; pass region_bytes" % region)
            region = self.region(region, region_bytes or 0)
        load_count = 0
        if loads is not None:
            load_count = self.scale.instrs(loads)
        elif load_bytes:
            load_count = max(1, self.scale.data_bytes(int(load_bytes), floor=stride) // stride)
        store_count = 0
        if stores is not None:
            store_count = self.scale.instrs(stores)
        elif store_bytes:
            store_count = max(1, self.scale.data_bytes(int(store_bytes), floor=stride) // stride)
        if load_count == 0 and store_count == 0:
            raise ValueError("touch needs loads or stores")

        self._dispatch(load_count + store_count, native, scaled=False)
        pattern = pattern or ir.StridePattern(stride=stride)
        ops: List[ir.IROp] = []
        if load_count:
            ops.append(ir.IROp(ir.OP_LOAD, count=load_count, region=region, pattern=pattern))
        if ialu_per_access:
            ops.append(ir.IROp(ir.OP_IALU,
                               count=max(1, (load_count + store_count) * ialu_per_access)))
        if store_count:
            ops.append(ir.IROp(ir.OP_STORE, count=store_count, region=region, pattern=pattern))
        self._emit(ir.Block(ops, kind="app", ilp=4))

    def vector_kernel(
        self,
        elements: float,
        ewidth: int = 4,
        load_region: Union[str, ir.Region, None] = None,
        store_region: Union[str, ir.Region, None] = None,
        fma_per_element: float = 0.0,
        alu_per_element: float = 0.0,
        gather: bool = False,
        region_bytes: Optional[int] = None,
        scaled: bool = True,
    ) -> None:
        """A data-parallel kernel over ``elements`` elements of ``ewidth`` bytes.

        Emits vector IR (``vload``/``vfma``/``valu``/``vstore``): on a
        vector-enabled ISA it lowers to stripmined (RVV) or fixed-width
        (SSE/NEON) vector streams, on a scalar ISA element by element.
        ``gather=True`` makes the loads indexed (embedding-table
        lookups) instead of unit-stride.  Kernels are native work —
        BLAS-style C loops reached through a thin binding — so no
        interpreter dispatch cost is charged around them.
        """
        count = self._count(elements, scaled)

        def resolve(region):
            if isinstance(region, str):
                if region_bytes is None and region not in self._regions:
                    raise ValueError(
                        "region %r not allocated; pass region_bytes" % region)
                return self.region(region, region_bytes or 0)
            return region

        self._emit(ir.vector_block(
            count,
            ewidth=ewidth,
            load_region=resolve(load_region),
            store_region=resolve(store_region),
            fma_per_element=fma_per_element,
            alu_per_element=alu_per_element,
            gather=gather,
        ))

    def branches(self, count: float, predictability: float = 0.9,
                 scaled: bool = True) -> None:
        """Data-dependent branches (mispredict fodder)."""
        self._emit(ir.Block([
            ir.IROp(ir.OP_BRANCH, count=self._count(count, scaled),
                    taken_probability=predictability),
        ], kind="app"))

    def straightline(self, native_instrs: float, data_region: Optional[ir.Region] = None,
                     kind: str = "stack", reuse: int = 1) -> None:
        """Once-through code with an honest I-footprint (init paths).

        ``reuse`` models code revisitation within the path (library
        functions called repeatedly during init): the footprint shrinks by
        the factor while the dynamic count stays put.
        """
        self._emit(_reused_straightline(
            self.scale.instrs(native_instrs), data_region, kind, reuse,
        ))

    def syscalls(self, count: int = 1) -> None:
        self._emit(ir.Block([ir.IROp(ir.OP_SYSCALL, count=count)], kind="stack"))

    @contextmanager
    def loop(self, trips: int, scale_trips: bool = False):
        """Structural loop; emissions inside happen once per trip.

        With ``scale_trips=False`` (default) trips are structural (AES
        rounds); inner emissions should then use native counts as usual.
        With ``scale_trips=True`` the trip count is time-scaled — inner
        emissions should pass ``scaled=False`` to avoid double scaling.
        """
        collector: List[ir.StructureNode] = []
        self._stack.append(collector)
        try:
            yield
        finally:
            self._stack.pop()
        effective = self.scale.trips(trips) if scale_trips else max(1, trips)
        self._emit(ir.Loop(ir.Seq(collector), trips=effective))

    # -- datastore work ------------------------------------------------------------

    def service_work(self, service: str, receipt: WorkReceipt,
                     data_bytes_native: int) -> None:
        """Charge the work a datastore receipt describes.

        Per-operation costs come from :data:`SERVICE_COSTS` keyed by the
        service's binding name: each round trip pays the client/driver +
        server query-engine path, scanned and returned rows pay engine and
        deserialization work, and the bytes moved scatter over a data
        region sized from the store's real resident payload (so big stores
        mean big footprints and cold misses).
        """
        if receipt.ops == 0 and receipt.total_bytes() == 0 and receipt.cpu_work == 0:
            return
        costs = SERVICE_COSTS.get(service, _DEFAULT_SERVICE_COST)
        data = self.region("svc.%s.data" % service, max(4096, data_bytes_native))
        index = self.region("svc.%s.index" % service, max(2048, data_bytes_native // 8))

        instrs = (
            receipt.ops * costs["op"]
            + receipt.rows_scanned * costs["row_scanned"]
            + receipt.rows_returned * costs["row_returned"]
            + receipt.total_bytes() * costs["byte"]
            + (receipt.index_probes + receipt.structure_misses) * costs["probe"]
            + receipt.cpu_work * costs["cpu"]
        )
        # Engine-internal work (JIT-compiled query execution) is dense app
        # code; the driver/RPC/kernel share of each round trip is software
        # stack, where the per-ISA path-length difference applies — and it
        # has a real code footprint (the driver call graph), emitted as a
        # reused straight-line path so warm requests re-fetch it.
        self.compute(ialu=max(1.0, instrs * 0.6), native=True, ilp=3)
        self._emit(_reused_straightline(
            self.scale.instrs(max(1.0, instrs * 0.4)), None, "stack",
            SERVICE_CODE_REUSE,
        ))

        if receipt.bytes_read or receipt.bytes_written:
            # Sequential runs (SSTable/collection scans) prefetch well;
            # point reads scatter.  Memcached values are slab-contiguous
            # and bulk-copied (wide accesses cover two lines per touch).
            if service == "memcached":
                pattern, stride = ir.StridePattern(stride=128), 128
            elif receipt.rows_scanned > 4 * max(1, receipt.rows_returned):
                pattern, stride = ir.StridePattern(stride=64), 64
            else:
                pattern, stride = ir.RandomPattern(align=64), 64
            self.touch(
                data,
                load_bytes=receipt.bytes_read,
                store_bytes=receipt.bytes_written,
                stride=stride,
                pattern=pattern,
                native=True,
            )
        probes = receipt.index_probes + receipt.structure_misses
        if probes:
            self.touch(index, loads=probes * 4, pattern=ir.RandomPattern(align=16),
                       native=True)

    def cold_connect(self, kind: str = "database") -> None:
        """Driver connection setup, charged only on cold invocations."""
        if not self.cold:
            return
        instrs = _DB_CONNECT_INSTRS if kind == "database" else _CACHE_CONNECT_INSTRS
        self._cold_extra_instrs += instrs

    # -- assembly ---------------------------------------------------------------------

    def build(self, request_bytes: int = 64, response_bytes: int = 64) -> ir.Program:
        """Assemble the invocation program (callable once per builder)."""
        if self._built:
            raise RuntimeError("builder already built a program")
        self._built = True
        rt = self.runtime
        scale = self.scale

        request_nodes: List[ir.StructureNode] = []
        # Per-request runtime overhead: RPC receive, scheduling, kernel
        # network path.  Straight-line at stable PCs.
        request_nodes.append(ir.Block([ir.IROp(ir.OP_SYSCALL, count=2)], kind="stack"))
        request_nodes.append(_reused_straightline(
            scale.instrs(rt.request_overhead_instructions),
            self._rt_overhead_data,
            rt.overhead_kind,
            REQUEST_CODE_REUSE,
        ))
        # Request deserialization.
        request_nodes.append(ir.Block([
            ir.IROp(ir.OP_LOAD,
                    count=max(1, scale.instrs(request_bytes / 4)),
                    region=self._req_buf,
                    pattern=ir.StridePattern(stride=8)),
            ir.IROp(ir.OP_IALU,
                    count=max(1, scale.instrs(request_bytes
                                              * _SERIALIZE_INSTRS_PER_BYTE))),
        ], kind="rtpath"))
        request_nodes.extend(self._handler_nodes)
        # Response serialization + send.
        serialize_per_byte = (0.5 if self.response_passthrough
                              else _SERIALIZE_INSTRS_PER_BYTE)
        request_nodes.append(ir.Block([
            ir.IROp(ir.OP_IALU,
                    count=max(1, scale.instrs(response_bytes * serialize_per_byte))),
            ir.IROp(ir.OP_STORE,
                    count=max(1, scale.instrs(response_bytes / 4)),
                    region=self._resp_buf,
                    pattern=ir.StridePattern(stride=8)),
            ir.IROp(ir.OP_SYSCALL, count=1),
        ], kind="rtpath"))

        self.program.add_routine(ir.Routine("request", ir.Seq(request_nodes)))

        main_nodes: List[ir.StructureNode] = []
        if self.cold:
            init_nodes: List[ir.StructureNode] = [
                _reused_straightline(
                    scale.instrs(rt.init_instructions * self.init_factor),
                    self._rt_init_data,
                    "stack",
                    rt.init_code_reuse,
                )
            ]
            if rt.jit:
                init_nodes.append(_reused_straightline(
                    scale.instrs(rt.jit_compile_instructions),
                    self._rt_interp,
                    "stack",
                    rt.init_code_reuse,
                ))
            if self._cold_extra_instrs:
                init_nodes.append(_reused_straightline(
                    scale.instrs(self._cold_extra_instrs),
                    self._rt_init_data,
                    "stack",
                    CONNECT_CODE_REUSE,
                ))
            self.program.add_routine(ir.Routine("init", ir.Seq(init_nodes)))
            main_nodes.append(ir.Call("init"))
        main_nodes.append(ir.Call("request"))
        self.program.add_routine(ir.Routine("main", ir.Seq(main_nodes)))
        self.program.entry = "main"
        self.program.validate()
        return self.program
