"""The vSwarm standalone functions: Fibonacci, AES, Auth (Table 3.2).

Each comes in Go, Python and NodeJS flavours.  Handlers do the real work
(the AES ciphertext and HMAC digests in the responses are genuine); the
work models charge the compute the handler metered.  Crypto runs as
*native* code (Go compiled, Python's C crypto, Node's native addons), so
the interpreter-dispatch penalty applies to Fibonacci — pure
interpreted arithmetic — but not to AES/Auth, which is what lets the x86
warm instruction counts beat RISC-V on exactly the aes-go / auth-go /
auth-python trio the thesis observed (Fig 4.16).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.sim.isa import ir
from repro.workloads import crypto
from repro.workloads.function import VSwarmFunction

#: Default request parameters (native magnitudes).
FIB_N = 10_000
AES_PLAINTEXT_BYTES = 1024
AUTH_TOKEN_BYTES = 96

_APP_LAYERS = {
    # (function, runtime) -> {arch: app layer MB}; calibrated to Table 4.4.
    ("fibonacci", "go"): {"x86": 1.09, "riscv": 0.86},
    ("fibonacci", "python"): {"x86": 3.20, "riscv": 3.22},
    ("fibonacci", "nodejs"): {"x86": 2.83, "riscv": 1.46},
    ("aes", "go"): {"x86": 1.37, "riscv": 1.14},
    ("aes", "python"): {"x86": 3.25, "riscv": 3.27},
    ("aes", "nodejs"): {"x86": 1.51, "riscv": 1.72},
    ("auth", "go"): {"x86": 1.37, "riscv": 1.14},
    ("auth", "python"): {"x86": 3.20, "riscv": 3.22},
    # auth-nodejs ships a much larger dependency tree.
    ("auth", "nodejs"): {"x86": 14.90, "riscv": 15.11},
}


class StandaloneFunction(VSwarmFunction):
    """Base for the nine standalone (Table 3.2) functions."""

    suite = "standalone"

    def __init__(self, base_name: str, runtime_name: str):
        super().__init__("%s-%s" % (base_name, runtime_name), runtime_name)
        self.base_name = base_name
        self.app_layer_mb = _APP_LAYERS[(base_name, runtime_name)]


class FibonacciFunction(StandaloneFunction):
    """Iterative Fibonacci — pure interpreted arithmetic."""

    def __init__(self, runtime_name: str):
        super().__init__("fibonacci", runtime_name)

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"n": FIB_N}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        n = int(payload.get("n", FIB_N))
        if n < 0:
            raise ValueError("fibonacci needs n >= 0")
        a, b = 0, 1
        for _ in range(n):
            # Modular to keep bigint cost flat; the *count* of additions is
            # what the work model charges.
            a, b = b, (a + b) % (10**18)
        ctx.meter("iterations", n)
        return {"fib_mod": a, "n": n}

    def build_work(self, builder, record, services) -> None:
        iterations = record.metrics.get("iterations", FIB_N)
        builder.compute(ialu=2 * iterations, native=False, ilp=1)
        builder.branches(iterations, predictability=0.999)


class AesFunction(StandaloneFunction):
    """AES-128-ECB encryption of the request payload."""

    def __init__(self, runtime_name: str):
        super().__init__("aes", runtime_name)

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"plaintext": "serverless-" * (AES_PLAINTEXT_BYTES // 11)}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        plaintext = payload.get("plaintext", "").encode()
        key = payload.get("key", "0123456789abcdef").encode()[:16].ljust(16, b"0")
        ciphertext = crypto.aes128_encrypt(plaintext, key)
        blocks = crypto.aes_block_count(len(plaintext))
        ctx.meter("blocks", blocks)
        return {"ciphertext_prefix": ciphertext[:32].hex(), "blocks": blocks}

    def build_work(self, builder, record, services) -> None:
        blocks = int(record.metrics.get("blocks", 64))
        tables = builder.region("aes.tables", 4 * 1024)
        # Key schedule once, then 10 rounds/block of table lookups + xors.
        builder.compute(ialu=600, native=True)
        builder.touch(tables, loads=blocks * 160,
                      pattern=ir.RandomPattern(align=4), native=True)
        builder.compute(ialu=blocks * 420, native=True, ilp=4)


class AuthFunction(StandaloneFunction):
    """HMAC-SHA256 token verification."""

    def __init__(self, runtime_name: str):
        super().__init__("auth", runtime_name)

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"token": "tok-" + "a1b2" * (AUTH_TOKEN_BYTES // 4), "user": "alice"}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        token = payload.get("token", "").encode()
        user = payload.get("user", "anonymous").encode()
        secret = b"vswarm-auth-service-secret-key"
        digest = crypto.hmac_sha256(secret, user + b":" + token)
        chunks = crypto.sha256_chunk_count(len(user) + 1 + len(token) + 64)
        ctx.meter("sha_chunks", chunks * 3)  # inner + outer + key hash
        authorized = digest[0] % 2 == 0  # deterministic check for the demo
        return {"authorized": authorized, "digest_prefix": digest[:16].hex()}

    def build_work(self, builder, record, services) -> None:
        chunks = int(record.metrics.get("sha_chunks", 6))
        ktable = builder.region("sha.ktab", 1024)
        # 64 rounds of ~14 integer ops per 64-byte chunk.
        builder.touch(ktable, loads=chunks * 64, pattern=ir.StridePattern(stride=4),
                      native=True)
        builder.compute(ialu=chunks * 64 * 14, native=True, ilp=2)


def make_standalone(base_name: str, runtime_name: str) -> StandaloneFunction:
    """Factory for the nine standalone functions."""
    classes = {
        "fibonacci": FibonacciFunction,
        "aes": AesFunction,
        "auth": AuthFunction,
    }
    try:
        cls = classes[base_name]
    except KeyError:
        raise ValueError("unknown standalone function %r" % base_name)
    return cls(runtime_name)
