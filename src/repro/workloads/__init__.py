"""The vSwarm workload suite, ported to the simulated RISC-V and x86 stacks.

Mirrors the benchmarks the thesis ports (§3.1.1):

* **standalone functions** — Fibonacci, AES, Auth, each in Go, Python and
  NodeJS (Table 3.2; :mod:`repro.workloads.standalone`),
* **online shop** — six functions from Google's Online Boutique
  (Table 3.3; :mod:`repro.workloads.onlineshop`),
* **hotel** — six Go microfunctions over a database plus Memcached
  (Table 3.4; :mod:`repro.workloads.hotel`).

Each function has a *real handler* (actual AES rounds, actual database
queries against :mod:`repro.db`) and a *work model* that translates what
the handler did into an IR program for the simulator, shaped by the
runtime model (:mod:`repro.workloads.runtime`) and the machine scale.
"""

from repro.workloads.builder import WorkBuilder
from repro.workloads.catalog import (
    HOTEL_FUNCTIONS,
    ONLINESHOP_FUNCTIONS,
    STANDALONE_FUNCTIONS,
    all_functions,
    get_function,
)
from repro.workloads.function import VSwarmFunction
from repro.workloads.runtime import RUNTIMES, RuntimeModel

__all__ = [
    "HOTEL_FUNCTIONS",
    "ONLINESHOP_FUNCTIONS",
    "RUNTIMES",
    "RuntimeModel",
    "STANDALONE_FUNCTIONS",
    "VSwarmFunction",
    "WorkBuilder",
    "all_functions",
    "get_function",
]
