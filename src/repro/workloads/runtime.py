"""Language runtime models: Go, Python, NodeJS.

A runtime model quantifies the software stack around a function handler,
at native scale (dynamic instructions / footprint bytes):

* the **initialisation path** executed only on cold starts — ELF loading
  or interpreter start-up, module imports (for Python this includes the
  gRPC module whose RISC-V import needed the libatomic preload
  workaround, §3.3.1.2), go runtime bring-up, V8 bootstrapping;
* the **per-request path** — RPC server loop, scheduling, kernel network
  stack — executed for every request at the same program counters, which
  is what warm instruction locality feeds on;
* the **execution regime** for handler code — compiled (Go), interpreted
  through a dispatch loop (Python), or interpreted-then-JIT-compiled
  (NodeJS, whose first request pays interpretation plus JIT compilation
  and whose warm requests run near-native: the ~50% warm speedup of
  §4.2.1.1).

Values are calibrated so the *relative* cold/warm behaviour of Fig 4.4
emerges from simulation: Go has the cheapest cold path, Python the most
expensive cold but the cheapest warm path, NodeJS sits between with the
JIT cliff.
"""

from __future__ import annotations

from typing import Dict

KB = 1024
MB = 1024 * 1024


class RuntimeModel:
    """Native-scale cost model for one language runtime."""

    def __init__(
        self,
        name: str,
        init_instructions: int,
        init_data_bytes: int,
        request_overhead_instructions: int,
        overhead_data_bytes: int,
        dispatch_ialu_per_unit: float,
        dispatch_loads_per_unit: float,
        interp_table_bytes: int,
        jit: bool = False,
        jit_compile_instructions: int = 0,
        jitted_dispatch_factor: float = 0.0,
        image_variant: str = "default",
        init_code_reuse: int = 8,
        overhead_kind: str = "rtpath",
    ):
        self.name = name
        self.init_instructions = init_instructions
        self.init_data_bytes = init_data_bytes
        self.request_overhead_instructions = request_overhead_instructions
        self.overhead_data_bytes = overhead_data_bytes
        self.dispatch_ialu_per_unit = dispatch_ialu_per_unit
        self.dispatch_loads_per_unit = dispatch_loads_per_unit
        self.interp_table_bytes = interp_table_bytes
        self.jit = jit
        self.jit_compile_instructions = jit_compile_instructions
        self.jitted_dispatch_factor = jitted_dispatch_factor
        self.image_variant = image_variant
        #: Code revisitation on the init path: a static Go binary loops
        #: through a compact loader; CPython's import machinery touches far
        #: more unique code.
        self.init_code_reuse = init_code_reuse
        #: Block kind of the per-request path: "rtpath" (near ISA parity,
        #: the gRPC/kernel case) or "stack" (the V8 event loop, whose x86
        #: build executes substantially more instructions).
        self.overhead_kind = overhead_kind

    @property
    def interpreted(self) -> bool:
        return self.dispatch_ialu_per_unit > 0

    def dispatch_cost(self, units: float, jit_warm: bool) -> float:
        """Interpreter/JIT dispatch instructions for ``units`` of app work."""
        if not self.interpreted:
            return 0.0
        if self.jit and jit_warm:
            return units * self.dispatch_ialu_per_unit * self.jitted_dispatch_factor
        return units * self.dispatch_ialu_per_unit

    def __repr__(self) -> str:
        return "RuntimeModel(%s)" % self.name


RUNTIMES: Dict[str, RuntimeModel] = {
    # Go: static binary, tiny runtime bring-up, compiled handlers.
    "go": RuntimeModel(
        name="go",
        init_instructions=700_000,
        init_data_bytes=2 * MB,
        request_overhead_instructions=750_000,
        overhead_data_bytes=128 * KB,
        dispatch_ialu_per_unit=0.0,
        dispatch_loads_per_unit=0.0,
        interp_table_bytes=0,
        init_code_reuse=16,
    ),
    # Python: CPython start-up plus imports (grpc, protobuf); ceval
    # dispatch loop for handler bytecode; light gRPC C-core per request.
    "python": RuntimeModel(
        name="python",
        init_instructions=3_950_000,
        init_data_bytes=6 * MB,
        request_overhead_instructions=350_000,
        overhead_data_bytes=192 * KB,
        dispatch_ialu_per_unit=5.0,
        dispatch_loads_per_unit=1.0,
        interp_table_bytes=96 * KB,
        image_variant="default",
        init_code_reuse=5,
    ),
    # NodeJS: V8 bootstrap; first request interprets and JIT-compiles,
    # later requests run optimised code; heavyweight event-loop plumbing
    # per request.
    "nodejs": RuntimeModel(
        name="nodejs",
        init_instructions=1_300_000,
        init_data_bytes=4 * MB,
        request_overhead_instructions=1_000_000,
        overhead_data_bytes=384 * KB,
        dispatch_ialu_per_unit=6.0,
        dispatch_loads_per_unit=1.2,
        interp_table_bytes=128 * KB,
        jit=True,
        jit_compile_instructions=400_000,
        jitted_dispatch_factor=0.1,
        init_code_reuse=3,
        overhead_kind="stack",
    ),
}


def get_runtime(name: str) -> RuntimeModel:
    """Look up a runtime model by name (go / python / nodejs)."""
    try:
        return RUNTIMES[name]
    except KeyError:
        raise ValueError("unknown runtime %r; have %s" % (name, sorted(RUNTIMES)))
