"""Quantized ML-inference workloads: the vector-unit benchmark family.

vSwarm's ML-serving benchmarks (fibonacci-class functions dominate the
thesis's ported set) are exactly the workloads where RISC-V's vector
extension should matter: dense linear algebra over int8/fp32 tensors.
This family models four inference kernels behind the usual Python
serving runtime:

* **matmul-int8** — a quantized (int8 × int8 → int32, requantized)
  GEMM tile, the core of every quantized transformer/MLP layer;
* **matmul-fp32** — the same GEMM in fp32;
* **conv2d-python** — a quantized 3×3 convolution over a feature map;
* **embedding-lookup-python** — an embedding-bag gather-and-reduce, the
  sparse front end of recommendation models.

Each handler really computes its kernel on a small deterministic tile
(seeded inputs, checksummed outputs); the work model then charges the
*full layer* the tile stands for, emitted as vector IR
(:func:`repro.sim.isa.ir.vector_block` via
:meth:`~repro.workloads.builder.WorkBuilder.vector_kernel`).  On a
vector-enabled ISA the kernels lower to stripmined RVV or fixed-width
SSE/NEON streams; without a vector unit they lower element-by-element to
scalar instructions — same IR, two machine-level stories, which is the
comparison the family exists to measure.

The family registers in the catalog by name only (``suite = "ml"``); it
is not part of the thesis's default measurement batches.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from repro.workloads.function import VSwarmFunction

#: The handler computes one tile; the modelled layer is this many tiles.
#: Keeps the functional side fast while the simulated kernel stays at
#: native magnitude (so scaled runs still see real strip counts).
TILE_TO_LAYER = 64

#: GEMM tile edge (M = K = N) and conv feature-map geometry.
GEMM_DIM = 24
CONV_SIZE = 24
CONV_KERNEL = 3
#: Embedding table geometry: vocabulary rows × feature dim, bag size.
EMBED_VOCAB = 512
EMBED_DIM = 32
EMBED_BAG = 16


def _seeded_matrix(rows: int, cols: int, seed: int, lo: int, hi: int) -> List[List[int]]:
    rng = random.Random(seed)
    return [[rng.randrange(lo, hi) for _c in range(cols)] for _r in range(rows)]


class MatmulFunction(VSwarmFunction):
    """Python: one GEMM tile, int8-quantized or fp32."""

    suite = "ml"
    app_layer_mb = {"x86": 46.2, "riscv": 46.8}
    image_variant = "grpc-prebuilt"
    #: tensor-library import set (BLAS binding, operator registry)
    init_factor = 1.6

    def __init__(self, dtype: str):
        if dtype not in ("int8", "fp32"):
            raise ValueError("dtype must be int8 or fp32, got %r" % dtype)
        super().__init__("matmul-%s" % dtype, "python")
        self.dtype = dtype
        self.ewidth = 1 if dtype == "int8" else 4

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"dim": GEMM_DIM, "seed": sequence}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        dim = int(payload.get("dim", GEMM_DIM))
        seed = int(payload.get("seed", 0))
        if self.dtype == "int8":
            a = _seeded_matrix(dim, dim, seed * 2 + 1, -128, 128)
            b = _seeded_matrix(dim, dim, seed * 2 + 2, -128, 128)
            # int8 × int8 accumulates in int32, then requantizes by a
            # power-of-two shift back into int8 range.
            out = [
                [max(-128, min(127, sum(a[i][k] * b[k][j] for k in range(dim)) >> 7))
                 for j in range(dim)]
                for i in range(dim)
            ]
            checksum = sum(sum(row) for row in out)
        else:
            a = _seeded_matrix(dim, dim, seed * 2 + 1, -8, 9)
            b = _seeded_matrix(dim, dim, seed * 2 + 2, -8, 9)
            out = [
                [sum(a[i][k] / 8.0 * (b[k][j] / 8.0) for k in range(dim))
                 for j in range(dim)]
                for i in range(dim)
            ]
            checksum = round(sum(sum(row) for row in out), 3)
        ctx.meter("macs", dim * dim * dim)
        ctx.meter("out_elements", dim * dim)
        return {"dim": dim, "dtype": self.dtype, "checksum": checksum}

    def build_work(self, builder, record, services) -> None:
        macs = int(record.metrics.get("macs", GEMM_DIM ** 3)) * TILE_TO_LAYER
        outs = int(record.metrics.get("out_elements", GEMM_DIM ** 2)) * TILE_TO_LAYER
        ew = self.ewidth
        weights = builder.region("gemm.weights", macs // GEMM_DIM * ew)
        acts = builder.region("gemm.acts", max(4096, outs * ew))
        # Weight-stationary inner loop: stream weights, FMA per element.
        builder.vector_kernel(macs, ewidth=ew, load_region=weights,
                              fma_per_element=1.0)
        # Requantize/accumulate and stream out the result tile.
        builder.vector_kernel(outs, ewidth=ew, store_region=acts,
                              alu_per_element=1.0)
        # Scalar loop bookkeeping + tile scheduling around the kernel.
        builder.compute(ialu=macs * 0.05, native=True, ilp=4)


class Conv2dFunction(VSwarmFunction):
    """Python: quantized 3×3 convolution over a feature map."""

    suite = "ml"
    app_layer_mb = {"x86": 46.2, "riscv": 46.8}
    image_variant = "grpc-prebuilt"
    init_factor = 1.6

    def __init__(self):
        super().__init__("conv2d-python", "python")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"size": CONV_SIZE, "seed": sequence}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        size = int(payload.get("size", CONV_SIZE))
        seed = int(payload.get("seed", 0))
        image = _seeded_matrix(size, size, seed + 101, -128, 128)
        kernel = _seeded_matrix(CONV_KERNEL, CONV_KERNEL, seed + 202, -8, 9)
        edge = CONV_KERNEL // 2
        out_size = size - 2 * edge
        out = [
            [max(-128, min(127, sum(
                image[y + dy][x + dx] * kernel[dy][dx]
                for dy in range(CONV_KERNEL) for dx in range(CONV_KERNEL)
            ) >> 6))
             for x in range(out_size)]
            for y in range(out_size)
        ]
        ctx.meter("macs", out_size * out_size * CONV_KERNEL * CONV_KERNEL)
        ctx.meter("out_elements", out_size * out_size)
        return {"size": out_size, "checksum": sum(sum(row) for row in out)}

    def build_work(self, builder, record, services) -> None:
        default_macs = (CONV_SIZE - 2) ** 2 * CONV_KERNEL ** 2
        macs = int(record.metrics.get("macs", default_macs)) * TILE_TO_LAYER
        outs = int(record.metrics.get("out_elements",
                                      (CONV_SIZE - 2) ** 2)) * TILE_TO_LAYER
        fmap = builder.region("conv.fmap", max(4096, outs))
        # im2col-style inner loop: unit-stride int8 streams with one FMA
        # per element, then the requantized output stream.
        builder.vector_kernel(macs, ewidth=1, load_region=fmap,
                              fma_per_element=1.0)
        builder.vector_kernel(outs, ewidth=1, store_region=fmap,
                              alu_per_element=1.0)
        builder.compute(ialu=macs * 0.08, native=True, ilp=4)
        # Halo/boundary handling branches per output row.
        builder.branches(outs * 0.05, predictability=0.95)


class EmbeddingLookupFunction(VSwarmFunction):
    """Python: embedding-bag lookup — gather rows, reduce to one vector."""

    suite = "ml"
    app_layer_mb = {"x86": 46.2, "riscv": 46.8}
    image_variant = "grpc-prebuilt"
    #: the embedding table itself loads on import
    init_factor = 1.8

    def __init__(self):
        super().__init__("embedding-lookup-python", "python")
        self._table = _seeded_matrix(EMBED_VOCAB, EMBED_DIM, 7, -64, 65)

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        rng = random.Random(sequence + 31)
        return {"indices": [rng.randrange(EMBED_VOCAB) for _ in range(EMBED_BAG)]}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        indices = payload.get("indices") or [0]
        bag = [0] * EMBED_DIM
        for index in indices:
            row = self._table[int(index) % EMBED_VOCAB]
            for dim in range(EMBED_DIM):
                bag[dim] += row[dim]
        ctx.meter("gathered", len(indices) * EMBED_DIM)
        return {"dim": EMBED_DIM, "checksum": sum(bag)}

    def build_work(self, builder, record, services) -> None:
        gathered = int(record.metrics.get("gathered",
                                          EMBED_BAG * EMBED_DIM)) * TILE_TO_LAYER
        table = builder.region("embed.table", EMBED_VOCAB * EMBED_DIM * 4)
        # Indexed gather over the table, fp32 accumulate into the bag.
        builder.vector_kernel(gathered, ewidth=4, load_region=table,
                              alu_per_element=1.0, gather=True)
        # Index decode + bounds checks per gathered row.
        builder.compute(ialu=gathered * 0.1, native=True, ilp=2)


def make_ml_functions() -> List[VSwarmFunction]:
    """The ML-inference workload family."""
    return [
        MatmulFunction("int8"),
        MatmulFunction("fp32"),
        Conv2dFunction(),
        EmbeddingLookupFunction(),
    ]


ML_FUNCTIONS: List[VSwarmFunction] = make_ml_functions()

#: Catalog names, in family order (bench-smoke's ml_infer phase runs these).
ML_FUNCTION_NAMES = tuple(fn.name for fn in ML_FUNCTIONS)
