"""The Hotel reservation suite (Table 3.4), after DeathStarBench.

Six Go microfunctions over a primary database — MongoDB upstream,
Cassandra in the RISC-V port (§3.3.3) — three of which (Reservation,
Rate, Profile) consult Memcached first and populate it after a miss.
That back-and-forth is the mechanism behind the thesis's hotel results:
ten-fold cold slowdowns from cache-population traffic (Fig 4.10/4.11) and
excellent warm behaviour once Memcached absorbs the reads, with Profile —
the largest payload — worst cold and best warm (Fig 4.5, 4.19).

Handlers run real queries against the metered datastores; the work models
charge exactly the work the receipts describe.
"""

from __future__ import annotations

import pickle
import random
from typing import Any, Dict, List, Optional

from repro.db.engine import Datastore, encoded_size
from repro.db.memcached import MemcachedCache
from repro.sim.isa import ir
from repro.workloads import crypto
from repro.workloads.function import VSwarmFunction

#: Dataset shape (native magnitudes).
NUM_HOTELS = 80
NUM_USERS = 400
PROFILE_DESCRIPTION_WORDS = 700  # ~4 KB of text per hotel profile
PROFILE_IMAGE_BYTES = 12_000     # inline thumbnail payload per profile
RATE_PLANS_PER_HOTEL = 3

#: In-memory bloat of the store's payload bytes (JVM/C++ object overhead).
DB_MEMORY_FACTOR = {"cassandra": 6, "mongodb": 3, "mariadb": 3, "redis": 2}
CACHE_MEMORY_FACTOR = 2

_GO_APP_LAYERS = {
    "geo": {"x86": 0.87, "riscv": 0.86},
    "recommendation": {"x86": 0.84, "riscv": 0.84},
    "user": {"x86": 0.82, "riscv": 0.83},
    "reservation": {"x86": 0.88, "riscv": 0.89},
    "rate": {"x86": 0.88, "riscv": 0.89},
    "profile": {"x86": 0.89, "riscv": 0.89},
}


#: Generated dataset documents per seed, stored as a pickle blob.
#: Document generation (rng text, hex thumbnails, password hashes) costs
#: far more than storing them, and every measurement task seeds a fresh
#: datastore — so generate once and replay into each store.  A single
#: ``pickle.loads`` per replay both deserialises the rows and gives the
#: store its own independent copies (stores keep references and handlers
#: update rows in place), an order of magnitude cheaper than per-row
#: ``copy.deepcopy``.
_DATASET_CACHE: Dict[int, bytes] = {}


def _dataset_blob(seed: int) -> bytes:
    """The hotel dataset as a pickled list of ``(table, key, doc)`` rows."""
    blob = _DATASET_CACHE.get(seed)
    if blob is None:
        blob = pickle.dumps(list(_generate_documents(seed)),
                            pickle.HIGHEST_PROTOCOL)
        _DATASET_CACHE[seed] = blob
    return blob


def seed_dataset(db: Datastore, seed: int = 11) -> Dict[str, int]:
    """Populate a datastore with the hotel dataset; returns row counts."""
    for table, key, doc in pickle.loads(_dataset_blob(seed)):
        db.put(table, key, doc)
    if hasattr(db, "flush_all"):
        db.flush_all()  # Cassandra: persist the seed batch to SSTables
    return {"hotels": NUM_HOTELS, "users": NUM_USERS}


def _generate_documents(seed: int):
    """Yield the dataset rows in insertion order (one rng stream)."""
    rng = random.Random(seed)
    words = ("lake", "view", "suite", "historic", "breakfast", "rooftop",
             "quiet", "marble", "garden", "harbour", "boutique", "spa")
    for index in range(NUM_HOTELS):
        hotel_id = "h%04d" % index
        description = " ".join(rng.choice(words) for _ in range(PROFILE_DESCRIPTION_WORDS))
        yield ("profiles", hotel_id, {
            "hotel_id": hotel_id,
            "name": "Hotel %d" % index,
            "phone": "+30-21%07d" % index,
            "description": description,
            "images": ["/img/%s/%d.jpg" % (hotel_id, i) for i in range(5)],
            # Inline thumbnail payload: profiles are by far the suite's
            # largest rows, which is what makes the Profile function's
            # cold execution the outlier of Fig 4.5.
            "thumbnail_data": "".join(
                "%02x" % rng.randrange(256) for _ in range(PROFILE_IMAGE_BYTES // 2)
            ),
        })
        yield ("geo", hotel_id, {
            "hotel_id": hotel_id,
            "lat": 37.9 + rng.uniform(-0.5, 0.5),
            "lon": 23.7 + rng.uniform(-0.5, 0.5),
        })
        for plan in range(RATE_PLANS_PER_HOTEL):
            yield ("rates", "%s-p%d" % (hotel_id, plan), {
                "hotel_id": hotel_id,
                "code": "RACK%d" % plan,
                "in_date": "2015-04-%02d" % (plan + 1),
                "room_type": {"bookable_rate": 100 + 10 * plan,
                              "total_rate": 120 + 10 * plan,
                              "code": "KNG"},
            })
        yield ("numbers", hotel_id, {"hotel_id": hotel_id, "rooms": 200})
        yield ("recommendations", hotel_id, {
            "hotel_id": hotel_id,
            "rate": rng.uniform(80.0, 400.0),
            "price": rng.uniform(60.0, 350.0),
        })
    yield ("meta", "rates_version", {"version": 1, "updated": "2015-04-01"})
    for index in range(NUM_USERS):
        username = "user%04d" % index
        password_hash = crypto.sha256(("pass%04d" % index).encode()).hex()
        yield ("users", username, {"username": username, "password": password_hash})


class HotelFunction(VSwarmFunction):
    """Base: Go runtime, bound to the db (and maybe memcached)."""

    suite = "hotel"
    required_services = ("db",)
    uses_memcached = False

    def __init__(self, short_name: str):
        super().__init__("hotel-%s-go" % short_name, "go")
        self.short_name = short_name
        self.app_layer_mb = _GO_APP_LAYERS[short_name]

    # -- shared work-model helpers -----------------------------------------------

    def _db_factor(self, services: Dict[str, Any]) -> int:
        return DB_MEMORY_FACTOR.get(getattr(services.get("db"), "name", ""), 4)

    def build_work(self, builder, record, services) -> None:
        if record.cold:
            builder.cold_connect("database")
            if self.uses_memcached:
                builder.cold_connect("cache")
        db = services.get("db")
        db_receipt = record.receipts.get("db")
        if db is not None and db_receipt is not None:
            builder.service_work(
                "db", db_receipt, db.data_bytes() * self._db_factor(services)
            )
        cache = services.get("memcached")
        cache_receipt = record.receipts.get("memcached")
        if cache is not None and cache_receipt is not None:
            builder.service_work(
                "memcached", cache_receipt,
                max(4096, cache.used_bytes * CACHE_MEMORY_FACTOR),
            )
        if record.metrics.get("passthrough"):
            # Cached responses are stored marshalled: reply is a copy, not
            # a re-serialization.
            builder.response_passthrough = True
        self.build_handler_work(builder, record, services)

    def build_handler_work(self, builder, record, services) -> None:
        """Function-specific compute beyond the datastore receipts."""
        builder.compute(ialu=2_000, native=True)


class GeoFunction(HotelFunction):
    """Find hotels within a radius (real haversine over the geo table)."""

    def __init__(self):
        super().__init__("geo")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"lat": 37.97, "lon": 23.72, "radius_km": 25.0}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        import math

        lat = float(payload.get("lat", 37.97))
        lon = float(payload.get("lon", 23.72))
        radius = float(payload.get("radius_km", 25.0))
        db = ctx.service("db")
        nearby = []
        scanned = 0
        for point in db.scan("geo"):
            scanned += 1
            d_lat = math.radians(point["lat"] - lat)
            d_lon = math.radians(point["lon"] - lon)
            a = (math.sin(d_lat / 2) ** 2
                 + math.cos(math.radians(lat)) * math.cos(math.radians(point["lat"]))
                 * math.sin(d_lon / 2) ** 2)
            distance = 2 * 6371 * math.asin(math.sqrt(a))
            if distance <= radius:
                nearby.append(point["hotel_id"])
        ctx.meter("scanned", scanned)
        return {"hotel_ids": sorted(nearby)[:10]}

    def build_handler_work(self, builder, record, services) -> None:
        scanned = int(record.metrics.get("scanned", NUM_HOTELS))
        builder.compute(falu=scanned * 35, fmul=scanned * 10, native=True)
        builder.branches(scanned, predictability=0.8)


class RecommendationFunction(HotelFunction):
    """Rank hotels by rate or price."""

    def __init__(self):
        super().__init__("recommendation")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"require": "rate" if sequence % 2 == 0 else "price"}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        metric = payload.get("require", "rate")
        if metric not in ("rate", "price"):
            raise ValueError("require must be 'rate' or 'price'")
        db = ctx.service("db")
        rows = list(db.scan("recommendations"))
        rows.sort(key=lambda row: row[metric], reverse=True)
        ctx.meter("scanned", len(rows))
        return {"hotel_ids": [row["hotel_id"] for row in rows[:5]], "by": metric}

    def build_handler_work(self, builder, record, services) -> None:
        scanned = int(record.metrics.get("scanned", NUM_HOTELS))
        # sort: n log n comparisons
        builder.compute(ialu=scanned * 24, falu=scanned * 8, native=True)
        builder.branches(scanned * 4, predictability=0.7)


class UserFunction(HotelFunction):
    """Credential check against the users table (real SHA-256 compare)."""

    def __init__(self):
        super().__init__("user")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        index = sequence % NUM_USERS
        return {"username": "user%04d" % index, "password": "pass%04d" % index}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        username = payload.get("username", "")
        password = payload.get("password", "")
        db = ctx.service("db")
        row = db.get("users", username)
        if row is None:
            return {"authorized": False, "reason": "no such user"}
        digest = crypto.sha256(password.encode()).hex()
        ctx.meter("hash_chunks", crypto.sha256_chunk_count(len(password)))
        return {"authorized": digest == row["password"]}

    def build_handler_work(self, builder, record, services) -> None:
        chunks = int(record.metrics.get("hash_chunks", 1))
        builder.compute(ialu=chunks * 64 * 14 + 500, native=True, ilp=2)


class CachedHotelFunction(HotelFunction):
    """Base for the Memcached-backed trio (Table 3.4's Yes/Yes rows)."""

    required_services = ("db", "memcached")
    uses_memcached = True

    def cache_key(self, payload: Dict[str, Any]) -> str:
        raise NotImplementedError

    def fetch(self, payload: Dict[str, Any], ctx) -> Any:
        """Compute the response from the database (cache-miss path)."""
        raise NotImplementedError

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        cache = ctx.service("memcached")
        key = self.cache_key(payload)
        cached = cache.get(key)
        if cached is not None:
            ctx.meter("cache_hits")
            return cached
        ctx.meter("cache_misses")
        result = self.fetch(payload, ctx)
        cache.set(key, result)
        return result


class RateFunction(CachedHotelFunction):
    """Room rates for a set of hotels."""

    def __init__(self):
        super().__init__("rate")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"hotel_ids": ["h%04d" % index for index in range(6)],
                "in_date": "2015-04-01"}

    def cache_key(self, payload: Dict[str, Any]) -> str:
        return "rates|%s|%s" % (",".join(payload.get("hotel_ids", [])),
                                payload.get("in_date", ""))

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        # Rates change, so even a cache hit validates freshness against
        # the version row; profiles are static and skip this.
        db = ctx.service("db")
        db.get("meta", "rates_version")
        return super().handler(payload, ctx)

    def fetch(self, payload: Dict[str, Any], ctx) -> Any:
        db = ctx.service("db")
        plans = []
        for hotel_id in payload.get("hotel_ids", []):
            for plan in range(RATE_PLANS_PER_HOTEL):
                row = db.get("rates", "%s-p%d" % (hotel_id, plan))
                if row is not None:
                    plans.append(row)
        plans.sort(key=lambda row: row["room_type"]["bookable_rate"])
        return {"plans": plans}


class ReservationFunction(CachedHotelFunction):
    """Check availability and book a room (writes every request)."""

    def __init__(self):
        super().__init__("reservation")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        # Same hotel and stay every request (the thesis's protocol repeats
        # one request ten times); the customer varies per booking.
        return {"hotel_id": "h0007",
                "customer": "user%04d" % (sequence % NUM_USERS),
                "in_date": "2015-04-02", "out_date": "2015-04-05"}

    def cache_key(self, payload: Dict[str, Any]) -> str:
        return "avail|%s|%s" % (payload.get("hotel_id", ""), payload.get("in_date", ""))

    @staticmethod
    def _stay_days(in_date: str, out_date: str) -> int:
        from datetime import date

        def parse(text: str) -> date:
            year, month, day = (int(part) for part in text.split("-"))
            return date(year, month, day)

        try:
            nights = (parse(out_date) - parse(in_date)).days
        except (ValueError, AttributeError):
            return 1
        return max(1, nights)

    def fetch(self, payload: Dict[str, Any], ctx) -> Any:
        db = ctx.service("db")
        hotel_id = payload.get("hotel_id", "")
        numbers = db.get("numbers", hotel_id)
        capacity = numbers["rooms"] if numbers else 0
        # Availability is checked per night of the stay, as in the
        # DeathStarBench reservation service.
        nights = self._stay_days(payload.get("in_date", ""), payload.get("out_date", ""))
        available = capacity
        for _night in range(nights):
            booked = len(db.query("reservations", hotel_id=hotel_id))
            available = min(available, capacity - booked)
        ctx.meter("nights", nights)
        return {"hotel_id": hotel_id, "available": available}

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        availability = super().handler(payload, ctx)
        db = ctx.service("db")
        if availability.get("available", 0) > 0:
            booking_id = "r-%s-%s-%d" % (
                payload.get("hotel_id", ""), payload.get("customer", ""),
                ctx.record.sequence,
            )
            db.put("reservations", booking_id, {
                "hotel_id": payload.get("hotel_id", ""),
                "customer": payload.get("customer", ""),
                "in_date": payload.get("in_date", ""),
                "out_date": payload.get("out_date", ""),
            })
            # Write-through: keep the cached availability consistent.
            ctx.service("memcached").set(
                self.cache_key(payload),
                {"hotel_id": availability["hotel_id"],
                 "available": availability["available"] - 1},
            )
            ctx.meter("booked")
            return {"booked": True, "booking_id": booking_id}
        return {"booked": False}


class ProfileFunction(CachedHotelFunction):
    """Hotel profiles — the suite's largest payloads.

    On a cold instance the function also fills its in-process LRU from the
    database (the DeathStarBench profile service batch-reads), which is
    why its cold execution dwarfs everything else (351M cycles in the
    thesis's Fig 4.5) while its warm requests — served entirely from
    Memcached — are the fastest in the suite.
    """

    def __init__(self):
        super().__init__("profile")

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        return {"hotel_ids": ["h%04d" % offset for offset in range(5)]}

    def cache_key(self, payload: Dict[str, Any]) -> str:
        return "profiles|%s" % ",".join(payload.get("hotel_ids", []))

    def handler(self, payload: Dict[str, Any], ctx) -> Any:
        # Profiles cache per hotel (the marshalled rows fit Memcached's
        # slab classes individually; the combined response would not).
        cache = ctx.service("memcached")
        hotel_ids = payload.get("hotel_ids", [])
        # One batched round trip (memcached get_multi), as DeathStarBench's
        # profile service does.
        cached = cache.get_multi(["profile|%s" % h for h in hotel_ids])
        profiles = []
        missing = []
        for hotel_id in hotel_ids:
            row = cached.get("profile|%s" % hotel_id)
            if row is not None:
                profiles.append(row)
            else:
                missing.append(hotel_id)
        if missing:
            ctx.meter("cache_misses", len(missing))
            fetched = self.fetch({"hotel_ids": missing}, ctx)["profiles"]
            for row in fetched:
                cache.set("profile|%s" % row["hotel_id"], row)
            profiles.extend(fetched)
        else:
            ctx.meter("cache_hits")
            ctx.meter("passthrough", 1)
        return {"profiles": profiles}

    def fetch(self, payload: Dict[str, Any], ctx) -> Any:
        db = ctx.service("db")
        if "profile_lru" not in ctx.local:
            # Cold in-process cache: batch-read every profile once.
            ctx.local["profile_lru"] = {
                row["hotel_id"]: row for row in db.scan("profiles")
            }
            ctx.meter("lru_fill", len(ctx.local["profile_lru"]))
        lru = ctx.local["profile_lru"]
        profiles = [lru[h] for h in payload.get("hotel_ids", []) if h in lru]
        return {"profiles": profiles}


def make_hotel_functions() -> List[HotelFunction]:
    """The six hotel functions, Table 3.4 order."""
    return [
        GeoFunction(),
        RecommendationFunction(),
        UserFunction(),
        ReservationFunction(),
        RateFunction(),
        ProfileFunction(),
    ]


class HotelSuite:
    """Wires the hotel functions to a database and a Memcached instance."""

    def __init__(self, db: Datastore, memcached: Optional[MemcachedCache] = None,
                 seed: int = 11):
        self.db = db
        self.memcached = memcached or MemcachedCache(capacity_bytes=8 << 20)
        self.functions = make_hotel_functions()
        self.row_counts = seed_dataset(db, seed=seed)

    def services_for(self, function: HotelFunction) -> Dict[str, Any]:
        services: Dict[str, Any] = {"db": self.db}
        if function.uses_memcached:
            services["memcached"] = self.memcached
        return services

    def __repr__(self) -> str:
        return "HotelSuite(db=%s, %d functions)" % (self.db.name, len(self.functions))
