"""System boot and platform-preparation programs.

Setup mode boots the full system with the Atomic core before taking the
checkpoint the detailed runs restore from (§4.1.2.2) — a multi-hour
affair in the real gem5 runs (the Cassandra/RISC-V container boot alone
took the thesis about a week of simulation).  Boot programs accept a
``fidelity`` divisor on top of the experiment scale: setup mode runs
before the measured region, so it trades detail for wall time exactly as
the thesis's Atomic-core fast-forward does.  These builders produce the boot-path IR:
bootloader (OpenSBI on RISC-V, where it is a separate artifact gem5 needs
to be handed explicitly, §3.4.2.3 — built into the kernel image on x86),
kernel initialisation, userspace bring-up, and the container engine
start.
"""

from __future__ import annotations

from repro.core.scale import SimScale
from repro.sim.isa import ir

#: Native dynamic instruction counts of the boot phases.
OPENSBI_INSTRUCTIONS = 2_000_000
KERNEL_BOOT_INSTRUCTIONS = 90_000_000
USERSPACE_BOOT_INSTRUCTIONS = 60_000_000
DOCKERD_START_INSTRUCTIONS = 25_000_000

KERNEL_DATA_BYTES = 24 << 20
USERSPACE_DATA_BYTES = 48 << 20


def build_boot_program(isa_name: str, scale: SimScale, seed: int = 0,
                       with_container_engine: bool = True,
                       fidelity: int = 8) -> ir.Program:
    """The full-system boot path for one ISA.

    The RISC-V boot includes the OpenSBI stage that x86 folds into the
    kernel image; everything else is the same stack (Ubuntu Jammy,
    Linux 5.15.59, Docker 25) the thesis uses on both platforms.
    """
    scale = SimScale(time=scale.time * fidelity, space=scale.space)
    program = ir.Program("boot.%s" % isa_name, seed=seed)
    kernel_data = program.space.alloc(
        "kernel.data", scale.data_bytes(KERNEL_DATA_BYTES), segment="kernel"
    )
    user_data = program.space.alloc(
        "userspace.data", scale.data_bytes(USERSPACE_DATA_BYTES)
    )

    stages = []
    if isa_name == "riscv":
        stages.append(ir.straightline_block(
            scale.instrs(OPENSBI_INSTRUCTIONS), data_region=kernel_data, kind="stack",
        ))
    stages.append(ir.straightline_block(
        scale.instrs(KERNEL_BOOT_INSTRUCTIONS), data_region=kernel_data, kind="stack",
    ))
    stages.append(ir.straightline_block(
        scale.instrs(USERSPACE_BOOT_INSTRUCTIONS), data_region=user_data, kind="stack",
    ))
    if with_container_engine:
        stages.append(ir.straightline_block(
            scale.instrs(DOCKERD_START_INSTRUCTIONS), data_region=user_data, kind="stack",
        ))
    program.add_routine(ir.Routine("boot", ir.Seq(stages), segment="kernel"), entry=True)
    return program


def build_db_boot_program(store, isa_name: str, scale: SimScale,
                          seed: int = 0, fidelity: int = 64) -> ir.Program:
    """Boot path of a database container (Cassandra's is enormous).

    JVM-hosted stores pay class loading and interpreter warm-up on top of
    the base boot work; the thesis measured Cassandra container boots of
    ~17 minutes under QEMU RISC-V emulation versus 30-40s natively
    (§3.3.3.2).
    """
    profile = store.boot_profile
    scale = SimScale(time=scale.time * fidelity, space=scale.space)
    program = ir.Program("dbboot.%s.%s" % (store.name, isa_name), seed=seed)
    heap = program.space.alloc("db.heap", scale.data_bytes(profile.resident_bytes))
    instructions = profile.instructions
    if profile.jvm:
        # Class verification + interpreter until the JIT catches up.
        instructions = int(instructions * 1.35)
    program.add_routine(
        ir.Routine("dbboot", ir.straightline_block(
            scale.instrs(instructions), data_region=heap, kind="stack",
        )),
        entry=True,
    )
    return program
