"""Workload catalog: every benchmark, plus the survey data tables.

Provides the registry the harness and benches index into, and the static
survey data the thesis tabulates: the benchmark-suite comparison
(Table 3.1) and the third-party RISC-V container sizes found on Docker
Hub (Table 4.5).
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.extras import make_extras
from repro.workloads.function import VSwarmFunction
from repro.workloads.hotel import make_hotel_functions
from repro.workloads.mlinfer import make_ml_functions
from repro.workloads.onlineshop import make_onlineshop
from repro.workloads.standalone import make_standalone

#: Table 3.2: standalone functions x runtimes.
STANDALONE_MATRIX = [
    (base, runtime)
    for base in ("fibonacci", "aes", "auth")
    for runtime in ("go", "python", "nodejs")
]

STANDALONE_FUNCTIONS: List[VSwarmFunction] = [
    make_standalone(base, runtime) for base, runtime in STANDALONE_MATRIX
]
ONLINESHOP_FUNCTIONS: List[VSwarmFunction] = make_onlineshop()
HOTEL_FUNCTIONS: List[VSwarmFunction] = make_hotel_functions()
#: Extension workloads beyond the thesis's ported set (its §6 plan).
EXTRA_FUNCTIONS: List[VSwarmFunction] = make_extras()
#: Quantized ML-inference family (vector-unit benchmarks); addressable by
#: name only — not part of the thesis's default measurement batches.
ML_FUNCTIONS: List[VSwarmFunction] = make_ml_functions()


def all_functions(include_extras: bool = False) -> List[VSwarmFunction]:
    """Every catalogued benchmark (the thesis's 21, plus extensions)."""
    functions = STANDALONE_FUNCTIONS + ONLINESHOP_FUNCTIONS + HOTEL_FUNCTIONS
    if include_extras:
        functions = functions + EXTRA_FUNCTIONS
    return functions


_BY_NAME: Dict[str, VSwarmFunction] = {
    fn.name: fn for fn in all_functions(include_extras=True) + ML_FUNCTIONS
}


def get_function(name: str) -> VSwarmFunction:
    """Look up any benchmark function (extensions included) by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError("no benchmark function %r (have %s)"
                       % (name, sorted(_BY_NAME))) from None


#: Table 3.1: the serverless benchmark-suite survey.
BENCHMARK_SUITE_SURVEY = [
    {"suite": "FunctionBench", "languages": ["Python"],
     "infrastructure": "Public & Private", "isas": ["x86"], "gem5": False},
    {"suite": "ServerlessBench", "languages": ["C", "Java", "Python", "NodeJs", "Ruby"],
     "infrastructure": "Public & Private", "isas": ["x86"], "gem5": False},
    {"suite": "FaaSdom", "languages": ["Node.js", "Python", "Go", ".NET"],
     "infrastructure": "Public", "isas": ["x86"], "gem5": False},
    {"suite": "BeFaaS", "languages": ["Node.js"],
     "infrastructure": "Public & Private", "isas": ["x86"], "gem5": False},
    {"suite": "SeBS", "languages": ["Python", "Node.js"],
     "infrastructure": "Public", "isas": ["x86"], "gem5": False},
    {"suite": "vSwarm", "languages": ["Python", "Go", "Node.js"],
     "infrastructure": "Private", "isas": ["x86", "Arm"], "gem5": True},
]

#: Table 4.5: the Natheesan Docker Hub profile's riscv64 image sizes (MB),
#: against which the thesis compares its own ("GPour") builds.  The hotel
#: images from that profile attempted to connect to a (non-existent on
#: RISC-V) MongoDB and are therefore not reported, as in the thesis.
NATHEESAN_RISCV_SIZES_MB = {
    "fibonacci-go": 6.72,
    "fibonacci-python": 299.56,
    "fibonacci-nodejs": 107.74,
    "aes-go": 6.95,
    "aes-python": 299.62,
    "aes-nodejs": 107.81,
    "auth-go": 6.95,
    "auth-python": 299.57,
    "auth-nodejs": 121.21,
    "productcatalogservice-go": 26.15,
    "shippingservice-go": 26.14,
    "recommendationservice-python": 401.46,
    "emailservice-python": 313.06,
    "currencyservice-nodejs": 58.16,
    "paymentservice-nodejs": 57.07,
}
