"""vSwarm function base class.

A :class:`VSwarmFunction` couples three things:

* a **real handler** — the Python implementation of the function's logic
  (actual crypto, actual database queries), executed by the FaaS platform;
* a **work model** — :meth:`build_work` emits the handler's IR into a
  :class:`~repro.workloads.builder.WorkBuilder` using the invocation
  record (what the handler actually did) as parameters;
* **packaging metadata** — runtime, image variant, and the per-arch app
  layer sizes that, stacked on the base images, reproduce the container
  size tables (Tables 4.4/4.5).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.serverless.container import ContainerImage, ImageLayer, MB, base_image
from repro.serverless.faas import InvocationContext, InvocationRecord
from repro.workloads.builder import WorkBuilder
from repro.workloads.runtime import RuntimeModel, get_runtime


class VSwarmFunction:
    """One benchmark function: handler + work model + packaging."""

    #: Which suite the function belongs to (standalone/onlineshop/hotel).
    suite = "standalone"
    #: Services the platform must bind ("db", "memcached", ...).
    required_services: Tuple[str, ...] = ()
    #: Measured application-layer compressed sizes (MB) per architecture.
    app_layer_mb: Dict[str, float] = {"x86": 1.0, "riscv": 1.0}
    #: Base image variant ("default", "grpc-prebuilt", ...).
    image_variant: Optional[str] = None
    #: Weight on the runtime's cold init path (import set size).
    init_factor: float = 1.0

    def __init__(self, name: str, runtime_name: str):
        self.name = name
        self.runtime_name = runtime_name

    @property
    def runtime(self) -> RuntimeModel:
        return get_runtime(self.runtime_name)

    # -- functional side -----------------------------------------------------

    def handler(self, payload: Dict[str, Any], ctx: InvocationContext) -> Any:
        raise NotImplementedError

    def default_payload(self, sequence: int = 0) -> Dict[str, Any]:
        """The request body the load generator sends by default."""
        return {}

    # -- simulation side ---------------------------------------------------------

    def build_work(self, builder: WorkBuilder, record: InvocationRecord,
                   services: Dict[str, Any]) -> None:
        """Emit the handler's IR work for one recorded invocation."""
        raise NotImplementedError

    def make_builder(self, record: InvocationRecord, scale, seed: int = 0) -> WorkBuilder:
        """A builder configured for this invocation's mode."""
        return WorkBuilder(
            function_name=self.name,
            runtime=self.runtime,
            scale=scale,
            cold=record.cold,
            jit_warm=record.sequence > 1,
            seed=seed,
            init_factor=self.init_factor,
        )

    def invocation_program(self, record: InvocationRecord, services: Dict[str, Any],
                           scale, seed: int = 0):
        """Full IR program for one invocation (runtime + handler + RPC)."""
        builder = self.make_builder(record, scale, seed=seed)
        self.build_work(builder, record, services)
        return builder.build(
            request_bytes=record.request_bytes,
            response_bytes=record.response_bytes,
        )

    # -- packaging -------------------------------------------------------------------

    #: Architectures without a measured app layer derive from another
    #: arch's measurement (arm64 binaries are marginally denser than x86).
    APP_LAYER_FALLBACK = {"arm": ("x86", 0.97)}

    def image(self, arch: str) -> ContainerImage:
        """Build this function's container image for one architecture."""
        variant = self.image_variant or self.runtime.image_variant
        base = base_image(self.runtime_name, arch, variant)
        app_mb = self.app_layer_mb.get(arch)
        if app_mb is None and arch in self.APP_LAYER_FALLBACK:
            source, factor = self.APP_LAYER_FALLBACK[arch]
            measured = self.app_layer_mb.get(source)
            app_mb = measured * factor if measured is not None else None
        if app_mb is None:
            raise KeyError("no measured app layer size for arch %r" % arch)
        image = base.with_layer(ImageLayer("app-%s" % self.name, int(app_mb * MB)))
        image.name = self.name
        return image

    def __repr__(self) -> str:
        return "%s(%s, %s)" % (type(self).__name__, self.name, self.runtime_name)
