"""Real cryptographic primitives used by the AES and Auth handlers.

Pure-Python, from-scratch AES-128 (ECB over padded input) and SHA-256 /
HMAC-SHA256.  The handlers execute these for real — the ciphertexts and
digests in the RPC responses are genuine — and their block/round counts
parameterise the IR work models.
"""

from __future__ import annotations

from typing import List

# ---------------------------------------------------------------------------
# AES-128
# ---------------------------------------------------------------------------

_SBOX: List[int] = []


def _build_sbox() -> List[int]:
    """Compute the AES S-box from GF(2^8) inverses + affine transform."""
    # Multiplicative inverse table via exp/log over generator 3.
    exp = [0] * 510
    log = [0] * 256
    value = 1
    for exponent in range(255):
        exp[exponent] = value
        log[value] = exponent
        value ^= (value << 1) ^ (0x11B if value & 0x80 else 0)
        value &= 0xFF
    for exponent in range(255, 510):
        exp[exponent] = exp[exponent - 255]

    sbox = [0] * 256
    for byte in range(256):
        inverse = 0 if byte == 0 else exp[255 - log[byte]]
        result = inverse
        for _ in range(4):
            inverse = ((inverse << 1) | (inverse >> 7)) & 0xFF
            result ^= inverse
        sbox[byte] = result ^ 0x63
    return sbox


def _sbox() -> List[int]:
    if not _SBOX:
        _SBOX.extend(_build_sbox())
    return _SBOX


def _xtime(byte: int) -> int:
    byte <<= 1
    return (byte ^ 0x1B) & 0xFF if byte & 0x100 else byte


def _expand_key(key: bytes) -> List[List[int]]:
    """AES-128 key schedule: 11 round keys of 16 bytes."""
    if len(key) != 16:
        raise ValueError("AES-128 needs a 16-byte key, got %d" % len(key))
    sbox = _sbox()
    words = [list(key[i:i + 4]) for i in range(0, 16, 4)]
    rcon = 1
    for index in range(4, 44):
        word = list(words[index - 1])
        if index % 4 == 0:
            word = word[1:] + word[:1]
            word = [sbox[b] for b in word]
            word[0] ^= rcon
            rcon = _xtime(rcon)
        words.append([a ^ b for a, b in zip(word, words[index - 4])])
    return [
        [byte for word in words[round_index * 4:round_index * 4 + 4] for byte in word]
        for round_index in range(11)
    ]


# T-table round core: the SubBytes/ShiftRows/MixColumns composition for
# one state byte collapses into a single 32-bit table lookup (one table
# per byte position in a column), the standard software-AES formulation.
# Ciphertexts are bit-identical to the naive round loop; the per-block
# Python op count drops ~5x.
_TTABLES: List[List[int]] = []


def _ttables() -> List[List[int]]:
    if not _TTABLES:
        sbox = _sbox()
        t0, t1, t2, t3 = [], [], [], []
        for byte in range(256):
            s = sbox[byte]
            s2 = _xtime(s)
            s3 = s2 ^ s
            t0.append((s2 << 24) | (s << 16) | (s << 8) | s3)
            t1.append((s3 << 24) | (s2 << 16) | (s << 8) | s)
            t2.append((s << 24) | (s3 << 16) | (s2 << 8) | s)
            t3.append((s << 24) | (s << 16) | (s3 << 8) | s2)
        _TTABLES.extend([t0, t1, t2, t3])
    return _TTABLES


def _pack_round_keys(round_keys: List[List[int]]) -> List[List[int]]:
    """Round keys as four big-endian 32-bit column words each."""
    return [
        [(rk[c * 4] << 24) | (rk[c * 4 + 1] << 16)
         | (rk[c * 4 + 2] << 8) | rk[c * 4 + 3] for c in range(4)]
        for rk in round_keys
    ]


def _encrypt_block_packed(c0: int, c1: int, c2: int, c3: int,
                          packed_keys: List[List[int]]) -> List[int]:
    """One AES-128 block over packed column words; returns 4 words."""
    t0, t1, t2, t3 = _ttables()
    sbox = _sbox()
    rk = packed_keys[0]
    c0 ^= rk[0]
    c1 ^= rk[1]
    c2 ^= rk[2]
    c3 ^= rk[3]
    for round_index in range(1, 10):
        rk = packed_keys[round_index]
        n0 = (t0[c0 >> 24] ^ t1[(c1 >> 16) & 0xFF]
              ^ t2[(c2 >> 8) & 0xFF] ^ t3[c3 & 0xFF] ^ rk[0])
        n1 = (t0[c1 >> 24] ^ t1[(c2 >> 16) & 0xFF]
              ^ t2[(c3 >> 8) & 0xFF] ^ t3[c0 & 0xFF] ^ rk[1])
        n2 = (t0[c2 >> 24] ^ t1[(c3 >> 16) & 0xFF]
              ^ t2[(c0 >> 8) & 0xFF] ^ t3[c1 & 0xFF] ^ rk[2])
        n3 = (t0[c3 >> 24] ^ t1[(c0 >> 16) & 0xFF]
              ^ t2[(c1 >> 8) & 0xFF] ^ t3[c2 & 0xFF] ^ rk[3])
        c0, c1, c2, c3 = n0, n1, n2, n3
    rk = packed_keys[10]
    return [
        ((sbox[c0 >> 24] << 24) | (sbox[(c1 >> 16) & 0xFF] << 16)
         | (sbox[(c2 >> 8) & 0xFF] << 8) | sbox[c3 & 0xFF]) ^ rk[0],
        ((sbox[c1 >> 24] << 24) | (sbox[(c2 >> 16) & 0xFF] << 16)
         | (sbox[(c3 >> 8) & 0xFF] << 8) | sbox[c0 & 0xFF]) ^ rk[1],
        ((sbox[c2 >> 24] << 24) | (sbox[(c3 >> 16) & 0xFF] << 16)
         | (sbox[(c0 >> 8) & 0xFF] << 8) | sbox[c1 & 0xFF]) ^ rk[2],
        ((sbox[c3 >> 24] << 24) | (sbox[(c0 >> 16) & 0xFF] << 16)
         | (sbox[(c1 >> 8) & 0xFF] << 8) | sbox[c2 & 0xFF]) ^ rk[3],
    ]


def _encrypt_block(block: List[int], round_keys: List[List[int]]) -> List[int]:
    """Byte-list block API, kept for callers of the naive interface."""
    words = _encrypt_block_packed(
        (block[0] << 24) | (block[1] << 16) | (block[2] << 8) | block[3],
        (block[4] << 24) | (block[5] << 16) | (block[6] << 8) | block[7],
        (block[8] << 24) | (block[9] << 16) | (block[10] << 8) | block[11],
        (block[12] << 24) | (block[13] << 16) | (block[14] << 8) | block[15],
        _pack_round_keys(round_keys))
    out = []
    for word in words:
        out.extend([word >> 24, (word >> 16) & 0xFF,
                    (word >> 8) & 0xFF, word & 0xFF])
    return out


def aes128_encrypt(plaintext: bytes, key: bytes) -> bytes:
    """Encrypt with AES-128-ECB over zero-padded input."""
    packed_keys = _pack_round_keys(_expand_key(key))
    padding = (-len(plaintext)) % 16
    padded = plaintext + b"\x00" * padding
    out = bytearray()
    for offset in range(0, len(padded), 16):
        block = padded[offset:offset + 16]
        for word in _encrypt_block_packed(
                int.from_bytes(block[0:4], "big"),
                int.from_bytes(block[4:8], "big"),
                int.from_bytes(block[8:12], "big"),
                int.from_bytes(block[12:16], "big"), packed_keys):
            out.extend(word.to_bytes(4, "big"))
    return bytes(out)


def aes_block_count(payload_len: int) -> int:
    """Number of 16-byte blocks AES processes for a payload."""
    return max(1, (payload_len + 15) // 16)


# ---------------------------------------------------------------------------
# SHA-256 / HMAC
# ---------------------------------------------------------------------------

_SHA_K = [
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
]

_MASK = 0xFFFFFFFF


def _rotr(value: int, amount: int) -> int:
    return ((value >> amount) | (value << (32 - amount))) & _MASK


def sha256(message: bytes) -> bytes:
    """From-scratch SHA-256."""
    state = [0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
             0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19]
    length = len(message)
    message += b"\x80"
    message += b"\x00" * ((55 - length) % 64)
    message += (length * 8).to_bytes(8, "big")

    for offset in range(0, len(message), 64):
        chunk = message[offset:offset + 64]
        schedule = [int.from_bytes(chunk[i:i + 4], "big") for i in range(0, 64, 4)]
        for index in range(16, 64):
            s0 = (_rotr(schedule[index - 15], 7) ^ _rotr(schedule[index - 15], 18)
                  ^ (schedule[index - 15] >> 3))
            s1 = (_rotr(schedule[index - 2], 17) ^ _rotr(schedule[index - 2], 19)
                  ^ (schedule[index - 2] >> 10))
            schedule.append((schedule[index - 16] + s0 + schedule[index - 7] + s1) & _MASK)
        a, b, c, d, e, f, g, h = state
        for index in range(64):
            s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
            ch = (e & f) ^ (~e & g)
            temp1 = (h + s1 + ch + _SHA_K[index] + schedule[index]) & _MASK
            s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
            maj = (a & b) ^ (a & c) ^ (b & c)
            temp2 = (s0 + maj) & _MASK
            a, b, c, d, e, f, g, h = (temp1 + temp2) & _MASK, a, b, c, (d + temp1) & _MASK, e, f, g
        state = [(x + y) & _MASK for x, y in zip(state, (a, b, c, d, e, f, g, h))]
    return b"".join(word.to_bytes(4, "big") for word in state)


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 per RFC 2104."""
    if len(key) > 64:
        key = sha256(key)
    key = key + b"\x00" * (64 - len(key))
    inner = sha256(bytes(b ^ 0x36 for b in key) + message)
    return sha256(bytes(b ^ 0x5C for b in key) + inner)


def sha256_chunk_count(message_len: int) -> int:
    """Number of 64-byte compression rounds SHA-256 runs for a message."""
    padded = message_len + 1 + ((55 - message_len) % 64) + 8
    return padded // 64
