"""Persistent result cache: content-addressed ``FunctionMeasurement`` store.

Every measurement in this repository is fully deterministic under
(function, ISA, scale, seed, platform configuration), so re-simulating a
point that has already been measured is pure waste — the thesis's own
workflow reuses boot checkpoints for the same reason, and SeBS caches
per-benchmark results across experiment invocations.  This module gives
the measurement engine the same property across *process* boundaries: a
content-addressed on-disk cache keyed by a digest of everything a
measurement depends on, including a code-version salt so results from an
older simulator are never silently reused.

Knobs:

* ``REPRO_CACHE_DIR`` — cache directory (default
  ``$XDG_CACHE_HOME/repro/rescache`` or ``~/.cache/repro/rescache``);
* ``REPRO_RESULT_CACHE`` — set to ``0``/``off`` to disable caching.

Maintenance from the CLI: ``python -m repro cache stats`` and
``python -m repro cache clear``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional

#: Version 2 stores measurements as their ``as_dict(full=True)`` payload
#: (kind ``"measurement"``) instead of pickling live objects, so cached
#: entries survive attribute-level refactors of the measurement classes;
#: arbitrary payloads pass through untouched (kind ``"raw"``).
FORMAT_VERSION = 2

#: Code-version salt: bump whenever a change alters what any measurement
#: would produce (simulator timing, workload models, trace generation),
#: so stale entries miss instead of lying.  The package version is mixed
#: into digests as well.
CODE_SALT = "rescache-v1"

_FALSEY = ("0", "no", "off", "false")


def cache_enabled() -> bool:
    """Whether result caching is on (``REPRO_RESULT_CACHE``, default on)."""
    return os.environ.get("REPRO_RESULT_CACHE", "1").strip().lower() not in _FALSEY


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment."""
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured:
        return Path(configured).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro" / "rescache"


def measurement_digest(
    function: str,
    isa: str,
    time_scale: int,
    space_scale: int,
    seed: int,
    fingerprint: Any,
    db: Optional[str] = None,
    requests: int = 10,
    scaling: Any = None,
    sampling: Any = None,
    cluster: Any = None,
    vector: Any = None,
) -> str:
    """Content address of one measurement.

    ``fingerprint`` is the platform's microarchitectural identity
    (:meth:`repro.core.config.PlatformConfig.fingerprint`), so a DSE
    design point and the stock platform never collide.  ``scaling`` is
    the :meth:`~repro.serverless.scaler.ScalingConfig.fingerprint` tuple
    of a serving experiment, ``sampling`` the
    :meth:`~repro.sim.sampling.SamplingConfig.fingerprint` of a sampled
    run, ``cluster`` the
    :meth:`~repro.serverless.platform.ClusterConfig.fingerprint` of a
    multi-node serving experiment, ``vector`` the
    :meth:`~repro.sim.isa.vector.VectorConfig.fingerprint` of a
    vector-enabled run; each extends the key *only when set*, so every
    digest minted before the corresponding layer existed stays valid —
    and a sampled (approximate), cluster-served or vector-lowered result
    can never alias a full-detail scalar single-host one.
    """
    from repro import __version__

    key = (
        CODE_SALT, __version__, function, isa, int(time_scale),
        int(space_scale), int(seed), int(requests), db or "", fingerprint,
    )
    if scaling is not None:
        key = key + (scaling,)
    if sampling is not None:
        key = key + (sampling,)
    if cluster is not None:
        key = key + (cluster,)
    if vector is not None:
        key = key + (vector,)
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of pickled measurements addressed by content digest.

    Reads tolerate missing, truncated or version-skewed entries (they
    count as misses); writes are atomic (write-then-rename) so a crashed
    run can never leave a half-written entry that later reads trust.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self._usable: Optional[bool] = None

    # -- plumbing ----------------------------------------------------------

    def _ensure_root(self) -> bool:
        if self._usable is None:
            try:
                self.root.mkdir(parents=True, exist_ok=True)
                self._usable = True
            except OSError:
                self._usable = False
        return self._usable

    def _path_for(self, digest: str) -> Path:
        return self.root / ("%s.pkl" % digest)

    # -- the cache protocol ------------------------------------------------

    def get(self, digest: str):
        """The cached measurement for ``digest``, or ``None`` on a miss."""
        if not self._ensure_root():
            self.misses += 1
            return None
        path = self._path_for(digest)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except Exception:
            # A corrupt or unreadable entry must read as a miss, never
            # crash a run: unpickling garbage can raise nearly anything
            # (UnpicklingError, EOFError, ValueError, ImportError, ...).
            self.misses += 1
            return None
        if not isinstance(entry, dict) or entry.get("version") != FORMAT_VERSION:
            self.misses += 1
            return None
        try:
            value = self._decode(entry["payload"])
        except Exception:
            self.misses += 1
            return None
        self.hits += 1
        return value

    @staticmethod
    def _encode(measurement) -> Dict[str, Any]:
        from repro.core.harness import FunctionMeasurement

        if isinstance(measurement, FunctionMeasurement):
            return {"kind": "measurement",
                    "data": measurement.as_dict(full=True)}
        return {"kind": "raw", "data": measurement}

    @staticmethod
    def _decode(payload: Dict[str, Any]):
        if payload["kind"] == "measurement":
            from repro.core.harness import FunctionMeasurement

            return FunctionMeasurement.from_dict(payload["data"])
        return payload["data"]

    def put(self, digest: str, measurement) -> bool:
        """Store a measurement; returns False if the cache is unusable.

        :class:`~repro.core.harness.FunctionMeasurement` instances go
        through the ``as_dict(full=True)`` / ``from_dict`` round-trip;
        anything else is stored verbatim.
        """
        if not self._ensure_root():
            return False
        path = self._path_for(digest)
        entry = {"version": FORMAT_VERSION, "digest": digest,
                 "payload": self._encode(measurement)}
        tmp = path.with_suffix(".tmp.%d" % os.getpid())
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        return True

    # -- maintenance -------------------------------------------------------

    def clear(self) -> int:
        """Remove every entry; returns the number of entries removed."""
        if not self.root.is_dir():
            return 0
        removed = 0
        for path in self.root.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, Any]:
        """Inventory of the cache directory plus this instance's hit rate."""
        entries = 0
        total_bytes = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    total_bytes += path.stat().st_size
                    entries += 1
                except OSError:
                    pass
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
        }

    def __repr__(self) -> str:
        return "ResultCache(%s)" % self.root


def resolve_cache(cache=None) -> Optional[ResultCache]:
    """Normalise a caller's cache argument.

    ``None`` — honour the environment (default-on, default directory);
    ``False`` — caching off; ``True`` — default cache regardless of env;
    a :class:`ResultCache` — used as given.
    """
    if cache is None:
        return ResultCache() if cache_enabled() else None
    if cache is False:
        return None
    if cache is True:
        return ResultCache()
    return cache
