"""Two-core client/server simulation (Fig 4.3, both cores live).

The thesis pins the load-generating client to core 0 and the function
container to core 1, collecting statistics from the server core.  The
basic harness models the client as free; this module simulates both
sides through the event queue: the client core executes a request-build
program, the request crosses the interconnect (a latency modelled in
ticks), the server core executes the invocation program, and the reply
crosses back — yielding true end-to-end response times alongside the
server-core statistics.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.harness import (
    CLIENT_CORE,
    ExperimentHarness,
    RequestStats,
    SERVER_CORE,
)
from repro.core.scale import BENCH, SimScale
from repro.serverless.engine import install_docker
from repro.serverless.faas import FaasPlatform
from repro.sim.checkpoint import restore_checkpoint
from repro.sim.isa import ir

#: One-way interconnect latency between the cores' network endpoints, in
#: core cycles (loopback veth + bridge hop inside the simulated host).
NETWORK_ONEWAY_CYCLES = 12_000


def build_client_program(function_name: str, request_bytes: int,
                         response_bytes: int, scale: SimScale,
                         seed: int = 0) -> ir.Program:
    """The relay client's per-request work: build, send, parse reply."""
    program = ir.Program("client.%s" % function_name, seed=seed,
                         aslr_key="client.%s" % function_name)
    buffers = program.space.alloc("client.buffers", scale.data_bytes(32 * 1024))
    body = ir.Seq([
        # Serialize the request.
        ir.Block([
            ir.IROp(ir.OP_IALU, count=max(1, scale.instrs(request_bytes * 4))),
            ir.IROp(ir.OP_STORE, count=max(1, scale.instrs(request_bytes / 4)),
                    region=buffers, pattern=ir.StridePattern(stride=8)),
            ir.IROp(ir.OP_SYSCALL, count=1),
        ], kind="rtpath"),
        # Parse the reply.
        ir.Block([
            ir.IROp(ir.OP_SYSCALL, count=1),
            ir.IROp(ir.OP_LOAD, count=max(1, scale.instrs(response_bytes / 4)),
                    region=buffers, pattern=ir.StridePattern(stride=8)),
            ir.IROp(ir.OP_IALU, count=max(1, scale.instrs(response_bytes * 3))),
        ], kind="rtpath"),
    ])
    program.add_routine(ir.Routine("relay", body), entry=True)
    return program


class EndToEndSample:
    """One request's timeline, in server-clock cycles."""

    def __init__(self, sequence: int, cold: bool, client_cycles: int,
                 server_cycles: int, network_cycles: int):
        self.sequence = sequence
        self.cold = cold
        self.client_cycles = client_cycles
        self.server_cycles = server_cycles
        self.network_cycles = network_cycles

    @property
    def response_time(self) -> int:
        """Client-observed request-to-reply latency."""
        return self.client_cycles + self.network_cycles + self.server_cycles

    @property
    def server_share(self) -> float:
        return self.server_cycles / self.response_time if self.response_time else 0.0

    def __repr__(self) -> str:
        return "EndToEndSample(#%d %s: %d = client %d + net %d + server %d)" % (
            self.sequence, "cold" if self.cold else "warm", self.response_time,
            self.client_cycles, self.network_cycles, self.server_cycles,
        )


class DuplexMeasurement:
    """End-to-end samples plus the server-core cold/warm stats."""

    def __init__(self, function: str, isa: str, samples: List[EndToEndSample],
                 cold: RequestStats, warm: RequestStats):
        self.function = function
        self.isa = isa
        self.samples = samples
        self.cold = cold
        self.warm = warm

    @property
    def cold_sample(self) -> EndToEndSample:
        return self.samples[0]

    @property
    def warm_sample(self) -> EndToEndSample:
        return self.samples[-1]

    def __repr__(self) -> str:
        return "DuplexMeasurement(%s/%s: e2e cold=%d warm=%d)" % (
            self.function, self.isa, self.cold_sample.response_time,
            self.warm_sample.response_time,
        )


class DuplexHarness(ExperimentHarness):
    """Harness variant that simulates the client core too.

    Request flow per Fig 4.1/4.3, sequenced on the event queue: the
    client's send completes, the request crosses the interconnect, the
    server program executes, the reply crosses back, the client parses
    it.  Requests 1 and ``requests`` run with the detailed core on both
    sides; the middle requests warm functionally.
    """

    def measure_duplex(
        self,
        function,
        services: Optional[Dict[str, Any]] = None,
        requests: int = 10,
        network_oneway_cycles: int = NETWORK_ONEWAY_CYCLES,
    ) -> DuplexMeasurement:
        if requests < 2:
            raise ValueError("the protocol needs at least 2 requests")
        if not self.prepared:
            self.prepare(service_stores=self._stores_of(services))
        restore_checkpoint(self.system, self._boot_checkpoint)
        self.system.switch_cpu(SERVER_CORE, "o3")
        self.system.switch_cpu(CLIENT_CORE, "o3")

        services = services or {}
        engine = install_docker(self.isa)
        engine.registry.push(function.image(self.isa))
        platform = FaasPlatform(engine, server_core=SERVER_CORE)
        platform.deploy(function.name, function.name, function.runtime_name,
                        function.handler, services=services)

        network_scaled = max(1, self.scale.instrs(network_oneway_cycles))
        eventq = self.system.eventq
        period = self.system.clock.frequency.period_ticks

        samples: List[EndToEndSample] = []
        cold_stats: Optional[RequestStats] = None
        warm_stats: Optional[RequestStats] = None

        for sequence in range(requests):
            payload = function.default_payload(sequence)
            record = platform.invoke(function.name, payload)
            server_program = function.invocation_program(
                record, services, self.scale, seed=self.seed)
            client_program = build_client_program(
                function.name, record.request_bytes, record.response_bytes,
                self.scale, seed=self.seed)
            measured = sequence == 0 or sequence == requests - 1

            if not measured:
                self.system.warm(CLIENT_CORE, client_program, seed=self.seed)
                self.system.warm(SERVER_CORE, server_program, seed=self.seed)
                continue

            self.system.reset_stats()
            timeline: Dict[str, int] = {}

            def run_client() -> None:
                result = self.system.run(CLIENT_CORE, client_program,
                                         model="o3", seed=self.seed)
                timeline["client"] = result.cycles
                eventq.schedule(result.cycles * period + network_scaled * period,
                                run_server, name="request-delivery")

            def run_server() -> None:
                result = self.system.run(SERVER_CORE, server_program,
                                         model="o3", seed=self.seed)
                timeline["server"] = result.cycles
                eventq.schedule(network_scaled * period, deliver_reply,
                                name="reply-delivery")

            def deliver_reply() -> None:
                timeline["reply_at"] = eventq.now

            eventq.schedule(0, run_client, name="request-%d" % sequence)
            eventq.simulate()

            dump = self.system.dump_stats()
            stats = RequestStats(timeline["server"],
                                 int(dump["%s.cpu%d.o3.committedInsts"
                                         % (self.system.name, SERVER_CORE)]),
                                 dump, self.system.name)
            samples.append(EndToEndSample(
                sequence=sequence + 1,
                cold=record.cold,
                client_cycles=timeline["client"],
                server_cycles=timeline["server"],
                network_cycles=2 * network_scaled,
            ))
            if sequence == 0:
                cold_stats = stats
            else:
                warm_stats = stats

        assert cold_stats is not None and warm_stats is not None
        return DuplexMeasurement(function.name, self.isa, samples,
                                 cold_stats, warm_stats)
