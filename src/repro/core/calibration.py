"""Sampled-simulation calibration: bound sampled error vs full detail.

FireSim-style methodology ("Bridging Simulation and Silicon"): a fast
mode is only trustworthy once its results are checked against the
detailed reference on a representative workload set.  This module runs
the paper's function catalog twice — full detail and sampled — and
reports per-function CPI and end-to-end (request cycle) error, so the
calibration suite can assert a fixed bound and preset retuning has a
harness to sweep against.

The functional instruction stream is exact in sampled mode (only timing
is estimated), so instruction counts must match full detail everywhere;
:func:`calibrate` checks that invariant too.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.harness import ExperimentHarness, FunctionMeasurement
from repro.core.scale import SimScale
from repro.sim.sampling import SamplingConfig

#: Default calibration scale: small enough for the suite, large enough
#: that long (cold) runs clear the sampling floor and actually sample.
CALIBRATION_SCALE = SimScale(512, 16)


class CalibrationRow:
    """One (function, phase) comparison between sampled and full detail."""

    __slots__ = ("function", "phase", "full_cycles", "sampled_cycles",
                 "full_cpi", "sampled_cpi", "insts_match")

    def __init__(self, function: str, phase: str, full, sampled):
        self.function = function
        self.phase = phase
        self.full_cycles = full.cycles
        self.sampled_cycles = sampled.cycles
        self.full_cpi = full.cpi
        self.sampled_cpi = sampled.cpi
        self.insts_match = full.instructions == sampled.instructions

    @property
    def cpi_error(self) -> float:
        if not self.full_cpi:
            return 0.0
        return abs(self.sampled_cpi - self.full_cpi) / self.full_cpi

    @property
    def cycle_error(self) -> float:
        if not self.full_cycles:
            return 0.0
        return abs(self.sampled_cycles - self.full_cycles) / self.full_cycles

    def __repr__(self) -> str:
        return "CalibrationRow(%s/%s: cpi %.4f vs %.4f, err %.2f%%)" % (
            self.function, self.phase, self.sampled_cpi, self.full_cpi,
            self.cpi_error * 100)


class CalibrationReport:
    """Error envelope of one sampling config over a function set."""

    def __init__(self, sampling: SamplingConfig, isa: str,
                 rows: List[CalibrationRow]):
        self.sampling = sampling
        self.isa = isa
        self.rows = rows

    @property
    def worst(self) -> CalibrationRow:
        return max(self.rows, key=lambda row: row.cpi_error)

    @property
    def worst_cpi_error(self) -> float:
        return max(row.cpi_error for row in self.rows)

    @property
    def mean_cpi_error(self) -> float:
        return sum(row.cpi_error for row in self.rows) / len(self.rows)

    @property
    def worst_cycle_error(self) -> float:
        return max(row.cycle_error for row in self.rows)

    @property
    def functional_exact(self) -> bool:
        """Instruction counts matched full detail on every row."""
        return all(row.insts_match for row in self.rows)

    def assert_bounded(self, bound: float) -> None:
        """Raise AssertionError when any row's CPI error exceeds bound."""
        worst = self.worst
        if worst.cpi_error > bound:
            raise AssertionError(
                "sampling %s: CPI error %.2f%% at %s/%s exceeds bound %.2f%%"
                % (self.sampling.fingerprint(), worst.cpi_error * 100,
                   worst.function, worst.phase, bound * 100))
        if not self.functional_exact:
            broken = [row for row in self.rows if not row.insts_match]
            raise AssertionError(
                "sampled instruction counts diverged from full detail: %r"
                % broken[:3])

    def render(self) -> str:
        lines = ["calibration %s on %s (%d rows)" % (
            self.sampling.fingerprint(), self.isa, len(self.rows))]
        for row in sorted(self.rows, key=lambda r: -r.cpi_error):
            lines.append(
                "  %-34s %-5s cpi %7.4f -> %7.4f  err %6.2f%%" % (
                    row.function, row.phase, row.full_cpi, row.sampled_cpi,
                    row.cpi_error * 100))
        lines.append("  worst %.2f%%  mean %.2f%%  functional-exact %s" % (
            self.worst_cpi_error * 100, self.mean_cpi_error * 100,
            self.functional_exact))
        return "\n".join(lines)


def _measure_catalog(sampling: Optional[SamplingConfig], isa: str,
                     scale: SimScale, db: str,
                     functions: Optional[Iterable] = None):
    """Full cold/warm measurements over the (or a subset of the) catalog.

    Hotel functions need live suite services, which forces the serial
    in-process path; standalone and online-shop functions run plain.
    """
    from repro.db import make_datastore
    from repro.workloads.catalog import (
        HOTEL_FUNCTIONS,
        ONLINESHOP_FUNCTIONS,
        STANDALONE_FUNCTIONS,
    )
    from repro.workloads.hotel import HotelSuite

    hotel_names = {fn.name for fn in HOTEL_FUNCTIONS}
    if functions is None:
        functions = STANDALONE_FUNCTIONS + ONLINESHOP_FUNCTIONS + HOTEL_FUNCTIONS
    functions = list(functions)

    suite = None
    out = {}
    for fn in functions:
        harness = ExperimentHarness(isa=isa, scale=scale, sampling=sampling)
        if fn.name in hotel_names:
            if suite is None:
                suite = HotelSuite(make_datastore(db))
            measurement = harness.measure_function(
                fn, services=suite.services_for(fn))
        else:
            measurement = harness.measure_function(fn)
        out[fn.name] = measurement
    return out


def calibrate(sampling: SamplingConfig, isa: str = "riscv",
              scale: Optional[SimScale] = None, db: str = "cassandra",
              functions: Optional[Iterable] = None) -> CalibrationReport:
    """Measure a sampling config's error envelope vs full detail.

    Runs every function cold and warm under both modes on a pristine
    per-function system (the standard measurement protocol) and returns
    a :class:`CalibrationReport` with one row per (function, phase).
    """
    if sampling is None:
        raise ValueError("calibrate() needs a SamplingConfig; "
                         "sampling=None is the reference itself")
    scale = scale or CALIBRATION_SCALE
    full = _measure_catalog(None, isa, scale, db, functions)
    sampled = _measure_catalog(sampling, isa, scale, db, functions)
    rows = []
    for name in full:
        for phase in ("cold", "warm"):
            rows.append(CalibrationRow(
                name, phase,
                getattr(full[name], phase), getattr(sampled[name], phase)))
    return CalibrationReport(sampling, isa, rows)
