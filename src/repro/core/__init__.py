"""The benchmarking harness — the thesis's contribution, reproduced.

This package is the vSwarm-u analog: it wires the serverless substrate,
the workload suite and the microarchitectural simulator into the
experiment protocol of §4.1.2 / Fig 4.1:

1. **image preparation** (:mod:`repro.emu` builds the disk image under
   QEMU),
2. **setup mode** — boot the simulated system with the Atomic core, start
   the container engine, pin the server, take a checkpoint,
3. **evaluation mode** — restore the checkpoint with the O3 core, reset
   stats, measure request 1 (cold), functionally warm requests 2–9, reset
   stats, measure request 10 (warm).

Entry points: build a :class:`~repro.core.spec.MeasurementSpec` and
call :func:`~repro.core.reproduce.measure` (single functions and suite
aliases alike, parallel + cached); :class:`~repro.core.harness.ExperimentHarness`
is the underlying single-measurement driver and
:mod:`repro.core.config` holds the Table 4.1–4.3 platform
configurations.
"""

from repro.core.config import (
    ARM_PLATFORM,
    PlatformConfig,
    RISCV_PLATFORM,
    X86_PLATFORM,
    platform_for,
)
from repro.core.dse import DesignSpace
from repro.core.duplex import DuplexHarness
from repro.core.harness import (
    ExperimentHarness,
    FunctionMeasurement,
    LukewarmMeasurement,
    run_suite,
)
from repro.core.parallel import (
    MeasurementTask,
    execute_task,
    resolve_jobs,
    run_measurement_matrix,
)
from repro.core.persist import load_measurements, save_measurements
from repro.core.reproduce import measure
from repro.core.rescache import ResultCache
from repro.core.results import MeasurementTable
from repro.core.scale import BENCH, NATIVE, SimScale, TEST
from repro.core.spec import MeasurementSpec
# The cluster config rides on MeasurementSpec (spec.cluster) the way
# ScalingConfig does, so the measurement package re-exports it.
from repro.serverless.platform import ClusterConfig

__all__ = [
    "BENCH",
    "ClusterConfig",
    "ExperimentHarness",
    "FunctionMeasurement",
    "MeasurementSpec",
    "MeasurementTable",
    "MeasurementTask",
    "measure",
    "NATIVE",
    "PlatformConfig",
    "RISCV_PLATFORM",
    "ResultCache",
    "SimScale",
    "TEST",
    "X86_PLATFORM",
    "execute_task",
    "platform_for",
    "resolve_jobs",
    "run_measurement_matrix",
    "run_suite",
]
