"""Result aggregation and rendering.

Turns batches of :class:`~repro.core.harness.FunctionMeasurement` into
the row/series layouts the thesis's figures use, and renders them as
aligned text tables (the benches print these so a run regenerates each
figure's data).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.harness import FunctionMeasurement


class MeasurementTable:
    """A named table of per-function metric columns."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List] = []

    def add_row(self, label: str, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                "row %r has %d values for %d columns"
                % (label, len(values), len(self.columns))
            )
        self.rows.append([label, *values])

    def column(self, name: str) -> List:
        index = self.columns.index(name) + 1
        return [row[index] for row in self.rows]

    def labels(self) -> List[str]:
        return [row[0] for row in self.rows]

    def render(self) -> str:
        headers = ["benchmark", *self.columns]
        table = [headers] + [
            [str(cell) if not isinstance(cell, float) else "%.2f" % cell
             for cell in row]
            for row in self.rows
        ]
        widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
        lines = [self.title, "-" * len(self.title)]
        for row_index, row in enumerate(table):
            lines.append("  ".join(cell.rjust(width) if index else cell.ljust(width)
                                   for index, (cell, width) in enumerate(zip(row, widths))))
            if row_index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)

    def render_chart(self, width: int = 50, unit: str = "") -> str:
        """ASCII bar-chart view of the table (the figure's shape)."""
        from repro.analysis.charts import grouped_hbar_chart

        series = {name: self.column(name) for name in self.columns}
        numeric = {
            name: values for name, values in series.items()
            if all(isinstance(value, (int, float)) for value in values)
        }
        if not numeric:
            raise ValueError("no numeric columns to chart")
        return grouped_hbar_chart(self.title, self.labels(), numeric,
                                  width=width, unit=unit)

    def __repr__(self) -> str:
        return "MeasurementTable(%s, %d rows)" % (self.title, len(self.rows))


def cold_warm_table(
    title: str,
    measurements: Dict[str, FunctionMeasurement],
    metric: Callable[[object], float],
    order: Optional[Iterable[str]] = None,
    metric_name: str = "value",
) -> MeasurementTable:
    """One column pair (cold, warm) per function, the Fig 4.4/4.5 layout."""
    table = MeasurementTable(title, ["cold_%s" % metric_name, "warm_%s" % metric_name])
    names = list(order) if order is not None else sorted(measurements)
    for name in names:
        measurement = measurements[name]
        table.add_row(name, metric(measurement.cold), metric(measurement.warm))
    return table


def isa_comparison_table(
    title: str,
    riscv: Dict[str, FunctionMeasurement],
    x86: Dict[str, FunctionMeasurement],
    metric: Callable[[object], float],
    order: Optional[Iterable[str]] = None,
    metric_name: str = "value",
) -> MeasurementTable:
    """Four columns per function, the Fig 4.15–4.19 layout."""
    table = MeasurementTable(title, [
        "x86_cold_%s" % metric_name, "x86_warm_%s" % metric_name,
        "riscv_cold_%s" % metric_name, "riscv_warm_%s" % metric_name,
    ])
    names = list(order) if order is not None else sorted(set(riscv) & set(x86))
    for name in names:
        table.add_row(
            name,
            metric(x86[name].cold), metric(x86[name].warm),
            metric(riscv[name].cold), metric(riscv[name].warm),
        )
    return table


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of the positive values (zeros are skipped)."""
    values = [value for value in values if value > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
