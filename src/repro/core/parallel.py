"""Parallel measurement engine: fan the experiment matrix over processes.

The evaluation batches (Fig 4.4-4.19) are a (function × ISA × scale ×
seed) matrix of measurements that share no simulator state — each point
boots its own platform, restores its own checkpoint and runs its own
request protocol.  That makes them embarrassingly parallel, the same
observation FireSim-scale studies exploit by running many simulator
instances instead of accelerating one.  This module schedules the matrix
over a :class:`concurrent.futures.ProcessPoolExecutor`:

* every matrix point is a picklable :class:`~repro.core.spec.MeasurementSpec`
  (names and scalars only — workers rebuild functions, suites and
  harnesses themselves, so no live simulator object ever crosses a
  process);
* results come back in deterministic matrix order, bit-identical to the
  serial path (the serial fallback runs the exact same
  :func:`execute_task` per point);
* worker count comes from ``REPRO_JOBS`` (default ``os.cpu_count()``);
  ``REPRO_JOBS=1`` runs serially in-process;
* a :class:`repro.core.rescache.ResultCache` layer short-circuits points
  whose digest has been measured before, so warm re-runs skip simulation
  entirely.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional, Sequence

from repro.core.config import platform_for
from repro.core.harness import ExperimentHarness, FunctionMeasurement
from repro.core.rescache import ResultCache, measurement_digest, resolve_cache
from repro.core.spec import MeasurementSpec
from repro.envknobs import env_int

#: Backwards-compatible alias: the matrix point type used to be a
#: separate dataclass; it is now the unified measurement spec.
MeasurementTask = MeasurementSpec


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else all cores.

    A malformed ``REPRO_JOBS`` (e.g. ``REPRO_JOBS=many``) warns and falls
    back to the all-cores default rather than aborting the run.
    """
    if jobs is not None:
        return max(1, int(jobs))
    env = env_int("REPRO_JOBS", 0)
    if env:
        return max(1, env)
    return os.cpu_count() or 1


def task_digest(task: MeasurementSpec) -> str:
    """Content address of a spec for the result cache."""
    platform = task.platform or platform_for(task.isa)
    scaling = getattr(task, "scaling", None)
    sampling = getattr(task, "sampling", None)
    cluster = getattr(task, "cluster", None)
    vector = getattr(task, "vector", None)
    return measurement_digest(
        function=task.function,
        isa=task.isa,
        time_scale=task.time,
        space_scale=task.space,
        seed=task.seed,
        fingerprint=platform.fingerprint(),
        db=task.db,
        requests=task.requests,
        scaling=scaling.fingerprint() if scaling is not None else None,
        sampling=sampling.fingerprint() if sampling is not None else None,
        cluster=cluster.fingerprint() if cluster is not None else None,
        vector=vector.fingerprint() if vector is not None else None,
    )


def execute_task(task: MeasurementSpec) -> FunctionMeasurement:
    """Measure one matrix point from scratch.

    Runs identically in-process and in a pool worker: a fresh harness, a
    fresh suite for database-backed functions, and the process-local boot
    checkpoint cache (boot is deterministic per key, so a worker's cold
    checkpoint equals the serial path's cached one).  Traced specs run
    with a fresh :class:`~repro.obs.Tracer` and return the frozen
    capture on ``measurement.trace`` — captures are plain dicts, so they
    cross the process boundary like any other result.
    """
    if task.db:
        from repro.db import make_datastore
        from repro.workloads.hotel import HotelSuite

        suite = HotelSuite(make_datastore(task.db))
        matches = [fn for fn in suite.functions if fn.name == task.function]
        if not matches:
            raise KeyError("no hotel function %r (have %s)" % (
                task.function, sorted(fn.name for fn in suite.functions)))
        function = matches[0]
        services = suite.services_for(function)
    else:
        from repro.workloads.catalog import get_function

        function = get_function(task.function)
        services = {}
    tracer = None
    if task.trace:
        from repro.obs.tracer import Tracer

        tracer = Tracer()
    injector = task.faults.arm() if task.faults is not None else None
    harness = ExperimentHarness(isa=task.isa, scale=task.scale,
                                platform_config=task.platform, seed=task.seed,
                                tracer=tracer, faults=injector,
                                sampling=getattr(task, "sampling", None),
                                vector=getattr(task, "vector", None))
    measurement = harness.measure_function(function, services=services,
                                           requests=task.requests)
    if tracer is not None:
        measurement.trace = tracer.freeze()
    return measurement


def _pool_context():
    # fork keeps workers cheap and inherits the warmed import state; fall
    # back to the platform default where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_measurement_matrix(
    tasks: Iterable[MeasurementSpec],
    jobs: Optional[int] = None,
    cache=None,
) -> List[FunctionMeasurement]:
    """Measure every spec, returning results in the specs' order.

    Cache hits are filled in first; only the remaining points are
    simulated, serially for ``jobs <= 1`` and over a process pool
    otherwise.  The output is positionally aligned with ``tasks`` and
    independent of worker count.  Traced and faulted specs bypass the
    cache in both directions — a cached measurement carries no capture,
    and a chaos/trace run is an artifact of *this* experiment, not a
    content-addressed result.
    """
    tasks = list(tasks)
    resolved_cache: Optional[ResultCache] = resolve_cache(cache)
    results: List[Optional[FunctionMeasurement]] = [None] * len(tasks)
    digests: List[Optional[str]] = [None] * len(tasks)

    pending: List[int] = []
    for index, task in enumerate(tasks):
        if resolved_cache is not None and not task.trace and task.faults is None:
            digests[index] = task_digest(task)
            hit = resolved_cache.get(digests[index])
            if hit is not None:
                results[index] = hit
                continue
        pending.append(index)

    if pending:
        workers = min(resolve_jobs(jobs), len(pending))
        if workers <= 1:
            fresh: Sequence[FunctionMeasurement] = [
                execute_task(tasks[index]) for index in pending
            ]
        else:
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=_pool_context()) as pool:
                fresh = list(pool.map(execute_task,
                                      [tasks[index] for index in pending]))
        for index, measurement in zip(pending, fresh):
            results[index] = measurement
            if resolved_cache is not None and digests[index] is not None:
                resolved_cache.put(digests[index], measurement)

    return results  # type: ignore[return-value]
