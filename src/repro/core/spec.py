"""The unified measurement spec: one keyword-only type for every entry point.

Historically the repo grew three divergent measurement signatures
(``measure_functions`` / ``measure_hotel`` / ``measure_standalone_shop``)
plus a separate task type for the parallel engine, each spelling the same
(function, isa, scale, seed, db, requests) tuple slightly differently.
:class:`MeasurementSpec` collapses them: the CLI, the parallel engine,
the design-space explorer and the result-cache keying all consume this
one type, and :func:`repro.core.reproduce.measure` dispatches on it.

The class is deliberately *not* a ``dataclass``: CI runs Python 3.9,
which lacks ``dataclass(kw_only=True)``, so keyword-only construction is
hand-rolled.  Instances are immutable (use :meth:`replace`), hashable,
and picklable — they cross process boundaries in
:func:`repro.core.parallel.run_measurement_matrix`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.scale import BENCH, SimScale

_FIELDS = ("function", "isa", "time", "space", "seed", "db", "requests",
           "platform", "trace", "faults", "scaling", "sampling", "cluster",
           "vector")


class MeasurementSpec:
    """One point of the measurement matrix, keyword-only and immutable.

    ``function``
        Catalog name of the vSwarm function (objects with a ``.name``
        attribute are accepted and reduced to their name, so specs stay
        picklable by construction).
    ``isa``
        Platform ISA (``riscv`` / ``x86`` / ``arm``).
    ``scale`` or ``time``/``space``
        The scaled-machine divisors, either as a
        :class:`~repro.core.scale.SimScale` or as the two integers;
        defaults to :data:`~repro.core.scale.BENCH`.
    ``db``
        Datastore name for hotel functions (the worker builds a fresh
        :class:`~repro.workloads.hotel.HotelSuite` around it).
    ``platform``
        Optional :class:`~repro.core.config.PlatformConfig` override
        (design-space exploration); ``None`` means the canonical
        platform for ``isa``.
    ``trace``
        When true, the measurement runs with a
        :class:`~repro.obs.Tracer` attached and the result carries a
        frozen trace capture (``measurement.trace``).  Traced specs
        bypass the result cache: a cached measurement has no capture.
    ``faults``
        Optional :class:`~repro.faults.FaultPlan`.  The worker arms a
        fresh injector for the run, so faults and recovery are
        deterministic per (plan, spec).  Faulted specs bypass the result
        cache like traced ones — a chaos measurement is an experiment
        artifact, not a canonical result.
    ``scaling``
        Optional :class:`~repro.serverless.scaler.ScalingConfig` for
        serving experiments (`python -m repro serve`).  Part of spec
        identity and of the result-cache key: two serve runs with
        different autoscaler knobs must never share a content address.
        ``None`` — the default, and the only value measurement entry
        points produce — keeps identity and digests exactly as before.
    ``sampling``
        Optional :class:`~repro.sim.sampling.SamplingConfig`.  When set,
        detailed (O3) runs use sampled simulation — short detailed
        windows extrapolated over fast-forwarded instructions — trading
        a bounded cycle error for a large speedup.  Part of spec
        identity and of the result-cache key: sampled results are
        approximations and must never alias full-detail ones.  ``None``
        (the default) runs every detailed instruction and keeps all
        digests byte-identical to the pre-sampling implementation.
    ``cluster``
        Optional :class:`~repro.serverless.platform.ClusterConfig` for
        multi-node serving experiments (``python -m repro serve
        --nodes``).  Part of spec identity and of the result-cache key,
        extending both *only when set* — ``None`` (the default, and the
        only value measurement entry points produce) keeps identity and
        digests exactly as before, the same contract as ``scaling`` and
        ``sampling``.
    ``vector``
        Optional :class:`~repro.sim.isa.vector.VectorConfig`.  When set,
        the measurement's ISA instance carries a vector unit and vector
        IR ops lower to stripmined (RVV) or fixed-width (SSE/NEON)
        vector streams.  Part of spec identity and of the result-cache
        key, extending both *only when set* — ``None`` (the default)
        lowers vector IR element-by-element to scalar instructions and
        keeps every existing digest, stat dump and event log
        byte-identical, the same contract as ``sampling``/``cluster``.
    """

    __slots__ = _FIELDS

    def __init__(self, *, function, isa: str = "riscv",
                 scale: Optional[SimScale] = None,
                 time: Optional[int] = None, space: Optional[int] = None,
                 seed: int = 0, db: Optional[str] = None, requests: int = 10,
                 platform=None, trace: bool = False, faults=None,
                 scaling=None, sampling=None, cluster=None, vector=None):
        if scale is not None and (time is not None or space is not None):
            raise TypeError("pass scale= or time=/space=, not both")
        if scale is None:
            scale = SimScale(time=BENCH.time if time is None else time,
                             space=BENCH.space if space is None else space)
        name = getattr(function, "name", function)
        if not isinstance(name, str):
            raise TypeError("function must be a catalog name or carry "
                            ".name, got %r" % (function,))
        if requests < 1:
            raise ValueError("requests must be >= 1, got %d" % requests)
        set_field = object.__setattr__
        set_field(self, "function", name)
        set_field(self, "isa", isa)
        set_field(self, "time", scale.time)
        set_field(self, "space", scale.space)
        set_field(self, "seed", seed)
        set_field(self, "db", db)
        set_field(self, "requests", requests)
        set_field(self, "platform", platform)
        set_field(self, "trace", bool(trace))
        set_field(self, "faults", faults)
        set_field(self, "scaling", scaling)
        set_field(self, "sampling", sampling)
        set_field(self, "cluster", cluster)
        set_field(self, "vector", vector)

    # -- immutability ------------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("MeasurementSpec is immutable; use .replace()")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("MeasurementSpec is immutable; use .replace()")

    def replace(self, **changes) -> "MeasurementSpec":
        """A copy with the given fields swapped (dataclasses.replace style)."""
        fields: Dict[str, Any] = {name: getattr(self, name)
                                  for name in _FIELDS}
        if "scale" in changes:
            scale = changes.pop("scale")
            changes.setdefault("time", scale.time)
            changes.setdefault("space", scale.space)
        unknown = set(changes) - set(_FIELDS)
        if unknown:
            raise TypeError("unknown spec fields: %s" % sorted(unknown))
        fields.update(changes)
        return MeasurementSpec(**fields)

    # -- derived views -----------------------------------------------------

    @property
    def scale(self) -> SimScale:
        return SimScale(time=self.time, space=self.space)

    def _identity(self) -> tuple:
        platform = self.platform
        fingerprint = platform.fingerprint() if platform is not None else None
        faults = self.faults
        fault_fingerprint = faults.fingerprint() if faults is not None else None
        scaling = self.scaling
        scaling_fingerprint = (scaling.fingerprint()
                               if scaling is not None else None)
        sampling = self.sampling
        sampling_fingerprint = (sampling.fingerprint()
                                if sampling is not None else None)
        cluster = self.cluster
        cluster_fingerprint = (cluster.fingerprint()
                               if cluster is not None else None)
        vector = self.vector
        vector_fingerprint = (vector.fingerprint()
                              if vector is not None else None)
        return (self.function, self.isa, self.time, self.space, self.seed,
                self.db, self.requests, fingerprint, self.trace,
                fault_fingerprint, scaling_fingerprint,
                sampling_fingerprint, cluster_fingerprint,
                vector_fingerprint)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MeasurementSpec):
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())

    def __repr__(self) -> str:
        parts = ["function=%r" % self.function, "isa=%r" % self.isa,
                 "time=%d" % self.time, "space=%d" % self.space]
        if self.seed:
            parts.append("seed=%d" % self.seed)
        if self.db:
            parts.append("db=%r" % self.db)
        if self.requests != 10:
            parts.append("requests=%d" % self.requests)
        if self.platform is not None:
            parts.append("platform=%r" % self.platform)
        if self.trace:
            parts.append("trace=True")
        if self.faults is not None:
            parts.append("faults=%r" % self.faults)
        if self.scaling is not None:
            parts.append("scaling=%r" % self.scaling)
        if self.sampling is not None:
            parts.append("sampling=%r" % self.sampling)
        if self.cluster is not None:
            parts.append("cluster=%r" % self.cluster)
        if self.vector is not None:
            parts.append("vector=%r" % self.vector)
        return "MeasurementSpec(%s)" % ", ".join(parts)

    # -- pickling (slots, no __dict__) -------------------------------------

    def __getstate__(self):
        return {name: getattr(self, name) for name in _FIELDS}

    def __setstate__(self, state):
        for name in _FIELDS:
            # .get(): states pickled before a field existed load as None.
            object.__setattr__(self, name, state.get(name))
