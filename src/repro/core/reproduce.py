"""One-call reproduction of the paper's full evaluation.

The benchmark suite (``pytest benchmarks/``) asserts the paper's shapes;
this module provides the same measurement batches as a library — for the
benches, the CLI (``python -m repro reproduce``), and downstream scripts
that want the data without pytest.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.core.harness import ExperimentHarness, FunctionMeasurement
from repro.core.parallel import MeasurementTask, run_measurement_matrix
from repro.core.results import cold_warm_table, isa_comparison_table
from repro.core.scale import BENCH, SimScale


def measure_functions(
    functions: Iterable,
    isa: str,
    scale: SimScale = BENCH,
    services_for=None,
    seed: int = 0,
    progress=None,
    db: Optional[str] = None,
    jobs: Optional[int] = None,
    cache=None,
    requests: int = 10,
) -> Dict[str, FunctionMeasurement]:
    """Run the 10-request protocol for a batch of functions on one ISA.

    The batch is scheduled through :mod:`repro.core.parallel` — cache
    hits skip simulation, the rest fans out over ``jobs`` workers
    (``REPRO_JOBS`` by default) in deterministic matrix order.  Database
    backed functions are named via ``db``; each task then builds its own
    pristine :class:`~repro.workloads.hotel.HotelSuite` so results do
    not depend on batch position or worker assignment.

    ``services_for`` (legacy) binds arbitrary live service objects and
    forces the in-process serial path, since live services cannot cross
    a process boundary.
    """
    functions = list(functions)
    if services_for is not None:
        measurements: Dict[str, FunctionMeasurement] = {}
        for function in functions:
            harness = ExperimentHarness(isa=isa, scale=scale, seed=seed)
            measurements[function.name] = harness.measure_function(
                function, services=services_for(function), requests=requests)
            if progress is not None:
                progress("measured %s on %s" % (function.name, isa))
        return measurements

    tasks = [
        MeasurementTask(function=function.name, isa=isa, time=scale.time,
                        space=scale.space, seed=seed, db=db, requests=requests)
        for function in functions
    ]
    measured = run_measurement_matrix(tasks, jobs=jobs, cache=cache)
    measurements = {}
    for function, measurement in zip(functions, measured):
        measurements[function.name] = measurement
        if progress is not None:
            progress("measured %s on %s" % (function.name, isa))
    return measurements


def measure_standalone_shop(isa: str, scale: SimScale = BENCH, seed: int = 0,
                            progress=None, jobs: Optional[int] = None,
                            cache=None) -> Dict[str, FunctionMeasurement]:
    """The Fig 4.4/4.12/4.15-4.18 batch: standalone + online shop."""
    from repro.workloads.catalog import ONLINESHOP_FUNCTIONS, STANDALONE_FUNCTIONS

    return measure_functions(STANDALONE_FUNCTIONS + ONLINESHOP_FUNCTIONS,
                             isa, scale, seed=seed, progress=progress,
                             jobs=jobs, cache=cache)


def measure_hotel(isa: str, scale: SimScale = BENCH, db: str = "cassandra",
                  seed: int = 0, progress=None, jobs: Optional[int] = None,
                  cache=None) -> Dict[str, FunctionMeasurement]:
    """The Fig 4.5/4.14/4.19 batch: the hotel suite over a database.

    Every function is measured against its own freshly seeded suite (the
    dataset is deterministic), so the batch parallelises and caches per
    function.
    """
    from repro.workloads.hotel import make_hotel_functions

    return measure_functions(make_hotel_functions(), isa, scale, seed=seed,
                             progress=progress, db=db, jobs=jobs, cache=cache)


def qemu_database_comparison(progress=None) -> Dict[Tuple[str, str], Tuple[float, float]]:
    """Fig 4.20's data: request ns under QEMU/x86 per database."""
    from repro.db import CassandraStore, MongoStore
    from repro.emu import make_dev_vm
    from repro.workloads.hotel import HotelSuite

    results: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for store_cls in (MongoStore, CassandraStore):
        suite = HotelSuite(store_cls())
        vm = make_dev_vm("x86")
        vm.boot()
        vm.boot_database_container(suite.db)
        for function in suite.functions:
            services = suite.services_for(function)
            cold = vm.time_request(function, services=services, cold=True,
                                   sequence=1)
            for sequence in range(2, 10):
                vm.time_request(function, services=services, sequence=sequence)
            warm = vm.time_request(function, services=services, sequence=10)
            results[(suite.db.name, function.short_name)] = (cold, warm)
        if progress is not None:
            progress("timed hotel suite on %s" % suite.db.name)
    return results


#: The evaluation's figure inventory: id -> (title, metric attribute).
CYCLE_FIGURES = {
    "fig4_04": ("Fig 4.4: cycles, standalone + online shop (RISC-V)", "cycles"),
    "fig4_12": ("Fig 4.12: cycles, standalone + online shop (x86)", "cycles"),
}
COMPARISON_FIGURES = {
    "fig4_15": ("Fig 4.15: cycles, RISC-V vs x86", "cycles"),
    "fig4_16": ("Fig 4.16: instructions, RISC-V vs x86", "instructions"),
    "fig4_17": ("Fig 4.17: L1I misses, RISC-V vs x86", "l1i_misses"),
    "fig4_18": ("Fig 4.18: L2 misses, RISC-V vs x86", "l2_misses"),
}


def reproduce_all(
    scale: SimScale = BENCH,
    output_dir: Optional[str] = None,
    db: str = "cassandra",
    seed: int = 0,
    progress=None,
    jobs: Optional[int] = None,
    cache=None,
) -> Dict[str, Any]:
    """Regenerate every evaluation figure's data; optionally write files.

    Returns the raw measurement batches keyed by batch name; when
    ``output_dir`` is given, also renders the figure tables+charts there
    (the same artifacts the bench suite produces).
    """
    from repro.workloads.catalog import (
        HOTEL_FUNCTIONS,
        ONLINESHOP_FUNCTIONS,
        STANDALONE_FUNCTIONS,
    )

    order = [fn.name for fn in STANDALONE_FUNCTIONS + ONLINESHOP_FUNCTIONS]
    hotel_order = [fn.name for fn in HOTEL_FUNCTIONS]

    batches: Dict[str, Any] = {
        "riscv_standalone_shop": measure_standalone_shop(
            "riscv", scale, seed, progress, jobs=jobs, cache=cache),
        "x86_standalone_shop": measure_standalone_shop(
            "x86", scale, seed, progress, jobs=jobs, cache=cache),
        "riscv_hotel": measure_hotel("riscv", scale, db, seed, progress,
                                     jobs=jobs, cache=cache),
        "x86_hotel": measure_hotel("x86", scale, db, seed, progress,
                                   jobs=jobs, cache=cache),
        "qemu_db_comparison": qemu_database_comparison(progress),
    }

    if output_dir is not None:
        target = Path(output_dir)
        target.mkdir(parents=True, exist_ok=True)

        def emit(name: str, table) -> None:
            (target / ("%s.txt" % name)).write_text(
                table.render() + "\n\n" + table.render_chart() + "\n")

        emit("fig4_04", cold_warm_table(
            CYCLE_FIGURES["fig4_04"][0], batches["riscv_standalone_shop"],
            metric=lambda stats: stats.cycles, order=order,
            metric_name="cycles"))
        emit("fig4_05", cold_warm_table(
            "Fig 4.5: cycles, hotel application (RISC-V)",
            batches["riscv_hotel"], metric=lambda stats: stats.cycles,
            order=hotel_order, metric_name="cycles"))
        emit("fig4_12", cold_warm_table(
            CYCLE_FIGURES["fig4_12"][0], batches["x86_standalone_shop"],
            metric=lambda stats: stats.cycles, order=order,
            metric_name="cycles"))
        emit("fig4_14", cold_warm_table(
            "Fig 4.14: cycles, hotel application (x86)", batches["x86_hotel"],
            metric=lambda stats: stats.cycles, order=hotel_order,
            metric_name="cycles"))
        for figure_id, (title, metric_name) in COMPARISON_FIGURES.items():
            emit(figure_id, isa_comparison_table(
                title, batches["riscv_standalone_shop"],
                batches["x86_standalone_shop"],
                metric=lambda stats, m=metric_name: getattr(stats, m),
                order=order, metric_name=metric_name))
        emit("fig4_19", isa_comparison_table(
            "Fig 4.19: cycles, hotel application, RISC-V vs x86",
            batches["riscv_hotel"], batches["x86_hotel"],
            metric=lambda stats: stats.cycles, order=hotel_order,
            metric_name="cycles"))
    return batches
