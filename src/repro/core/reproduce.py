"""One-call reproduction of the paper's full evaluation.

The benchmark suite (``pytest benchmarks/``) asserts the paper's shapes;
this module provides the same measurement batches as a library — for the
benches, the CLI (``python -m repro reproduce``), and downstream scripts
that want the data without pytest.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.harness import ExperimentHarness, FunctionMeasurement
from repro.core.parallel import run_measurement_matrix
from repro.core.results import cold_warm_table, isa_comparison_table
from repro.core.scale import BENCH, SimScale
from repro.core.spec import MeasurementSpec

#: ``MeasurementSpec.function`` values naming a whole batch instead of a
#: single catalog function.
SUITE_ALIASES = ("standalone", "onlineshop", "standalone+shop", "hotel")


def _expand_spec(spec: MeasurementSpec,
                 functions: Optional[Iterable] = None) -> List[MeasurementSpec]:
    """One spec per matrix point: suite aliases fan out, ``db`` lands on
    hotel functions only (``spec.db`` or cassandra), everything else is
    copied from the prototype spec."""
    from repro.workloads.catalog import (
        HOTEL_FUNCTIONS,
        ONLINESHOP_FUNCTIONS,
        STANDALONE_FUNCTIONS,
    )

    hotel_names = {fn.name for fn in HOTEL_FUNCTIONS}
    if functions is not None:
        names = [getattr(fn, "name", fn) for fn in functions]
    else:
        target = spec.function
        if target == "standalone":
            names = [fn.name for fn in STANDALONE_FUNCTIONS]
        elif target == "onlineshop":
            names = [fn.name for fn in ONLINESHOP_FUNCTIONS]
        elif target == "standalone+shop":
            names = [fn.name for fn in
                     STANDALONE_FUNCTIONS + ONLINESHOP_FUNCTIONS]
        elif target == "hotel":
            names = [fn.name for fn in HOTEL_FUNCTIONS]
        else:
            names = [target]
    specs = []
    for name in names:
        db = (spec.db or "cassandra") if name in hotel_names else None
        specs.append(spec.replace(function=name, db=db))
    return specs


def measure(
    spec: MeasurementSpec,
    *,
    jobs: Optional[int] = None,
    cache=None,
    progress=None,
    functions: Optional[Iterable] = None,
    services_for=None,
) -> Dict[str, FunctionMeasurement]:
    """The one measurement entry point: run the protocol for a spec.

    ``spec.function`` may name a single catalog function or one of
    :data:`SUITE_ALIASES` (``"standalone"``, ``"onlineshop"``,
    ``"standalone+shop"``, ``"hotel"``); either way the result is a dict
    of measurements keyed by function name.  Hotel functions get
    ``spec.db`` (default cassandra) and build their own pristine suite
    per point; other functions never see a database.  Batches are
    scheduled through :mod:`repro.core.parallel` — cache hits skip
    simulation, the rest fans out over ``jobs`` workers in deterministic
    matrix order, and traced specs come back with ``measurement.trace``
    set.

    ``functions`` (an iterable of function objects or names) overrides
    the spec's fan-out.  ``services_for`` (legacy) binds arbitrary live
    service objects and forces the in-process serial path, since live
    services cannot cross a process boundary.
    """
    if services_for is not None:
        if functions is None:
            raise ValueError("services_for needs explicit function objects")
        measurements: Dict[str, FunctionMeasurement] = {}
        for function in functions:
            tracer = None
            if spec.trace:
                from repro.obs.tracer import Tracer

                tracer = Tracer()
            injector = spec.faults.arm() if spec.faults is not None else None
            harness = ExperimentHarness(isa=spec.isa, scale=spec.scale,
                                        platform_config=spec.platform,
                                        seed=spec.seed, tracer=tracer,
                                        faults=injector,
                                        sampling=spec.sampling,
                                        vector=getattr(spec, "vector", None))
            measurement = harness.measure_function(
                function, services=services_for(function),
                requests=spec.requests)
            if tracer is not None:
                measurement.trace = tracer.freeze()
            measurements[function.name] = measurement
            if progress is not None:
                progress("measured %s on %s" % (function.name, spec.isa))
        return measurements

    specs = _expand_spec(spec, functions)
    measured = run_measurement_matrix(specs, jobs=jobs, cache=cache)
    measurements = {}
    for point, measurement in zip(specs, measured):
        measurements[point.function] = measurement
        if progress is not None:
            progress("measured %s on %s" % (point.function, point.isa))
    return measurements


def _removed(old: str, example: str) -> "RuntimeError":
    return RuntimeError(
        "%s() was removed: build a MeasurementSpec and call measure() "
        "instead, e.g. measure(MeasurementSpec(%s)) — see "
        "docs/METHODOLOGY.md" % (old, example))


def measure_functions(*_args, **_kwargs):
    """Removed (was a PR-2 deprecation shim): use
    :class:`~repro.core.spec.MeasurementSpec` + :func:`measure`."""
    raise _removed("measure_functions",
                   'function="fibonacci-python", isa="riscv"')


def measure_standalone_shop(*_args, **_kwargs):
    """Removed (was a PR-2 deprecation shim): use
    :class:`~repro.core.spec.MeasurementSpec` + :func:`measure` with the
    ``standalone+shop`` suite alias."""
    raise _removed("measure_standalone_shop",
                   'function="standalone+shop", isa="riscv"')


def measure_hotel(*_args, **_kwargs):
    """Removed (was a PR-2 deprecation shim): use
    :class:`~repro.core.spec.MeasurementSpec` + :func:`measure` with the
    ``hotel`` suite alias."""
    raise _removed("measure_hotel",
                   'function="hotel", isa="riscv", db="cassandra"')


def qemu_database_comparison(progress=None) -> Dict[Tuple[str, str], Tuple[float, float]]:
    """Fig 4.20's data: request ns under QEMU/x86 per database."""
    from repro.db import CassandraStore, MongoStore
    from repro.emu import make_dev_vm
    from repro.workloads.hotel import HotelSuite

    results: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for store_cls in (MongoStore, CassandraStore):
        suite = HotelSuite(store_cls())
        vm = make_dev_vm("x86")
        vm.boot()
        vm.boot_database_container(suite.db)
        for function in suite.functions:
            services = suite.services_for(function)
            cold = vm.time_request(function, services=services, cold=True,
                                   sequence=1)
            for sequence in range(2, 10):
                vm.time_request(function, services=services, sequence=sequence)
            warm = vm.time_request(function, services=services, sequence=10)
            results[(suite.db.name, function.short_name)] = (cold, warm)
        if progress is not None:
            progress("timed hotel suite on %s" % suite.db.name)
    return results


#: The evaluation's figure inventory: id -> (title, metric attribute).
CYCLE_FIGURES = {
    "fig4_04": ("Fig 4.4: cycles, standalone + online shop (RISC-V)", "cycles"),
    "fig4_12": ("Fig 4.12: cycles, standalone + online shop (x86)", "cycles"),
}
COMPARISON_FIGURES = {
    "fig4_15": ("Fig 4.15: cycles, RISC-V vs x86", "cycles"),
    "fig4_16": ("Fig 4.16: instructions, RISC-V vs x86", "instructions"),
    "fig4_17": ("Fig 4.17: L1I misses, RISC-V vs x86", "l1i_misses"),
    "fig4_18": ("Fig 4.18: L2 misses, RISC-V vs x86", "l2_misses"),
}


def reproduce_all(
    scale: SimScale = BENCH,
    output_dir: Optional[str] = None,
    db: str = "cassandra",
    seed: int = 0,
    progress=None,
    jobs: Optional[int] = None,
    cache=None,
    sampling=None,
) -> Dict[str, Any]:
    """Regenerate every evaluation figure's data; optionally write files.

    Returns the raw measurement batches keyed by batch name; when
    ``output_dir`` is given, also renders the figure tables+charts there
    (the same artifacts the bench suite produces).  ``sampling`` — an
    optional :class:`~repro.sim.sampling.SamplingConfig` — runs every
    detailed measurement sampled, trading bounded CPI error for speed;
    the result cache keys sampled batches separately.
    """
    from repro.workloads.catalog import (
        HOTEL_FUNCTIONS,
        ONLINESHOP_FUNCTIONS,
        STANDALONE_FUNCTIONS,
    )

    order = [fn.name for fn in STANDALONE_FUNCTIONS + ONLINESHOP_FUNCTIONS]
    hotel_order = [fn.name for fn in HOTEL_FUNCTIONS]

    def batch(function: str, isa: str, batch_db: Optional[str] = None):
        spec = MeasurementSpec(function=function, isa=isa, scale=scale,
                               seed=seed, db=batch_db, sampling=sampling)
        return measure(spec, jobs=jobs, cache=cache, progress=progress)

    batches: Dict[str, Any] = {
        "riscv_standalone_shop": batch("standalone+shop", "riscv"),
        "x86_standalone_shop": batch("standalone+shop", "x86"),
        "riscv_hotel": batch("hotel", "riscv", db),
        "x86_hotel": batch("hotel", "x86", db),
        "qemu_db_comparison": qemu_database_comparison(progress),
    }

    if output_dir is not None:
        target = Path(output_dir)
        target.mkdir(parents=True, exist_ok=True)

        def emit(name: str, table) -> None:
            (target / ("%s.txt" % name)).write_text(
                table.render() + "\n\n" + table.render_chart() + "\n")

        emit("fig4_04", cold_warm_table(
            CYCLE_FIGURES["fig4_04"][0], batches["riscv_standalone_shop"],
            metric=lambda stats: stats.cycles, order=order,
            metric_name="cycles"))
        emit("fig4_05", cold_warm_table(
            "Fig 4.5: cycles, hotel application (RISC-V)",
            batches["riscv_hotel"], metric=lambda stats: stats.cycles,
            order=hotel_order, metric_name="cycles"))
        emit("fig4_12", cold_warm_table(
            CYCLE_FIGURES["fig4_12"][0], batches["x86_standalone_shop"],
            metric=lambda stats: stats.cycles, order=order,
            metric_name="cycles"))
        emit("fig4_14", cold_warm_table(
            "Fig 4.14: cycles, hotel application (x86)", batches["x86_hotel"],
            metric=lambda stats: stats.cycles, order=hotel_order,
            metric_name="cycles"))
        for figure_id, (title, metric_name) in COMPARISON_FIGURES.items():
            emit(figure_id, isa_comparison_table(
                title, batches["riscv_standalone_shop"],
                batches["x86_standalone_shop"],
                metric=lambda stats, m=metric_name: getattr(stats, m),
                order=order, metric_name=metric_name))
        emit("fig4_19", isa_comparison_table(
            "Fig 4.19: cycles, hotel application, RISC-V vs x86",
            batches["riscv_hotel"], batches["x86_hotel"],
            metric=lambda stats: stats.cycles, order=hotel_order,
            metric_name="cycles"))
    return batches
