"""Scaled-machine methodology.

Simulating the thesis's full-size runs (hundreds of millions of cycles per
cold request) instruction-by-instruction in pure Python is intractable, so
experiments run on a *scaled machine*: dynamic work (instruction counts,
loop trips) shrinks by :attr:`SimScale.time`, and capacities (cache sizes,
data footprints) shrink by :attr:`SimScale.space`.  Because footprints and
caches shrink together, footprint-to-capacity ratios — and therefore
hit/miss *behaviour* — track the full-size machine; because all workloads
in one experiment share a scale, every ratio the paper's figures are about
(cold vs warm, RISC-V vs x86, who wins and by roughly what factor) is
preserved.  Reported cycle counts can be projected back to native scale by
multiplying with :attr:`SimScale.time`.

This is the standard scaled-cache evaluation trick; DESIGN.md documents it
as the substitution for gem5's native-size (but days-long) simulations.
"""

from __future__ import annotations


class SimScale:
    """Divisors applied to dynamic work (time) and capacities (space)."""

    def __init__(self, time: int = 256, space: int = 16):
        if time < 1 or space < 1:
            raise ValueError("scale divisors must be >= 1")
        self.time = time
        self.space = space

    def instrs(self, native_count: float) -> int:
        """Scale a dynamic instruction/op count (floor 1)."""
        return max(1, int(round(native_count / self.time)))

    def trips(self, native_count: float) -> int:
        """Scale a loop trip count (floor 1)."""
        return max(1, int(round(native_count / self.time)))

    def data_bytes(self, native_bytes: float, floor: int = 256) -> int:
        """Scale a data footprint (floor keeps regions allocatable)."""
        return max(floor, int(round(native_bytes / self.space)))

    def project_cycles(self, scaled_cycles: float) -> float:
        """Project a scaled cycle count back toward native magnitude."""
        return scaled_cycles * self.time

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SimScale)
            and other.time == self.time
            and other.space == self.space
        )

    def __hash__(self) -> int:
        return hash(("SimScale", self.time, self.space))

    def __repr__(self) -> str:
        return "SimScale(time=%d, space=%d)" % (self.time, self.space)


#: Native scale: what the thesis's week-long gem5 runs would use.
NATIVE = SimScale(time=1, space=1)

#: Default scale for the benchmark harness: minutes instead of days.
BENCH = SimScale(time=256, space=16)

#: Aggressive scale for unit tests: seconds.
TEST = SimScale(time=2048, space=32)
