"""The experiment harness: Fig 4.1's protocol, end to end.

For each benchmark function on each simulated platform:

* **setup mode** — boot the system (OpenSBI where applicable, kernel,
  userspace, dockerd) plus any service containers (the database boot that
  took the thesis ~a week of simulation for Cassandra/RISC-V) on the
  Atomic core, then take a checkpoint right before the first request;
* **evaluation mode** — restore the checkpoint, switch the server core to
  the O3 model, stat-reset, measure request 1 (**cold**), functionally
  execute requests 2–9 (microarchitectural warming without detailed
  timing), stat-reset, measure request 10 (**warm**), stat-dump.

The KVM core can be selected for setup mode, but — as in the thesis
(§3.4.1) — its m5 ops freeze sporadically; the harness then falls back to
the Atomic core and records that it did.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.core.config import PlatformConfig, platform_for
from repro.core.scale import BENCH, SimScale
from repro.obs.attribution import snapshot_delta
from repro.obs.tracer import TRACK_CACHE, TRACK_INVOCATION, TRACK_TLB
from repro.serverless.engine import install_docker
from repro.serverless.faas import FaasPlatform, InvocationRecord
from repro.sim.checkpoint import Checkpoint, restore_checkpoint, take_checkpoint
from repro.sim.cpu.kvm import KvmInstabilityError
from repro.sim.system import SimulatedSystem

if False:  # pragma: no cover - import cycle guard; used in annotations only
    from repro.workloads.function import VSwarmFunction

SERVER_CORE = 1
CLIENT_CORE = 0

#: Post-boot checkpoints, shared across harnesses exactly as the thesis
#: reuses one boot checkpoint for every experiment on a platform
#: (§2.4.3): keyed by (isa, scale, seed, service stores).
_BOOT_CHECKPOINT_CACHE: Dict[tuple, Checkpoint] = {}


def clear_boot_checkpoint_cache() -> None:
    """Drop cached post-boot checkpoints (tests use this for isolation)."""
    _BOOT_CHECKPOINT_CACHE.clear()


class RequestStats:
    """The per-request counters the thesis collects (§4.1.2.3)."""

    FIELDS = (
        "cycles", "instructions", "l1i_misses", "l1d_misses", "l2_misses",
        "l1i_accesses", "l1d_accesses", "l2_accesses", "branch_mispredicts",
    )

    def __init__(self, cycles: int, instructions: int, dump: Dict[str, float],
                 system_name: str):
        prefix = "%s.core%d" % (system_name, SERVER_CORE)
        self.cycles = cycles
        self.instructions = instructions
        self.l1i_misses = int(dump["%s.l1i.misses" % prefix])
        self.l1d_misses = int(dump["%s.l1d.misses" % prefix])
        self.l2_misses = int(dump["%s.l2.misses" % prefix])
        self.l1i_accesses = int(dump["%s.l1i.accesses" % prefix])
        self.l1d_accesses = int(dump["%s.l1d.accesses" % prefix])
        self.l2_accesses = int(dump["%s.l2.accesses" % prefix])
        self.branch_mispredicts = int(dump.get(
            "%s.cpu%d.o3.bpred.mispredicts" % (system_name, SERVER_CORE), 0))
        self.raw_dump = dump

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def l1_misses(self) -> int:
        return self.l1i_misses + self.l1d_misses

    @property
    def l1_data_miss_share(self) -> float:
        total = self.l1_misses
        return self.l1d_misses / total if total else 0.0

    def as_dict(self, full: bool = False) -> Dict[str, Any]:
        """The measured counters; ``full=True`` adds the derived CPI and
        the raw stat dump so :meth:`from_dict` can round-trip losslessly
        (the result cache and JSON exporters rely on this)."""
        out: Dict[str, Any] = {field: getattr(self, field)
                               for field in self.FIELDS}
        if full:
            out["cpi"] = self.cpi
            out["raw_dump"] = dict(self.raw_dump)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RequestStats":
        """Inverse of ``as_dict(full=True)`` (tolerates the slim form)."""
        stats = cls.__new__(cls)
        for field in cls.FIELDS:
            setattr(stats, field, data[field])
        stats.raw_dump = dict(data.get("raw_dump", {}))
        return stats

    def __repr__(self) -> str:
        return "RequestStats(cycles=%d, insts=%d, cpi=%.2f)" % (
            self.cycles, self.instructions, self.cpi,
        )


class FunctionMeasurement:
    """Cold + warm measurements for one function on one platform."""

    def __init__(self, function: str, isa: str, cold: RequestStats, warm: RequestStats,
                 records: List[InvocationRecord], setup_notes: Optional[List[str]] = None):
        self.function = function
        self.isa = isa
        self.cold = cold
        self.warm = warm
        self.records = records
        self.setup_notes = setup_notes or []
        #: Frozen trace capture (``Tracer.freeze()``) when the
        #: measurement ran traced; None otherwise.
        self.trace: Optional[Dict[str, Any]] = None

    @property
    def cold_warm_cycle_ratio(self) -> float:
        return self.cold.cycles / self.warm.cycles if self.warm.cycles else 0.0

    def as_dict(self, full: bool = False) -> Dict[str, Any]:
        """Round-trippable view; ``full=True`` keeps raw dumps, records
        and the trace capture so :meth:`from_dict` restores everything
        the tier-1 identity tests compare."""
        out: Dict[str, Any] = {
            "function": self.function,
            "isa": self.isa,
            "cold": self.cold.as_dict(full=full),
            "warm": self.warm.as_dict(full=full),
            "setup_notes": list(self.setup_notes),
        }
        if full:
            out["records"] = [record.as_dict() for record in self.records]
            out["trace"] = self.trace
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionMeasurement":
        measurement = cls(
            function=data["function"],
            isa=data["isa"],
            cold=RequestStats.from_dict(data["cold"]),
            warm=RequestStats.from_dict(data["warm"]),
            records=[InvocationRecord.from_dict(record)
                     for record in data.get("records", [])],
            setup_notes=list(data.get("setup_notes", [])),
        )
        measurement.trace = data.get("trace")
        return measurement

    def __repr__(self) -> str:
        return "FunctionMeasurement(%s/%s: cold=%d, warm=%d)" % (
            self.function, self.isa, self.cold.cycles, self.warm.cycles,
        )


class LukewarmMeasurement:
    """Cold / warm / lukewarm triple for one function."""

    def __init__(self, base: FunctionMeasurement, lukewarm: RequestStats,
                 intruder: str):
        self.base = base
        self.lukewarm = lukewarm
        self.intruder = intruder

    @property
    def cold(self) -> RequestStats:
        return self.base.cold

    @property
    def warm(self) -> RequestStats:
        return self.base.warm

    @property
    def lukewarm_slowdown(self) -> float:
        """Lukewarm cycles over warm cycles (1.0 = no thrashing effect)."""
        return self.lukewarm.cycles / self.warm.cycles if self.warm.cycles else 0.0

    def __repr__(self) -> str:
        return "LukewarmMeasurement(%s vs %s: cold=%d warm=%d lukewarm=%d)" % (
            self.base.function, self.intruder, self.cold.cycles,
            self.warm.cycles, self.lukewarm.cycles,
        )


class ExperimentHarness:
    """Drives the setup/evaluation protocol for one simulated platform."""

    def __init__(
        self,
        isa: str = "riscv",
        scale: SimScale = BENCH,
        platform_config: Optional[PlatformConfig] = None,
        setup_cpu: str = "atomic",
        seed: int = 0,
        tracer=None,
        faults=None,
        sampling=None,
        vector=None,
    ):
        self.isa = isa
        self.scale = scale
        self.config = platform_config or platform_for(isa)
        self.setup_cpu = setup_cpu
        self.seed = seed
        #: Optional :class:`~repro.sim.sampling.SamplingConfig`.  When
        #: set, the measured (O3) runs use sampled simulation; setup-mode
        #: work (boot, warming) is unaffected — it is already functional.
        #: ``None`` runs every detailed instruction exactly as before.
        self.sampling = sampling
        #: Optional :class:`~repro.sim.isa.vector.VectorConfig`.  When
        #: set, the system's ISA instance carries a vector unit and
        #: vector IR lowers to vector streams; ``None`` keeps the
        #: scalar-only lowering (vector IR degrades element-by-element).
        self.vector = vector
        #: Optional :class:`repro.obs.Tracer`.  Attached to the system
        #: only once measurement starts (after checkpoint restore), so a
        #: fresh-boot run and a cached-checkpoint run trace the same
        #: measured region and produce byte-identical captures.
        self.tracer = tracer
        #: Optional :class:`repro.faults.FaultInjector` (an *armed* plan).
        #: Threaded into the container engine, the FaaS platform and the
        #: memcached wrapper during measurement; ``None`` keeps every
        #: layer on its exact pre-fault path.
        self.faults = faults
        if faults is not None and tracer is not None:
            faults.tracer = tracer
        self.system = SimulatedSystem(
            name="sys",
            isa_name=isa,
            mem_config=self.config.mem_config.scaled(scale.space),
            o3_config=self.config.o3_config,
            num_cores=self.config.num_cores,
            frequency=self.config.frequency,
            seed=seed,
            vector=vector,
        )
        self._boot_checkpoint: Optional[Checkpoint] = None
        self.setup_notes: List[str] = []

    # -- setup mode -----------------------------------------------------------

    def prepare(self, service_stores: Iterable[Any] = ()) -> Checkpoint:
        """Boot the platform (and service containers), take the checkpoint.

        Boot checkpoints are cached per (platform, scale, seed, services)
        so the multi-hour setup phase is paid once, as in the thesis's
        workflow.  Atomic-setup boots are additionally layered: a
        checkpoint is cached after the base boot and after each service
        boot, so two service sets sharing a prefix (say ``(cassandra,)``
        and ``(cassandra, memcached)``) replay the expensive database
        boot once per process, not once per distinct set.  Restoring a
        layer and continuing is state-identical to booting straight
        through — a checkpoint is a lossless snapshot of exactly the
        state the continued boot would have seen.
        """
        from repro.workloads.boot import build_boot_program, build_db_boot_program

        stores = list(service_stores)
        base_key = (
            self.isa, self.scale.time, self.scale.space, self.seed,
            self.setup_cpu, self.config.fingerprint(),
            self.vector.fingerprint() if self.vector is not None else None,
        )
        names = tuple(store.name for store in stores)
        full_key = base_key + (tuple(sorted(names)),)
        cached = _BOOT_CHECKPOINT_CACHE.get(full_key)
        if cached is not None:
            self._boot_checkpoint = cached
            return cached

        if self.setup_cpu == "kvm":
            # KVM setup keeps the legacy straight-through path: its
            # checkpoint op can fail mid-way and downgrade the setup CPU,
            # which layered continuation would have to unwind.
            boot = build_boot_program(self.isa, self.scale, seed=self.seed)
            self._run_setup_program(boot)
            for store in stores:
                db_boot = build_db_boot_program(store, self.isa, self.scale,
                                                seed=self.seed)
                self._run_setup_program(db_boot)
            self._boot_checkpoint = self._take_setup_checkpoint()
            _BOOT_CHECKPOINT_CACHE[full_key] = self._boot_checkpoint
            return self._boot_checkpoint

        layer_key = lambda i: base_key + ("layer", names[:i])
        booted = 0
        checkpoint = None
        for i in range(len(names), -1, -1):
            checkpoint = _BOOT_CHECKPOINT_CACHE.get(layer_key(i))
            if checkpoint is not None:
                booted = i
                break
        if checkpoint is None:
            boot = build_boot_program(self.isa, self.scale, seed=self.seed)
            self._run_setup_program(boot)
            checkpoint = self._take_setup_checkpoint()
            _BOOT_CHECKPOINT_CACHE[layer_key(0)] = checkpoint
        elif booted < len(names):
            restore_checkpoint(self.system, checkpoint)
        for i in range(booted, len(names)):
            db_boot = build_db_boot_program(stores[i], self.isa, self.scale,
                                            seed=self.seed)
            self._run_setup_program(db_boot)
            checkpoint = self._take_setup_checkpoint()
            _BOOT_CHECKPOINT_CACHE[layer_key(i + 1)] = checkpoint
        self._boot_checkpoint = checkpoint
        _BOOT_CHECKPOINT_CACHE[full_key] = checkpoint
        return self._boot_checkpoint

    def _run_setup_program(self, program) -> None:
        if self.setup_cpu == "kvm":
            self.system.run(SERVER_CORE, program, model="kvm", seed=self.seed)
        else:
            self.system.run(SERVER_CORE, program, model="atomic", seed=self.seed)

    def _take_setup_checkpoint(self) -> Checkpoint:
        if self.setup_cpu == "kvm":
            kvm = self.system.cpu(SERVER_CORE, "kvm")
            try:
                kvm.execute_m5_op("checkpoint")
            except KvmInstabilityError as error:
                # The documented workaround: redo setup with the Atomic core.
                self.setup_notes.append(
                    "KVM froze on checkpoint (%s); fell back to Atomic setup" % error
                )
                self.setup_cpu = "atomic"
        return take_checkpoint(self.system, payload={"phase": "post-boot"},
                               label="post-boot")

    @property
    def prepared(self) -> bool:
        return self._boot_checkpoint is not None

    # -- observability --------------------------------------------------------

    def _attach_observability(self):
        """Wire the tracer and miss profilers in; returns the profilers.

        Called after checkpoint restore (never during setup) so traced
        runs see exactly the measured region regardless of whether the
        boot checkpoint came from this harness or the shared cache.
        """
        if self.tracer is None:
            return None
        self.system.attach_tracer(self.tracer)
        return self.system.attach_profilers(SERVER_CORE)

    def _emit_request_spans(self, profilers, before, sequence: int,
                            requests: int, start: int) -> None:
        """Close out one protocol request: per-unit miss-attribution
        spans (snapshot deltas) plus the request wrap span."""
        tracer = self.tracer
        now = tracer.now
        dur = now - start if now > start else 1
        for name, profiler in profilers.items():
            delta = snapshot_delta(profiler.snapshot(), before[name])
            if not any(delta.values()):
                continue
            is_tlb = name in ("itlb", "dtlb")
            tracer.complete(name, "tlb" if is_tlb else "cache", start, dur,
                            TRACK_TLB if is_tlb else TRACK_CACHE,
                            args=delta)
        if sequence == 0:
            phase = "cold"
        elif sequence == requests - 1:
            phase = "warm"
        else:
            phase = "warming"
        tracer.complete("request#%d" % (sequence + 1), "protocol", start,
                        dur, TRACK_INVOCATION, args={"phase": phase})

    # -- evaluation mode ----------------------------------------------------------

    def measure_function(
        self,
        function: "VSwarmFunction",
        services: Optional[Dict[str, Any]] = None,
        requests: int = 10,
        payload_factory=None,
    ) -> FunctionMeasurement:
        """Run the 10-request protocol; returns cold + warm measurements."""
        if requests < 2:
            raise ValueError("the protocol needs at least 2 requests (cold + warm)")
        if not self.prepared:
            self.prepare(service_stores=self._stores_of(services))
        restore_checkpoint(self.system, self._boot_checkpoint)
        self.system.switch_cpu(SERVER_CORE, "o3")
        tracer = self.tracer
        profilers = self._attach_observability()

        services = self._wrap_services(services or {})
        engine = install_docker(self.isa, tracer=tracer, faults=self.faults)
        engine.registry.push(function.image(self.isa))
        platform = FaasPlatform(engine, server_core=SERVER_CORE,
                                tracer=tracer, faults=self.faults)
        platform.deploy(function.name, function.name, function.runtime_name,
                        function.handler, services=services)

        records: List[InvocationRecord] = []
        cold_stats: Optional[RequestStats] = None
        warm_stats: Optional[RequestStats] = None
        for sequence in range(requests):
            if tracer is not None:
                request_start = tracer.now
                before = {name: profiler.snapshot()
                          for name, profiler in profilers.items()}
            if payload_factory is not None:
                payload = payload_factory(sequence)
            else:
                payload = function.default_payload(sequence)
            # Under an armed fault plan, injected crashes become error
            # records (the production-FaaS 500) instead of aborting the
            # protocol; fault-less runs keep the strict pre-fault path.
            record = platform.invoke(function.name, payload,
                                     raise_errors=self.faults is None)
            records.append(record)
            program = function.invocation_program(record, services, self.scale,
                                                  seed=self.seed)
            measured = sequence == 0 or sequence == requests - 1
            if measured:
                self.system.reset_stats()  # m5 reset
                result = self.system.run(SERVER_CORE, program, model="o3",
                                         seed=self.seed,
                                         sampling=self.sampling)
                dump = self.system.dump_stats()  # m5 dump
                stats = RequestStats(result.cycles, result.instructions, dump,
                                     self.system.name)
                if sequence == 0:
                    cold_stats = stats
                else:
                    warm_stats = stats
            else:
                warmed = self.system.warm(SERVER_CORE, program, seed=self.seed)
                if tracer is not None:
                    # Functional fast-forward: one tick per instruction.
                    tracer.advance(warmed)
            if tracer is not None:
                self._emit_request_spans(profilers, before, sequence,
                                         requests, request_start)
        assert cold_stats is not None and warm_stats is not None
        return FunctionMeasurement(function.name, self.isa, cold_stats, warm_stats,
                                   records, setup_notes=list(self.setup_notes))

    def measure_pipeline(
        self,
        deploy,
        requests: int = 10,
        payload_factory=None,
    ) -> FunctionMeasurement:
        """Measure a chained multi-function benchmark.

        ``deploy(platform, isa)`` deploys every stage onto the given FaaS
        platform and returns the driver function.  The driver's measured
        request includes the composed work of every downstream stage it
        invoked — cold starts of cold stages included.
        """
        if requests < 2:
            raise ValueError("the protocol needs at least 2 requests")
        if not self.prepared:
            self.prepare()
        restore_checkpoint(self.system, self._boot_checkpoint)
        self.system.switch_cpu(SERVER_CORE, "o3")
        tracer = self.tracer
        profilers = self._attach_observability()

        engine = install_docker(self.isa, tracer=tracer, faults=self.faults)
        platform = FaasPlatform(engine, server_core=SERVER_CORE,
                                tracer=tracer, faults=self.faults)
        function = deploy(platform, self.isa)
        services = platform.function(function.name).services

        records: List[InvocationRecord] = []
        cold_stats: Optional[RequestStats] = None
        warm_stats: Optional[RequestStats] = None
        for sequence in range(requests):
            if tracer is not None:
                request_start = tracer.now
                before = {name: profiler.snapshot()
                          for name, profiler in profilers.items()}
            if payload_factory is not None:
                payload = payload_factory(sequence)
            else:
                payload = function.default_payload(sequence)
            # Under an armed fault plan, injected crashes become error
            # records (the production-FaaS 500) instead of aborting the
            # protocol; fault-less runs keep the strict pre-fault path.
            record = platform.invoke(function.name, payload,
                                     raise_errors=self.faults is None)
            records.append(record)
            program = function.invocation_program(record, services, self.scale,
                                                  seed=self.seed)
            if sequence == 0 or sequence == requests - 1:
                self.system.reset_stats()
                result = self.system.run(SERVER_CORE, program, model="o3",
                                         seed=self.seed,
                                         sampling=self.sampling)
                dump = self.system.dump_stats()
                stats = RequestStats(result.cycles, result.instructions, dump,
                                     self.system.name)
                if sequence == 0:
                    cold_stats = stats
                else:
                    warm_stats = stats
            else:
                warmed = self.system.warm(SERVER_CORE, program, seed=self.seed)
                if tracer is not None:
                    tracer.advance(warmed)
            if tracer is not None:
                self._emit_request_spans(profilers, before, sequence,
                                         requests, request_start)
        assert cold_stats is not None and warm_stats is not None
        return FunctionMeasurement(function.name, self.isa, cold_stats,
                                   warm_stats, records,
                                   setup_notes=list(self.setup_notes))

    def measure_lukewarm(
        self,
        function: "VSwarmFunction",
        intruder: "VSwarmFunction",
        services: Optional[Dict[str, Any]] = None,
        intruder_services: Optional[Dict[str, Any]] = None,
        requests: int = 10,
    ) -> "LukewarmMeasurement":
        """Quantify the lukewarm effect (§2.1): warm software, cold core.

        Runs the standard protocol for ``function``, then executes one
        cold pass of ``intruder`` on the same core — thrashing its caches
        and predictor — and re-measures the victim's software-warm
        request.  "The execution of other functions in between cause the
        thrashing of caches and the microarchitectural state, leading
        every invocation to lukewarm execution."
        """
        base = self.measure_function(function, services=services,
                                     requests=requests)
        intruder_services = intruder_services or {}
        intruder_record = InvocationRecord(
            function=intruder.name, runtime=intruder.runtime_name,
            cold=True, request_bytes=64, sequence=1,
        )
        # The intruder's real handler runs so its receipts are genuine.
        from repro.serverless.faas import InvocationContext

        context = InvocationContext(intruder_record, intruder_services, {})
        for service in intruder_services.values():
            if hasattr(service, "take_receipt"):
                service.take_receipt()
        intruder_record.result = intruder.handler(
            intruder.default_payload(0), context)
        for name, service in intruder_services.items():
            if hasattr(service, "take_receipt"):
                intruder_record.attach_receipt(name, service.take_receipt())
        intruder_program = intruder.invocation_program(
            intruder_record, intruder_services, self.scale, seed=self.seed)
        warmed = self.system.warm(SERVER_CORE, intruder_program, seed=self.seed)
        if self.tracer is not None:
            self.tracer.advance(warmed)

        victim_program = function.invocation_program(
            base.records[-1], services or {}, self.scale, seed=self.seed)
        self.system.reset_stats()
        result = self.system.run(SERVER_CORE, victim_program, model="o3",
                                 seed=self.seed, sampling=self.sampling)
        dump = self.system.dump_stats()
        lukewarm = RequestStats(result.cycles, result.instructions, dump,
                                self.system.name)
        return LukewarmMeasurement(base, lukewarm, intruder.name)

    def _wrap_services(self, services: Dict[str, Any]) -> Dict[str, Any]:
        """Under an armed fault plan, put memcached behind the breaker.

        The :class:`~repro.faults.ResilientCache` degrades injected
        ``db.timeout`` fires to cache misses, so cached handlers fall
        through to the backing DB with no handler changes.  With no
        faults the services pass through untouched.
        """
        if self.faults is None:
            return services
        from repro.faults.policy import ResilientCache

        wrapped = dict(services)
        cache = wrapped.get("memcached")
        if cache is not None and not isinstance(cache, ResilientCache):
            wrapped["memcached"] = ResilientCache(cache, injector=self.faults)
        return wrapped

    @staticmethod
    def _stores_of(services: Optional[Dict[str, Any]]) -> List[Any]:
        if not services:
            return []
        return [service for service in services.values()
                if hasattr(service, "boot_profile")]


def run_suite(
    functions: Iterable["VSwarmFunction"],
    isa: str,
    scale: SimScale = BENCH,
    services_for=None,
    seed: int = 0,
) -> Dict[str, FunctionMeasurement]:
    """Measure a batch of functions on one platform.

    ``services_for(function)`` supplies the bound services (database,
    memcached) per function; each function gets a fresh harness so one
    benchmark's microarchitectural state never leaks into another — the
    per-function checkpoint discipline of the thesis's workflow.
    """
    measurements: Dict[str, FunctionMeasurement] = {}
    for function in functions:
        harness = ExperimentHarness(isa=isa, scale=scale, seed=seed)
        services = services_for(function) if services_for else {}
        measurements[function.name] = harness.measure_function(function,
                                                               services=services)
    return measurements
