"""Design-space exploration (the thesis's §6 future-work direction).

"Another interesting direction that we plan to follow is to perform a
detailed design space exploration with respect to various
microarchitectural characteristics, such as caches, branch predictors,
and prefetchers, using the gem5 simulator."

:class:`DesignSpace` sweeps named parameter axes over the platform
configuration, runs the full cold/warm protocol per design point, and
collects a :class:`SweepResult` suitable for sensitivity ranking.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import PlatformConfig, platform_for
from repro.core.harness import ExperimentHarness, FunctionMeasurement
from repro.core.scale import BENCH, SimScale
from repro.sim.cpu.o3 import O3Config
from repro.sim.mem.hierarchy import MemoryHierarchyConfig

#: The sweepable knobs: axis name -> (target object, attribute).
KNOWN_AXES = {
    "l1i_size": ("mem", "l1i_size"),
    "l1d_size": ("mem", "l1d_size"),
    "l2_size": ("mem", "l2_size"),
    "l2_assoc": ("mem", "l2_assoc"),
    "replacement": ("mem", "replacement"),
    "prefetch_i_degree": ("mem", "prefetch_i_degree"),
    "prefetch_d_degree": ("mem", "prefetch_d_degree"),
    "prefetch_i_kind": ("mem", "prefetch_i_kind"),
    "prefetch_d_kind": ("mem", "prefetch_d_kind"),
    "l2_latency": ("mem", "l2_latency"),
    "rob_entries": ("o3", "rob_entries"),
    "lq_entries": ("o3", "lq_entries"),
    "sq_entries": ("o3", "sq_entries"),
    "dispatch_width": ("o3", "dispatch_width"),
    "commit_width": ("o3", "commit_width"),
    "mispredict_penalty": ("o3", "mispredict_penalty"),
    "branch_predictor": ("o3", "branch_predictor"),
}


class DesignPoint:
    """One configuration in the sweep plus its measurement."""

    def __init__(self, settings: Dict[str, Any], measurement: FunctionMeasurement):
        self.settings = settings
        self.measurement = measurement

    @property
    def cold_cycles(self) -> int:
        return self.measurement.cold.cycles

    @property
    def warm_cycles(self) -> int:
        return self.measurement.warm.cycles

    def __repr__(self) -> str:
        return "DesignPoint(%s: cold=%d, warm=%d)" % (
            self.settings, self.cold_cycles, self.warm_cycles,
        )


class SweepResult:
    """All design points of one sweep, with analysis helpers."""

    def __init__(self, function_name: str, isa: str, points: List[DesignPoint]):
        self.function_name = function_name
        self.isa = isa
        self.points = points

    def best(self, metric: Callable[[DesignPoint], float] = None) -> DesignPoint:
        metric = metric or (lambda point: point.cold_cycles)
        return min(self.points, key=metric)

    def worst(self, metric: Callable[[DesignPoint], float] = None) -> DesignPoint:
        metric = metric or (lambda point: point.cold_cycles)
        return max(self.points, key=metric)

    def sensitivity(self, metric: Callable[[DesignPoint], float] = None) -> Dict[str, float]:
        """Per-axis sensitivity: max/min metric ratio holding others fixed.

        For each axis, groups points by the values of every *other* axis
        and takes the worst-case spread within a group; the returned ratio
        is how much that knob alone can swing the metric.  1.0 means the
        knob does not matter for this workload.
        """
        metric = metric or (lambda point: point.cold_cycles)
        axes = sorted({axis for point in self.points for axis in point.settings})
        spreads: Dict[str, float] = {}
        for axis in axes:
            worst_ratio = 1.0
            groups: Dict[Tuple, List[float]] = {}
            for point in self.points:
                key = tuple(
                    (other, point.settings[other]) for other in axes if other != axis
                )
                groups.setdefault(key, []).append(metric(point))
            for values in groups.values():
                if len(values) > 1 and min(values) > 0:
                    worst_ratio = max(worst_ratio, max(values) / min(values))
            spreads[axis] = worst_ratio
        return spreads

    def render(self) -> str:
        axes = sorted({axis for point in self.points for axis in point.settings})
        lines = ["DSE sweep: %s on %s" % (self.function_name, self.isa)]
        header = "  ".join("%-18s" % axis for axis in axes) + \
            "  %12s  %12s" % ("cold_cycles", "warm_cycles")
        lines.append(header)
        for point in self.points:
            row = "  ".join("%-18s" % (point.settings[axis],) for axis in axes)
            lines.append("%s  %12d  %12d" % (row, point.cold_cycles,
                                             point.warm_cycles))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.points)


class DesignSpace:
    """A cartesian sweep over microarchitectural axes."""

    def __init__(self, isa: str = "riscv", scale: SimScale = BENCH,
                 base_platform: Optional[PlatformConfig] = None):
        self.isa = isa
        self.scale = scale
        self.base_platform = base_platform or platform_for(isa)
        self._axes: List[Tuple[str, Sequence[Any]]] = []

    def axis(self, name: str, values: Iterable[Any]) -> "DesignSpace":
        """Add a sweep axis; returns self for chaining."""
        if name not in KNOWN_AXES:
            raise ValueError("unknown axis %r; have %s" % (name, sorted(KNOWN_AXES)))
        values = list(values)
        if not values:
            raise ValueError("axis %r needs at least one value" % name)
        self._axes.append((name, values))
        return self

    def _platform_for(self, settings: Dict[str, Any]) -> PlatformConfig:
        base_mem = self.base_platform.mem_config
        base_o3 = self.base_platform.o3_config
        mem_kwargs = {
            key: getattr(base_mem, key)
            for key in MemoryHierarchyConfig().__dict__
        }
        o3_kwargs = {
            key: getattr(base_o3, key) for key in O3Config().__dict__
        }
        for axis, value in settings.items():
            target, attribute = KNOWN_AXES[axis]
            if target == "mem":
                mem_kwargs[attribute] = value
            else:
                o3_kwargs[attribute] = value
        return PlatformConfig(
            isa=self.isa,
            os_name=self.base_platform.os_name,
            kernel_version=self.base_platform.kernel_version,
            compiler=self.base_platform.compiler,
            num_cores=self.base_platform.num_cores,
            mem_config=MemoryHierarchyConfig(**mem_kwargs),
            o3_config=O3Config(**o3_kwargs),
        )

    def sweep(self, function, services_factory=None, seed: int = 0,
              jobs: Optional[int] = None, cache=None) -> SweepResult:
        """Measure the function at every point of the cartesian product.

        Points are scheduled through the parallel measurement engine and
        the result cache (each point's platform fingerprint is part of
        its cache key), returned in cartesian-product order regardless
        of worker count.  ``services_factory`` (optional) builds fresh
        bound services per design point for database-backed functions
        and forces the in-process serial path.
        """
        if not self._axes:
            raise ValueError("add at least one axis before sweeping")
        names = [name for name, _values in self._axes]
        combos = [dict(zip(names, combo)) for combo in
                  itertools.product(*(values for _name, values in self._axes))]

        if services_factory is not None:
            points: List[DesignPoint] = []
            for settings in combos:
                harness = ExperimentHarness(
                    isa=self.isa, scale=self.scale,
                    platform_config=self._platform_for(settings), seed=seed)
                measurement = harness.measure_function(
                    function, services=services_factory())
                points.append(DesignPoint(settings, measurement))
            return SweepResult(function.name, self.isa, points)

        from repro.core.parallel import run_measurement_matrix
        from repro.core.spec import MeasurementSpec

        tasks = [
            MeasurementSpec(function=function.name, isa=self.isa,
                            time=self.scale.time, space=self.scale.space,
                            seed=seed, platform=self._platform_for(settings))
            for settings in combos
        ]
        measured = run_measurement_matrix(tasks, jobs=jobs, cache=cache)
        points = [DesignPoint(settings, measurement)
                  for settings, measurement in zip(combos, measured)]
        return SweepResult(function.name, self.isa, points)
