"""Platform configurations (Tables 4.1, 4.2, 4.3 of the thesis).

One shared microarchitectural configuration for both simulated platforms
— the point of the thesis's methodology is that only the ISA and its
software stack differ — plus the per-ISA software specifics.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.cpu.o3 import O3Config
from repro.sim.mem.hierarchy import MemoryHierarchyConfig
from repro.sim.ticks import Frequency


class PlatformConfig:
    """Everything needed to instantiate one simulated platform."""

    def __init__(
        self,
        isa: str,
        os_name: str,
        kernel_version: str = "5.15.59",
        docker_version: str = "25.0.0",
        compiler: str = "gcc",
        num_cores: int = 2,
        frequency_ghz: int = 1,
        mem_config: MemoryHierarchyConfig = None,
        o3_config: O3Config = None,
    ):
        self.isa = isa
        self.os_name = os_name
        self.kernel_version = kernel_version
        self.docker_version = docker_version
        self.compiler = compiler
        self.num_cores = num_cores
        self.frequency = Frequency.from_ghz(frequency_ghz)
        self.mem_config = mem_config or MemoryHierarchyConfig()
        self.o3_config = o3_config or O3Config()

    def fingerprint(self) -> tuple:
        """Hashable identity of the microarchitectural configuration
        (used to key checkpoint caches: a checkpoint only fits the
        geometry it was taken on)."""
        mem = tuple(sorted(self.mem_config.__dict__.items()))
        o3 = tuple(sorted(self.o3_config.__dict__.items()))
        return (self.num_cores, self.frequency.hertz, mem, o3)

    def common_parameters(self) -> Dict[str, str]:
        """Table 4.1 rows."""
        mem = self.mem_config
        o3 = self.o3_config
        return {
            "L1 I Cache": "%d Cores x %dKB, %d-way set associative"
                          % (self.num_cores, mem.l1i_size // 1024, mem.l1i_assoc),
            "L1 D Cache": "%d Cores x %dKB, %d-way set associative"
                          % (self.num_cores, mem.l1d_size // 1024, mem.l1d_assoc),
            "L2 Cache": "%d Cores x %dKB, %d-way set associative"
                        % (self.num_cores, mem.l2_size // 1024, mem.l2_assoc),
            "RAM": "2GB, DDR3 1600, 800MHz, Single Channel",
            "ITLB Page walk caches": "%d Cores x 8KB" % self.num_cores,
            "DTLB Page walk caches": "%d Cores x 8KB" % self.num_cores,
            "ROB": "%d entries" % o3.rob_entries,
            "LSQs": "%d Load entries + %d Store entries" % (o3.lq_entries, o3.sq_entries),
            "Registers": "%d Int + %d Float" % (o3.int_regs, o3.float_regs),
            "Number Of Cores": str(self.num_cores),
            "Clock Frequency": "%dGHz" % (self.frequency.hertz // 10**9),
            "Linux Kernel": self.kernel_version,
            "Docker Version": self.docker_version,
        }

    def specific_parameters(self) -> Dict[str, str]:
        """Tables 4.2 / 4.3 rows."""
        return {"Os": self.os_name, "kernel compiled with gcc": self.compiler}

    def __repr__(self) -> str:
        return "PlatformConfig(%s)" % self.isa


#: Table 4.2: the RISC-V platform.
RISCV_PLATFORM = PlatformConfig(
    isa="riscv",
    os_name="Ubuntu Jammy 22.04.3 Preinstalled Server",
    compiler="riscv64-unknown-linux-gnu-gcc 13.2.0",
)

#: Table 4.3: the x86 platform.
X86_PLATFORM = PlatformConfig(
    isa="x86",
    os_name="Ubuntu Jammy 22.04.4 Live Server",
    compiler="gcc 11.4.0",
)

#: Arm platform: the third ISA vSwarm supports; extends the thesis's
#: comparison per its future-work direction.
ARM_PLATFORM = PlatformConfig(
    isa="arm",
    os_name="Ubuntu Jammy 22.04.4 Server (arm64)",
    compiler="aarch64-linux-gnu-gcc 11.4.0",
)

_PLATFORMS = {"riscv": RISCV_PLATFORM, "x86": X86_PLATFORM, "arm": ARM_PLATFORM}


def platform_for(isa: str) -> PlatformConfig:
    """The canonical platform configuration for an ISA."""
    try:
        return _PLATFORMS[isa]
    except KeyError:
        raise ValueError("no platform for ISA %r (have %s)" % (isa, sorted(_PLATFORMS)))


def common_config_rows() -> List[str]:
    """Pretty rows of Table 4.1 (identical across platforms by design)."""
    riscv_rows = RISCV_PLATFORM.common_parameters()
    x86_rows = X86_PLATFORM.common_parameters()
    if riscv_rows != x86_rows:
        raise AssertionError(
            "platform divergence: the thesis's fair-comparison premise "
            "requires identical common parameters"
        )
    return ["%s: %s" % (key, value) for key, value in riscv_rows.items()]
