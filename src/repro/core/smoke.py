"""Perf smoke harness: time a fixed measurement batch, emit JSON.

``python -m repro bench-smoke --json`` runs a pinned batch (standalone +
online shop + hotel on RISC-V, TEST scale, seed 0) with the result cache
disabled, so the number it reports is honest simulation wall-clock.  The
JSON is the perf trajectory's unit of record: CI uploads one per run, and
a future regression in the simulator hot path shows up as a step in
``wall_s`` under identical work.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional

#: Bump when the smoke workload itself changes, so trajectories are only
#: compared within a generation.
SMOKE_SCHEMA = "repro-bench-smoke/1"


def run_smoke(jobs: Optional[int] = None, cache=False) -> Dict[str, Any]:
    """Run the pinned smoke batch; returns the JSON-ready report."""
    from repro.core.parallel import resolve_jobs
    from repro.core.reproduce import measure
    from repro.core.scale import TEST
    from repro.core.spec import MeasurementSpec

    resolved_jobs = resolve_jobs(jobs)
    batches: Dict[str, Dict[str, Any]] = {}

    start_total = time.perf_counter()
    start = time.perf_counter()
    standalone = measure(
        MeasurementSpec(function="standalone+shop", isa="riscv", scale=TEST,
                        seed=0),
        jobs=jobs, cache=cache)
    batches["riscv_standalone_shop"] = {
        "functions": len(standalone),
        "wall_s": round(time.perf_counter() - start, 3),
    }
    start = time.perf_counter()
    hotel = measure(
        MeasurementSpec(function="hotel", isa="riscv", scale=TEST, seed=0,
                        db="cassandra"),
        jobs=jobs, cache=cache)
    batches["riscv_hotel"] = {
        "functions": len(hotel),
        "wall_s": round(time.perf_counter() - start, 3),
    }
    wall_total = time.perf_counter() - start_total

    total_instructions = sum(
        m.cold.instructions + m.warm.instructions
        for batch in (standalone, hotel) for m in batch.values()
    )
    return {
        "schema": SMOKE_SCHEMA,
        "scale": {"time": TEST.time, "space": TEST.space},
        "seed": 0,
        "jobs": resolved_jobs,
        "cache": "disabled" if cache is False else "enabled",
        "batches": batches,
        "functions": sum(b["functions"] for b in batches.values()),
        "simulated_instructions": total_instructions,
        "wall_s": round(wall_total, 3),
    }


def render_smoke(report: Dict[str, Any], as_json: bool) -> str:
    """Render the report for the CLI (JSON or a short human summary)."""
    if as_json:
        return json.dumps(report, indent=2, sort_keys=True)
    lines = ["bench-smoke: %d functions in %.2fs (%d jobs, cache %s)" % (
        report["functions"], report["wall_s"], report["jobs"], report["cache"])]
    for name, batch in report["batches"].items():
        lines.append("  %-24s %2d functions  %8.2fs"
                     % (name, batch["functions"], batch["wall_s"]))
    return "\n".join(lines)
