"""Perf smoke harness: time a fixed measurement batch, track a trajectory.

``python -m repro bench-smoke --json`` runs a pinned batch (standalone +
online shop + hotel on RISC-V, TEST scale, seed 0) with the result cache
disabled, so the number it reports is honest simulation wall-clock.

Schema v2 makes ``BENCH_SMOKE.json`` a *trajectory*: a list of entries
keyed by git SHA and date, appended with ``bench-smoke --append``, so
the perf history accumulates per PR instead of overwriting a single
snapshot.  CI appends an entry per run, uploads the file as an artifact,
and fails on a wall-clock regression beyond its threshold vs the
previous entry.  A v1 single-snapshot file migrates transparently: it
becomes the trajectory's first entry (with no SHA — it predates the
trajectory).

Beyond the full-detail batch, a smoke run can time three extra phases:

* ``sampled`` — the same batch under a sampling config (default the
  calibrated ``accurate`` preset).  It runs in the same process after
  the full-detail phase and one untimed sampled warmup pass, so
  assembled-program, dataset, decode and compiled-block caches are
  warm; the figure isolates the simulation hot loop the way FireSim's
  fast mode isolates target time, and is honest about that framing.
* ``jit`` — a same-process rerun of the full-detail batch with the
  hot-block JIT's compiled functions already cached, timing pure
  compiled replay; the one-time codegen overhead the earlier phases
  paid is reported separately (``compile``), so compile cost and
  replay benefit never blur into one number.
* ``legacy`` — the same batch with the predecode cache disabled
  (``REPRO_PREDECODE=0`` semantics), giving a same-machine baseline so
  speedups are comparable across differently-provisioned CI hosts.

Every run also times a pinned clustered serve (``cluster_serve``): a
burst arrival trace through :class:`~repro.serverless.platform.
ClusterPlatform` at three nodes with spread placement, so the trajectory
records the cluster scheduling path's wall-clock alongside the
simulation batches.  And a pinned ML-inference batch (``ml_infer``): the
quantized inference functions measured on RISC-V with the RVV vector
lane enabled, so the vector lowering and its tier interaction have a
wall-clock of their own in the trajectory.
"""

from __future__ import annotations

import json
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: Bump when the smoke workload itself changes, so trajectories are only
#: compared within a generation.
SMOKE_SCHEMA = "repro-bench-smoke/2"

#: Default trajectory location (repo root in the source checkout).
TRAJECTORY_PATH = "BENCH_SMOKE.json"


def _run_batches(jobs, cache, sampling=None) -> Tuple[Dict[str, Any], int, float]:
    """Time the pinned batches; returns (batches, instructions, wall_s)."""
    from repro.core.reproduce import measure
    from repro.core.scale import TEST
    from repro.core.spec import MeasurementSpec

    batches: Dict[str, Dict[str, Any]] = {}
    start_total = time.perf_counter()

    start = time.perf_counter()
    standalone = measure(
        MeasurementSpec(function="standalone+shop", isa="riscv", scale=TEST,
                        seed=0, sampling=sampling),
        jobs=jobs, cache=cache)
    batches["riscv_standalone_shop"] = {
        "functions": len(standalone),
        "wall_s": round(time.perf_counter() - start, 3),
    }
    start = time.perf_counter()
    hotel = measure(
        MeasurementSpec(function="hotel", isa="riscv", scale=TEST, seed=0,
                        db="cassandra", sampling=sampling),
        jobs=jobs, cache=cache)
    batches["riscv_hotel"] = {
        "functions": len(hotel),
        "wall_s": round(time.perf_counter() - start, 3),
    }
    wall_total = time.perf_counter() - start_total

    total_instructions = sum(
        m.cold.instructions + m.warm.instructions
        for batch in (standalone, hotel) for m in batch.values()
    )
    return batches, total_instructions, wall_total


def _run_cluster_serve() -> Dict[str, Any]:
    """Time the pinned clustered serve (the Platform API's hot path)."""
    from repro.serverless.loadgen import arrival_ticks
    from repro.serverless.platform import ClusterConfig, make_platform
    from repro.workloads.catalog import get_function

    function = get_function("fibonacci-python")
    cluster = ClusterConfig(nodes=3, placement="spread")
    start = time.perf_counter()
    platform = make_platform("riscv", cluster=cluster, seed=0)
    platform.registry.push(function.image("riscv"))
    platform.deploy(function.name, function.name, function.runtime_name,
                    function.handler)
    arrivals = arrival_ticks("burst", rps=80.0, requests=150, seed=0)
    result = platform.serve(function.name, arrivals,
                            payload_factory=function.default_payload)
    wall = time.perf_counter() - start
    return {
        "nodes": cluster.nodes,
        "placement": cluster.placement,
        "requests": len(result.records),
        "cross_node": result.cross_node,
        "wall_s": round(wall, 3),
    }


def _run_ml_infer() -> Dict[str, Any]:
    """Time the pinned ML-inference batch (the vector lane end to end)."""
    from repro.core.parallel import execute_task
    from repro.core.scale import TEST
    from repro.core.spec import MeasurementSpec
    from repro.sim.isa.vector import VectorConfig
    from repro.workloads.mlinfer import ML_FUNCTION_NAMES

    vector = VectorConfig.parse("rvv256")
    start = time.perf_counter()
    instructions = 0
    for name in ML_FUNCTION_NAMES:
        spec = MeasurementSpec(function=name, isa="riscv", scale=TEST,
                               seed=0, vector=vector)
        measurement = execute_task(spec)
        instructions += (measurement.cold.instructions
                         + measurement.warm.instructions)
    wall = time.perf_counter() - start
    return {
        "functions": len(ML_FUNCTION_NAMES),
        "vector": vector.fingerprint(),
        "simulated_instructions": instructions,
        "wall_s": round(wall, 3),
    }


def run_smoke(jobs: Optional[int] = None, cache=False,
              sampling: Optional[str] = "accurate",
              legacy: bool = False) -> Dict[str, Any]:
    """Run the pinned smoke batch; returns the JSON-ready report.

    ``sampling`` names the config for the sampled phase (a spec string;
    ``"off"``/``None`` skips the phase).  ``legacy=True`` additionally
    times the batch with the predecode cache disabled, recording a
    same-machine baseline and the derived speedups.
    """
    from repro.core.parallel import resolve_jobs
    from repro.core.scale import TEST
    from repro.sim.isa import blockjit, predecode
    from repro.sim.sampling import SamplingConfig

    resolved_jobs = resolve_jobs(jobs)
    predecode.reset_stats()
    blockjit.reset_stats()
    batches, total_instructions, wall_total = _run_batches(jobs, cache)

    report: Dict[str, Any] = {
        "schema": SMOKE_SCHEMA,
        "scale": {"time": TEST.time, "space": TEST.space},
        "seed": 0,
        "jobs": resolved_jobs,
        "cache": "disabled" if cache is False else "enabled",
        "batches": batches,
        "functions": sum(b["functions"] for b in batches.values()),
        "simulated_instructions": total_instructions,
        "wall_s": round(wall_total, 3),
    }

    report["cluster_serve"] = _run_cluster_serve()
    report["ml_infer"] = _run_ml_infer()

    config = SamplingConfig.parse(sampling)
    if config is not None:
        # Untimed warmup pass: the sampled path has one-time costs of
        # its own (warm-path decode, and JIT codegen for warm/windowed
        # units the full-detail phase never ran), which would otherwise
        # land inside the timed window.  The phase's contract is the
        # warm simulation hot loop, so pay them here.
        _run_batches(jobs, cache, sampling=config)
        sampled_batches, _, sampled_wall = _run_batches(
            jobs, cache, sampling=config)
        report["sampled"] = {
            "sampling": config.fingerprint(),
            "batches": sampled_batches,
            "wall_s": round(sampled_wall, 3),
            "note": "same-process rerun after the full-detail phase and "
                    "an untimed sampled warmup pass; assembled-program, "
                    "dataset, decode and compiled-block caches are warm, "
                    "so this isolates the simulation hot loop",
        }

    if blockjit.enabled() and predecode.enabled():
        replays = predecode.STATS["block_replays"]
        compile_stats = {
            "compiled_units": blockjit.STATS["compiled_units"],
            "compile_s": round(blockjit.STATS["compile_s"], 3),
            "declined": blockjit.STATS["declined"],
            "compiled_calls": blockjit.STATS["compiled_calls"],
            "interpreted_calls": blockjit.STATS["interpreted_calls"],
        }
        jit_batches, _, jit_wall = _run_batches(jobs, cache)
        report["jit"] = {
            "batches": jit_batches,
            "wall_s": round(jit_wall, 3),
            "compile": compile_stats,
            "predecode": {
                "block_replays": replays,
                "decoded_blocks": predecode.STATS["decoded_blocks"],
            },
            "note": "same-process rerun with hot blocks already "
                    "compiled: pure tier-3 replay; 'compile' totals "
                    "the one-time codegen overhead paid by the "
                    "earlier phases",
        }

    if legacy:
        _clear_process_caches()
        previous = predecode.set_enabled(False)
        try:
            legacy_batches, _, legacy_wall = _run_batches(jobs, cache)
        finally:
            predecode.set_enabled(previous)
            _clear_process_caches()
        report["legacy"] = {
            "batches": legacy_batches,
            "wall_s": round(legacy_wall, 3),
            "note": "predecode cache disabled: same-machine baseline",
        }
        if wall_total:
            report["speedup_vs_legacy"] = round(legacy_wall / wall_total, 2)
        if config is not None and report["sampled"]["wall_s"]:
            report["sampled_speedup_vs_legacy"] = round(
                legacy_wall / report["sampled"]["wall_s"], 2)
    return report


def _clear_process_caches() -> None:
    """Drop process-wide warm state (boot checkpoints, shared assembled
    programs, dataset blobs) so the next phase pays cold costs — the
    legacy baseline must be comparable to a fresh-process run, not to a
    third same-process pass over warm caches."""
    from repro.core.harness import clear_boot_checkpoint_cache
    from repro.sim import system
    from repro.workloads import hotel

    clear_boot_checkpoint_cache()
    system._SHARED_ASSEMBLED.clear()
    hotel._DATASET_CACHE.clear()


def _git_sha() -> Optional[str]:
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            stderr=subprocess.DEVNULL).decode().strip() or None
    except (OSError, subprocess.CalledProcessError):
        return None


def _git_added_provenance(path) -> Tuple[Optional[str], Optional[str]]:
    """(short sha, UTC date) of the commit that first added ``path``.

    Used to backfill provenance on a migrated v1 snapshot: the snapshot
    was committed by whichever commit created the trajectory file, so
    git history is the authoritative source for its missing sha/date.
    """
    try:
        out = subprocess.check_output(
            ["git", "log", "--follow", "--diff-filter=A",
             "--format=%h %cI", "--", str(path)],
            stderr=subprocess.DEVNULL).decode()
    except (OSError, subprocess.CalledProcessError):
        return None, None
    lines = [line for line in out.splitlines() if line.strip()]
    if not lines:
        return None, None
    sha, _, stamp = lines[-1].partition(" ")
    try:
        when = datetime.fromisoformat(stamp).astimezone(timezone.utc)
        date: Optional[str] = when.strftime("%Y-%m-%dT%H:%M:%SZ")
    except ValueError:
        date = None
    return sha or None, date


def load_trajectory(path=TRAJECTORY_PATH) -> Dict[str, Any]:
    """Load (or initialise) the trajectory; migrates a v1 snapshot."""
    target = Path(path)
    if not target.exists():
        return {"schema": SMOKE_SCHEMA, "entries": []}
    data = json.loads(target.read_text())
    if isinstance(data, dict) and isinstance(data.get("entries"), list):
        return {"schema": SMOKE_SCHEMA, "entries": data["entries"]}
    # v1 single snapshot: it becomes the first trajectory entry, stamped
    # with the provenance of the commit that added the snapshot file.
    entry = dict(data)
    if entry.get("sha") is None or entry.get("date") is None:
        sha, date = _git_added_provenance(target)
        if entry.get("sha") is None:
            entry["sha"] = sha
        if entry.get("date") is None:
            entry["date"] = date
    return {"schema": SMOKE_SCHEMA, "entries": [entry]}


def append_entry(report: Dict[str, Any], path=TRAJECTORY_PATH,
                 sha: Optional[str] = None) -> Tuple[Dict[str, Any],
                                                     Optional[Dict[str, Any]]]:
    """Append a smoke report to the trajectory file.

    Returns ``(entry, previous_entry)`` — the previous entry is what a
    regression gate compares against (None on the first append).
    """
    trajectory = load_trajectory(path)
    entry = dict(report)
    entry["sha"] = sha if sha is not None else _git_sha()
    entry["date"] = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    previous = trajectory["entries"][-1] if trajectory["entries"] else None
    trajectory["entries"].append(entry)
    Path(path).write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    return entry, previous


def wall_regression(previous: Optional[Dict[str, Any]],
                    entry: Dict[str, Any]) -> Optional[float]:
    """Fractional wall-clock change vs the previous entry (+0.30 = 30%
    slower); None when there is nothing to compare against."""
    if not previous or not previous.get("wall_s") or not entry.get("wall_s"):
        return None
    return entry["wall_s"] / previous["wall_s"] - 1.0


#: Phases whose wall-clocks the CI gate compares alongside the top-level
#: batch wall: a regression confined to the sampled fast path, the
#: cluster scheduling path, compiled replay, or the vector lane must
#: fail the gate even when the full-detail batch happens to absorb it.
GATED_PHASES = ("sampled", "cluster_serve", "jit", "ml_infer")


def phase_regressions(previous: Optional[Dict[str, Any]],
                      entry: Dict[str, Any]) -> Dict[str, float]:
    """Per-phase fractional wall-clock changes vs the previous entry.

    Covers :data:`GATED_PHASES` and fails *closed*: once the previous
    entry records a phase, it must stay comparable — a zero or missing
    baseline wall, or a phase that vanished from (or recorded no wall
    in) the current run, raises :class:`ValueError` instead of silently
    passing the gate.  Phases the previous entry never recorded are
    skipped — a brand-new phase has no baseline on its first append;
    :func:`phase_gate_skips` reports those so the skip is visible.
    """
    out: Dict[str, float] = {}
    for phase in GATED_PHASES:
        before = (previous or {}).get(phase)
        after = entry.get(phase)
        if before is None:
            # The phase postdates the baseline entry: nothing to gate
            # yet; it enters the gate on the next append.
            continue
        if not before.get("wall_s"):
            raise ValueError(
                "cannot gate phase %r: baseline wall_s is %r (zero or "
                "missing) in the previous trajectory entry; re-run "
                "bench-smoke --append to record a usable baseline"
                % (phase, before.get("wall_s")))
        if after is None or not after.get("wall_s"):
            raise ValueError(
                "cannot gate phase %r: recorded in the previous entry "
                "but wall_s is %r in this run — the phase vanished or "
                "recorded no wall, failing closed"
                % (phase, (after or {}).get("wall_s")))
        out[phase] = after["wall_s"] / before["wall_s"] - 1.0
    return out


def phase_gate_skips(previous: Optional[Dict[str, Any]],
                     entry: Dict[str, Any]) -> List[str]:
    """Gated phases this run recorded but the previous entry did not.

    These have no baseline to compare against (the first ``ml_infer``
    append is the canonical case); the gate skips them this run, and the
    CLI prints them so the skip never looks like a silent pass.
    """
    return [phase for phase in GATED_PHASES
            if entry.get(phase) and not (previous or {}).get(phase)]


def render_smoke(report: Dict[str, Any], as_json: bool) -> str:
    """Render the report for the CLI (JSON or a short human summary)."""
    if as_json:
        return json.dumps(report, indent=2, sort_keys=True)
    lines = ["bench-smoke: %d functions in %.2fs (%d jobs, cache %s)" % (
        report["functions"], report["wall_s"], report["jobs"], report["cache"])]
    for name, batch in report["batches"].items():
        lines.append("  %-24s %2d functions  %8.2fs"
                     % (name, batch["functions"], batch["wall_s"]))
    cluster = report.get("cluster_serve")
    if cluster:
        lines.append("  cluster serve (%d nodes, %s): %d requests  %8.2fs"
                     % (cluster["nodes"], cluster["placement"],
                        cluster["requests"], cluster["wall_s"]))
    ml_infer = report.get("ml_infer")
    if ml_infer:
        lines.append("  ml infer (%s): %d functions  %8.2fs"
                     % (ml_infer["vector"], ml_infer["functions"],
                        ml_infer["wall_s"]))
    sampled = report.get("sampled")
    if sampled:
        lines.append("  sampled (%s): %.2fs" % (
            sampled["sampling"], sampled["wall_s"]))
    jit = report.get("jit")
    if jit:
        compile_stats = jit["compile"]
        lines.append("  jit warm replay: %.2fs (%d units compiled in "
                     "%.2fs, %d declined)" % (
                         jit["wall_s"], compile_stats["compiled_units"],
                         compile_stats["compile_s"],
                         compile_stats["declined"]))
    legacy = report.get("legacy")
    if legacy:
        lines.append("  legacy (no predecode): %.2fs" % legacy["wall_s"])
        if "speedup_vs_legacy" in report:
            lines.append("  speedup vs legacy: %.1fx full detail%s" % (
                report["speedup_vs_legacy"],
                (", %.1fx sampled" % report["sampled_speedup_vs_legacy"])
                if "sampled_speedup_vs_legacy" in report else ""))
    return "\n".join(lines)
