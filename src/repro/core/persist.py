"""Result persistence and gem5-style rendering.

Measurements serialize to JSON for archival and cross-run comparison, and
stat dumps render in the ``stats.txt`` format gem5 users grep through —
``name  value  # description`` — so existing post-processing habits
carry over.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional

from repro.core.harness import FunctionMeasurement, RequestStats

FORMAT_VERSION = 1


def stats_to_dict(stats: RequestStats) -> Dict[str, Any]:
    """JSON-ready view of one request's counters (CPI included)."""
    payload = stats.as_dict(full=True)
    payload.pop("raw_dump", None)
    return payload


def measurement_to_dict(measurement: FunctionMeasurement) -> Dict[str, Any]:
    """A JSON-ready snapshot of one function's cold+warm measurement."""
    payload = measurement.as_dict()
    payload["cold"] = stats_to_dict(measurement.cold)
    payload["warm"] = stats_to_dict(measurement.warm)
    payload["cold_warm_cycle_ratio"] = measurement.cold_warm_cycle_ratio
    payload["requests"] = len(measurement.records)
    return payload


def save_measurements(
    measurements: Mapping[str, FunctionMeasurement],
    path,
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Persist a batch of measurements as a JSON document."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "format_version": FORMAT_VERSION,
        "metadata": metadata or {},
        "measurements": {
            name: measurement_to_dict(measurement)
            for name, measurement in measurements.items()
        },
    }
    target.write_text(json.dumps(document, indent=2, sort_keys=True))
    return target


def load_measurements(path) -> Dict[str, Dict[str, Any]]:
    """Load a persisted batch (plain dicts; the sim state is not kept)."""
    document = json.loads(Path(path).read_text())
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError("unsupported results format %r (expected %d)"
                         % (version, FORMAT_VERSION))
    return document["measurements"]


def diff_measurements(
    before: Mapping[str, Dict[str, Any]],
    after: Mapping[str, Dict[str, Any]],
    metric: str = "cycles",
    mode: str = "cold",
) -> Dict[str, float]:
    """Per-function after/before ratios for a metric (regression hunting)."""
    ratios: Dict[str, float] = {}
    for name in sorted(set(before) & set(after)):
        old = before[name][mode][metric]
        new = after[name][mode][metric]
        if old:
            ratios[name] = new / old
    return ratios


def render_stats_txt(
    dump: Mapping[str, float],
    descriptions: Optional[Mapping[str, str]] = None,
) -> str:
    """Render a stat dump in gem5's stats.txt layout."""
    descriptions = descriptions or {}
    lines = ["---------- Begin Simulation Statistics ----------"]
    width = max((len(name) for name in dump), default=0) + 2
    for name in sorted(dump):
        value = dump[name]
        if isinstance(value, float) and not value.is_integer():
            rendered = "%12.6f" % value
        else:
            rendered = "%12d" % int(value)
        comment = descriptions.get(name, "")
        lines.append("%s %s%s" % (
            name.ljust(width), rendered,
            ("    # " + comment) if comment else "",
        ))
    lines.append("---------- End Simulation Statistics   ----------")
    return "\n".join(lines)


def write_stats_txt(dump: Mapping[str, float], path) -> Path:
    """Write a dump to disk in stats.txt form (the m5 dump artifact)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_stats_txt(dump) + "\n")
    return target
