"""Syscall-emulation (SE) mode — gem5's second system mode (§2.4.1).

Full-system mode boots an unmodified kernel and models everything; SE
mode "does not emulate all of the devices in a system and focuses on
simulating the CPU and memory system ... only emulates Linux system
calls, and thus only models user-mode code".  It is *much easier to
configure* — no disk image, no kernel build, no boot — at the cost of
missing the OS behaviour that dominates serverless cold starts.

:func:`se_run` executes one user-level program on a fresh system with
syscalls absorbed at a fixed emulation cost.  The included comparison
helper quantifies what SE mode misses for serverless work, which is why
the thesis (and this reproduction) had to fight through full-system
kernel builds instead.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.sim.cpu.base import RunResult
from repro.sim.mem.hierarchy import MemoryHierarchyConfig
from repro.sim.system import SimulatedSystem


class SEResult:
    """Outcome of one SE-mode run."""

    def __init__(self, run: RunResult, stats: Dict[str, float], syscalls: int):
        self.run = run
        self.stats = stats
        self.syscalls = syscalls

    @property
    def cycles(self) -> int:
        return self.run.cycles

    @property
    def instructions(self) -> int:
        return self.run.instructions

    def __repr__(self) -> str:
        return "SEResult(cycles=%d, insts=%d, syscalls=%d)" % (
            self.cycles, self.instructions, self.syscalls,
        )


def se_run(
    program,
    isa: str = "riscv",
    model: str = "o3",
    mem_config: Optional[MemoryHierarchyConfig] = None,
    seed: int = 0,
) -> SEResult:
    """Run one user-level program in syscall-emulation mode.

    The system starts empty — no boot, no OS residue in the caches, no
    checkpoint dance — exactly the configuration convenience gem5's SE
    mode exists for.  System calls in the program still execute (our
    instruction stream carries their trap sequences), standing in for the
    emulated-syscall handler the SE kernel shim provides.
    """
    system = SimulatedSystem(
        name="se",
        isa_name=isa,
        mem_config=mem_config or MemoryHierarchyConfig(),
        seed=seed,
    )
    run = system.run(0, program, model=model, seed=seed)
    dump = system.dump_stats()
    syscalls = int(dump.get(
        "se.cpu0.%s.instsByClass::syscall" % model, 0))
    return SEResult(run, dump, syscalls)


def fs_vs_se_gap(function, scale, isa: str = "riscv",
                 seed: int = 0) -> Tuple[float, float]:
    """How much of a cold serverless request SE mode cannot see.

    Returns ``(fs_cold_cycles, se_cycles)`` for the same invocation: the
    FS measurement includes the booted platform's state and the runtime's
    full cold path; the SE run executes only the user-level program on an
    empty machine.  The gap is the reason the thesis needed full-system
    support ("the faithful execution of serverless workloads in
    simulation platforms is difficult due to the complex software stack").
    """
    from repro.core.harness import ExperimentHarness

    harness = ExperimentHarness(isa=isa, scale=scale, seed=seed)
    fs = harness.measure_function(function)
    program = function.invocation_program(fs.records[0], {}, scale, seed=seed)
    se = se_run(program, isa=isa,
                mem_config=MemoryHierarchyConfig().scaled(scale.space),
                seed=seed)
    return float(fs.cold.cycles), float(se.cycles)
