"""Tick-based time base, mirroring gem5's picosecond tick convention.

One *tick* is one picosecond of simulated time.  Components that run at a
clock (CPUs, caches, memory controllers) belong to a :class:`ClockDomain`
which converts between cycles and ticks.  Using an integer time base keeps
event ordering exact and checkpointable.
"""

from __future__ import annotations

TICKS_PER_SECOND = 10**12


class Frequency:
    """A clock frequency with exact tick arithmetic.

    >>> Frequency.from_ghz(1).period_ticks
    1000
    """

    __slots__ = ("hertz",)

    def __init__(self, hertz: int):
        if hertz <= 0:
            raise ValueError("frequency must be positive, got %r" % hertz)
        if TICKS_PER_SECOND % hertz != 0:
            raise ValueError(
                "frequency %d Hz does not divide the %d ticks/s time base"
                % (hertz, TICKS_PER_SECOND)
            )
        self.hertz = hertz

    @classmethod
    def from_mhz(cls, mhz: int) -> "Frequency":
        return cls(mhz * 10**6)

    @classmethod
    def from_ghz(cls, ghz: int) -> "Frequency":
        return cls(ghz * 10**9)

    @property
    def period_ticks(self) -> int:
        """Length of one cycle in ticks."""
        return TICKS_PER_SECOND // self.hertz

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Frequency) and other.hertz == self.hertz

    def __hash__(self) -> int:
        return hash(("Frequency", self.hertz))

    def __repr__(self) -> str:
        if self.hertz % 10**9 == 0:
            return "Frequency(%dGHz)" % (self.hertz // 10**9)
        if self.hertz % 10**6 == 0:
            return "Frequency(%dMHz)" % (self.hertz // 10**6)
        return "Frequency(%dHz)" % self.hertz


class ClockDomain:
    """Converts between a component's cycles and global ticks.

    gem5 attaches every clocked object to a clock domain; we do the same so
    that, e.g., a 1 GHz core and an 800 MHz memory bus can coexist on one
    event queue.
    """

    __slots__ = ("frequency",)

    def __init__(self, frequency: Frequency):
        self.frequency = frequency

    def cycles_to_ticks(self, cycles: int) -> int:
        return cycles * self.frequency.period_ticks

    def ticks_to_cycles(self, ticks: int) -> int:
        """Whole cycles elapsed after ``ticks`` ticks (rounds down)."""
        return ticks // self.frequency.period_ticks

    def next_cycle_edge(self, tick: int) -> int:
        """The first clock edge at or after ``tick``."""
        period = self.frequency.period_ticks
        return ((tick + period - 1) // period) * period

    def __repr__(self) -> str:
        return "ClockDomain(%r)" % self.frequency
