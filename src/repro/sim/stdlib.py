"""gem5-standard-library-style board builders (§2.4.3).

The thesis escaped the "inefficient, poorly documented" fs.py-derived
configuration scripts by rewriting its workflow on the gem5 stdlib, where
"users can configure simulations in a few lines of Python".  This module
offers the same ergonomics for our simulator: named cache-hierarchy and
processor presets composing into a ready
:class:`~repro.sim.system.SimulatedSystem`.

::

    from repro.sim.stdlib import build_board

    board = build_board(
        isa="riscv",
        processor="o3-2core",
        cache_hierarchy="private-l1-private-l2",
    )
    board.run(1, program, model="o3")
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.cpu.o3 import O3Config
from repro.sim.mem.hierarchy import MemoryHierarchyConfig
from repro.sim.system import SimulatedSystem
from repro.sim.ticks import Frequency

#: Cache-hierarchy presets (name -> config factory).
CACHE_HIERARCHIES: Dict[str, MemoryHierarchyConfig] = {
    # Table 4.1's hierarchy: the default everywhere else in this repo.
    "private-l1-private-l2": MemoryHierarchyConfig(),
    # A small embedded-class hierarchy.
    "small-embedded": MemoryHierarchyConfig(
        l1i_size=16 * 1024, l1d_size=16 * 1024, l1i_assoc=4, l1d_assoc=4,
        l2_size=128 * 1024, l2_assoc=4,
    ),
    # A fat server hierarchy with prefetchers on.
    "big-server": MemoryHierarchyConfig(
        l1i_size=64 * 1024, l1d_size=64 * 1024,
        l2_size=2 * 1024 * 1024, l2_assoc=8,
        prefetch_i_degree=4, prefetch_d_degree=4,
    ),
}

#: Processor presets (name -> (cores, frequency GHz, O3 config)).
PROCESSORS: Dict[str, tuple] = {
    "o3-2core": (2, 1, O3Config()),
    "o3-1core": (1, 1, O3Config()),
    "o3-wide": (2, 1, O3Config(rob_entries=384, dispatch_width=12,
                               commit_width=12)),
    "o3-narrow": (2, 1, O3Config(rob_entries=64, dispatch_width=2,
                                 commit_width=2, lq_entries=16, sq_entries=16)),
}


def list_cache_hierarchies():
    """Names of the available cache-hierarchy presets."""
    return sorted(CACHE_HIERARCHIES)


def list_processors():
    """Names of the available processor presets."""
    return sorted(PROCESSORS)


def build_board(
    isa: str = "riscv",
    processor: str = "o3-2core",
    cache_hierarchy: str = "private-l1-private-l2",
    name: str = "board",
    space_scale: int = 1,
    seed: int = 0,
    frequency_ghz: Optional[int] = None,
) -> SimulatedSystem:
    """Compose a simulated system from named presets.

    ``space_scale`` shrinks cache capacities for scaled-machine runs (see
    :mod:`repro.core.scale`); everything else keeps preset values.
    """
    if processor not in PROCESSORS:
        raise ValueError("unknown processor %r; have %s"
                         % (processor, list_processors()))
    if cache_hierarchy not in CACHE_HIERARCHIES:
        raise ValueError("unknown cache hierarchy %r; have %s"
                         % (cache_hierarchy, list_cache_hierarchies()))
    cores, preset_ghz, o3_config = PROCESSORS[processor]
    mem_config = CACHE_HIERARCHIES[cache_hierarchy]
    if space_scale > 1:
        mem_config = mem_config.scaled(space_scale)
    return SimulatedSystem(
        name=name,
        isa_name=isa,
        mem_config=mem_config,
        o3_config=o3_config,
        num_cores=cores,
        frequency=Frequency.from_ghz(frequency_ghz or preset_ghz),
        seed=seed,
    )
