"""Dynamic instruction trace generation.

An :class:`AssembledProgram` replays into a stream of
``(static_instr, address, taken)`` triples: the functional execution the
CPU timing models consume.  Replay is fully deterministic for a given
(program, ISA, seed) triple — the property that makes checkpointed
experiments repeatable, which the thesis struggled to get from gem5's KVM
core.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, Tuple

from repro.sim.isa.base import (
    AssembledBlock,
    AssembledCall,
    AssembledLoop,
    AssembledRoutine,
    InstrClass,
    StaticInstr,
)

#: A dynamic instruction: the static instruction, the effective byte
#: address (-1 for non-memory ops), and the branch outcome (False for
#: non-branches).
DynInstr = Tuple[StaticInstr, int, bool]

_MAX_CALL_DEPTH = 64


class AssembledProgram:
    """A program lowered to one ISA's instruction layout."""

    def __init__(self, program, isa, routines: Dict[str, AssembledRoutine]):
        self.program = program
        self.isa = isa
        self.routines = routines
        self.entry = program.entry

    @property
    def name(self) -> str:
        return self.program.name

    def code_bytes(self) -> int:
        """Total static code footprint in bytes (all routines)."""
        return sum(routine.code_size for routine in self.routines.values())

    def trace(self, seed: int = 0) -> Iterator[DynInstr]:
        """Replay the program into its dynamic instruction stream."""
        generator = TraceGenerator(self, seed)
        return generator.run()

    def dynamic_length(self, seed: int = 0) -> int:
        """Number of dynamic instructions (functional dry run)."""
        return sum(1 for _ in self.trace(seed))

    def __repr__(self) -> str:
        return "AssembledProgram(%s/%s, %d routines, %d code bytes)" % (
            self.name, self.isa.name, len(self.routines), self.code_bytes(),
        )


class TraceGenerator:
    """Walks an assembled program's structure, producing dynamic instrs."""

    def __init__(self, assembled: AssembledProgram, seed: int = 0):
        self.assembled = assembled
        self.seed = seed

    def run(self) -> Iterator[DynInstr]:
        rng = random.Random("%d|%d|trace" % (self.assembled.program.seed, self.seed))
        entry = self.assembled.routines[self.assembled.entry]
        yield from self._run_routine(entry, rng, depth=0)

    def _run_routine(
        self, routine: AssembledRoutine, rng: random.Random, depth: int
    ) -> Iterator[DynInstr]:
        if depth > _MAX_CALL_DEPTH:
            raise RecursionError(
                "call depth exceeded %d in %r" % (_MAX_CALL_DEPTH, routine.name)
            )
        yield from self._run_body(routine.body, rng, depth)

    def _run_body(self, body: list, rng: random.Random, depth: int) -> Iterator[DynInstr]:
        for node in body:
            if isinstance(node, AssembledBlock):
                yield from self._run_block(node, rng)
            elif isinstance(node, AssembledLoop):
                last = node.trips - 1
                for trip in range(node.trips):
                    yield from self._run_body(node.body, rng, depth)
                    yield (node.backedge, -1, trip != last)
            elif isinstance(node, AssembledCall):
                yield (node.call_instr, -1, False)
                callee = self.assembled.routines[node.routine]
                yield from self._run_routine(callee, rng, depth + 1)
                yield (node.ret_instr, -1, False)
            else:
                raise TypeError("unknown assembled node %r" % (node,))

    @staticmethod
    def _run_block(block: AssembledBlock, rng: random.Random) -> Iterator[DynInstr]:
        for instr in block.instrs:
            repeat = instr.repeat
            if instr.is_mem:
                region = instr.region
                base = region.base
                for offset in instr.pattern.offsets(region, repeat, rng):
                    yield (instr, base + offset, False)
            elif instr.icls == InstrClass.BRANCH:
                probability = instr.taken_probability
                if probability >= 1.0:
                    for _ in range(repeat):
                        yield (instr, -1, True)
                else:
                    for _ in range(repeat):
                        yield (instr, -1, rng.random() < probability)
            else:
                for _ in range(repeat):
                    yield (instr, -1, False)
