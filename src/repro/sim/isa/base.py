"""ISA model base: instruction classes, static instructions, assembler.

Assembly lowers an IR :class:`~repro.sim.isa.ir.Program` into an
:class:`~repro.sim.isa.trace.AssembledProgram`: every block becomes a list
of :class:`StaticInstr` with concrete program counters, byte sizes, and
register operands wired into dependence chains.  The per-ISA subclasses
only provide the lowering tables (expansion factors, instruction sizes,
stack-path multipliers); the structural work is shared here.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.sim.isa import ir

# ---------------------------------------------------------------------------
# Instruction classes (small ints for speed in the timing models)
# ---------------------------------------------------------------------------


class InstrClass:
    """Integer instruction-class codes shared by all ISAs."""

    IALU = 0
    IMUL = 1
    IDIV = 2
    FALU = 3
    FMUL = 4
    FDIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8
    CALL = 9
    RET = 10
    SYSCALL = 11
    CSR = 12
    NOP = 13

    NAMES = [
        "ialu", "imul", "idiv", "falu", "fmul", "fdiv",
        "load", "store", "branch", "call", "ret", "syscall", "csr", "nop",
    ]

    @classmethod
    def name(cls, code: int) -> str:
        return cls.NAMES[code]


#: Block kinds (mirrored from the IR for import convenience).
#: app    — code the developer wrote (compiled handler logic);
#: stack  — runtime/library/OS paths where the thesis measured the x86
#:          software stack executing far more instructions than RISC-V;
#: rtpath — the steady-state per-request path (gRPC server loop, kernel
#:          net stack) whose dynamic length is close across ISAs: the
#:          measured x86 excess concentrates on init/library paths.
BLOCK_APP = "app"
BLOCK_STACK = "stack"
BLOCK_RTPATH = "rtpath"

_COMPUTE_CLASS = {
    ir.OP_IALU: InstrClass.IALU,
    ir.OP_IMUL: InstrClass.IMUL,
    ir.OP_IDIV: InstrClass.IDIV,
    ir.OP_FALU: InstrClass.FALU,
    ir.OP_FMUL: InstrClass.FMUL,
    ir.OP_FDIV: InstrClass.FDIV,
}

#: Register file layout used when wiring dependence chains.  Register 0 is
#: the always-ready zero/constant register; integer chain registers start at
#: 1; floating-point chains live in a disjoint range.
ZERO_REG = 0
INT_CHAIN_BASE = 1
FP_CHAIN_BASE = 64
ADDR_REG = 32  # holds base addresses; written rarely, read by memory ops
NUM_ARCH_REGS = 128


class StaticInstr:
    """One assembled instruction at a fixed program counter.

    ``repeat`` folds tight inner-loop work: the trace generator re-issues
    the instruction ``repeat`` times dynamically (fresh addresses each time)
    without advancing the PC, modelling a hardware-visible micro-loop while
    keeping the instruction footprint honest.
    """

    __slots__ = (
        "pc", "size", "icls", "srcs", "dst", "repeat",
        "region", "pattern", "taken_probability", "is_mem", "target_pc",
        "rotate",
    )

    def __init__(
        self,
        pc: int,
        size: int,
        icls: int,
        srcs: Tuple[int, ...],
        dst: int,
        repeat: int = 1,
        region: Optional[ir.Region] = None,
        pattern: Optional[ir.AddressPattern] = None,
        taken_probability: float = 1.0,
        target_pc: int = 0,
        rotate: Tuple[int, ...] = (),
    ):
        self.pc = pc
        self.size = size
        self.icls = icls
        self.srcs = srcs
        self.dst = dst
        self.repeat = repeat
        self.region = region
        self.pattern = pattern
        self.taken_probability = taken_probability
        self.is_mem = icls in (InstrClass.LOAD, InstrClass.STORE)
        self.target_pc = target_pc
        # For repeated (micro-looped) instructions: the chain registers the
        # dynamic instances cycle through.  This models the register renaming
        # that lets unrolled iterations of independent chains overlap; the O3
        # model resolves the per-instance register at issue time.
        self.rotate = rotate

    def __repr__(self) -> str:
        extra = " x%d" % self.repeat if self.repeat != 1 else ""
        return "StaticInstr(0x%x %s%s)" % (self.pc, InstrClass.name(self.icls), extra)


class UnrolledRun:
    """A deferred unrolled lowering: ``count`` consecutive instructions
    of one IR op with pre-drawn sizes.

    The assembler's hot path used to materialize one
    :class:`StaticInstr` per unrolled instance — six-figure object
    counts for straight-line boot code — even though the predecode tier
    consumes each block exactly once and then replays flat tuples.  A
    run keeps the compact description (op kind, pre-drawn size stream,
    base PC, register-chain position); the predecode decoders consume it
    directly, and :meth:`materialize` produces the byte-identical
    per-instruction form for the legacy tier on first demand.
    """

    __slots__ = ("kind", "icls", "count", "base_pc", "sizes", "chain",
                 "ilp", "fp", "region", "pattern", "probability")

    def __init__(self, kind: str, icls: int, count: int, base_pc: int,
                 sizes: List[int], chain: int, ilp: int, fp: bool,
                 region, pattern, probability: float):
        self.kind = kind
        self.icls = icls
        self.count = count
        self.base_pc = base_pc
        self.sizes = sizes
        self.chain = chain
        self.ilp = ilp
        self.fp = fp
        self.region = region
        self.pattern = pattern
        self.probability = probability

    def materialize(self) -> List[StaticInstr]:
        """The exact static instructions this run stands for."""
        sizes = self.sizes
        count = self.count
        pc = self.base_pc
        ilp = self.ilp
        chain = self.chain
        kind = self.kind
        out: List[StaticInstr] = []
        append = out.append
        new = StaticInstr.__new__
        if kind in _COMPUTE_CLASS:
            icls = _COMPUTE_CLASS[kind]
            base = FP_CHAIN_BASE if self.fp else INT_CHAIN_BASE
            lanes = [(base + (lane % 24), (base + (lane % 24), ZERO_REG))
                     for lane in range(ilp)]
            for index in range(count):
                reg, srcs = lanes[(chain + index) % ilp]
                size = sizes[index]
                instr = new(StaticInstr)
                instr.pc = pc
                instr.size = size
                instr.icls = icls
                instr.srcs = srcs
                instr.dst = reg
                instr.repeat = 1
                instr.region = None
                instr.pattern = None
                instr.taken_probability = 1.0
                instr.is_mem = False
                instr.target_pc = 0
                instr.rotate = ()
                append(instr)
                pc += size
        elif kind == ir.OP_LOAD or kind == ir.OP_STORE:
            regs = [INT_CHAIN_BASE + (lane % 24) for lane in range(ilp)]
            region = self.region
            load = kind == ir.OP_LOAD
            icls = InstrClass.LOAD if load else InstrClass.STORE
            load_srcs = (ADDR_REG,)
            strided = isinstance(self.pattern, ir.StridePattern)
            for index in range(count):
                reg = regs[(chain + index) % ilp]
                size = sizes[index]
                if strided:
                    pattern: Optional[ir.AddressPattern] = ir.StridePattern(
                        stride=self.pattern.stride,
                        start=self.pattern.start + index * self.pattern.stride)
                else:
                    pattern = self.pattern
                instr = new(StaticInstr)
                instr.pc = pc
                instr.size = size
                instr.icls = icls
                if load:
                    instr.srcs = load_srcs
                    instr.dst = reg
                else:
                    instr.srcs = (reg, ADDR_REG)
                    instr.dst = -1
                instr.repeat = 1
                instr.region = region
                instr.pattern = pattern
                instr.taken_probability = 1.0
                instr.is_mem = True
                instr.target_pc = 0
                instr.rotate = ()
                append(instr)
                pc += size
        elif kind == ir.OP_BRANCH:
            icls = InstrClass.BRANCH
            regs = [INT_CHAIN_BASE + (lane % 24) for lane in range(ilp)]
            probability = self.probability
            for index in range(count):
                reg = regs[(chain + index) % ilp]
                size = sizes[index]
                instr = new(StaticInstr)
                instr.pc = pc
                instr.size = size
                instr.icls = icls
                instr.srcs = (reg,)
                instr.dst = -1
                instr.repeat = 1
                instr.region = None
                instr.pattern = None
                instr.taken_probability = probability
                instr.is_mem = False
                instr.target_pc = 0
                instr.rotate = ()
                append(instr)
                pc += size
        else:
            raise ValueError("cannot unroll IR op kind %r" % kind)
        return out


class AssembledBlock:
    """A lowered IR block: static instructions plus dependency metadata.

    ``segments`` is the compact lowered form: a sequence whose items are
    either eager ``StaticInstr`` lists or :class:`UnrolledRun` records.
    The predecode tier decodes straight from segments; :attr:`instrs`
    materializes (and caches) the flat per-instruction view for the
    legacy tier and validation.
    """

    __slots__ = ("_instrs", "kind", "segments")

    def __init__(self, instrs: Optional[List[StaticInstr]], kind: str,
                 segments: Optional[tuple] = None):
        if segments is None:
            segments = ((instrs if instrs is not None else []),)
            self._instrs = instrs
        else:
            self._instrs = instrs
        self.kind = kind
        self.segments = segments

    @property
    def instrs(self) -> List[StaticInstr]:
        flat = self._instrs
        if flat is None:
            flat = []
            for segment in self.segments:
                if type(segment) is UnrolledRun:
                    flat.extend(segment.materialize())
                else:
                    flat.extend(segment)
            self._instrs = flat
        return flat


class AssembledLoop:
    """A lowered loop: body, trip count, and its backedge branch."""

    __slots__ = ("body", "trips", "backedge")

    def __init__(self, body: list, trips: int, backedge: StaticInstr):
        self.body = body
        self.trips = trips
        self.backedge = backedge


class AssembledCall:
    """A lowered call site: the call, and the return-target slot."""

    __slots__ = ("routine", "call_instr", "ret_instr")

    def __init__(self, routine: str, call_instr: StaticInstr, ret_instr: StaticInstr):
        self.routine = routine
        self.call_instr = call_instr
        self.ret_instr = ret_instr


class AssembledRoutine:
    """A lowered routine with its assigned code range."""

    __slots__ = ("name", "body", "code_base", "code_size")

    def __init__(self, name: str, body: list, code_base: int, code_size: int):
        self.name = name
        self.body = body
        self.code_base = code_base
        self.code_size = code_size


class ISA:
    """Base class for instruction-set models.

    Subclasses define:

    * :attr:`name` — registry key,
    * :meth:`instr_size` — deterministic instruction size stream,
    * :attr:`expansion` — instructions emitted per IR op unit, keyed by
      ``(op_kind, block_kind)``,
    * :attr:`stack_multiplier` — extra dynamic path length on runtime,
      library and OS code relative to the RISC-V baseline (the thesis's
      headline instruction-count finding, §4.2.3.1),
    * :attr:`syscall_overhead_instrs` — trap entry/exit sequence length,
    * :attr:`vector_style` — how vector IR lowers when a
      :class:`~repro.sim.isa.vector.VectorConfig` is attached
      (``"rvv"`` stripmines by VLEN with per-strip ``vsetvli`` CSRs;
      ``"sse"``/``"neon"`` emit fixed 128-bit groups, no CSRs).
    """

    name = "abstract"
    stack_multiplier = 1.0
    syscall_overhead_instrs = 6
    #: Attached vector unit, or None (scalar-only).  Set per *instance*
    #: by :func:`repro.sim.isa.get_isa`; with None every vector IR op
    #: degrades to its scalar equivalent, byte-identical to a scalar
    #: program — the class default keeps all pre-vector behaviour.
    vector = None
    #: Vector lowering family; ``"none"`` behaves as scalar fallback
    #: even when a config is attached.
    vector_style = "none"
    #: (op_kind, block_kind) -> instructions per IR op unit.  Missing keys
    #: default to 1.0.
    expansion: Dict[Tuple[str, str], float] = {}

    def instr_size(self, rng: random.Random) -> int:
        raise NotImplementedError

    def vector_width_bits(self) -> int:
        """Effective vector register width for this ISA instance.

        RVV is length-agnostic, so the configured VLEN applies; the
        fixed-width styles always lower at 128 bits regardless of the
        configured VLEN — the same IR therefore stripmines differently
        per ISA, which is the point of the comparison.
        """
        if self.vector is not None and self.vector_style == "rvv":
            return self.vector.vlen
        return 128

    def instr_sizes(self, rng: random.Random, count: int) -> List[int]:
        """``count`` sizes from the layout stream in one call.

        Must consume ``rng`` exactly as ``count`` :meth:`instr_size`
        calls would — program layout (and therefore every downstream
        digest) depends on the draw order.  Subclasses override this
        with a loop-free or comprehension form; unrolled lowering emits
        hundreds of thousands of instructions, so the per-call method
        dispatch is measurable.
        """
        return [self.instr_size(rng) for _ in range(count)]

    def expansion_for(self, op_kind: str, block_kind: str) -> float:
        factor = self.expansion.get((op_kind, block_kind), 1.0)
        if block_kind == BLOCK_STACK:
            factor *= self.stack_multiplier
        return factor

    # -- assembly ----------------------------------------------------------

    def assemble(self, program: ir.Program) -> "AssembledProgram":
        """Lower ``program`` to a per-ISA instruction layout."""
        from repro.sim.isa.trace import AssembledProgram

        program.validate()
        rng = random.Random("%d|%s|layout" % (program.seed, self.name))
        pc_cursor = {
            "code": program.space.segment_base("code"),
            "kernel": program.space.segment_base("kernel"),
        }
        routines: Dict[str, AssembledRoutine] = {}
        for routine in program.routines.values():
            segment = routine.segment if routine.segment in pc_cursor else "code"
            base = pc_cursor[segment]
            ctx = _AsmContext(self, rng, base)
            body = self._assemble_node(routine.body, ctx)
            # A terminating return so the routine has a well-defined end.
            ret = ctx.emit(InstrClass.RET, srcs=(ZERO_REG,), dst=-1)
            body.append(AssembledBlock([ret], BLOCK_STACK))
            code_size = ctx.pc - base
            pc_cursor[segment] = ctx.pc + 64  # pad between routines
            routines[routine.name] = AssembledRoutine(routine.name, body, base, code_size)
        return AssembledProgram(program, self, routines)

    def _assemble_node(self, node: ir.StructureNode, ctx: "_AsmContext") -> list:
        if isinstance(node, ir.Block):
            return [self._assemble_block(node, ctx)]
        if isinstance(node, ir.Seq):
            out: list = []
            for item in node.items:
                out.extend(self._assemble_node(item, ctx))
            return out
        if isinstance(node, ir.Loop):
            body = self._assemble_node(node.body, ctx)
            backedge = ctx.emit(
                InstrClass.BRANCH, srcs=(ctx.chain_reg(0),), dst=-1, taken_probability=1.0
            )
            return [AssembledLoop(body, node.trips, backedge)]
        if isinstance(node, ir.Call):
            call_instr = ctx.emit(InstrClass.CALL, srcs=(ZERO_REG,), dst=-1)
            ret_instr = ctx.emit(InstrClass.NOP, srcs=(ZERO_REG,), dst=-1)
            return [AssembledCall(node.routine, call_instr, ret_instr)]
        raise TypeError("unknown structure node %r" % (node,))

    def _assemble_block(self, block: ir.Block, ctx: "_AsmContext") -> AssembledBlock:
        instrs: List[StaticInstr] = []
        segments: List[object] = []
        chain = 0
        for op in block.ops:
            if op.kind in ir.VECTOR_OPS:
                if self.vector is None or self.vector_style == "none":
                    # No vector unit: degrade to the scalar-equivalent
                    # op and fall through to the ordinary lowering —
                    # same emit sequence, same layout-rng draws, so the
                    # result is byte-identical to a scalar program.
                    op = ir.scalar_equivalent(op)
                else:
                    chain = self._emit_vector(op, block, chain, ctx, instrs)
                    continue
            scaled = op.count * self.expansion_for(op.kind, block.kind)
            count = max(1, int(round(scaled)))
            if op.unrolled:
                # Distinct PCs, each executed once: honest I-footprint.
                # Deferred: the run materializes per-instruction form
                # only if a legacy consumer asks for it.
                run, chain = self._emit_unrolled(op, count, block, chain, ctx)
                if instrs:
                    segments.append(instrs)
                    instrs = []
                segments.append(run)
                continue
            rotate = tuple(
                ctx.chain_reg(chain + lane) for lane in range(block.ilp)
            ) if count > 1 and block.ilp > 1 else ()
            if op.kind in _COMPUTE_CLASS:
                icls = _COMPUTE_CLASS[op.kind]
                fp = op.kind in (ir.OP_FALU, ir.OP_FMUL, ir.OP_FDIV)
                reg = ctx.chain_reg(chain % block.ilp, fp=fp)
                if rotate and fp:
                    rotate = tuple(
                        ctx.chain_reg(chain + lane, fp=True) for lane in range(block.ilp)
                    )
                instrs.append(
                    ctx.emit(icls, srcs=(reg, ZERO_REG), dst=reg, repeat=count,
                             rotate=rotate)
                )
                chain += 1
            elif op.kind == ir.OP_LOAD:
                reg = ctx.chain_reg(chain % block.ilp)
                instrs.append(
                    ctx.emit(
                        InstrClass.LOAD,
                        srcs=(ADDR_REG,),
                        dst=reg,
                        repeat=count,
                        region=op.region,
                        pattern=op.pattern,
                        rotate=rotate,
                    )
                )
                chain += 1
            elif op.kind == ir.OP_STORE:
                reg = ctx.chain_reg(chain % block.ilp)
                instrs.append(
                    ctx.emit(
                        InstrClass.STORE,
                        srcs=(reg, ADDR_REG),
                        dst=-1,
                        repeat=count,
                        region=op.region,
                        pattern=op.pattern,
                        rotate=rotate,
                    )
                )
            elif op.kind == ir.OP_BRANCH:
                instrs.append(
                    ctx.emit(
                        InstrClass.BRANCH,
                        srcs=(ctx.chain_reg(chain % block.ilp),),
                        dst=-1,
                        repeat=count,
                        taken_probability=op.taken_probability,
                    )
                )
            elif op.kind == ir.OP_SYSCALL:
                for _ in range(op.count):
                    instrs.append(ctx.emit(InstrClass.CSR, srcs=(ZERO_REG,), dst=-1))
                    overhead = max(1, int(round(self.syscall_overhead_instrs)))
                    instrs.append(
                        ctx.emit(
                            InstrClass.SYSCALL,
                            srcs=(ZERO_REG,),
                            dst=-1,
                            repeat=overhead,
                        )
                    )
            else:
                raise ValueError("cannot lower IR op kind %r" % op.kind)
        if not segments:
            return AssembledBlock(instrs, block.kind)
        if instrs:
            segments.append(instrs)
        return AssembledBlock(None, block.kind, tuple(segments))

    def _emit_vector(
        self,
        op: ir.IROp,
        block: ir.Block,
        chain: int,
        ctx: "_AsmContext",
        instrs: List[StaticInstr],
    ) -> int:
        """Lower one vector IR op for an attached vector unit.

        ``op.count`` elements become ``ceil(count / elements_per_instr)``
        micro-looped vector instructions (strips) at this ISA's vector
        width.  The ``"rvv"`` style prefixes the strips with an equal
        run of CSR instructions (per-strip ``vsetvli`` re-configuration,
        RVV's stripmining idiom); fixed-width styles emit none — so RVV
        and SSE streams differ in both instruction count and class mix
        for identical IR.  Strips rotate across the configured lanes,
        which the O3 model exploits exactly like scalar chain rotation.
        The lowered instructions are ordinary repeat-form
        :class:`StaticInstr`, so the predecode and blockjit tiers replay
        them with no vector-specific handling.
        """
        from repro.sim.isa.vector import elements_per_instr

        epi = elements_per_instr(self.vector_width_bits(), op.ewidth)
        strips = (op.count + epi - 1) // epi
        lanes = self.vector.lanes
        fp = op.kind == ir.OP_VFMA
        rotate = tuple(
            ctx.chain_reg(chain + lane, fp=fp) for lane in range(lanes)
        ) if strips > 1 and lanes > 1 else ()
        if self.vector_style == "rvv":
            instrs.append(
                ctx.emit(InstrClass.CSR, srcs=(ZERO_REG,), dst=-1,
                         repeat=strips))
        reg = ctx.chain_reg(chain % max(1, lanes), fp=fp)
        if op.kind == ir.OP_VLOAD:
            instrs.append(
                ctx.emit(InstrClass.LOAD, srcs=(ADDR_REG,), dst=reg,
                         repeat=strips, region=op.region,
                         pattern=self._vector_pattern(op.pattern, epi),
                         rotate=rotate))
            chain += 1
        elif op.kind == ir.OP_VSTORE:
            instrs.append(
                ctx.emit(InstrClass.STORE, srcs=(reg, ADDR_REG), dst=-1,
                         repeat=strips, region=op.region,
                         pattern=self._vector_pattern(op.pattern, epi),
                         rotate=rotate))
        else:
            icls = InstrClass.FMUL if fp else InstrClass.IALU
            instrs.append(
                ctx.emit(icls, srcs=(reg, ZERO_REG), dst=reg,
                         repeat=strips, rotate=rotate))
            chain += 1
        return chain

    @staticmethod
    def _vector_pattern(
        pattern: Optional[ir.AddressPattern], epi: int
    ) -> Optional[ir.AddressPattern]:
        """Per-strip address pattern: one access covers ``epi`` elements.

        A unit-element stride widens to ``stride * epi`` so consecutive
        strips touch consecutive vector-register-sized chunks; gather
        patterns (random / hot-cold) are left alone — each strip's base
        is one gathered index, the model's take on indexed loads.
        """
        if isinstance(pattern, ir.StridePattern):
            return ir.StridePattern(stride=pattern.stride * epi,
                                    start=pattern.start)
        return pattern

    def _emit_unrolled(
        self,
        op: ir.IROp,
        count: int,
        block: ir.Block,
        chain: int,
        ctx: "_AsmContext",
    ) -> Tuple[UnrolledRun, int]:
        """Lower one IR op to a deferred run of ``count`` instructions.

        This is the assembler's hot path: straight-line boot/runtime
        code unrolls to hundreds of thousands of instructions.  Sizes
        are drawn in bulk (:meth:`instr_sizes`) — the layout rng and PC
        cursor advance exactly as per-instruction emission would — but
        the :class:`StaticInstr` objects themselves are deferred to
        :meth:`UnrolledRun.materialize`, which only legacy consumers
        trigger; the predecode tier decodes the run directly.
        """
        kind = op.kind
        if kind in _COMPUTE_CLASS:
            icls = _COMPUTE_CLASS[kind]
        elif kind == ir.OP_LOAD:
            icls = InstrClass.LOAD
        elif kind == ir.OP_STORE:
            icls = InstrClass.STORE
        elif kind == ir.OP_BRANCH:
            icls = InstrClass.BRANCH
        else:
            raise ValueError("cannot unroll IR op kind %r" % kind)
        sizes = self.instr_sizes(ctx.rng, count)
        run = UnrolledRun(
            kind, icls, count, ctx.pc, sizes, chain, block.ilp,
            kind in (ir.OP_FALU, ir.OP_FMUL, ir.OP_FDIV),
            op.region, op.pattern, op.taken_probability,
        )
        ctx.pc += sum(sizes)
        return run, chain + count

    @staticmethod
    def _unrolled_pattern(
        pattern: Optional[ir.AddressPattern], index: int
    ) -> Optional[ir.AddressPattern]:
        """Give the index-th unrolled copy of a strided op its own offset."""
        if isinstance(pattern, ir.StridePattern):
            return ir.StridePattern(stride=pattern.stride,
                                    start=pattern.start + index * pattern.stride)
        return pattern


class _AsmContext:
    """Mutable assembly state for one routine: PC cursor and registers."""

    __slots__ = ("isa", "rng", "pc")

    def __init__(self, isa: ISA, rng: random.Random, base_pc: int):
        self.isa = isa
        self.rng = rng
        self.pc = base_pc

    def chain_reg(self, chain: int, fp: bool = False) -> int:
        base = FP_CHAIN_BASE if fp else INT_CHAIN_BASE
        return base + (chain % 24)

    def emit(
        self,
        icls: int,
        srcs: Tuple[int, ...],
        dst: int,
        repeat: int = 1,
        region: Optional[ir.Region] = None,
        pattern: Optional[ir.AddressPattern] = None,
        taken_probability: float = 1.0,
        rotate: Tuple[int, ...] = (),
    ) -> StaticInstr:
        size = self.isa.instr_size(self.rng)
        instr = StaticInstr(
            pc=self.pc,
            size=size,
            icls=icls,
            srcs=srcs,
            dst=dst,
            repeat=repeat,
            region=region,
            pattern=pattern,
            taken_probability=taken_probability,
            rotate=rotate,
        )
        self.pc += size
        return instr
