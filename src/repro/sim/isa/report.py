"""Program introspection: footprints and instruction-mix reports.

Work models are only as good as their shapes; this module answers "what
does this invocation program actually look like" — static code bytes per
routine, dynamic instruction mix, distinct cache lines touched — the
numbers one checks before believing a simulated cycle count.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.sim.isa.base import InstrClass
from repro.sim.isa.trace import AssembledProgram

LINE_SIZE = 64


class ProgramReport:
    """Static and dynamic profile of one assembled program."""

    def __init__(self, assembled: AssembledProgram, seed: int = 0):
        self.name = assembled.name
        self.isa = assembled.isa.name
        self.routine_code_bytes: Dict[str, int] = {
            name: routine.code_size
            for name, routine in assembled.routines.items()
        }
        self.dynamic_by_class: Dict[str, int] = {
            name: 0 for name in InstrClass.NAMES
        }
        self.dynamic_instructions = 0
        code_lines: Set[int] = set()
        data_lines: Set[int] = set()
        branches = taken = 0
        for static, addr, was_taken in assembled.trace(seed):
            self.dynamic_by_class[InstrClass.NAMES[static.icls]] += 1
            self.dynamic_instructions += 1
            code_lines.add(static.pc // LINE_SIZE)
            if static.is_mem:
                data_lines.add(addr // LINE_SIZE)
            if static.icls == InstrClass.BRANCH:
                branches += 1
                taken += was_taken
        self.code_lines_touched = len(code_lines)
        self.data_lines_touched = len(data_lines)
        self.branch_count = branches
        self.branch_taken_fraction = taken / branches if branches else 0.0

    @property
    def static_code_bytes(self) -> int:
        return sum(self.routine_code_bytes.values())

    @property
    def code_footprint_bytes(self) -> int:
        return self.code_lines_touched * LINE_SIZE

    @property
    def data_footprint_bytes(self) -> int:
        return self.data_lines_touched * LINE_SIZE

    @property
    def memory_fraction(self) -> float:
        memory_ops = self.dynamic_by_class["load"] + self.dynamic_by_class["store"]
        return memory_ops / self.dynamic_instructions \
            if self.dynamic_instructions else 0.0

    def render(self) -> str:
        lines = [
            "Program report: %s (%s)" % (self.name, self.isa),
            "  dynamic instructions : %d" % self.dynamic_instructions,
            "  static code          : %d bytes in %d routines"
            % (self.static_code_bytes, len(self.routine_code_bytes)),
            "  code footprint       : %d bytes (%d lines)"
            % (self.code_footprint_bytes, self.code_lines_touched),
            "  data footprint       : %d bytes (%d lines)"
            % (self.data_footprint_bytes, self.data_lines_touched),
            "  memory-op fraction   : %.1f%%" % (self.memory_fraction * 100),
            "  branches             : %d (%.0f%% taken)"
            % (self.branch_count, self.branch_taken_fraction * 100),
            "  mix:",
        ]
        for name, count in sorted(self.dynamic_by_class.items(),
                                  key=lambda item: -item[1]):
            if count:
                lines.append("    %-8s %8d (%.1f%%)" % (
                    name, count, count / self.dynamic_instructions * 100))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "ProgramReport(%s: %d insts, %dB code)" % (
            self.name, self.dynamic_instructions, self.code_footprint_bytes,
        )


def report(assembled: AssembledProgram, seed: int = 0) -> ProgramReport:
    """Profile an assembled program (one functional trace pass)."""
    return ProgramReport(assembled, seed=seed)
