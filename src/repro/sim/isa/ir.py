"""Workload intermediate representation.

A :class:`Program` describes *what a workload does* independently of the
ISA: how much integer/float compute, which memory regions it touches with
which access patterns, its loop structure, and which routines call which.
The vSwarm function models in :mod:`repro.workloads` build these programs
from the *real* work their handlers performed (bytes encrypted, database
rows read, modules imported), so the dynamic instruction and address
streams reflect genuine workload behaviour rather than canned numbers.

Programs are assembled per-ISA (see :mod:`repro.sim.isa.base`) and then
replayed by the trace generator.  Loop bodies keep their program counters
across iterations, so instruction-cache locality behaves as in real code.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

# ---------------------------------------------------------------------------
# Memory layout
# ---------------------------------------------------------------------------

#: Canonical segment bases (byte addresses) for the simulated address space.
CODE_BASE = 0x0040_0000
HEAP_BASE = 0x1000_0000
DATA_BASE = 0x2000_0000
KERNEL_BASE = 0x4000_0000
STACK_BASE = 0x7FFF_0000

_SEGMENT_BASES = {
    "code": CODE_BASE,
    "heap": HEAP_BASE,
    "data": DATA_BASE,
    "kernel": KERNEL_BASE,
    "stack": STACK_BASE,
}


class Region:
    """A named, contiguous chunk of the simulated address space."""

    __slots__ = ("name", "base", "size")

    def __init__(self, name: str, base: int, size: int):
        if size <= 0:
            raise ValueError("region %r must have positive size, got %d" % (name, size))
        self.name = name
        self.base = base
        self.size = size

    @property
    def end(self) -> int:
        return self.base + self.size

    def __repr__(self) -> str:
        return "Region(%s @ 0x%x, %d bytes)" % (self.name, self.base, self.size)


class AddressSpace:
    """A bump allocator handing out non-overlapping regions per segment.

    ``aslr_offset`` shifts every segment base, modelling the distinct
    physical placement of different processes/containers: two programs
    with different offsets do not share cache lines, while the cold and
    warm variants of one function (built with the same offset) do.
    """

    def __init__(self, aslr_offset: int = 0):
        if aslr_offset < 0:
            raise ValueError("aslr_offset must be non-negative")
        self.aslr_offset = aslr_offset
        self._cursors: Dict[str, int] = {
            segment: base + aslr_offset for segment, base in _SEGMENT_BASES.items()
        }
        self.regions: List[Region] = []

    def segment_base(self, segment: str) -> int:
        if segment not in _SEGMENT_BASES:
            raise ValueError("unknown segment %r" % segment)
        return _SEGMENT_BASES[segment] + self.aslr_offset

    def alloc(self, name: str, size: int, segment: str = "heap", align: int = 64) -> Region:
        """Allocate ``size`` bytes in ``segment``, aligned to ``align``."""
        if segment not in self._cursors:
            raise ValueError("unknown segment %r (have %s)" % (segment, sorted(self._cursors)))
        if size <= 0:
            raise ValueError("allocation size must be positive, got %d" % size)
        cursor = self._cursors[segment]
        base = (cursor + align - 1) // align * align
        region = Region(name, base, size)
        self._cursors[segment] = base + size
        self.regions.append(region)
        return region

    def find(self, name: str) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError("no region named %r" % name)


# ---------------------------------------------------------------------------
# Address patterns
# ---------------------------------------------------------------------------


class AddressPattern:
    """Produces a deterministic sequence of byte offsets within a region.

    Patterns are *stateless descriptors*; the trace generator materialises a
    cursor per traversal, so the same program can be replayed identically.
    """

    def offsets(self, region: Region, count: int, rng: random.Random) -> Iterable[int]:
        raise NotImplementedError


class StridePattern(AddressPattern):
    """Sequential strided access, wrapping at the region end.

    The default (stride 64, the cache line size) models streaming over a
    buffer; stride 8 models dense word-by-word scans.
    """

    def __init__(self, stride: int = 64, start: int = 0):
        if stride == 0:
            raise ValueError("stride must be non-zero")
        self.stride = stride
        self.start = start

    def offsets(self, region: Region, count: int, rng: random.Random) -> Iterable[int]:
        offset = self.start % region.size
        for _ in range(count):
            yield offset
            offset = (offset + self.stride) % region.size

    def __repr__(self) -> str:
        return "StridePattern(stride=%d)" % self.stride


class RandomPattern(AddressPattern):
    """Uniform random access within the region (hash/index-walk behaviour)."""

    def __init__(self, align: int = 8):
        if align <= 0:
            raise ValueError("align must be positive")
        self.align = align

    def offsets(self, region: Region, count: int, rng: random.Random) -> Iterable[int]:
        slots = max(1, region.size // self.align)
        for _ in range(count):
            yield (rng.randrange(slots)) * self.align % region.size

    def __repr__(self) -> str:
        return "RandomPattern(align=%d)" % self.align


class HotColdPattern(AddressPattern):
    """Zipf-like pattern: most accesses hit a hot prefix of the region.

    Models caches-within-the-workload such as interpreter dispatch tables
    or memcached slab headers: ``hot_fraction`` of the region absorbs
    ``hot_probability`` of accesses.
    """

    def __init__(self, hot_fraction: float = 0.1, hot_probability: float = 0.9, align: int = 8):
        if not 0 < hot_fraction <= 1:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0 <= hot_probability <= 1:
            raise ValueError("hot_probability must be in [0, 1]")
        self.hot_fraction = hot_fraction
        self.hot_probability = hot_probability
        self.align = align

    def offsets(self, region: Region, count: int, rng: random.Random) -> Iterable[int]:
        hot_bytes = max(self.align, int(region.size * self.hot_fraction))
        hot_slots = max(1, hot_bytes // self.align)
        all_slots = max(1, region.size // self.align)
        for _ in range(count):
            if rng.random() < self.hot_probability:
                yield rng.randrange(hot_slots) * self.align % region.size
            else:
                yield rng.randrange(all_slots) * self.align % region.size

    def __repr__(self) -> str:
        return "HotColdPattern(%.0f%% -> %.0f%%)" % (
            self.hot_fraction * 100,
            self.hot_probability * 100,
        )


# ---------------------------------------------------------------------------
# IR operations and structure
# ---------------------------------------------------------------------------

#: IR op kinds.  Compute ops carry a repeat count; memory ops carry a region
#: and an address pattern.
OP_IALU = "ialu"
OP_IMUL = "imul"
OP_IDIV = "idiv"
OP_FALU = "falu"
OP_FMUL = "fmul"
OP_FDIV = "fdiv"
OP_LOAD = "load"
OP_STORE = "store"
OP_BRANCH = "branch"
OP_SYSCALL = "syscall"

#: Vector op kinds.  Each carries an element width (``ewidth``, bytes per
#: element) alongside ``count`` (total *elements*, not instructions); the
#: per-ISA lowering decides how many vector instructions that becomes
#: (stripmined by VLEN on RVV, fixed 128-bit groups on SSE/NEON).  With
#: no vector unit configured they degrade to their scalar equivalent
#: (:data:`VECTOR_SCALAR_KIND`) — one scalar instruction per element.
OP_VLOAD = "vload"
OP_VSTORE = "vstore"
OP_VALU = "valu"
OP_VFMA = "vfma"

COMPUTE_OPS = (OP_IALU, OP_IMUL, OP_IDIV, OP_FALU, OP_FMUL, OP_FDIV)
MEMORY_OPS = (OP_LOAD, OP_STORE)
VECTOR_OPS = (OP_VLOAD, OP_VSTORE, OP_VALU, OP_VFMA)
VECTOR_MEMORY_OPS = (OP_VLOAD, OP_VSTORE)

#: Scalar fallback kind per vector op: what the op lowers to, element by
#: element, on an ISA with no vector unit configured.
VECTOR_SCALAR_KIND = {
    OP_VLOAD: OP_LOAD,
    OP_VSTORE: OP_STORE,
    OP_VALU: OP_IALU,
    OP_VFMA: OP_FMUL,
}

#: Element widths a vector op may carry (bytes): int8 through fp64.
VECTOR_EWIDTHS = (1, 2, 4, 8)


class IROp:
    """One IR operation; ``count`` folds runs of identical work.

    ``unrolled=True`` lowers the op to ``count`` *distinct* instructions at
    distinct program counters instead of one micro-looped instruction.
    Straight-line initialisation code (interpreter start-up, module
    imports) uses this so its instruction-cache footprint is honest — that
    footprint is what makes cold starts cold.

    Vector ops (:data:`VECTOR_OPS`) additionally carry ``ewidth`` — bytes
    per element — and interpret ``count`` as total elements.  They are
    never ``unrolled`` (a vector instruction *is* the fold).
    """

    __slots__ = ("kind", "count", "region", "pattern", "taken_probability",
                 "unrolled", "ewidth")

    def __init__(
        self,
        kind: str,
        count: int = 1,
        region: Optional[Region] = None,
        pattern: Optional[AddressPattern] = None,
        taken_probability: float = 0.5,
        unrolled: bool = False,
        ewidth: int = 4,
    ):
        if count <= 0:
            raise ValueError("op count must be positive, got %d" % count)
        if kind in MEMORY_OPS and region is None:
            raise ValueError("%s op requires a region" % kind)
        if kind in VECTOR_OPS:
            if kind in VECTOR_MEMORY_OPS and region is None:
                raise ValueError("%s op requires a region" % kind)
            if ewidth not in VECTOR_EWIDTHS:
                raise ValueError("vector ewidth must be one of %s, got %r"
                                 % (list(VECTOR_EWIDTHS), ewidth))
            if unrolled:
                raise ValueError("vector ops cannot be unrolled")
        self.kind = kind
        self.count = count
        self.region = region
        self.pattern = pattern if pattern is not None else StridePattern(stride=8)
        self.taken_probability = taken_probability
        self.unrolled = unrolled
        self.ewidth = ewidth

    def __repr__(self) -> str:
        target = " %s" % self.region.name if self.region else ""
        return "IROp(%s x%d%s)" % (self.kind, self.count, target)


def scalar_equivalent(op: IROp) -> IROp:
    """The scalar IROp a vector op degrades to without a vector unit.

    One scalar instruction per element, same region/pattern/count, kind
    mapped via :data:`VECTOR_SCALAR_KIND` — so a program holding vector
    ops assembles *byte-identically* to the same program written with
    scalar ops when the ISA has no :class:`~repro.sim.isa.vector.
    VectorConfig` attached.  That identity is what keeps every existing
    digest, stat dump and event log unchanged with the vector lane off.
    """
    if op.kind not in VECTOR_OPS:
        raise ValueError("not a vector op: %r" % op.kind)
    return IROp(
        VECTOR_SCALAR_KIND[op.kind],
        count=op.count,
        region=op.region,
        pattern=op.pattern,
        taken_probability=op.taken_probability,
    )


class Block:
    """A straight-line run of IR ops, tagged by software layer.

    ``kind`` is either :data:`~repro.sim.isa.base.BLOCK_APP` (application
    logic the developer wrote) or :data:`~repro.sim.isa.base.BLOCK_STACK`
    (runtime, library and OS code), because the two lower differently: the
    thesis measured the x86 software stack executing substantially more
    instructions than the RISC-V one for identical functions (§4.2.3.1).

    ``ilp`` sets how many independent dependence chains the block's compute
    spreads across, which the O3 model exploits.
    """

    __slots__ = ("ops", "kind", "ilp")

    def __init__(self, ops: Sequence[IROp], kind: str = "app", ilp: int = 4):
        if ilp <= 0:
            raise ValueError("ilp must be positive")
        self.ops = list(ops)
        self.kind = kind
        self.ilp = ilp

    def __repr__(self) -> str:
        return "Block(%s, %d ops, ilp=%d)" % (self.kind, len(self.ops), self.ilp)


class Seq:
    """Sequential composition of structure nodes."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence["StructureNode"]):
        self.items = list(items)

    def __repr__(self) -> str:
        return "Seq(%d items)" % len(self.items)


class Loop:
    """Replays ``body`` ``trips`` times; the backedge branch is part of it.

    Loop bodies keep their assembled program counters, so iterating a loop
    re-touches the same instruction cache lines — the mechanism behind warm
    instruction locality.
    """

    __slots__ = ("body", "trips")

    def __init__(self, body: "StructureNode", trips: int):
        if trips < 0:
            raise ValueError("trips must be >= 0, got %d" % trips)
        self.body = body
        self.trips = trips

    def __repr__(self) -> str:
        return "Loop(x%d)" % self.trips


class Call:
    """Transfers control to another routine (by name) and returns."""

    __slots__ = ("routine",)

    def __init__(self, routine: str):
        self.routine = routine

    def __repr__(self) -> str:
        return "Call(%s)" % self.routine


StructureNode = Union[Block, Seq, Loop, Call]


class Routine:
    """A named unit of code occupying a contiguous code range."""

    __slots__ = ("name", "body", "segment")

    def __init__(self, name: str, body: StructureNode, segment: str = "code"):
        self.name = name
        self.body = body
        self.segment = segment

    def __repr__(self) -> str:
        return "Routine(%s)" % self.name


class Program:
    """A complete IR program: routines, entry point, and memory regions.

    ``aslr_key`` selects the program's address-space placement: programs
    sharing a key (e.g. the cold and warm variants of one function) share
    addresses; distinct keys land at distinct offsets, so different
    processes do not alias in the caches.  Defaults to the program name's
    stem (the part before the first dot).
    """

    def __init__(self, name: str, seed: int = 0, aslr_key: Optional[str] = None):
        import zlib

        self.name = name
        self.seed = seed
        self.aslr_key = aslr_key if aslr_key is not None else name.split(".")[0]
        offset = (zlib.crc32(self.aslr_key.encode()) % 1024) * 0x8000
        self.routines: Dict[str, Routine] = {}
        self.entry: Optional[str] = None
        self.space = AddressSpace(aslr_offset=offset)

    def add_routine(self, routine: Routine, entry: bool = False) -> Routine:
        if routine.name in self.routines:
            raise ValueError("duplicate routine %r in program %r" % (routine.name, self.name))
        self.routines[routine.name] = routine
        if entry or self.entry is None:
            self.entry = routine.name
        return routine

    def validate(self) -> None:
        """Check that every Call target exists and an entry is set."""
        if self.entry is None:
            raise ValueError("program %r has no entry routine" % self.name)

        def check(node: StructureNode) -> None:
            if isinstance(node, Call):
                if node.routine not in self.routines:
                    raise ValueError(
                        "program %r calls undefined routine %r" % (self.name, node.routine)
                    )
            elif isinstance(node, Seq):
                for item in node.items:
                    check(item)
            elif isinstance(node, Loop):
                check(node.body)

        for routine in self.routines.values():
            check(routine.body)

    def fingerprint(self) -> Optional[tuple]:
        """Structural identity of the program, or None if uncacheable.

        Two programs with equal fingerprints assemble to byte-identical
        layouts (same PCs, sizes, registers, addresses) and trace
        identically for a given run seed, so the assembler caches its
        output under ``(isa_name, fingerprint)``.  Everything layout- or
        trace-relevant is captured: the layout-rng seed, the ASLR offset,
        routine order and segments, block structure, op counts, region
        placements, pattern parameters and branch probabilities.  Unknown
        :class:`AddressPattern` subclasses make the program uncacheable
        (None) rather than risking a false cache hit.
        """
        routines = []
        for routine in self.routines.values():
            body = _node_fingerprint(routine.body)
            if body is None:
                return None
            routines.append((routine.name, routine.segment, body))
        return (self.name, self.seed, self.space.aslr_offset, self.entry,
                tuple(routines))

    def __repr__(self) -> str:
        return "Program(%s, %d routines)" % (self.name, len(self.routines))


def _pattern_fingerprint(pattern: Optional[AddressPattern]):
    """Hashable identity of a pattern; None marks unknown subclasses."""
    if pattern is None:
        return ("none",)
    cls = type(pattern)
    if cls is StridePattern:
        return ("s", pattern.stride, pattern.start)
    if cls is RandomPattern:
        return ("r", pattern.align)
    if cls is HotColdPattern:
        return ("h", pattern.hot_fraction, pattern.hot_probability,
                pattern.align)
    return None


def _node_fingerprint(node: StructureNode):
    """Hashable identity of a structure node; None propagates upward."""
    if isinstance(node, Block):
        ops = []
        for op in node.ops:
            pattern = _pattern_fingerprint(op.pattern)
            if pattern is None:
                return None
            region = (op.region.name, op.region.base, op.region.size) \
                if op.region is not None else None
            entry = (op.kind, op.count, region, pattern,
                     op.taken_probability, op.unrolled)
            if op.kind in VECTOR_OPS:
                # Appended only for vector ops, so fingerprints of
                # pre-existing scalar programs stay byte-identical.
                entry += (op.ewidth,)
            ops.append(entry)
        return ("b", node.kind, node.ilp, tuple(ops))
    if isinstance(node, Seq):
        items = []
        for item in node.items:
            fp = _node_fingerprint(item)
            if fp is None:
                return None
            items.append(fp)
        return ("q", tuple(items))
    if isinstance(node, Loop):
        body = _node_fingerprint(node.body)
        if body is None:
            return None
        return ("l", node.trips, body)
    if isinstance(node, Call):
        return ("c", node.routine)
    return None


# ---------------------------------------------------------------------------
# Convenience builders used throughout the workload models
# ---------------------------------------------------------------------------


def compute_block(
    ialu: int = 0,
    imul: int = 0,
    falu: int = 0,
    fmul: int = 0,
    idiv: int = 0,
    fdiv: int = 0,
    kind: str = "app",
    ilp: int = 4,
) -> Block:
    """A block of pure compute with the given op mix."""
    ops = []
    for op_kind, count in (
        (OP_IALU, ialu),
        (OP_IMUL, imul),
        (OP_IDIV, idiv),
        (OP_FALU, falu),
        (OP_FMUL, fmul),
        (OP_FDIV, fdiv),
    ):
        if count:
            ops.append(IROp(op_kind, count=count))
    if not ops:
        raise ValueError("compute_block needs at least one op")
    return Block(ops, kind=kind, ilp=ilp)


def straightline_block(
    instrs: int,
    data_region: Optional[Region] = None,
    load_fraction: float = 0.25,
    store_fraction: float = 0.08,
    branch_fraction: float = 0.05,
    kind: str = "stack",
    ilp: int = 3,
) -> Block:
    """A large run of *distinct* instructions executed once.

    This models initialisation paths — ELF loading, interpreter start-up,
    module imports, JIT compilation — whose defining property is a big,
    once-touched instruction footprint mixed with scattered data accesses.
    The op mix follows typical integer-code proportions.
    """
    if instrs <= 0:
        raise ValueError("instrs must be positive")
    loads = max(1, int(instrs * load_fraction))
    stores = max(1, int(instrs * store_fraction))
    branches = max(1, int(instrs * branch_fraction))
    alus = max(1, instrs - loads - stores - branches)
    ops: List[IROp] = [IROp(OP_IALU, count=alus, unrolled=True)]
    if data_region is not None:
        ops.append(
            IROp(OP_LOAD, count=loads, region=data_region,
                 pattern=StridePattern(stride=24), unrolled=True)
        )
        ops.append(
            IROp(OP_STORE, count=stores, region=data_region,
                 pattern=StridePattern(stride=56), unrolled=True)
        )
    else:
        ops[0] = IROp(OP_IALU, count=alus + loads + stores, unrolled=True)
    ops.append(IROp(OP_BRANCH, count=branches, taken_probability=0.6, unrolled=True))
    return Block(ops, kind=kind, ilp=ilp)


def vector_block(
    elements: int,
    ewidth: int = 4,
    load_region: Optional[Region] = None,
    store_region: Optional[Region] = None,
    fma_per_element: float = 0.0,
    alu_per_element: float = 0.0,
    gather: bool = False,
    kind: str = "app",
    ilp: int = 2,
) -> Block:
    """A vectorizable inner loop over ``elements`` elements.

    Streams ``load_region`` in element order (or gathers from it when
    ``gather=True`` — embedding-table lookups), performs the given
    per-element FMA/ALU work, and streams results to ``store_region``.
    How many *instructions* this becomes is the ISA's call: stripmined
    by VLEN on RVV, fixed 128-bit groups on SSE/NEON, one per element
    on a scalar ISA.
    """
    if elements <= 0:
        raise ValueError("elements must be positive")
    ops: List[IROp] = []
    if load_region is not None:
        pattern: AddressPattern = (RandomPattern(align=max(8, ewidth))
                                   if gather else StridePattern(stride=ewidth))
        ops.append(IROp(OP_VLOAD, count=elements, region=load_region,
                        pattern=pattern, ewidth=ewidth))
    if fma_per_element:
        ops.append(IROp(OP_VFMA, count=max(1, int(round(elements * fma_per_element))),
                        ewidth=ewidth))
    if alu_per_element:
        ops.append(IROp(OP_VALU, count=max(1, int(round(elements * alu_per_element))),
                        ewidth=ewidth))
    if store_region is not None:
        ops.append(IROp(OP_VSTORE, count=elements, region=store_region,
                        pattern=StridePattern(stride=ewidth), ewidth=ewidth))
    if not ops:
        raise ValueError("vector_block needs a region or per-element work")
    return Block(ops, kind=kind, ilp=ilp)


def touch_block(
    region: Region,
    loads: int = 0,
    stores: int = 0,
    pattern: Optional[AddressPattern] = None,
    ialu_per_access: int = 2,
    kind: str = "app",
    ilp: int = 4,
) -> Block:
    """A block interleaving memory accesses with light address arithmetic."""
    if loads == 0 and stores == 0:
        raise ValueError("touch_block needs loads or stores")
    ops: List[IROp] = []
    if loads:
        ops.append(IROp(OP_LOAD, count=loads, region=region, pattern=pattern))
    if ialu_per_access:
        ops.append(IROp(OP_IALU, count=max(1, (loads + stores) * ialu_per_access)))
    if stores:
        ops.append(IROp(OP_STORE, count=stores, region=region, pattern=pattern))
    return Block(ops, kind=kind, ilp=ilp)
