"""Hot-block JIT: lower hot static blocks to generated Python functions.

The predecode cache (:mod:`repro.sim.isa.predecode`) already collapses
per-instruction class dispatch into flat step tuples, but replaying a
block still pays one interpreter dispatch per step: a tuple index, a tag
compare chain, and generic operand unpacking.  For blocks the protocol
replays hundreds of times (loop bodies, request parsing, runtime glue)
that dispatch is the remaining interpreter tax.

This module is the third execution tier.  Every assembled node carries a
hotness counter on the predecode cache; once a static block (or a
call-free loop subtree) has executed ``REPRO_JIT_THRESHOLD`` times it is
*promoted*: a code generator walks its decoded steps and emits a
specialized Python function —

* straight-line statements with the step operands inlined as literals
  (PCs, cache-line ids, addresses, cycle increments),
* short memory/branch runs fully unrolled, longer ones looped over a
  constant tuple bound as a default argument,
* cache/TLB entry points (``ifetch``/``data_access``/``warm_touch``)
  received as positional locals, never global lookups,

compiled once via ``compile()``/``exec`` and cached on the
``AssembledProgram`` alongside the predecoded forms.  Three consumers
mirror the predecode tier: :func:`atomic_run`, :func:`warm_run`, and
:func:`o3_stream` (the latter additionally flattens rng-free blocks and
loop bodies into constant run tuples delivered via ``yield from``).

Replay is **bit-identical** to both lower tiers: the same rng draws in
the same order, the same cycle number and PC at every memory access, the
same statistics and trace event logs.  Blocks whose generated body would
exceed ``REPRO_JIT_MAX_STMTS`` statements stay on the tier-2 interpreter
(compiling a straight-line six-figure-step boot block costs seconds and
wins nothing — the memory model dominates); subtrees containing calls
are never promoted.  Set ``REPRO_JIT=0`` (or call :func:`set_enabled`)
to pin tier 2; ``REPRO_PREDECODE=0`` disables both fast tiers.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

from repro.envknobs import env_int
from repro.sim.isa import predecode
from repro.sim.isa.base import (
    AssembledBlock,
    AssembledCall,
    AssembledLoop,
    InstrClass,
)

_MAX_CALL_DEPTH = predecode._MAX_CALL_DEPTH
_NUM_CLASSES = len(InstrClass.NAMES)

_ENABLED = os.environ.get("REPRO_JIT", "1").lower() not in (
    "0", "false", "off", "no",
)

#: Executions of a node before it is promoted to compiled form.
#: Malformed values fall back to the default with a warning — this runs
#: at import time, where an unhandled ValueError would be fatal.
_THRESHOLD = max(1, env_int("REPRO_JIT_THRESHOLD", 2))

#: Upper bound on generated statements per compiled unit.  Mega blocks
#: (straight-line boot code) stay interpreted: their compile time scales
#: with size while their replay time is dominated by memory-model calls.
_MAX_STMTS = max(16, env_int("REPRO_JIT_MAX_STMTS", 3072))

#: Runs at or below this length are fully unrolled into literals.
_UNROLL = 4

#: Process-wide tier-3 counters (see ``python -m repro cache stats``).
STATS: Dict[str, float] = {}


def reset_stats() -> None:
    """Zero the tier-3 counters."""
    STATS.update(
        compiled_units=0, compile_s=0.0, declined=0,
        compiled_calls=0, interpreted_calls=0,
    )


reset_stats()


def enabled() -> bool:
    """Whether hot blocks are promoted to compiled form (default: yes)."""
    return _ENABLED


def set_enabled(value: bool) -> bool:
    """Toggle the JIT tier; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(value)
    return previous


def threshold() -> int:
    """Executions before promotion (``REPRO_JIT_THRESHOLD``)."""
    return _THRESHOLD


class _Gen:
    """One compilation unit: source lines plus bound constants."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.consts: Dict[str, object] = {}
        self.budget = _MAX_STMTS
        self._serial = 0

    def emit(self, indent: int, text: str) -> bool:
        self.budget -= 1
        if self.budget < 0:
            return False
        self.lines.append("    " * indent + text)
        return True

    def bind(self, value) -> str:
        name = "_c%d" % self._serial
        self._serial += 1
        self.consts[name] = value
        return name

    def build(self, signature: str, result: str, label: str):
        params = "".join(", %s=%s" % (n, n) for n in self.consts)
        src = ["def _jit(%s%s):" % (signature, params)]
        src.extend(self.lines)
        src.append("    return %s" % result)
        namespace = dict(self.consts)
        exec(compile("\n".join(src), "<blockjit:%s>" % label, "exec"),
             namespace)
        return namespace["_jit"]


# ---------------------------------------------------------------------------
# Atomic tier
# ---------------------------------------------------------------------------


def _gen_atomic_steps(gen: _Gen, steps, indent: int) -> bool:
    emit = gen.emit
    for step in steps:
        tag = step[0]
        if tag == 1:
            ok = emit(indent, "cycles += %d" % step[1])
        elif tag == 0:
            ok = (emit(indent, "if current_line != %d:" % step[2])
                  and emit(indent + 1, "cycles += ifetch(%d, cycles)"
                           % step[1])
                  and emit(indent + 1, "current_line = %d" % step[2]))
        elif tag == 4:
            write, pc, addrs = step[1], step[2], step[3]
            if len(addrs) <= _UNROLL:
                ok = True
                for addr in addrs:
                    ok = (ok and emit(indent, "cycles += 1")
                          and emit(indent,
                                   "cycles += data_access(%d, %r, cycles, %d)"
                                   % (addr, write, pc)))
            else:
                name = gen.bind(addrs)
                ok = (emit(indent, "for _addr in %s:" % name)
                      and emit(indent + 1, "cycles += 1")
                      and emit(indent + 1,
                               "cycles += data_access(_addr, %r, cycles, %d)"
                               % (write, pc)))
        elif tag == 5:
            write, pc, region, pattern, n = step[1:]
            offsets = gen.bind(pattern.offsets)
            reg = gen.bind(region)
            ok = (emit(indent, "for _off in %s(%s, %d, rng):"
                       % (offsets, reg, n))
                  and emit(indent + 1, "cycles += 1")
                  and emit(indent + 1,
                           "cycles += data_access(%d + _off, %r, cycles, %d)"
                           % (region.base, write, pc)))
        elif tag == 2:
            n = step[1]
            if n <= _UNROLL:
                ok = True
                for _ in range(n):
                    ok = ok and emit(indent, "rng_random()")
            else:
                ok = (emit(indent, "for _i in range(%d):" % n)
                      and emit(indent + 1, "rng_random()"))
            ok = ok and emit(indent, "cycles += %d" % n)
        elif tag == 3:
            ok = emit(indent, "cycles += %d" % (21 * step[1]))
        else:  # tag == 6: paired (pc, addr) memory run (lazy-unroll form)
            write, pairs = step[1], step[2]
            if len(pairs) <= _UNROLL:
                ok = True
                for pc, addr in pairs:
                    ok = (ok and emit(indent, "cycles += 1")
                          and emit(indent,
                                   "cycles += data_access(%d, %r, cycles, %d)"
                                   % (addr, write, pc)))
            else:
                name = gen.bind(pairs)
                ok = (emit(indent, "for _pc, _addr in %s:" % name)
                      and emit(indent + 1, "cycles += 1")
                      and emit(indent + 1,
                               "cycles += data_access(_addr, %r, cycles, _pc)"
                               % (write,)))
        if not ok:
            return False
    return True


def _gen_atomic_node(gen: _Gen, node, line_shift: int, decode_cache,
                     counts: List[int], indent: int, depth: int) -> bool:
    kind = type(node)
    if kind is AssembledBlock:
        decoded = decode_cache.get(id(node))
        if decoded is None:
            decoded = decode_cache[id(node)] = predecode._decode_atomic_block(
                node, line_shift)
        steps, pairs = decoded
        for icls, count in pairs:
            counts[icls] += count
        return _gen_atomic_steps(gen, steps, indent)
    if kind is AssembledLoop:
        trips = node.trips
        body_counts = [0] * _NUM_CLASSES
        if not gen.emit(indent, "for _t%d in range(%d):" % (depth, trips)):
            return False
        for child in node.body:
            if not _gen_atomic_node(gen, child, line_shift, decode_cache,
                                    body_counts, indent + 1, depth + 1):
                return False
        backedge = node.backedge
        bline = backedge.pc >> line_shift
        ok = (gen.emit(indent + 1, "if current_line != %d:" % bline)
              and gen.emit(indent + 2, "cycles += ifetch(%d, cycles)"
                           % backedge.pc)
              and gen.emit(indent + 2, "current_line = %d" % bline)
              and gen.emit(indent + 1, "cycles += 1"))
        if not ok:
            return False
        for icls, count in enumerate(body_counts):
            if count:
                counts[icls] += count * trips
        counts[backedge.icls] += trips
        return True
    return False  # calls (and unknown nodes) are never compiled


def _compile_atomic(node, line_shift: int, decode_cache):
    start = time.perf_counter()
    gen = _Gen()
    counts = [0] * _NUM_CLASSES
    if not _gen_atomic_node(gen, node, line_shift, decode_cache, counts,
                            1, 0):
        STATS["declined"] += 1
        return False
    fn = gen.build("cycles, current_line, ifetch, data_access, rng, "
                   "rng_random", "cycles, current_line", "atomic")
    STATS["compiled_units"] += 1
    STATS["compile_s"] += time.perf_counter() - start
    return fn, tuple((icls, c) for icls, c in enumerate(counts) if c)


def atomic_run(assembled, seed: int, mem) -> Tuple[int, List[int]]:
    """Tier-3 timed replay; bit-identical to ``predecode.atomic_run``."""
    import random

    rng = random.Random("%d|%d|trace" % (assembled.program.seed, seed))
    rng_random = rng.random
    line_shift = mem._line_shift
    ifetch = mem.ifetch
    data_access = mem.data_access
    decode_cache = predecode._cache_for(assembled, ("atomic", line_shift))
    jit_cache = predecode._cache_for(assembled, ("jit-atomic", line_shift))
    routines = assembled.routines
    class_counts = [0] * _NUM_CLASSES
    stats = STATS
    promote_at = _THRESHOLD

    def run_body(body, cycles, current_line, depth):
        for node in body:
            entry = jit_cache.get(id(node))
            if entry is None:
                entry = jit_cache[id(node)] = [0, None]
            state = entry[1]
            if state is None:
                entry[0] += 1
                if entry[0] >= promote_at:
                    state = entry[1] = _compile_atomic(
                        node, line_shift, decode_cache)
            if state:
                fn, pairs = state
                cycles, current_line = fn(cycles, current_line, ifetch,
                                          data_access, rng, rng_random)
                for icls, count in pairs:
                    class_counts[icls] += count
                stats["compiled_calls"] += 1
                continue
            stats["interpreted_calls"] += 1
            kind = type(node)
            if kind is AssembledBlock:
                predecode.STATS["block_replays"] += 1
                decoded = decode_cache.get(id(node))
                if decoded is None:
                    predecode.STATS["decoded_blocks"] += 1
                    decoded = decode_cache[id(node)] = (
                        predecode._decode_atomic_block(node, line_shift))
                steps, pairs = decoded
                for step in steps:
                    tag = step[0]
                    if tag == 1:
                        cycles += step[1]
                    elif tag == 4:
                        write = step[1]
                        pc = step[2]
                        for addr in step[3]:
                            cycles += 1
                            cycles += data_access(addr, write, cycles, pc)
                    elif tag == 0:
                        line = step[2]
                        if line != current_line:
                            cycles += ifetch(step[1], cycles)
                            current_line = line
                    elif tag == 6:
                        write = step[1]
                        for pc, addr in step[2]:
                            cycles += 1
                            cycles += data_access(addr, write, cycles, pc)
                    elif tag == 5:
                        write = step[1]
                        pc = step[2]
                        region = step[3]
                        base = region.base
                        for offset in step[4].offsets(region, step[5], rng):
                            cycles += 1
                            cycles += data_access(base + offset, write,
                                                  cycles, pc)
                    elif tag == 2:
                        n = step[1]
                        for _ in range(n):
                            rng_random()
                        cycles += n
                    else:  # tag == 3: syscall trap entry/exit
                        cycles += 21 * step[1]
                for icls, count in pairs:
                    class_counts[icls] += count
            elif kind is AssembledLoop:
                backedge = node.backedge
                bpc = backedge.pc
                bline = bpc >> line_shift
                body_nodes = node.body
                trips = node.trips
                for _ in range(trips):
                    cycles, current_line = run_body(
                        body_nodes, cycles, current_line, depth)
                    if bline != current_line:
                        cycles += ifetch(bpc, cycles)
                        current_line = bline
                    cycles += 1
                class_counts[backedge.icls] += trips
            elif kind is AssembledCall:
                call_instr = node.call_instr
                line = call_instr.pc >> line_shift
                if line != current_line:
                    cycles += ifetch(call_instr.pc, cycles)
                    current_line = line
                cycles += 1
                class_counts[call_instr.icls] += 1
                if depth >= _MAX_CALL_DEPTH:
                    raise RecursionError(
                        "call depth exceeded %d in %r"
                        % (_MAX_CALL_DEPTH, node.routine))
                cycles, current_line = run_body(
                    routines[node.routine].body, cycles, current_line,
                    depth + 1)
                ret_instr = node.ret_instr
                line = ret_instr.pc >> line_shift
                if line != current_line:
                    cycles += ifetch(ret_instr.pc, cycles)
                    current_line = line
                cycles += 1
                class_counts[ret_instr.icls] += 1
            else:
                raise TypeError("unknown assembled node %r" % (node,))
        return cycles, current_line

    cycles, _ = run_body(routines[assembled.entry].body, 0, -1, 0)
    return cycles, class_counts


# ---------------------------------------------------------------------------
# Functional-warming tier
# ---------------------------------------------------------------------------


def _gen_warm_steps(gen: _Gen, steps, indent: int) -> bool:
    emit = gen.emit
    for step in steps:
        tag = step[0]
        if tag == 0:
            ok = (emit(indent, "if current_line != %d:" % step[2])
                  and emit(indent + 1, "warm_touch(%d, True)" % step[1])
                  and emit(indent + 1, "current_line = %d" % step[2]))
        elif tag == 1:
            write, pc, addrs = step[1], step[2], step[3]
            if len(addrs) <= _UNROLL:
                ok = True
                for addr in addrs:
                    ok = ok and emit(indent, "warm_touch(%d, False, %r, %d)"
                                     % (addr, write, pc))
            else:
                name = gen.bind(addrs)
                ok = (emit(indent, "for _addr in %s:" % name)
                      and emit(indent + 1, "warm_touch(_addr, False, %r, %d)"
                               % (write, pc)))
        elif tag == 2:
            write, pc, region, pattern, n = step[1:]
            offsets = gen.bind(pattern.offsets)
            reg = gen.bind(region)
            ok = (emit(indent, "for _off in %s(%s, %d, rng):"
                       % (offsets, reg, n))
                  and emit(indent + 1, "warm_touch(%d + _off, False, %r, %d)"
                           % (region.base, write, pc)))
        elif tag == 3:
            pc, n = step[1], step[2]
            ok = emit(indent, "if predict is not None:")
            if n <= _UNROLL:
                for _ in range(n):
                    ok = ok and emit(indent + 1, "predict(%d, True)" % pc)
            else:
                ok = (ok and emit(indent + 1, "for _i in range(%d):" % n)
                      and emit(indent + 2, "predict(%d, True)" % pc))
        elif tag == 4:
            pc, n, probability = step[1], step[2], step[3]
            ok = (emit(indent, "if predict is not None:")
                  and emit(indent + 1, "for _i in range(%d):" % n)
                  and emit(indent + 2, "predict(%d, rng_random() < %r)"
                           % (pc, probability))
                  and emit(indent, "else:")
                  and emit(indent + 1, "for _i in range(%d):" % n)
                  and emit(indent + 2, "rng_random()"))
        else:  # tag == 5: paired (pc, addr) memory run (lazy-unroll form)
            write, pairs = step[1], step[2]
            if len(pairs) <= _UNROLL:
                ok = True
                for pc, addr in pairs:
                    ok = ok and emit(indent, "warm_touch(%d, False, %r, %d)"
                                     % (addr, write, pc))
            else:
                name = gen.bind(pairs)
                ok = (emit(indent, "for _pc, _addr in %s:" % name)
                      and emit(indent + 1,
                               "warm_touch(_addr, False, %r, _pc)"
                               % (write,)))
        if not ok:
            return False
    return True


def _gen_warm_node(gen: _Gen, node, line_shift: int, decode_cache,
                   indent: int, depth: int) -> Optional[int]:
    kind = type(node)
    if kind is AssembledBlock:
        decoded = decode_cache.get(id(node))
        if decoded is None:
            decoded = decode_cache[id(node)] = predecode._decode_warm_block(
                node, line_shift)
        steps, block_count = decoded
        if not _gen_warm_steps(gen, steps, indent):
            return None
        return block_count
    if kind is AssembledLoop:
        trips = node.trips
        trip = "_t%d" % depth
        if not gen.emit(indent, "for %s in range(%d):" % (trip, trips)):
            return None
        body_count = 0
        for child in node.body:
            child_count = _gen_warm_node(gen, child, line_shift,
                                         decode_cache, indent + 1, depth + 1)
            if child_count is None:
                return None
            body_count += child_count
        backedge = node.backedge
        bline = backedge.pc >> line_shift
        ok = (gen.emit(indent + 1, "if current_line != %d:" % bline)
              and gen.emit(indent + 2, "warm_touch(%d, True)" % backedge.pc)
              and gen.emit(indent + 2, "current_line = %d" % bline)
              and gen.emit(indent + 1, "if predict is not None:")
              and gen.emit(indent + 2, "predict(%d, %s != %d)"
                           % (backedge.pc, trip, trips - 1)))
        if not ok:
            return None
        return trips * (body_count + 1)
    return None  # calls are never compiled


def _compile_warm(node, line_shift: int, decode_cache):
    start = time.perf_counter()
    gen = _Gen()
    count = _gen_warm_node(gen, node, line_shift, decode_cache, 1, 0)
    if count is None:
        STATS["declined"] += 1
        return False
    fn = gen.build("current_line, warm_touch, rng, rng_random, predict",
                   "current_line", "warm")
    STATS["compiled_units"] += 1
    STATS["compile_s"] += time.perf_counter() - start
    return fn, count


def warm_run(assembled, seed: int, mem, bpred=None) -> int:
    """Tier-3 functional pass; bit-identical to ``predecode.warm_run``."""
    import random

    rng = random.Random("%d|%d|trace" % (assembled.program.seed, seed))
    rng_random = rng.random
    line_shift = mem._line_shift
    warm_touch = mem.warm_touch
    predict = bpred.predict_and_update if bpred is not None else None
    decode_cache = predecode._cache_for(assembled, ("warm", line_shift))
    jit_cache = predecode._cache_for(assembled, ("jit-warm", line_shift))
    routines = assembled.routines
    total = [0]
    stats = STATS
    promote_at = _THRESHOLD

    def run_body(body, current_line, depth):
        for node in body:
            entry = jit_cache.get(id(node))
            if entry is None:
                entry = jit_cache[id(node)] = [0, None]
            state = entry[1]
            if state is None:
                entry[0] += 1
                if entry[0] >= promote_at:
                    state = entry[1] = _compile_warm(
                        node, line_shift, decode_cache)
            if state:
                fn, count = state
                current_line = fn(current_line, warm_touch, rng, rng_random,
                                  predict)
                total[0] += count
                stats["compiled_calls"] += 1
                continue
            stats["interpreted_calls"] += 1
            kind = type(node)
            if kind is AssembledBlock:
                predecode.STATS["block_replays"] += 1
                decoded = decode_cache.get(id(node))
                if decoded is None:
                    predecode.STATS["decoded_blocks"] += 1
                    decoded = decode_cache[id(node)] = (
                        predecode._decode_warm_block(node, line_shift))
                steps, block_count = decoded
                total[0] += block_count
                for step in steps:
                    tag = step[0]
                    if tag == 1:
                        write = step[1]
                        pc = step[2]
                        for addr in step[3]:
                            warm_touch(addr, False, write, pc)
                    elif tag == 0:
                        line = step[2]
                        if line != current_line:
                            warm_touch(step[1], True)
                            current_line = line
                    elif tag == 5:
                        write = step[1]
                        for pc, addr in step[2]:
                            warm_touch(addr, False, write, pc)
                    elif tag == 2:
                        write = step[1]
                        pc = step[2]
                        region = step[3]
                        base = region.base
                        for offset in step[4].offsets(region, step[5], rng):
                            warm_touch(base + offset, False, write, pc)
                    elif tag == 3:
                        if predict is not None:
                            pc = step[1]
                            for _ in range(step[2]):
                                predict(pc, True)
                    else:  # tag == 4
                        pc = step[1]
                        probability = step[3]
                        if predict is not None:
                            for _ in range(step[2]):
                                predict(pc, rng_random() < probability)
                        else:
                            for _ in range(step[2]):
                                rng_random()
            elif kind is AssembledLoop:
                backedge = node.backedge
                bpc = backedge.pc
                bline = bpc >> line_shift
                body_nodes = node.body
                last = node.trips - 1
                for trip in range(node.trips):
                    current_line = run_body(body_nodes, current_line, depth)
                    if bline != current_line:
                        warm_touch(bpc, True)
                        current_line = bline
                    if predict is not None:
                        predict(bpc, trip != last)
                total[0] += node.trips
            elif kind is AssembledCall:
                line = node.call_instr.pc >> line_shift
                if line != current_line:
                    warm_touch(node.call_instr.pc, True)
                    current_line = line
                if depth >= _MAX_CALL_DEPTH:
                    raise RecursionError(
                        "call depth exceeded %d in %r"
                        % (_MAX_CALL_DEPTH, node.routine))
                current_line = run_body(
                    routines[node.routine].body, current_line, depth + 1)
                line = node.ret_instr.pc >> line_shift
                if line != current_line:
                    warm_touch(node.ret_instr.pc, True)
                    current_line = line
                total[0] += 2
            else:
                raise TypeError("unknown assembled node %r" % (node,))
        return current_line

    run_body(routines[assembled.entry].body, -1, 0)
    return total[0]


# ---------------------------------------------------------------------------
# O3 run-stream tier
# ---------------------------------------------------------------------------
#
# Compiled states (stored in the jit cache per node):
#   ("runs", runs)                 rng-free: constant run tuple, yield from
#   ("fn", fn)                     rng-dependent block: generated builder
#                                  fn(rng, rng_random) -> list of runs
#   ("loop", body, taken, fall, trips)
#                                  rng-free loop: flattened body tuple
#                                  replayed per trip


def _o3_flatten(node, line_shift, lat_t, busy_t, ser_t, decode_cache,
                budget: List[int]) -> Optional[List[tuple]]:
    """Flatten an rng-free subtree to a run list; None if impossible."""
    kind = type(node)
    if kind is AssembledBlock:
        decoded = decode_cache.get(id(node))
        if decoded is None:
            decoded = decode_cache[id(node)] = predecode._decode_o3_block(
                node, line_shift, lat_t, busy_t, ser_t)
        runs = []
        for tag, payload in decoded:
            if tag != 0:
                return None
            runs.append(payload)
        budget[0] -= len(runs)
        if budget[0] < 0:
            return None
        return runs
    if kind is AssembledLoop:
        body: List[tuple] = []
        for child in node.body:
            flat = _o3_flatten(child, line_shift, lat_t, busy_t, ser_t,
                               decode_cache, budget)
            if flat is None:
                return None
            body.extend(flat)
        pair = _o3_edge_pair(node, line_shift, lat_t, busy_t, ser_t,
                             decode_cache)
        taken_run, fall_run = pair
        budget[0] -= node.trips * (len(body) + 1)
        if budget[0] < 0:
            return None
        runs = []
        for trip in range(node.trips):
            runs.extend(body)
            runs.append(taken_run if trip != node.trips - 1 else fall_run)
        return runs
    return None  # calls are never flattened


def _o3_edge_pair(node, line_shift, lat_t, busy_t, ser_t, decode_cache):
    pair = decode_cache.get(id(node))
    if pair is None:
        backedge = node.backedge
        pair = decode_cache[id(node)] = (
            predecode._edge_run(backedge, True, line_shift,
                                lat_t, busy_t, ser_t),
            predecode._edge_run(backedge, False, line_shift,
                                lat_t, busy_t, ser_t),
        )
    return pair


def _compile_o3_block(decoded):
    """Generate a run-list builder for an rng-dependent decoded block."""
    start = time.perf_counter()
    gen = _Gen()
    if len(decoded) > _MAX_STMTS:
        STATS["declined"] += 1
        return False
    gen.emit(1, "runs = []")
    gen.emit(1, "append = runs.append")
    for tag, payload in decoded:
        if tag == 0:
            gen.emit(1, "append(%s)" % gen.bind(payload))
        elif tag == 1:
            (count, icls, pc, line, srcs, dst, lanes, ser, lat, busy,
             memkind, region, pattern) = payload
            offsets = gen.bind(pattern.offsets)
            reg = gen.bind(region)
            head = gen.bind((count, icls, pc, line, srcs, dst, lanes,
                             ser, lat, busy, memkind))
            gen.emit(1, "append(%s + ([%d + _o for _o in %s(%s, %d, rng)],"
                        " None))" % (head, region.base, offsets, reg, count))
        else:
            (count, icls, pc, line, srcs, dst, lanes, ser, lat, busy,
             probability) = payload
            head = gen.bind((count, icls, pc, line, srcs, dst, lanes,
                             ser, lat, busy, 0, None))
            gen.emit(1, "append(%s + ([rng_random() < %r"
                        " for _i in range(%d)],))" % (head, probability,
                                                      count))
    fn = gen.build("rng, rng_random", "runs", "o3")
    STATS["compiled_units"] += 1
    STATS["compile_s"] += time.perf_counter() - start
    return "fn", fn


def _compile_o3(node, line_shift, lat_t, busy_t, ser_t, decode_cache):
    kind = type(node)
    if kind is AssembledBlock:
        decoded = decode_cache.get(id(node))
        if decoded is None:
            decoded = decode_cache[id(node)] = predecode._decode_o3_block(
                node, line_shift, lat_t, busy_t, ser_t)
        if all(tag == 0 for tag, _ in decoded):
            start = time.perf_counter()
            runs = tuple(payload for _, payload in decoded)
            STATS["compiled_units"] += 1
            STATS["compile_s"] += time.perf_counter() - start
            return "runs", runs
        return _compile_o3_block(decoded)
    if kind is AssembledLoop:
        start = time.perf_counter()
        budget = [_MAX_STMTS]
        body: List[tuple] = []
        for child in node.body:
            flat = _o3_flatten(child, line_shift, lat_t, busy_t, ser_t,
                               decode_cache, budget)
            if flat is None:
                STATS["declined"] += 1
                return False
            body.extend(flat)
        taken_run, fall_run = _o3_edge_pair(node, line_shift, lat_t, busy_t,
                                            ser_t, decode_cache)
        STATS["compiled_units"] += 1
        STATS["compile_s"] += time.perf_counter() - start
        return "loop", tuple(body), taken_run, fall_run, node.trips
    STATS["declined"] += 1
    return False


def o3_stream(assembled, seed, line_shift, lat_t, busy_t, ser_t):
    """Tier-3 run stream; bit-identical to the tier-2 decoded stream."""
    import random

    rng = random.Random("%d|%d|trace" % (assembled.program.seed, seed))
    rng_random = rng.random
    decode_cache = predecode._cache_for(assembled, ("o3", line_shift))
    jit_cache = predecode._cache_for(assembled, ("jit-o3", line_shift))
    routines = assembled.routines
    stats = STATS
    promote_at = _THRESHOLD

    def run_body(body, depth):
        for node in body:
            entry = jit_cache.get(id(node))
            if entry is None:
                entry = jit_cache[id(node)] = [0, None]
            state = entry[1]
            if state is None:
                entry[0] += 1
                if entry[0] >= promote_at:
                    state = entry[1] = _compile_o3(
                        node, line_shift, lat_t, busy_t, ser_t, decode_cache)
            if state:
                stats["compiled_calls"] += 1
                shape = state[0]
                if shape == "runs":
                    yield from state[1]
                    continue
                if shape == "fn":
                    yield from state[1](rng, rng_random)
                    continue
                _, body_runs, taken_run, fall_run, trips = state
                last = trips - 1
                for trip in range(trips):
                    yield from body_runs
                    yield taken_run if trip != last else fall_run
                continue
            stats["interpreted_calls"] += 1
            kind = type(node)
            if kind is AssembledBlock:
                predecode.STATS["block_replays"] += 1
                decoded = decode_cache.get(id(node))
                if decoded is None:
                    predecode.STATS["decoded_blocks"] += 1
                    decoded = decode_cache[id(node)] = (
                        predecode._decode_o3_block(node, line_shift, lat_t,
                                                   busy_t, ser_t))
                for tag, payload in decoded:
                    if tag == 0:
                        yield payload
                    elif tag == 1:
                        (count, icls, pc, line, srcs, dst, lanes, ser,
                         lat, busy, memkind, region, pattern) = payload
                        base = region.base
                        addrs = [base + offset for offset in
                                 pattern.offsets(region, count, rng)]
                        yield (count, icls, pc, line, srcs, dst, lanes,
                               ser, lat, busy, memkind, addrs, None)
                    else:
                        (count, icls, pc, line, srcs, dst, lanes, ser,
                         lat, busy, probability) = payload
                        takens = [rng_random() < probability
                                  for _ in range(count)]
                        yield (count, icls, pc, line, srcs, dst, lanes,
                               ser, lat, busy, 0, None, takens)
            elif kind is AssembledLoop:
                taken_run, fall_run = _o3_edge_pair(
                    node, line_shift, lat_t, busy_t, ser_t, decode_cache)
                body_nodes = node.body
                last = node.trips - 1
                for trip in range(node.trips):
                    for run in run_body(body_nodes, depth):
                        yield run
                    yield taken_run if trip != last else fall_run
            elif kind is AssembledCall:
                pair = decode_cache.get(id(node))
                if pair is None:
                    pair = decode_cache[id(node)] = (
                        predecode._edge_run(node.call_instr, None,
                                            line_shift, lat_t, busy_t,
                                            ser_t),
                        predecode._edge_run(node.ret_instr, None,
                                            line_shift, lat_t, busy_t,
                                            ser_t),
                    )
                yield pair[0]
                if depth >= _MAX_CALL_DEPTH:
                    raise RecursionError(
                        "call depth exceeded %d in %r"
                        % (_MAX_CALL_DEPTH, node.routine))
                for run in run_body(routines[node.routine].body, depth + 1):
                    yield run
                yield pair[1]
            else:
                raise TypeError("unknown assembled node %r" % (node,))

    return run_body(routines[assembled.entry].body, 0)
