"""RISC-V (RV64GC) instruction-set model.

Fixed-length 4-byte encoding with the C (compressed) extension: a fraction
of instructions encode in 2 bytes, giving the code density observed on
real RV64GC builds.  Lowering is close to one instruction per IR op —
compare-and-branch is a single instruction, loads and stores carry their
own addressing — which is what keeps the RISC-V dynamic instruction counts
low in the thesis's measurements.
"""

from __future__ import annotations

import random

from repro.sim.isa import ir
from repro.sim.isa.base import BLOCK_APP, BLOCK_RTPATH, BLOCK_STACK, ISA


class RiscvISA(ISA):
    """RV64GC model used for the ported vSwarm functions."""

    name = "riscv"

    #: Fraction of instructions that use the compressed (2-byte) encoding,
    #: in line with RV64GC compiler output (~55-60% of static instructions
    #: compress; we use a conservative blend).
    compressed_fraction = 0.45

    #: The RISC-V software stack (Ubuntu Jammy + Go/Python/NodeJS runtimes
    #: as ported in the thesis) is the baseline: multiplier 1.0.
    stack_multiplier = 1.0

    #: ecall + minimal trap entry/exit on the OpenSBI/Linux path.
    syscall_overhead_instrs = 6

    #: RVV: scalable vectors stripmined by the configured VLEN, with a
    #: per-strip ``vsetvli`` re-configuration lowered as a CSR instr.
    vector_style = "rvv"

    expansion = {
        # One instruction per IR op unit nearly everywhere.
        (ir.OP_IALU, BLOCK_APP): 1.0,
        (ir.OP_IALU, BLOCK_STACK): 1.0,
        (ir.OP_LOAD, BLOCK_APP): 1.0,
        (ir.OP_LOAD, BLOCK_STACK): 1.0,
        (ir.OP_STORE, BLOCK_APP): 1.0,
        (ir.OP_STORE, BLOCK_STACK): 1.0,
        # Fused compare-and-branch.
        (ir.OP_BRANCH, BLOCK_APP): 1.0,
        (ir.OP_BRANCH, BLOCK_STACK): 1.0,
        (ir.OP_IMUL, BLOCK_APP): 1.0,
        (ir.OP_IDIV, BLOCK_APP): 1.0,
        (ir.OP_FALU, BLOCK_APP): 1.0,
        (ir.OP_FMUL, BLOCK_APP): 1.0,
        (ir.OP_FDIV, BLOCK_APP): 1.0,
        (ir.OP_IALU, BLOCK_RTPATH): 1.0,
        (ir.OP_LOAD, BLOCK_RTPATH): 1.0,
        (ir.OP_STORE, BLOCK_RTPATH): 1.0,
        (ir.OP_BRANCH, BLOCK_RTPATH): 1.0,
    }

    def instr_size(self, rng: random.Random) -> int:
        return 2 if rng.random() < self.compressed_fraction else 4

    def instr_sizes(self, rng: random.Random, count: int):
        random_ = rng.random
        compressed = self.compressed_fraction
        return [2 if random_() < compressed else 4 for _ in range(count)]
