"""Instruction-set models and the workload IR they lower from.

Workloads (vSwarm functions, runtimes, the kernel boot path) are written
against a small intermediate representation (:mod:`repro.sim.isa.ir`):
compute ops, loads/stores over named memory regions, loops, calls, and
syscalls.  A per-ISA assembler (:mod:`repro.sim.isa.riscv`,
:mod:`repro.sim.isa.x86`) lowers the IR into a static instruction layout
with concrete program counters and sizes; the trace generator
(:mod:`repro.sim.isa.trace`) then walks the assembled program producing the
dynamic instruction stream the CPU timing models consume.

The two ISAs differ where the thesis measured differences: dynamic
instruction counts along the software stack (x86 executed significantly
more instructions, §4.2.3.1), instruction sizes (RISC-V fixed 4-byte with a
compressed subset, x86 variable length), and therefore code footprints.
"""

from repro.sim.isa.base import (
    ISA,
    InstrClass,
    StaticInstr,
    BLOCK_APP,
    BLOCK_STACK,
)
from repro.sim.isa.ir import (
    AddressSpace,
    Block,
    Call,
    Loop,
    Program,
    RandomPattern,
    Region,
    Routine,
    Seq,
    StridePattern,
)
from repro.sim.isa.arm import ArmISA
from repro.sim.isa.riscv import RiscvISA
from repro.sim.isa.trace import AssembledProgram, TraceGenerator
from repro.sim.isa.vector import VectorConfig
from repro.sim.isa.x86 import X86ISA

#: Registry of the ISAs the infrastructure was ported to.
ISA_REGISTRY = {
    "riscv": RiscvISA,
    "x86": X86ISA,
    "arm": ArmISA,
}


def get_isa(name: str, vector=None) -> ISA:
    """Instantiate an ISA model by name (``"riscv"`` or ``"x86"``).

    ``vector`` optionally attaches a :class:`VectorConfig` to the
    instance; with the default None the model is scalar-only and vector
    IR ops lower element-by-element to scalar instructions.
    """
    try:
        isa = ISA_REGISTRY[name]()
    except KeyError:
        raise ValueError(
            "unknown ISA %r; supported: %s" % (name, sorted(ISA_REGISTRY))
        ) from None
    if vector is not None:
        isa.vector = vector
    return isa


__all__ = [
    "AddressSpace",
    "ArmISA",
    "AssembledProgram",
    "Block",
    "BLOCK_APP",
    "BLOCK_STACK",
    "Call",
    "ISA",
    "ISA_REGISTRY",
    "InstrClass",
    "Loop",
    "Program",
    "RandomPattern",
    "Region",
    "RiscvISA",
    "Routine",
    "Seq",
    "StaticInstr",
    "StridePattern",
    "TraceGenerator",
    "VectorConfig",
    "X86ISA",
    "get_isa",
]
