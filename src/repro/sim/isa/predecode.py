"""Basic-block predecode cache: decode each static block once, replay many.

The legacy trace path (:mod:`repro.sim.isa.trace`) re-derives every
dynamic instruction from the IR structure on every run: one generator
frame per block, per-instance class dispatch, per-access pattern
arithmetic, and a ``(static, addr, taken)`` tuple allocation per
instruction.  The experiment protocol replays the same assembled
programs hundreds of times (boot, warming requests, cold/warm measured
requests), so all of that work is redundant after the first replay.

This module decodes each *static* :class:`~repro.sim.isa.base.AssembledBlock`
exactly once per consumer into flat tuples, and replays those:

* ``atomic_run``  — timed in-order replay for ``AtomicCpu.run_program``,
* ``warm_run``    — untimed functional warming for ``BaseCpu.warm_program``,
* ``o3_stream``   — resolved instruction *runs* (one tuple per group of
  consecutive dynamic instances of a static instruction) consumed by the
  O3 model's merged pipeline loop.

Replay is **bit-identical** to the legacy trace path: the same rng draws
in the same order (address patterns and branch outcomes), the same cycle
number at every cache/TLB/DRAM access, the same per-access PC (feeding
PC-indexed prefetchers), and the same statistics.  The tier-1 suite
asserts this equivalence with the cache forced on and off; set
``REPRO_PREDECODE=0`` in the environment (or call :func:`set_enabled`)
to select the legacy path.

Decoded forms are cached on the ``AssembledProgram`` instance itself
(keyed by consumer and line granularity), so they share the lifetime of
the static instructions they index and never go stale.
"""

from __future__ import annotations

import os
import random
from typing import Iterator, List, Optional, Tuple

from repro.sim.isa import ir
from repro.sim.isa.base import (
    AssembledBlock,
    AssembledCall,
    AssembledLoop,
    InstrClass,
    UnrolledRun,
)

#: Kept in sync with :data:`repro.sim.isa.trace._MAX_CALL_DEPTH`.
_MAX_CALL_DEPTH = 64

_LOAD = InstrClass.LOAD
_STORE = InstrClass.STORE
_BRANCH = InstrClass.BRANCH
_SYSCALL = InstrClass.SYSCALL
_NUM_CLASSES = len(InstrClass.NAMES)

_ENABLED = os.environ.get("REPRO_PREDECODE", "1").lower() not in (
    "0", "false", "off", "no",
)

#: Process-wide tier-2 counters (see ``python -m repro cache stats``):
#: ``block_replays`` counts block-node executions through the decoded
#: replayers, ``decoded_blocks`` counts decode misses (first replay of a
#: block per consumer flavour).  The hit rate is their complement.
STATS: dict = {}


def reset_stats() -> None:
    """Zero the tier-2 counters."""
    STATS.update(block_replays=0, decoded_blocks=0)


reset_stats()


def enabled() -> bool:
    """Whether replay uses the predecode cache (default: yes)."""
    return _ENABLED


def set_enabled(value: bool) -> bool:
    """Toggle the predecode cache; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(value)
    return previous


def _cache_for(assembled, key) -> dict:
    """Per-program decode cache for one (consumer, line-shift) flavour."""
    caches = assembled.__dict__.get("_predecode")
    if caches is None:
        caches = assembled._predecode = {}
    per = caches.get(key)
    if per is None:
        per = caches[key] = {}
    return per


def _stride_addrs(instr, count: int) -> Optional[Tuple[int, ...]]:
    """Precomputed absolute addresses for rng-free stride patterns.

    Returns ``None`` when the pattern draws from the trace rng (random /
    hot-cold / unknown subclasses), in which case addresses must be
    materialised at replay time to keep the draw order intact.
    """
    pattern = instr.pattern
    if type(pattern) is not ir.StridePattern:
        return None
    region = instr.region
    size = region.size
    base = region.base
    stride = pattern.stride
    offset = pattern.start % size
    addrs: List[int] = []
    append = addrs.append
    for _ in range(count):
        append(base + offset)
        offset = (offset + stride) % size
    return tuple(addrs)


def program_length(assembled) -> int:
    """Total dynamic instruction count of one replay (seed-independent).

    Dynamic counts come from static ``repeat`` values, loop trip counts
    and call edges — never from the trace rng — so the length is a pure
    property of the assembled program.  The sampled simulation path uses
    it to decide whether a run is long enough to sample at all.  Cached
    on the assembled object.
    """
    cached = assembled.__dict__.get("_insts_total")
    if cached is not None:
        return cached
    routines = assembled.routines
    block_counts: dict = {}

    def body_count(body, depth: int) -> int:
        total = 0
        for node in body:
            kind = type(node)
            if kind is AssembledBlock:
                n = block_counts.get(id(node))
                if n is None:
                    n = 0
                    for segment in node.segments:
                        if type(segment) is UnrolledRun:
                            n += segment.count
                        else:
                            n += sum(instr.repeat for instr in segment)
                    block_counts[id(node)] = n
                total += n
            elif kind is AssembledLoop:
                # Per trip: the body plus the backedge branch.
                total += node.trips * (body_count(node.body, depth) + 1)
            elif kind is AssembledCall:
                if depth >= _MAX_CALL_DEPTH:
                    raise RecursionError(
                        "call depth exceeded %d in %r"
                        % (_MAX_CALL_DEPTH, node.routine))
                total += 2 + body_count(routines[node.routine].body,
                                        depth + 1)
            else:
                raise TypeError("unknown assembled node %r" % (node,))
        return total

    total = body_count(routines[assembled.entry].body, 0)
    assembled._insts_total = total
    return total


# ---------------------------------------------------------------------------
# Atomic replay
# ---------------------------------------------------------------------------
#
# Decoded step vocabulary (tag first):
#   (0, pc, line)                        fetch point: ifetch on line change
#   (1, n)                               n plain instructions: cycles += n
#   (2, n)                               n branch-probability draws + n cycles
#   (3, n)                               n syscalls: cycles += 21 * n
#   (4, write, pc, addrs)                memory run, precomputed addresses
#   (5, write, pc, region, pattern, n)   memory run, rng-drawn addresses
#   (6, write, pairs)                    memory run, precomputed (pc, addr)
#                                        pairs spanning several static
#                                        instructions (unrolled lowering)
#
# Plain cycles accumulate across consecutive non-memory, non-drawing
# instructions and flush before any step that observes the cycle count
# or the rng, so every data_access() sees exactly the legacy cycle.


def _decode_atomic_run(run, line_shift, steps, append, counts, prev_line,
                       pending):
    """Decode one :class:`UnrolledRun` straight from its compact form.

    Emits the same access stream the materialized per-instruction form
    decodes to — same fetch points, same per-access PCs and addresses —
    without ever creating the ``StaticInstr`` objects.
    """
    icls = run.icls
    counts[icls] += run.count
    pc = run.base_pc
    sizes = run.sizes
    if icls == _LOAD or icls == _STORE:
        if pending:
            append((1, pending))
            pending = 0
        write = icls == _STORE
        pattern = run.pattern
        if type(pattern) is ir.StridePattern:
            region = run.region
            rbase = region.base
            rsize = region.size
            stride = pattern.stride
            start = pattern.start
            pairs: List[tuple] = []
            for index, size in enumerate(sizes):
                line = pc >> line_shift
                if line != prev_line:
                    if pairs:
                        append((6, write, tuple(pairs)))
                        pairs = []
                    append((0, pc, line))
                    prev_line = line
                pairs.append((pc, rbase + (start + index * stride) % rsize))
                pc += size
            if pairs:
                append((6, write, tuple(pairs)))
        else:
            region = run.region
            for size in sizes:
                line = pc >> line_shift
                if line != prev_line:
                    append((0, pc, line))
                    prev_line = line
                append((5, write, pc, region, pattern, 1))
                pc += size
    elif icls == _BRANCH and run.probability < 1.0:
        if pending:
            append((1, pending))
            pending = 0
        for size in sizes:
            line = pc >> line_shift
            if line != prev_line:
                append((0, pc, line))
                prev_line = line
            if steps and steps[-1][0] == 2:
                steps[-1] = (2, steps[-1][1] + 1)
            else:
                append((2, 1))
            pc += size
    else:  # compute / always-taken branch: plain cycles
        for size in sizes:
            line = pc >> line_shift
            if line != prev_line:
                if pending:
                    append((1, pending))
                    pending = 0
                append((0, pc, line))
                prev_line = line
            pending += 1
            pc += size
    return prev_line, pending


def _decode_atomic_block(block, line_shift: int):
    steps: List[tuple] = []
    append = steps.append
    counts = [0] * _NUM_CLASSES
    prev_line = -1
    pending = 0
    for segment in block.segments:
        if type(segment) is UnrolledRun:
            prev_line, pending = _decode_atomic_run(
                segment, line_shift, steps, append, counts, prev_line,
                pending)
            continue
        for instr in segment:
            pc = instr.pc
            line = pc >> line_shift
            if line != prev_line:
                if pending:
                    append((1, pending))
                    pending = 0
                append((0, pc, line))
                prev_line = line
            icls = instr.icls
            n = instr.repeat
            counts[icls] += n
            if instr.is_mem:
                if pending:
                    append((1, pending))
                    pending = 0
                write = icls == _STORE
                addrs = _stride_addrs(instr, n)
                if addrs is not None:
                    append((4, write, pc, addrs))
                else:
                    append((5, write, pc, instr.region, instr.pattern, n))
            elif icls == _BRANCH and instr.taken_probability < 1.0:
                if pending:
                    append((1, pending))
                    pending = 0
                if steps and steps[-1][0] == 2:
                    steps[-1] = (2, steps[-1][1] + n)
                else:
                    append((2, n))
            elif icls == _SYSCALL:
                if pending:
                    append((1, pending))
                    pending = 0
                if steps and steps[-1][0] == 3:
                    steps[-1] = (3, steps[-1][1] + n)
                else:
                    append((3, n))
            else:
                pending += n
    if pending:
        append((1, pending))
    pairs = tuple((icls, c) for icls, c in enumerate(counts) if c)
    return steps, pairs


def atomic_run(assembled, seed: int, mem) -> Tuple[int, List[int]]:
    """Timed in-order replay; returns ``(cycles, class_counts)``.

    Bit-identical to ``AtomicCpu.run_program``'s legacy loop over
    ``assembled.trace(seed)``: same fetches, same per-access cycles and
    PCs, same rng consumption.
    """
    rng = random.Random("%d|%d|trace" % (assembled.program.seed, seed))
    rng_random = rng.random
    line_shift = mem._line_shift
    ifetch = mem.ifetch
    data_access = mem.data_access
    blocks = _cache_for(assembled, ("atomic", line_shift))
    routines = assembled.routines
    class_counts = [0] * _NUM_CLASSES
    stats = STATS

    def run_body(body, cycles, current_line, depth):
        for node in body:
            kind = type(node)
            if kind is AssembledBlock:
                stats["block_replays"] += 1
                decoded = blocks.get(id(node))
                if decoded is None:
                    stats["decoded_blocks"] += 1
                    decoded = blocks[id(node)] = _decode_atomic_block(
                        node, line_shift)
                steps, pairs = decoded
                for step in steps:
                    tag = step[0]
                    if tag == 1:
                        cycles += step[1]
                    elif tag == 4:
                        write = step[1]
                        pc = step[2]
                        for addr in step[3]:
                            cycles += 1
                            cycles += data_access(addr, write, cycles, pc)
                    elif tag == 0:
                        line = step[2]
                        if line != current_line:
                            cycles += ifetch(step[1], cycles)
                            current_line = line
                    elif tag == 5:
                        write = step[1]
                        pc = step[2]
                        region = step[3]
                        base = region.base
                        for offset in step[4].offsets(region, step[5], rng):
                            cycles += 1
                            cycles += data_access(base + offset, write,
                                                  cycles, pc)
                    elif tag == 6:
                        write = step[1]
                        for pc, addr in step[2]:
                            cycles += 1
                            cycles += data_access(addr, write, cycles, pc)
                    elif tag == 2:
                        n = step[1]
                        for _ in range(n):
                            rng_random()
                        cycles += n
                    else:  # tag == 3: syscall trap entry/exit
                        cycles += 21 * step[1]
                for icls, count in pairs:
                    class_counts[icls] += count
            elif kind is AssembledLoop:
                backedge = node.backedge
                bpc = backedge.pc
                bline = bpc >> line_shift
                body_nodes = node.body
                trips = node.trips
                for _ in range(trips):
                    cycles, current_line = run_body(
                        body_nodes, cycles, current_line, depth)
                    if bline != current_line:
                        cycles += ifetch(bpc, cycles)
                        current_line = bline
                    cycles += 1
                class_counts[backedge.icls] += trips
            elif kind is AssembledCall:
                call_instr = node.call_instr
                line = call_instr.pc >> line_shift
                if line != current_line:
                    cycles += ifetch(call_instr.pc, cycles)
                    current_line = line
                cycles += 1
                class_counts[call_instr.icls] += 1
                if depth >= _MAX_CALL_DEPTH:
                    raise RecursionError(
                        "call depth exceeded %d in %r"
                        % (_MAX_CALL_DEPTH, node.routine))
                cycles, current_line = run_body(
                    routines[node.routine].body, cycles, current_line,
                    depth + 1)
                ret_instr = node.ret_instr
                line = ret_instr.pc >> line_shift
                if line != current_line:
                    cycles += ifetch(ret_instr.pc, cycles)
                    current_line = line
                cycles += 1
                class_counts[ret_instr.icls] += 1
            else:
                raise TypeError("unknown assembled node %r" % (node,))
        return cycles, current_line

    cycles, _ = run_body(routines[assembled.entry].body, 0, -1, 0)
    return cycles, class_counts


# ---------------------------------------------------------------------------
# Functional warming replay
# ---------------------------------------------------------------------------
#
# Decoded step vocabulary:
#   (0, pc, line)                        warm ifetch on line change
#   (1, write, pc, addrs)                memory run, precomputed addresses
#   (2, write, pc, region, pattern, n)   memory run, rng-drawn addresses
#   (3, pc, n)                           always-taken branch (trains bpred)
#   (4, pc, n, p)                        probabilistic branch (draws always,
#                                        trains bpred when attached)
#   (5, write, pairs)                    memory run, precomputed (pc, addr)
#                                        pairs spanning several static
#                                        instructions (unrolled lowering)


def _decode_warm_run(run, line_shift, append, prev_line):
    """Decode one :class:`UnrolledRun` for warming, skipping materialize."""
    icls = run.icls
    pc = run.base_pc
    sizes = run.sizes
    if icls == _LOAD or icls == _STORE:
        write = icls == _STORE
        pattern = run.pattern
        if type(pattern) is ir.StridePattern:
            region = run.region
            rbase = region.base
            rsize = region.size
            stride = pattern.stride
            start = pattern.start
            pairs: List[tuple] = []
            for index, size in enumerate(sizes):
                line = pc >> line_shift
                if line != prev_line:
                    if pairs:
                        append((5, write, tuple(pairs)))
                        pairs = []
                    append((0, pc, line))
                    prev_line = line
                pairs.append((pc, rbase + (start + index * stride) % rsize))
                pc += size
            if pairs:
                append((5, write, tuple(pairs)))
        else:
            region = run.region
            for size in sizes:
                line = pc >> line_shift
                if line != prev_line:
                    append((0, pc, line))
                    prev_line = line
                append((2, write, pc, region, pattern, 1))
                pc += size
    elif icls == _BRANCH:
        taken = run.probability >= 1.0
        probability = run.probability
        for size in sizes:
            line = pc >> line_shift
            if line != prev_line:
                append((0, pc, line))
                prev_line = line
            if taken:
                append((3, pc, 1))
            else:
                append((4, pc, 1, probability))
            pc += size
    else:  # compute: only fetch points matter for warming
        for size in sizes:
            line = pc >> line_shift
            if line != prev_line:
                append((0, pc, line))
                prev_line = line
            pc += size
    return prev_line


def _decode_warm_block(block, line_shift: int):
    steps: List[tuple] = []
    append = steps.append
    count = 0
    prev_line = -1
    for segment in block.segments:
        if type(segment) is UnrolledRun:
            count += segment.count
            prev_line = _decode_warm_run(segment, line_shift, append,
                                         prev_line)
            continue
        for instr in segment:
            pc = instr.pc
            line = pc >> line_shift
            if line != prev_line:
                append((0, pc, line))
                prev_line = line
            icls = instr.icls
            n = instr.repeat
            count += n
            if instr.is_mem:
                write = icls == _STORE
                addrs = _stride_addrs(instr, n)
                if addrs is not None:
                    append((1, write, pc, addrs))
                else:
                    append((2, write, pc, instr.region, instr.pattern, n))
            elif icls == _BRANCH:
                if instr.taken_probability >= 1.0:
                    append((3, pc, n))
                else:
                    append((4, pc, n, instr.taken_probability))
    return steps, count


def warm_run(assembled, seed: int, mem, bpred=None) -> int:
    """Untimed functional pass; returns the instruction count.

    Mirrors ``BaseCpu.warm_program``: caches and TLBs update on the same
    access stream, the branch predictor (when supplied) trains on every
    branch outcome, and the trace rng is consumed identically — branch
    probability draws happen whether or not a predictor is attached,
    because the legacy trace generator draws them unconditionally.
    """
    rng = random.Random("%d|%d|trace" % (assembled.program.seed, seed))
    rng_random = rng.random
    line_shift = mem._line_shift
    warm_touch = mem.warm_touch
    predict = bpred.predict_and_update if bpred is not None else None
    blocks = _cache_for(assembled, ("warm", line_shift))
    routines = assembled.routines
    total = [0]
    stats = STATS

    def run_body(body, current_line, depth):
        for node in body:
            kind = type(node)
            if kind is AssembledBlock:
                stats["block_replays"] += 1
                decoded = blocks.get(id(node))
                if decoded is None:
                    stats["decoded_blocks"] += 1
                    decoded = blocks[id(node)] = _decode_warm_block(
                        node, line_shift)
                steps, block_count = decoded
                total[0] += block_count
                for step in steps:
                    tag = step[0]
                    if tag == 1:
                        write = step[1]
                        pc = step[2]
                        for addr in step[3]:
                            warm_touch(addr, False, write, pc)
                    elif tag == 0:
                        line = step[2]
                        if line != current_line:
                            warm_touch(step[1], True)
                            current_line = line
                    elif tag == 2:
                        write = step[1]
                        pc = step[2]
                        region = step[3]
                        base = region.base
                        for offset in step[4].offsets(region, step[5], rng):
                            warm_touch(base + offset, False, write, pc)
                    elif tag == 3:
                        if predict is not None:
                            pc = step[1]
                            for _ in range(step[2]):
                                predict(pc, True)
                    elif tag == 5:
                        write = step[1]
                        for pc, addr in step[2]:
                            warm_touch(addr, False, write, pc)
                    else:  # tag == 4
                        pc = step[1]
                        probability = step[3]
                        if predict is not None:
                            for _ in range(step[2]):
                                predict(pc, rng_random() < probability)
                        else:
                            for _ in range(step[2]):
                                rng_random()
            elif kind is AssembledLoop:
                backedge = node.backedge
                bpc = backedge.pc
                bline = bpc >> line_shift
                body_nodes = node.body
                last = node.trips - 1
                for trip in range(node.trips):
                    current_line = run_body(body_nodes, current_line, depth)
                    if bline != current_line:
                        warm_touch(bpc, True)
                        current_line = bline
                    if predict is not None:
                        predict(bpc, trip != last)
                total[0] += node.trips
            elif kind is AssembledCall:
                line = node.call_instr.pc >> line_shift
                if line != current_line:
                    warm_touch(node.call_instr.pc, True)
                    current_line = line
                if depth >= _MAX_CALL_DEPTH:
                    raise RecursionError(
                        "call depth exceeded %d in %r"
                        % (_MAX_CALL_DEPTH, node.routine))
                current_line = run_body(
                    routines[node.routine].body, current_line, depth + 1)
                line = node.ret_instr.pc >> line_shift
                if line != current_line:
                    warm_touch(node.ret_instr.pc, True)
                    current_line = line
                total[0] += 2
            else:
                raise TypeError("unknown assembled node %r" % (node,))
        return current_line

    run_body(routines[assembled.entry].body, -1, 0)
    return total[0]


# ---------------------------------------------------------------------------
# O3 run stream
# ---------------------------------------------------------------------------
#
# The O3 model consumes *runs*: one tuple per group of consecutive
# dynamic instances of a static instruction,
#
#   (count, icls, pc, line, srcs, dst, lanes, serializing, latency,
#    busy, memkind, addrs, takens)
#
# with ``lanes`` either None or a tuple of per-rotation (srcs, dst)
# pairs (instance i uses lanes[i % len]); ``memkind`` 0/1/2 for
# none/load/store; ``addrs`` an indexable of per-instance addresses for
# memory runs; ``takens`` True/False for constant branch outcomes, an
# indexable of bools for probabilistic branches, None otherwise.
#
# Cached decoded entries are (tag, payload) pairs: tag 0 is a fully
# resolved run yielded as-is, tags 1/2 carry rng-dependent memory /
# branch templates resolved per execution — resolution draws from the
# trace rng in exactly the legacy order, since a run's draws are
# contiguous in the legacy stream too.


def _make_lanes(instr) -> Optional[tuple]:
    rotate = instr.rotate
    if not rotate:
        return None
    icls = instr.icls
    dst = instr.dst
    lanes = []
    for lane_reg in rotate:
        lane_srcs = (lane_reg,) if dst >= 0 or icls == _STORE else instr.srcs
        lane_dst = lane_reg if dst >= 0 else -1
        lanes.append((lane_srcs, lane_dst))
    return tuple(lanes)


def _edge_run(instr, taken, line_shift, lat_t, busy_t, ser_t):
    icls = instr.icls
    return (1, icls, instr.pc, instr.pc >> line_shift, instr.srcs,
            instr.dst, None, ser_t[icls], lat_t[icls], busy_t[icls],
            0, None, taken)


def _decode_o3_run(run, line_shift, lat_t, busy_t, ser_t, entries):
    """Decode one :class:`UnrolledRun` to per-instance O3 entries.

    Emits exactly what decoding the materialized instructions would —
    same PCs, register lanes, addresses, and rng templates — without
    creating the ``StaticInstr`` objects.
    """
    from repro.sim.isa.base import (
        ADDR_REG, FP_CHAIN_BASE, INT_CHAIN_BASE, ZERO_REG,
    )
    icls = run.icls
    pc = run.base_pc
    sizes = run.sizes
    chain = run.chain
    ilp = run.ilp
    ser = ser_t[icls]
    lat = lat_t[icls]
    busy = busy_t[icls]
    append = entries.append
    if icls == _LOAD or icls == _STORE:
        load = icls == _LOAD
        memkind = 1 if load else 2
        regs = [INT_CHAIN_BASE + (lane % 24) for lane in range(ilp)]
        region = run.region
        pattern = run.pattern
        if type(pattern) is ir.StridePattern:
            rbase = region.base
            rsize = region.size
            stride = pattern.stride
            start = pattern.start
            for index, size in enumerate(sizes):
                reg = regs[(chain + index) % ilp]
                srcs = (ADDR_REG,) if load else (reg, ADDR_REG)
                dst = reg if load else -1
                addr = rbase + (start + index * stride) % rsize
                append((0, (1, icls, pc, pc >> line_shift, srcs, dst,
                            None, ser, lat, busy, memkind, (addr,), None)))
                pc += size
        else:
            for index, size in enumerate(sizes):
                reg = regs[(chain + index) % ilp]
                srcs = (ADDR_REG,) if load else (reg, ADDR_REG)
                dst = reg if load else -1
                append((1, (1, icls, pc, pc >> line_shift, srcs, dst,
                            None, ser, lat, busy, memkind, region,
                            pattern)))
                pc += size
    elif icls == _BRANCH:
        regs = [INT_CHAIN_BASE + (lane % 24) for lane in range(ilp)]
        probability = run.probability
        if probability < 1.0:
            for index, size in enumerate(sizes):
                reg = regs[(chain + index) % ilp]
                append((2, (1, icls, pc, pc >> line_shift, (reg,), -1,
                            None, ser, lat, busy, probability)))
                pc += size
        else:
            for index, size in enumerate(sizes):
                reg = regs[(chain + index) % ilp]
                append((0, (1, icls, pc, pc >> line_shift, (reg,), -1,
                            None, ser, lat, busy, 0, None, True)))
                pc += size
    else:  # compute: dst = lane register, srcs = (lane, zero)
        base = FP_CHAIN_BASE if run.fp else INT_CHAIN_BASE
        lanes = [(base + (lane % 24), (base + (lane % 24), ZERO_REG))
                 for lane in range(ilp)]
        for index, size in enumerate(sizes):
            reg, srcs = lanes[(chain + index) % ilp]
            append((0, (1, icls, pc, pc >> line_shift, srcs, reg,
                        None, ser, lat, busy, 0, None, None)))
            pc += size


def _decode_o3_block(block, line_shift, lat_t, busy_t, ser_t):
    entries: List[tuple] = []
    for segment in block.segments:
        if type(segment) is UnrolledRun:
            _decode_o3_run(segment, line_shift, lat_t, busy_t, ser_t,
                           entries)
            continue
        for instr in segment:
            icls = instr.icls
            pc = instr.pc
            count = instr.repeat
            lanes = _make_lanes(instr)
            line = pc >> line_shift
            ser = ser_t[icls]
            lat = lat_t[icls]
            busy = busy_t[icls]
            if instr.is_mem:
                memkind = 1 if icls == _LOAD else 2
                addrs = _stride_addrs(instr, count)
                if addrs is None:
                    entries.append((1, (count, icls, pc, line, instr.srcs,
                                        instr.dst, lanes, ser, lat, busy,
                                        memkind, instr.region,
                                        instr.pattern)))
                else:
                    entries.append((0, (count, icls, pc, line, instr.srcs,
                                        instr.dst, lanes, ser, lat, busy,
                                        memkind, addrs, None)))
            elif icls == _BRANCH and instr.taken_probability < 1.0:
                entries.append((2, (count, icls, pc, line, instr.srcs,
                                    instr.dst, lanes, ser, lat, busy,
                                    instr.taken_probability)))
            else:
                takens = True if icls == _BRANCH else None
                entries.append((0, (count, icls, pc, line, instr.srcs,
                                    instr.dst, lanes, ser, lat, busy,
                                    0, None, takens)))
    return entries


def _o3_decoded_runs(assembled, seed, line_shift, lat_t, busy_t, ser_t):
    rng = random.Random("%d|%d|trace" % (assembled.program.seed, seed))
    rng_random = rng.random
    blocks = _cache_for(assembled, ("o3", line_shift))
    routines = assembled.routines
    stats = STATS

    def run_body(body, depth):
        for node in body:
            kind = type(node)
            if kind is AssembledBlock:
                stats["block_replays"] += 1
                decoded = blocks.get(id(node))
                if decoded is None:
                    stats["decoded_blocks"] += 1
                    decoded = blocks[id(node)] = _decode_o3_block(
                        node, line_shift, lat_t, busy_t, ser_t)
                for tag, payload in decoded:
                    if tag == 0:
                        yield payload
                    elif tag == 1:
                        (count, icls, pc, line, srcs, dst, lanes, ser,
                         lat, busy, memkind, region, pattern) = payload
                        base = region.base
                        addrs = [base + offset for offset in
                                 pattern.offsets(region, count, rng)]
                        yield (count, icls, pc, line, srcs, dst, lanes,
                               ser, lat, busy, memkind, addrs, None)
                    else:
                        (count, icls, pc, line, srcs, dst, lanes, ser,
                         lat, busy, probability) = payload
                        takens = [rng_random() < probability
                                  for _ in range(count)]
                        yield (count, icls, pc, line, srcs, dst, lanes,
                               ser, lat, busy, 0, None, takens)
            elif kind is AssembledLoop:
                pair = blocks.get(id(node))
                if pair is None:
                    backedge = node.backedge
                    pair = blocks[id(node)] = (
                        _edge_run(backedge, True, line_shift,
                                  lat_t, busy_t, ser_t),
                        _edge_run(backedge, False, line_shift,
                                  lat_t, busy_t, ser_t),
                    )
                taken_run, fall_run = pair
                body_nodes = node.body
                last = node.trips - 1
                for trip in range(node.trips):
                    for run in run_body(body_nodes, depth):
                        yield run
                    yield taken_run if trip != last else fall_run
            elif kind is AssembledCall:
                pair = blocks.get(id(node))
                if pair is None:
                    pair = blocks[id(node)] = (
                        _edge_run(node.call_instr, None, line_shift,
                                  lat_t, busy_t, ser_t),
                        _edge_run(node.ret_instr, None, line_shift,
                                  lat_t, busy_t, ser_t),
                    )
                yield pair[0]
                if depth >= _MAX_CALL_DEPTH:
                    raise RecursionError(
                        "call depth exceeded %d in %r"
                        % (_MAX_CALL_DEPTH, node.routine))
                for run in run_body(routines[node.routine].body, depth + 1):
                    yield run
                yield pair[1]
            else:
                raise TypeError("unknown assembled node %r" % (node,))

    return run_body(routines[assembled.entry].body, 0)


def _o3_legacy_runs(assembled, seed, line_shift, lat_t, busy_t, ser_t):
    """Adapter: the legacy trace stream in run form (count=1 per instance).

    Resolves register rotation exactly as the legacy O3 loops did —
    tracking consecutive instances of one static instruction — so the
    merged pipeline loop behaves identically with the cache disabled.
    """
    prev_static = None
    rotation = 0
    is_store = _STORE
    for static, addr, taken in assembled.trace(seed):
        if static is prev_static:
            rotation += 1
        else:
            prev_static = static
            rotation = 0
        icls = static.icls
        rotate = static.rotate
        if rotate:
            lane_reg = rotate[rotation % len(rotate)]
            srcs = ((lane_reg,) if static.dst >= 0 or icls == is_store
                    else static.srcs)
            dst = lane_reg if static.dst >= 0 else -1
        else:
            srcs = static.srcs
            dst = static.dst
        memkind = 1 if icls == _LOAD else (2 if icls == is_store else 0)
        yield (1, icls, static.pc, static.pc >> line_shift, srcs, dst,
               None, ser_t[icls], lat_t[icls], busy_t[icls], memkind,
               (addr,), taken)


def o3_stream(assembled, seed, line_shift, lat_t, busy_t, ser_t) -> Iterator[tuple]:
    """The O3 model's instruction-run stream (jit, decoded, or legacy).

    Both the merged pipeline loop and the sampled fast-forward/warmup
    windows consume this stream, so the tier choice made here covers
    every O3 execution mode.
    """
    if _ENABLED:
        from repro.sim.isa import blockjit
        if blockjit.enabled():
            return blockjit.o3_stream(assembled, seed, line_shift,
                                      lat_t, busy_t, ser_t)
        return _o3_decoded_runs(assembled, seed, line_shift,
                                lat_t, busy_t, ser_t)
    return _o3_legacy_runs(assembled, seed, line_shift,
                           lat_t, busy_t, ser_t)
