"""Vector-extension model: VLEN/lane configuration and stripmine planning.

The thesis compares *scalar* instruction streams across ISAs; the most
requested serverless scenario it leaves out is ML inference, where the
architecturally interesting axis is the vector unit.  This module models
that axis the same way the rest of the simulator models ISAs: not by
executing vector arithmetic, but by deciding how a vector IR op (a count
of *elements* at an element width) lowers to *instructions*.

A :class:`VectorConfig` attaches to an ISA instance (see
:func:`repro.sim.isa.get_isa`) and carries:

* ``vlen`` — vector register width in bits.  On a scalable-vector ISA
  (RISC-V RVV, ``vector_style == "rvv"``) this is the stripmining width:
  a loop over N elements becomes ``ceil(N / (vlen/8/ewidth))`` vector
  instructions, each preceded by a ``vsetvli`` re-configuration (lowered
  as a CSR instruction).  Fixed-width styles (SSE on x86, NEON on Arm)
  ignore ``vlen`` and always use 128-bit groups with no re-configuration
  instruction — which is exactly why the RVV and SSE streams differ for
  identical IR, mirroring how the thesis's scalar streams differ.
* ``lanes`` — independent vector execution chains the lowering spreads
  strips across (register rotation), which the O3 model exploits as ILP.

``vector=None`` (the default everywhere) means no vector unit: vector IR
ops degrade to their scalar equivalents element by element
(:func:`repro.sim.isa.ir.scalar_equivalent`), byte-identical to a
hand-written scalar program — the anchor the equivalence suite pins.
"""

from __future__ import annotations

from typing import List, Optional

#: Named geometries for the CLI knob: VLEN bits and lane count.
_PRESETS = {
    "rvv128": (128, 1),
    "rvv256": (256, 2),
    "rvv512": (512, 4),
}

_NONE_NAMES = ("off", "none", "scalar", "")


class VectorConfig:
    """Vector unit geometry: register width (bits) and lane count."""

    __slots__ = ("vlen", "lanes")

    def __init__(self, vlen: int = 256, lanes: int = 2):
        if vlen < 64 or vlen % 64:
            raise ValueError(
                "vlen must be a positive multiple of 64 bits, got %r" % vlen)
        if lanes < 1:
            raise ValueError("lanes must be >= 1, got %r" % lanes)
        self.vlen = vlen
        self.lanes = lanes

    def fingerprint(self) -> str:
        """Stable identity string (feeds the result-cache digest)."""
        return "v%d.l%d" % (self.vlen, self.lanes)

    @classmethod
    def parse(cls, text: Optional[str]) -> Optional["VectorConfig"]:
        """Parse a CLI knob: preset name, ``key=value`` pairs, or off.

        ``off``/``none``/``scalar`` (and None) mean no vector unit — the
        caller gets ``None`` and vector IR lowers element-by-element to
        scalar instructions.
        """
        if text is None:
            return None
        text = text.strip().lower()
        if text in _NONE_NAMES:
            return None
        if text in _PRESETS:
            vlen, lanes = _PRESETS[text]
            return cls(vlen=vlen, lanes=lanes)
        kwargs = {}
        for part in text.split(","):
            if "=" not in part:
                raise ValueError(
                    "bad vector spec %r: expected a preset (%s), 'off', "
                    "or key=value pairs" % (text, ", ".join(sorted(_PRESETS))))
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in ("vlen", "lanes"):
                raise ValueError("unknown vector key %r" % key)
            kwargs[key] = int(value.strip())
        return cls(**kwargs)

    def __eq__(self, other) -> bool:
        return (isinstance(other, VectorConfig)
                and self.fingerprint() == other.fingerprint())

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __repr__(self) -> str:
        return "VectorConfig(vlen=%d, lanes=%d)" % (self.vlen, self.lanes)


def elements_per_instr(width_bits: int, ewidth: int) -> int:
    """Elements one vector instruction of ``width_bits`` covers."""
    return max(1, width_bits // (8 * ewidth))


def strip_plan(count: int, width_bits: int, ewidth: int) -> List[int]:
    """Per-strip element counts for stripmining ``count`` elements.

    Every strip but possibly the last covers a full vector register;
    the tail strip carries the remainder (RVV's ``vl`` trimming).  The
    plan always sums to ``count`` — the property the hypothesis suite
    checks against the scalar-equivalent op stream.
    """
    if count <= 0:
        raise ValueError("count must be positive, got %r" % count)
    epi = elements_per_instr(width_bits, ewidth)
    plan = [epi] * (count // epi)
    tail = count % epi
    if tail:
        plan.append(tail)
    return plan
