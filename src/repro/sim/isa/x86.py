"""x86-64 instruction-set model.

Variable-length encoding (2–8 bytes after decode-relevant prefixes).  The
lowering reflects two measured properties from the thesis's evaluation:

* Application-level compute can be *denser* than RISC-V thanks to memory
  operands folded into ALU instructions — this is why the warm, handler-
  dominated phase of aes-go / auth-go / auth-python executed *fewer*
  instructions on x86 (Fig 4.16).
* The runtime/library/OS path executes substantially *more* instructions
  than the RISC-V port of the same stack (PLT indirection, heavier
  save/restore conventions, microcoded sequences, and the generally fatter
  distro builds the thesis observed), which dominates cold starts and is
  the main reason the RISC-V simulated platform was faster overall
  (§4.2.3.1, Fig 4.16).
"""

from __future__ import annotations

import random

from repro.sim.isa import ir
from repro.sim.isa.base import BLOCK_APP, BLOCK_RTPATH, BLOCK_STACK, ISA


class X86ISA(ISA):
    """x86-64 model matching the thesis's Ubuntu Jammy x86 stack."""

    name = "x86"

    #: Measured software-stack path-length ratio vs the RISC-V baseline.
    #: Fig 4.16 shows cold-execution instruction counts roughly 1.6-2.2x
    #: the RISC-V counts across the suite.
    stack_multiplier = 1.8

    #: syscall/sysret plus the longer Linux x86 entry trampoline
    #: (swapgs, stack switch, mitigation sequences).
    syscall_overhead_instrs = 14

    #: SSE-like fixed 128-bit vectors: no length configuration, no
    #: stripmining CSRs — the same vector IR lowers to a different
    #: stream than RVV, mirroring the thesis's scalar-stream contrast.
    vector_style = "sse"

    expansion = {
        # Memory-operand folding makes handler compute denser.
        (ir.OP_IALU, BLOCK_APP): 0.82,
        (ir.OP_LOAD, BLOCK_APP): 0.92,
        (ir.OP_STORE, BLOCK_APP): 1.0,
        # cmp/test + jcc pairs (macro-fusion recovers some in hardware, but
        # the *architectural* count the thesis reports includes both).
        (ir.OP_BRANCH, BLOCK_APP): 1.35,
        (ir.OP_BRANCH, BLOCK_STACK): 1.35,
        (ir.OP_IALU, BLOCK_STACK): 1.0,
        (ir.OP_LOAD, BLOCK_STACK): 1.0,
        (ir.OP_STORE, BLOCK_STACK): 1.0,
        # Steady-state request path: near-parity, with a small win from
        # memory-operand folding.
        (ir.OP_IALU, BLOCK_RTPATH): 0.97,
        (ir.OP_LOAD, BLOCK_RTPATH): 0.98,
        (ir.OP_STORE, BLOCK_RTPATH): 1.0,
        (ir.OP_BRANCH, BLOCK_RTPATH): 1.2,
        (ir.OP_IMUL, BLOCK_APP): 0.9,
        (ir.OP_IDIV, BLOCK_APP): 1.0,
        (ir.OP_FALU, BLOCK_APP): 0.95,
        (ir.OP_FMUL, BLOCK_APP): 0.95,
        (ir.OP_FDIV, BLOCK_APP): 1.0,
    }

    #: Instruction-length distribution (bytes -> weight), approximating
    #: x86-64 integer code from compiler output.
    _SIZES = (2, 3, 4, 5, 6, 7, 8)
    _WEIGHTS = (18, 24, 22, 16, 10, 6, 4)
    _CUMULATIVE = []
    _total = 0
    for _size, _weight in zip(_SIZES, _WEIGHTS):
        _total += _weight
        _CUMULATIVE.append((_total, _size))
    del _size, _weight

    def instr_size(self, rng: random.Random) -> int:
        pick = rng.randrange(self._total)
        for bound, size in self._CUMULATIVE:
            if pick < bound:
                return size
        return self._SIZES[-1]

    def instr_sizes(self, rng: random.Random, count: int):
        randrange = rng.randrange
        total = self._total
        cumulative = self._CUMULATIVE
        fallback = self._SIZES[-1]
        out = []
        append = out.append
        for _ in range(count):
            pick = randrange(total)
            for bound, size in cumulative:
                if pick < bound:
                    append(size)
                    break
            else:
                append(fallback)
        return out
