"""AArch64 instruction-set model.

vSwarm itself ships x86 and Arm support (Table 3.1), and the thesis's
future work calls for "further comparison across various ISAs" — this
model extends the ported infrastructure to the third ISA of interest.

AArch64 sits between the other two models: fixed 4-byte encoding (no
compressed subset, so code is less dense than RV64GC), RISC lowering
close to one instruction per IR op, and a mature software ecosystem whose
distro builds carry a modest path-length overhead relative to the
thesis's lean RISC-V port (Graviton-class Ubuntu images ship with more
enabled machinery) — far below the x86 stack's.
"""

from __future__ import annotations

import random

from repro.sim.isa import ir
from repro.sim.isa.base import BLOCK_APP, BLOCK_RTPATH, BLOCK_STACK, ISA


class ArmISA(ISA):
    """AArch64 model (Ubuntu Jammy arm64 stack)."""

    name = "arm"

    #: Mature ecosystem, fuller distro builds: mildly above the RISC-V
    #: baseline, far below x86's measured excess.
    stack_multiplier = 1.2

    #: svc plus the arm64 Linux entry path.
    syscall_overhead_instrs = 8

    #: NEON fixed 128-bit vectors (no SVE in the modelled stack).
    vector_style = "neon"

    expansion = {
        (ir.OP_IALU, BLOCK_APP): 0.95,   # flexible second operand / fused shifts
        (ir.OP_LOAD, BLOCK_APP): 0.95,   # load-pair on adjacent accesses
        (ir.OP_STORE, BLOCK_APP): 0.95,
        (ir.OP_BRANCH, BLOCK_APP): 1.1,  # cmp+b.cond, partly cbz-fused
        (ir.OP_BRANCH, BLOCK_STACK): 1.1,
        (ir.OP_IALU, BLOCK_STACK): 1.0,
        (ir.OP_LOAD, BLOCK_STACK): 1.0,
        (ir.OP_STORE, BLOCK_STACK): 1.0,
        (ir.OP_IALU, BLOCK_RTPATH): 0.98,
        (ir.OP_LOAD, BLOCK_RTPATH): 0.98,
        (ir.OP_STORE, BLOCK_RTPATH): 1.0,
        (ir.OP_BRANCH, BLOCK_RTPATH): 1.1,
        (ir.OP_IMUL, BLOCK_APP): 0.95,
        (ir.OP_IDIV, BLOCK_APP): 1.0,
        (ir.OP_FALU, BLOCK_APP): 0.95,
        (ir.OP_FMUL, BLOCK_APP): 0.95,
        (ir.OP_FDIV, BLOCK_APP): 1.0,
    }

    def instr_size(self, rng: random.Random) -> int:
        return 4  # fixed-width A64 encoding

    def instr_sizes(self, rng: random.Random, count: int):
        return [4] * count  # instr_size draws nothing from the stream
