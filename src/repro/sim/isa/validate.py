"""Assembled-program validators.

Work models are code, and code has bugs; these checks catch the ways a
bad model silently corrupts an experiment — overlapping code layouts,
memory accesses escaping their regions, unreachable routines, loops whose
backedges point nowhere.  The harness does not run them on every build
(they cost a trace pass); tests and `python -m repro trace` do.
"""

from __future__ import annotations

from typing import List

from repro.sim.isa.base import (
    AssembledBlock,
    AssembledCall,
    AssembledLoop,
    InstrClass,
)
from repro.sim.isa.trace import AssembledProgram


class ValidationIssue:
    """One problem found in an assembled program."""

    def __init__(self, severity: str, message: str):
        if severity not in ("error", "warning"):
            raise ValueError("severity must be error or warning")
        self.severity = severity
        self.message = message

    def __repr__(self) -> str:
        return "[%s] %s" % (self.severity, self.message)


def validate_assembled(assembled: AssembledProgram,
                       trace_seed: int = 0) -> List[ValidationIssue]:
    """Run all static and dynamic checks; returns the issues found."""
    issues: List[ValidationIssue] = []
    issues.extend(_check_layout(assembled))
    issues.extend(_check_structure(assembled))
    issues.extend(_check_dynamic(assembled, trace_seed))
    return issues


def assert_valid(assembled: AssembledProgram, trace_seed: int = 0) -> None:
    """Raise if any error-severity issue exists."""
    errors = [issue for issue in validate_assembled(assembled, trace_seed)
              if issue.severity == "error"]
    if errors:
        raise AssertionError(
            "program %s failed validation:\n%s"
            % (assembled.name, "\n".join(str(error) for error in errors))
        )


def _check_layout(assembled: AssembledProgram) -> List[ValidationIssue]:
    """Routines must occupy disjoint, positive code ranges."""
    issues: List[ValidationIssue] = []
    ranges = []
    for name, routine in assembled.routines.items():
        if routine.code_size <= 0:
            issues.append(ValidationIssue(
                "error", "routine %s has non-positive code size" % name))
            continue
        ranges.append((routine.code_base,
                       routine.code_base + routine.code_size, name))
    ranges.sort()
    for (start_a, end_a, name_a), (start_b, _end_b, name_b) in zip(
            ranges, ranges[1:]):
        if start_b < end_a:
            issues.append(ValidationIssue(
                "error", "code ranges of %s and %s overlap" % (name_a, name_b)))
    return issues


def _walk_instrs(body):
    for node in body:
        if isinstance(node, AssembledBlock):
            for instr in node.instrs:
                yield instr
        elif isinstance(node, AssembledLoop):
            yield from _walk_instrs(node.body)
            yield node.backedge
        elif isinstance(node, AssembledCall):
            yield node.call_instr
            yield node.ret_instr


def _check_structure(assembled: AssembledProgram) -> List[ValidationIssue]:
    """PCs inside each routine stay within its range and increase."""
    issues: List[ValidationIssue] = []
    called = {assembled.entry}
    for name, routine in assembled.routines.items():
        last_pc = -1
        end = routine.code_base + routine.code_size
        for instr in _walk_instrs(routine.body):
            if not routine.code_base <= instr.pc < end:
                issues.append(ValidationIssue(
                    "error",
                    "instr at 0x%x escapes routine %s [0x%x, 0x%x)"
                    % (instr.pc, name, routine.code_base, end)))
            if instr.pc < last_pc:
                issues.append(ValidationIssue(
                    "error", "PCs not monotonic in routine %s" % name))
            last_pc = instr.pc
            if instr.is_mem and instr.region is None:
                issues.append(ValidationIssue(
                    "error", "memory instr at 0x%x has no region" % instr.pc))
        for node in routine.body:
            if isinstance(node, AssembledCall):
                called.add(node.routine)
        _collect_calls(routine.body, called)
    for name in assembled.routines:
        if name not in called:
            issues.append(ValidationIssue(
                "warning", "routine %s is never called" % name))
    return issues


def _collect_calls(body, called) -> None:
    for node in body:
        if isinstance(node, AssembledCall):
            called.add(node.routine)
        elif isinstance(node, AssembledLoop):
            _collect_calls(node.body, called)


def _check_dynamic(assembled: AssembledProgram,
                   trace_seed: int) -> List[ValidationIssue]:
    """Replay once: addresses in bounds, branches carry outcomes."""
    issues: List[ValidationIssue] = []
    bad_addresses = 0
    for static, addr, taken in assembled.trace(trace_seed):
        if static.is_mem:
            region = static.region
            if not region.base <= addr < region.end:
                bad_addresses += 1
        elif static.icls == InstrClass.BRANCH and not isinstance(taken, bool):
            issues.append(ValidationIssue(
                "error", "branch at 0x%x yields non-bool outcome" % static.pc))
    if bad_addresses:
        issues.append(ValidationIssue(
            "error", "%d memory accesses escaped their regions" % bad_addresses))
    return issues
