"""Sampled (Atomic↔O3) simulation: SMARTS/SimPoint-style windowing.

Full-detail O3 simulation of every dynamic instruction is the wall-clock
ceiling of the experiment matrix.  Hardware-validated samplers (FireSim's
methodology of checking fast-mode results against detailed RTL, SMARTS'
systematic sampling, SimPoint's phase extrapolation) show that a small
fraction of detailed cycles bounds CPI error to a few percent when the
fast-forwarded majority still maintains microarchitectural state.

A :class:`SamplingConfig` partitions the dynamic instruction stream into
per-interval windows:

* **fast-forward** — instructions are counted but touch no
  microarchitectural state (the speed win),
* **warm-up** — caches, TLBs and the branch predictor update
  functionally (no timing) so the window that follows does not start
  from artificially cold state,
* **detail** — the full O3 pipeline model runs on a fresh mini-pipeline;
  its CPI extrapolates over the interval.

Window placement is deterministic per (config, program seed, run seed):
with ``jitter`` enabled every interval after the first places its window
at an rng-drawn offset, breaking resonance with program periodicity; the
first interval always samples from instruction 0 so short programs are
covered.  ``sampling=None`` everywhere means full detail — the sampled
path is never entered and all digests, stats and event logs stay
byte-identical to pre-sampling behaviour.

Programs shorter than ``min_insts`` run full detail even when sampling
is on (the *exact-short-run floor*): serverless warm requests are a few
thousand instructions with strong one-shot phase structure, where a
single window extrapolates the expensive start-of-run phase over the
whole run and a single divergent DRAM access exceeds the error budget.
Their full-detail cost is tiny, so sampling only the long runs keeps
nearly all the speedup while eliminating the dominant error source.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Tuple

#: Replay modes, in cost order.
FAST_FORWARD = 0
WARMUP = 1
DETAIL = 2

#: Calibrated geometries (see the calibration suite): ``accurate`` holds
#: worst-case CPI error ≤5% across the full seed catalog; ``balanced``
#: and ``fast`` trade accuracy on phase-heavy cold runs (worst ~12% /
#: ~17%, mean ~1% / ~4%) for smaller detail fractions.  The workloads
#: have strong one-shot phase structure at the few-hundred-instruction
#: scale, so fine intervals with high coverage beat coarse SMARTS-style
#: geometries here.
_PRESETS = {
    # name: (interval, detail, warmup, jitter, min_insts)
    "fast": (512, 256, 128, True, 4096),
    "balanced": (1024, 640, 128, True, 6144),
    "accurate": (2048, 1984, 64, True, 8192),
}

_NONE_NAMES = ("off", "none", "full", "")


class SamplingConfig:
    """Window geometry for sampled simulation (instruction counts)."""

    __slots__ = ("interval", "detail", "warmup", "jitter", "min_insts")

    def __init__(self, interval: int = 8192, detail: int = 1024,
                 warmup: int = 256, jitter: bool = True,
                 min_insts: int = 6144):
        if detail < 1:
            raise ValueError("detail window must be >= 1 instruction")
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        if interval < warmup + detail:
            raise ValueError(
                "interval (%d) must cover warmup+detail (%d+%d)"
                % (interval, warmup, detail))
        if min_insts < 0:
            raise ValueError("min_insts must be >= 0")
        self.interval = interval
        self.detail = detail
        self.warmup = warmup
        self.jitter = bool(jitter)
        self.min_insts = min_insts

    def fingerprint(self) -> str:
        """Stable identity string (feeds the result-cache digest)."""
        return "i%d.d%d.w%d.j%d.m%d" % (
            self.interval, self.detail, self.warmup, int(self.jitter),
            self.min_insts)

    @classmethod
    def parse(cls, text: Optional[str]) -> Optional["SamplingConfig"]:
        """Parse a CLI knob: preset name, ``key=value`` pairs, or off.

        ``off``/``none``/``full`` (and None) mean full detail — the
        caller gets ``None`` and never enters the sampled path.
        """
        if text is None:
            return None
        text = text.strip().lower()
        if text in _NONE_NAMES:
            return None
        if text in _PRESETS:
            interval, detail, warmup, jitter, min_insts = _PRESETS[text]
            return cls(interval=interval, detail=detail, warmup=warmup,
                       jitter=jitter, min_insts=min_insts)
        kwargs = {}
        for part in text.split(","):
            if "=" not in part:
                raise ValueError(
                    "bad sampling spec %r: expected a preset (%s), 'off', "
                    "or key=value pairs" % (text, ", ".join(sorted(_PRESETS))))
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in ("interval", "detail", "warmup", "jitter",
                           "min_insts"):
                raise ValueError("unknown sampling key %r" % key)
            kwargs[key] = int(value.strip())
        if "jitter" in kwargs:
            kwargs["jitter"] = bool(kwargs["jitter"])
        return cls(**kwargs)

    def placement_rng(self, program_seed: int, run_seed: int) -> random.Random:
        """Deterministic window-placement stream for one run."""
        return random.Random(
            "%s|%d|%d|sampled" % (self.fingerprint(), program_seed, run_seed))

    def segments(self, rng: random.Random) -> Iterator[Tuple[int, int]]:
        """Yield ``(end_instruction_index, mode)`` segments, unbounded.

        Segments are contiguous, non-empty, and cover the instruction
        stream; the consumer stops pulling when the program ends.  The
        first interval's window starts at instruction 0 (warm-up has
        nothing before it to warm) so programs shorter than one interval
        still produce a detail window.
        """
        interval = self.interval
        detail = self.detail
        warmup = self.warmup
        jitter = self.jitter
        slack = interval - warmup - detail
        # Zero-slack configs are *continuous-warming* samplers: every
        # non-detailed instruction functionally warms the memory system
        # and branch predictor, so no window ever observes stale state.
        # That is the accuracy regime (SMARTS' functional warming);
        # configs with slack trade that staleness for fast-forward speed.
        filler = WARMUP if (warmup and not slack) else FAST_FORWARD
        k = 0
        while True:
            start = k * interval
            offset = rng.randrange(slack + 1) if (jitter and k and slack) else 0
            warm_start = start + offset
            detail_start = warm_start + (warmup if k else 0)
            detail_end = detail_start + detail
            if warm_start > start:
                yield (warm_start, FAST_FORWARD)
            if detail_start > warm_start:
                yield (detail_start, WARMUP)
            yield (detail_end, DETAIL)
            if detail_end < start + interval:
                yield (start + interval, filler)
            k += 1

    def __eq__(self, other) -> bool:
        return (isinstance(other, SamplingConfig)
                and self.fingerprint() == other.fingerprint())

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __repr__(self) -> str:
        return ("SamplingConfig(interval=%d, detail=%d, warmup=%d, "
                "jitter=%s, min_insts=%d)" % (
                    self.interval, self.detail, self.warmup, self.jitter,
                    self.min_insts))
