"""Statistics framework with gem5-style reset/dump semantics.

The thesis's experiment protocol (§4.1.2.3) is built on two "m5 magic
instructions": *stat reset* right before a request, and *stat dump* right
after the reply.  Components declare their counters inside a
:class:`StatGroup` tree rooted at the system; the harness resets the tree,
runs the region of interest, and dumps a flat ``name -> value`` mapping.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

Number = Union[int, float]


def percentile(values: Sequence[float], fraction: float,
               method: str = "linear") -> float:
    """Percentile of ``values`` (fraction in [0, 1]).

    The one percentile implementation in the tree: serving-layer p50/p95/
    p99 (``repro.serverless.metrics``) and sim-side statistics both call
    this, so the two sides cannot silently disagree on interpolation.

    ``method="linear"`` interpolates between the two closest ranks, the
    same convention as numpy's default, so p50 of ``[1, 2, 3, 4]`` is 2.5
    rather than an arbitrary neighbour.  ``method="nearest"`` keeps the
    old nearest-rank behaviour (always returns an observed sample).
    """
    if not values:
        raise ValueError("no samples")
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    position = fraction * (len(ordered) - 1)
    if method == "nearest":
        rank = max(0, min(len(ordered) - 1, int(round(position))))
        return ordered[rank]
    if method != "linear":
        raise ValueError("unknown percentile method %r" % method)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * weight


class Stat:
    """Base class for all statistics."""

    def __init__(self, name: str, desc: str = ""):
        if not name or "." in name:
            raise ValueError("stat names must be non-empty and dot-free: %r" % name)
        self.name = name
        self.desc = desc

    def reset(self) -> None:
        raise NotImplementedError

    def value(self) -> Number:
        raise NotImplementedError


class Scalar(Stat):
    """A single accumulating counter (e.g. ``numCycles``)."""

    def __init__(self, name: str, desc: str = ""):
        super().__init__(name, desc)
        self._value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self._value += amount

    def set(self, value: Number) -> None:
        self._value = value

    def reset(self) -> None:
        self._value = 0

    def value(self) -> Number:
        return self._value

    def __repr__(self) -> str:
        return "Scalar(%s=%s)" % (self.name, self._value)


class Vector(Stat):
    """A counter indexed by a small fixed set of string keys.

    Used for, e.g., per-instruction-class issue counts or per-level cache
    miss breakdowns.
    """

    def __init__(self, name: str, keys: List[str], desc: str = ""):
        super().__init__(name, desc)
        if not keys:
            raise ValueError("Vector needs at least one key")
        if len(set(keys)) != len(keys):
            raise ValueError("Vector keys must be unique: %r" % keys)
        self.keys = list(keys)
        self._values: Dict[str, Number] = {key: 0 for key in keys}

    def inc(self, key: str, amount: Number = 1) -> None:
        if key not in self._values:
            raise KeyError("unknown vector key %r (have %r)" % (key, self.keys))
        self._values[key] += amount

    def get(self, key: str) -> Number:
        return self._values[key]

    def reset(self) -> None:
        for key in self._values:
            self._values[key] = 0

    def value(self) -> Number:
        return sum(self._values.values())

    def items(self) -> Iterator:
        return iter(self._values.items())

    def __repr__(self) -> str:
        return "Vector(%s, total=%s)" % (self.name, self.value())


class Formula(Stat):
    """A derived statistic computed on demand (e.g. CPI = cycles/instrs)."""

    def __init__(self, name: str, compute: Callable[[], Number], desc: str = ""):
        super().__init__(name, desc)
        self._compute = compute

    def reset(self) -> None:  # derived stats hold no state of their own
        pass

    def value(self) -> Number:
        return self._compute()

    def __repr__(self) -> str:
        return "Formula(%s)" % self.name


class Histogram(Stat):
    """A fixed-bucket histogram (e.g. request latency distribution)."""

    def __init__(self, name: str, bucket_bounds: List[Number], desc: str = ""):
        super().__init__(name, desc)
        if sorted(bucket_bounds) != list(bucket_bounds) or not bucket_bounds:
            raise ValueError("bucket bounds must be non-empty and ascending")
        self.bounds = list(bucket_bounds)
        self.counts = [0] * (len(bucket_bounds) + 1)
        self.samples = 0
        self.total: Number = 0

    def sample(self, value: Number) -> None:
        self.samples += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.samples = 0
        self.total = 0

    def value(self) -> Number:
        return self.samples

    def __repr__(self) -> str:
        return "Histogram(%s, n=%d, mean=%.2f)" % (self.name, self.samples, self.mean)


class StatGroup:
    """A named node in the statistics tree.

    Groups nest (``system.cpu1.dcache``) and flatten into dotted names at
    dump time, matching gem5's ``stats.txt`` naming.
    """

    def __init__(self, name: str):
        if not name or "." in name:
            raise ValueError("group names must be non-empty and dot-free: %r" % name)
        self.name = name
        self._stats: Dict[str, Stat] = {}
        self._children: Dict[str, "StatGroup"] = {}

    def add(self, stat: Stat) -> Stat:
        if stat.name in self._stats or stat.name in self._children:
            raise ValueError("duplicate stat name %r in group %r" % (stat.name, self.name))
        self._stats[stat.name] = stat
        return stat

    def scalar(self, name: str, desc: str = "") -> Scalar:
        stat = Scalar(name, desc)
        self.add(stat)
        return stat

    def vector(self, name: str, keys: List[str], desc: str = "") -> Vector:
        stat = Vector(name, keys, desc)
        self.add(stat)
        return stat

    def formula(self, name: str, compute: Callable[[], Number], desc: str = "") -> Formula:
        stat = Formula(name, compute, desc)
        self.add(stat)
        return stat

    def histogram(self, name: str, bounds: List[Number], desc: str = "") -> Histogram:
        stat = Histogram(name, bounds, desc)
        self.add(stat)
        return stat

    def group(self, name: str) -> "StatGroup":
        """Get or create a child group."""
        if name in self._stats:
            raise ValueError("%r is already a stat in group %r" % (name, self.name))
        if name not in self._children:
            self._children[name] = StatGroup(name)
        return self._children[name]

    def attach(self, child: "StatGroup") -> "StatGroup":
        if child.name in self._children or child.name in self._stats:
            raise ValueError("duplicate child group %r in %r" % (child.name, self.name))
        self._children[child.name] = child
        return child

    def reset(self) -> None:
        """Reset this group and all descendants (the *stat reset* m5 op)."""
        for stat in self._stats.values():
            stat.reset()
        for child in self._children.values():
            child.reset()

    def dump(self, prefix: Optional[str] = None) -> Dict[str, Number]:
        """Flatten to ``dotted.name -> value`` (the *stat dump* m5 op).

        Vector stats expand to one entry per key plus a total.
        """
        base = self.name if prefix is None else "%s.%s" % (prefix, self.name)
        out: Dict[str, Number] = {}
        for stat in self._stats.values():
            full = "%s.%s" % (base, stat.name)
            if isinstance(stat, Vector):
                for key, value in stat.items():
                    out["%s::%s" % (full, key)] = value
                out["%s::total" % full] = stat.value()
            else:
                out[full] = stat.value()
        for child in self._children.values():
            out.update(child.dump(prefix=base))
        return out

    def find(self, dotted: str) -> Stat:
        """Look up a stat by dotted path relative to this group."""
        parts = dotted.split(".")
        node: StatGroup = self
        for part in parts[:-1]:
            node = node._children[part]
        return node._stats[parts[-1]]

    def __repr__(self) -> str:
        return "StatGroup(%s: %d stats, %d children)" % (
            self.name,
            len(self._stats),
            len(self._children),
        )
