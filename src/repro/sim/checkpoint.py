"""Checkpoints: snapshots of simulation state (§2.4.3).

A checkpoint captures the microarchitectural state of a
:class:`~repro.sim.system.SimulatedSystem` plus an arbitrary software
payload (the harness stores the serverless platform's state there: which
containers are running, which functions are warm).  Checkpoints can be
kept in memory or saved to disk, and restoring one is how evaluation mode
"boots again from checkpoint with the O3 detailed core" (§3.4.1, step 5d).
"""

from __future__ import annotations

import copy
import pickle
from pathlib import Path
from typing import Any, Dict, Optional


class Checkpoint:
    """One snapshot: system state + software payload + metadata."""

    FORMAT_VERSION = 1

    def __init__(self, system_state: Dict, payload: Any = None, label: str = "ckpt"):
        self.version = self.FORMAT_VERSION
        self.system_state = system_state
        self.payload = payload
        self.label = label

    def save(self, path) -> Path:
        """Serialize to disk (the m5 checkpoint directory analog)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "wb") as handle:
            pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL)
        return target

    @classmethod
    def load(cls, path) -> "Checkpoint":
        with open(path, "rb") as handle:
            checkpoint = pickle.load(handle)
        if not isinstance(checkpoint, cls):
            raise TypeError("%s does not contain a Checkpoint" % path)
        if checkpoint.version != cls.FORMAT_VERSION:
            raise ValueError(
                "checkpoint format %d not supported (expected %d)"
                % (checkpoint.version, cls.FORMAT_VERSION)
            )
        return checkpoint

    def __repr__(self) -> str:
        return "Checkpoint(%s)" % self.label


def take_checkpoint(system, payload: Any = None, label: str = "ckpt") -> Checkpoint:
    """Snapshot a system (deep-copied, so later simulation can't mutate it)."""
    return Checkpoint(
        system_state=copy.deepcopy(system.state_dict()),
        payload=copy.deepcopy(payload),
        label=label,
    )


def restore_checkpoint(system, checkpoint: Checkpoint) -> Any:
    """Restore system state from a checkpoint; returns the payload copy."""
    system.load_state(copy.deepcopy(checkpoint.system_state))
    return copy.deepcopy(checkpoint.payload)


class CheckpointStore:
    """A named collection of checkpoints, optionally disk-backed."""

    def __init__(self, directory: Optional[str] = None):
        self._memory: Dict[str, Checkpoint] = {}
        self._directory = Path(directory) if directory else None

    def put(self, name: str, checkpoint: Checkpoint) -> None:
        self._memory[name] = checkpoint
        if self._directory is not None:
            checkpoint.save(self._directory / ("%s.ckpt" % name))

    def get(self, name: str) -> Checkpoint:
        if name in self._memory:
            return self._memory[name]
        if self._directory is not None:
            path = self._directory / ("%s.ckpt" % name)
            if path.exists():
                checkpoint = Checkpoint.load(path)
                self._memory[name] = checkpoint
                return checkpoint
        raise KeyError("no checkpoint named %r" % name)

    def __contains__(self, name: str) -> bool:
        try:
            self.get(name)
        except KeyError:
            return False
        return True

    def names(self):
        found = set(self._memory)
        if self._directory is not None and self._directory.exists():
            for path in self._directory.glob("*.ckpt"):
                found.add(path.stem)
        return sorted(found)
