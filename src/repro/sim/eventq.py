"""Discrete-event simulation kernel.

The event queue is the heart of the simulator, exactly as in gem5: every
timed behaviour — an RPC message arriving at the server core, a container
finishing its boot, a checkpoint trigger — is an :class:`Event` scheduled at
an absolute tick.  Events at the same tick are ordered by priority and then
by insertion order, which keeps simulation runs fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.obs.tracer import TRACK_EVENTQ

#: Default event priority.  Lower values run first within a tick.
DEFAULT_PRIORITY = 50
#: Priority used by simulator-control events (stat dump, checkpoint, exit).
CONTROL_PRIORITY = 0


class Event:
    """A callback scheduled at an absolute simulated tick."""

    __slots__ = ("when", "priority", "callback", "name", "_cancelled", "_seq")

    def __init__(
        self,
        when: int,
        callback: Callable[[], None],
        name: str = "event",
        priority: int = DEFAULT_PRIORITY,
    ):
        if when < 0:
            raise ValueError("cannot schedule event in negative time: %d" % when)
        self.when = when
        self.priority = priority
        self.callback = callback
        self.name = name
        self._cancelled = False
        self._seq = -1  # assigned by the queue at schedule time

    def cancel(self) -> None:
        """Deschedule the event; it will be skipped when popped."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:
        state = " cancelled" if self._cancelled else ""
        return "Event(%s @ %d prio=%d%s)" % (self.name, self.when, self.priority, state)


class SimulationExit(Exception):
    """Raised inside an event callback to stop the simulation loop.

    This is the analog of gem5's ``m5.exit()`` / exit events: the simulate
    loop returns normally with ``exit_cause`` set to the message.
    """

    def __init__(self, cause: str = "exit requested"):
        super().__init__(cause)
        self.cause = cause


class EventQueue:
    """A deterministic priority queue of simulation events."""

    def __init__(self):
        self._heap: List[Tuple[int, int, int, Event]] = []
        self._next_seq = 0
        self.now = 0
        self.exit_cause: Optional[str] = None
        self.events_run = 0
        #: Optional :class:`repro.obs.Tracer`; when attached, every
        #: executed event is recorded as an instant on the eventq track.
        self.tracer = None

    def schedule(
        self,
        delay: int,
        callback: Callable[[], None],
        name: str = "event",
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError("negative delay: %d" % delay)
        event = Event(self.now + delay, callback, name=name, priority=priority)
        self._push(event)
        return event

    def schedule_at(
        self,
        when: int,
        callback: Callable[[], None],
        name: str = "event",
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` at the absolute tick ``when``."""
        if when < self.now:
            raise ValueError(
                "cannot schedule in the past (now=%d, when=%d)" % (self.now, when)
            )
        event = Event(when, callback, name=name, priority=priority)
        self._push(event)
        return event

    def _push(self, event: Event) -> None:
        event._seq = self._next_seq
        self._next_seq += 1
        heapq.heappush(self._heap, (event.when, event.priority, event._seq, event))

    def __len__(self) -> int:
        return sum(1 for *_rest, event in self._heap if not event.cancelled)

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def peek_next_tick(self) -> Optional[int]:
        """Tick of the next pending (non-cancelled) event, or None."""
        for when, *_rest, event in sorted(self._heap):
            if not event.cancelled:
                return when
        return None

    def simulate(self, until: Optional[int] = None, max_events: Optional[int] = None) -> str:
        """Run events until the queue drains, ``until`` is reached, or an
        event raises :class:`SimulationExit`.

        Returns the exit cause string.  Time (:attr:`now`) is left at the
        tick of the last executed event, or at ``until`` if the horizon was
        hit first.
        """
        executed = 0
        tracer = self.tracer
        while self._heap:
            when, _prio, _seq, event = self._heap[0]
            if until is not None and when > until:
                self.now = until
                self.exit_cause = "simulation horizon reached"
                return self.exit_cause
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = when
            try:
                event.callback()
            except SimulationExit as exit_request:
                self.exit_cause = exit_request.cause
                return self.exit_cause
            self.events_run += 1
            if tracer is not None:
                tracer.instant(event.name, "eventq", tracer.now,
                               track=TRACK_EVENTQ, args={"tick": when})
            executed += 1
            if max_events is not None and executed >= max_events:
                self.exit_cause = "event budget exhausted"
                return self.exit_cause
        if until is not None:
            self.now = until
        self.exit_cause = "event queue drained"
        return self.exit_cause

    def __repr__(self) -> str:
        return "EventQueue(now=%d, pending=%d)" % (self.now, len(self))
