"""Event-count energy model.

The thesis's motivation leans on the ISA-wars literature: "different ISAs
offer different trade-offs with respect to performance, power, and energy
efficiency" (§1.1, citing Blem et al.).  This model turns a measurement's
event counts into energy estimates — per-instruction base energy, cache
access/miss energies, DRAM access energy, plus static power over the
runtime — so the RISC-V/x86 comparison extends to the axis the thesis
motivates but does not measure.

Coefficients are order-of-magnitude figures for a small server-class core
at 1 GHz (nJ per event, mW static).  As with timing, absolute joules are
not the claim; ISA-relative shapes are.
"""

from __future__ import annotations

from typing import Dict

#: Energy coefficients in nanojoules per event.
DEFAULT_COEFFICIENTS = {
    "instruction": 0.08,        # base pipeline energy per committed inst
    "l1_access": 0.05,
    "l1_miss": 0.20,            # tag recheck + fill into L1
    "l2_access": 0.35,
    "l2_miss": 0.50,
    "dram_access": 15.0,
    "branch_mispredict": 0.8,   # squashed work
}

#: Static (leakage + uncore) power in watts at the 1 GHz operating point.
DEFAULT_STATIC_WATTS = 0.35

CYCLES_PER_SECOND = 1_000_000_000  # Table 4.1's 1 GHz clock


class EnergyEstimate:
    """Energy breakdown for one measured request."""

    def __init__(self, dynamic_nj: Dict[str, float], static_nj: float,
                 cycles: int, instructions: int):
        self.dynamic_nj = dynamic_nj
        self.static_nj = static_nj
        self.cycles = cycles
        self.instructions = instructions

    @property
    def dynamic_total_nj(self) -> float:
        return sum(self.dynamic_nj.values())

    @property
    def total_nj(self) -> float:
        return self.dynamic_total_nj + self.static_nj

    @property
    def nj_per_instruction(self) -> float:
        return self.total_nj / self.instructions if self.instructions else 0.0

    @property
    def edp(self) -> float:
        """Energy-delay product (nJ x cycles), the efficiency metric the
        ISA-wars comparisons report."""
        return self.total_nj * self.cycles

    @property
    def joules(self) -> float:
        """Total energy in joules — the unit billing models charge in
        (see :mod:`repro.experiments.cost`)."""
        return self.total_nj * 1e-9

    @property
    def seconds(self) -> float:
        """Wall-clock duration at the modeled 1 GHz operating point."""
        return self.cycles / CYCLES_PER_SECOND

    def render(self) -> str:
        lines = ["energy estimate: %.1f nJ total (%.1f dynamic + %.1f static)"
                 % (self.total_nj, self.dynamic_total_nj, self.static_nj)]
        for source, amount in sorted(self.dynamic_nj.items(),
                                     key=lambda item: -item[1]):
            lines.append("  %-18s %10.1f nJ" % (source, amount))
        lines.append("  %-18s %10.4f nJ/inst" % ("intensity",
                                                 self.nj_per_instruction))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "EnergyEstimate(%.1f nJ, EDP=%.0f)" % (self.total_nj, self.edp)


class EnergyModel:
    """Applies coefficients to RequestStats-shaped event counts."""

    def __init__(self, coefficients: Dict[str, float] = None,
                 static_watts: float = DEFAULT_STATIC_WATTS):
        self.coefficients = dict(coefficients or DEFAULT_COEFFICIENTS)
        missing = set(DEFAULT_COEFFICIENTS) - set(self.coefficients)
        if missing:
            raise ValueError("missing coefficients: %s" % sorted(missing))
        if static_watts < 0:
            raise ValueError("static power cannot be negative")
        self.static_watts = static_watts

    def estimate(self, stats) -> EnergyEstimate:
        """Estimate energy for one RequestStats measurement."""
        c = self.coefficients
        l1_accesses = stats.l1i_accesses + stats.l1d_accesses
        l1_misses = stats.l1i_misses + stats.l1d_misses
        dynamic = {
            "pipeline": stats.instructions * c["instruction"],
            "l1": (l1_accesses * c["l1_access"] + l1_misses * c["l1_miss"]),
            "l2": (stats.l2_accesses * c["l2_access"]
                   + stats.l2_misses * c["l2_miss"]),
            "dram": stats.l2_misses * c["dram_access"],
            "bpred": stats.branch_mispredicts * c["branch_mispredict"],
        }
        seconds = stats.cycles / CYCLES_PER_SECOND
        static_nj = self.static_watts * seconds * 1e9
        return EnergyEstimate(dynamic, static_nj, stats.cycles,
                              stats.instructions)

    def compare(self, measurements: Dict[str, object],
                mode: str = "cold") -> Dict[str, EnergyEstimate]:
        """Energy estimates for a measurement batch (per platform/function)."""
        return {
            name: self.estimate(getattr(measurement, mode))
            for name, measurement in measurements.items()
        }
