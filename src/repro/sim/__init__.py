"""gem5-analog microarchitectural simulation substrate.

This package provides the discrete-event simulation kernel, ISA models,
memory hierarchy, CPU timing models, multicore system container, and
checkpoint support that the benchmarking harness (:mod:`repro.core`) drives.

The design mirrors the pieces of gem5 the thesis relies on:

* an event queue and tick-based time base (:mod:`repro.sim.eventq`,
  :mod:`repro.sim.ticks`),
* a statistics framework with reset/dump semantics, standing in for the
  "m5 magic instructions" (:mod:`repro.sim.statistics`),
* instruction-set models for RISC-V and x86 plus the workload IR they lower
  from (:mod:`repro.sim.isa`),
* a cache/TLB/DRAM memory system (:mod:`repro.sim.mem`),
* Atomic, out-of-order (O3) and KVM-style CPU models (:mod:`repro.sim.cpu`),
* the simulated multicore system and checkpointing
  (:mod:`repro.sim.system`, :mod:`repro.sim.checkpoint`).
"""

from repro.sim.eventq import Event, EventQueue
from repro.sim.statistics import Formula, Histogram, Scalar, StatGroup, Vector
from repro.sim.system import SimulatedSystem
from repro.sim.ticks import ClockDomain, Frequency, TICKS_PER_SECOND

__all__ = [
    "ClockDomain",
    "Event",
    "EventQueue",
    "Formula",
    "Frequency",
    "Histogram",
    "Scalar",
    "SimulatedSystem",
    "StatGroup",
    "TICKS_PER_SECOND",
    "Vector",
]
