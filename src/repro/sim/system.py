"""The simulated multicore system (Fig 4.3 of the thesis).

Two cores — core 0 runs the load-generating client, core 1 the serverless
function under test — each with private L1I/L1D/L2 and TLBs, sharing one
DRAM controller, one event queue, and one statistics tree.  CPU models are
switchable per core (Atomic for setup mode, O3 for evaluation mode), and
the whole microarchitectural state can be checkpointed and restored.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.sim.cpu.atomic import AtomicCpu
from repro.sim.cpu.base import BaseCpu, RunResult
from repro.sim.cpu.kvm import KvmCpu
from repro.sim.cpu.o3 import O3Config, O3Cpu
from repro.sim.eventq import EventQueue
from repro.sim.mem.dram import DramModel
from repro.sim.mem.hierarchy import CoreMemSystem, MemoryHierarchyConfig
from repro.sim.statistics import StatGroup
from repro.sim.ticks import ClockDomain, Frequency

CPU_MODELS = ("atomic", "o3", "kvm")

#: Process-wide assembled-program cache keyed by (isa name, structural
#: program fingerprint).  Structurally identical programs — the boot and
#: database-boot programs every measurement task rebuilds, repeated
#: warm-request programs — assemble once and share the result (and its
#: attached predecode caches) across SimulatedSystem instances.
_SHARED_ASSEMBLED: "OrderedDict[tuple, object]" = OrderedDict()
_SHARED_ASSEMBLED_CAP = 128


class SimulatedSystem:
    """A checkpointable multicore system with switchable CPU models."""

    def __init__(
        self,
        name: str = "system",
        isa_name: str = "riscv",
        mem_config: Optional[MemoryHierarchyConfig] = None,
        o3_config: Optional[O3Config] = None,
        num_cores: int = 2,
        frequency: Optional[Frequency] = None,
        seed: int = 0,
        vector=None,
    ):
        if num_cores < 1:
            raise ValueError("need at least one core")
        from repro.sim.isa import get_isa  # local import avoids a cycle

        self.name = name
        self.isa = get_isa(isa_name, vector=vector)
        self.mem_config = mem_config or MemoryHierarchyConfig()
        self.o3_config = o3_config or O3Config()
        self.num_cores = num_cores
        self.clock = ClockDomain(frequency or Frequency.from_ghz(1))
        self.seed = seed

        self.eventq = EventQueue()
        self.stats = StatGroup(name)
        self.dram = DramModel(stats_parent=self.stats)
        self.cores = [
            CoreMemSystem(core_id, self.mem_config, self.dram, self.stats)
            for core_id in range(num_cores)
        ]
        self._cpus: Dict[Tuple[int, str], BaseCpu] = {}
        self._active_model = ["atomic"] * num_cores
        self._assembled_cache: Dict[int, Tuple[object, object]] = {}
        self.tracer = None

    # -- CPU model switching ---------------------------------------------------

    def cpu(self, core_id: int, model: Optional[str] = None) -> BaseCpu:
        """Get (creating lazily) the CPU object for a core and model."""
        if not 0 <= core_id < self.num_cores:
            raise ValueError("no core %d (system has %d)"
                             % (core_id, self.num_cores))
        if model is None:
            model = self._active_model[core_id]
        if model not in CPU_MODELS:
            raise ValueError("unknown CPU model %r; have %s" % (model, CPU_MODELS))
        key = (core_id, model)
        if key not in self._cpus:
            mem = self.cores[core_id]
            if model == "atomic":
                self._cpus[key] = AtomicCpu(core_id, mem, self.stats)
            elif model == "o3":
                cpu = O3Cpu(core_id, mem, self.stats, self.o3_config)
                cpu.tracer = self.tracer
                self._cpus[key] = cpu
            else:
                self._cpus[key] = KvmCpu(core_id, mem, self.stats, seed=self.seed)
        return self._cpus[key]

    # -- observability ---------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Attach (or with ``None``, detach) a :class:`repro.obs.Tracer`.

        Wires the tracer into the event queue and every detailed core —
        including ones created lazily afterwards.  Attach *after* boot /
        checkpoint restore so both a fresh-boot run and a
        checkpoint-restored run trace the same measured region (the boot
        checkpoint cache makes the pre-measurement work differ between
        them).
        """
        self.tracer = tracer
        self.eventq.tracer = tracer
        for (_core_id, model), cpu in self._cpus.items():
            if model == "o3":
                cpu.tracer = tracer

    def attach_profilers(self, core_id: int) -> Dict[str, object]:
        """Attach cache/TLB profilers to one core; returns them by name.

        Profilers are pure counters (see :mod:`repro.obs.attribution`);
        the harness snapshots them around each request and emits deltas
        as trace spans.
        """
        from repro.obs.attribution import CacheProfiler, TlbProfiler

        mem = self.cores[core_id]
        profilers: Dict[str, object] = {}
        for cache in (mem.l1i, mem.l1d, mem.l2):
            cache.profiler = CacheProfiler.for_cache(cache)
            profilers[cache.name] = cache.profiler
        for tlb in (mem.itlb, mem.dtlb):
            tlb.profiler = TlbProfiler(tlb.name)
            profilers[tlb.name] = tlb.profiler
        return profilers

    def detach_profilers(self, core_id: int) -> None:
        mem = self.cores[core_id]
        for unit in (mem.l1i, mem.l1d, mem.l2, mem.itlb, mem.dtlb):
            unit.profiler = None

    def switch_cpu(self, core_id: int, model: str) -> BaseCpu:
        """Switch a core's active model (checkpoint-and-restore workflow)."""
        cpu = self.cpu(core_id, model)
        self._active_model[core_id] = model
        return cpu

    def active_model(self, core_id: int) -> str:
        return self._active_model[core_id]

    # -- program execution -------------------------------------------------------

    def assemble(self, program) -> object:
        """Assemble (and cache) an IR program for this system's ISA."""
        key = id(program)
        cached = self._assembled_cache.get(key)
        if cached is not None and cached[0] is program:
            return cached[1]
        fingerprint = program.fingerprint()
        if fingerprint is not None:
            vector = self.isa.vector
            shared_key = (self.isa.name,
                          vector.fingerprint() if vector is not None else None,
                          fingerprint)
            assembled = _SHARED_ASSEMBLED.get(shared_key)
            if assembled is None:
                assembled = self.isa.assemble(program)
                _SHARED_ASSEMBLED[shared_key] = assembled
                if len(_SHARED_ASSEMBLED) > _SHARED_ASSEMBLED_CAP:
                    _SHARED_ASSEMBLED.popitem(last=False)
            else:
                _SHARED_ASSEMBLED.move_to_end(shared_key)
        else:
            assembled = self.isa.assemble(program)
        self._assembled_cache[key] = (program, assembled)
        return assembled

    def run(self, core_id: int, program, model: Optional[str] = None,
            seed: int = 0, sampling=None) -> RunResult:
        """Execute a program on a core with the given (or active) model.

        ``sampling`` — an optional
        :class:`~repro.sim.sampling.SamplingConfig` — only applies to
        the detailed O3 model (sampled simulation is a detailed-model
        technique; the functional models are already fast), and is
        ignored by the others.
        """
        assembled = self.assemble(program)
        cpu = self.cpu(core_id, model)
        if sampling is not None and isinstance(cpu, O3Cpu):
            return cpu.run_program(assembled, seed=seed, sampling=sampling)
        return cpu.run_program(assembled, seed=seed)

    def warm(self, core_id: int, program, seed: int = 0) -> int:
        """Functionally execute a program, updating caches without timing.

        If the core has a detailed CPU instantiated, its branch predictor
        trains on the stream too — functional warming covers the whole
        microarchitectural state, as vSwarm-u's setup mode intends.
        """
        assembled = self.assemble(program)
        o3 = self._cpus.get((core_id, "o3"))
        bpred = o3.bpred if o3 is not None else None
        return self.cpu(core_id, "atomic").warm_program(assembled, seed=seed,
                                                        bpred=bpred)

    # -- m5-op style controls ------------------------------------------------------

    def reset_stats(self) -> None:
        self.stats.reset()

    def dump_stats(self) -> Dict[str, float]:
        return self.stats.dump()

    def flush_core(self, core_id: int) -> None:
        """Cold microarchitectural state for one core (caches, TLBs, bpred)."""
        self.cores[core_id].flush_all()
        o3 = self._cpus.get((core_id, "o3"))
        if o3 is not None:
            o3.bpred.flush()

    # -- checkpointing --------------------------------------------------------------

    def state_dict(self) -> Dict:
        """Complete microarchitectural state (the gem5 checkpoint analog)."""
        state: Dict = {
            "tick": self.eventq.now,
            "active_model": list(self._active_model),
            "dram": self.dram.state_dict(),
            "cores": [core.state_dict() for core in self.cores],
            "bpred": {},
        }
        for (core_id, model), cpu in self._cpus.items():
            if model == "o3":
                state["bpred"][core_id] = cpu.bpred.state_dict()
        return state

    def load_state(self, state: Dict) -> None:
        self._active_model = list(state["active_model"])
        self.dram.load_state(state["dram"])
        for core, core_state in zip(self.cores, state["cores"]):
            core.load_state(core_state)
        for core_id, bpred_state in state["bpred"].items():
            self.cpu(int(core_id), "o3").bpred.load_state(bpred_state)

    def __repr__(self) -> str:
        return "SimulatedSystem(%s, %s, %d cores)" % (
            self.name, self.isa.name, self.num_cores,
        )
