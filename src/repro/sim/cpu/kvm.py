"""KVM-accelerated CPU model analog — fast, and unstable on m5 ops.

gem5's KVM core runs guest code directly on the host for near-native
speed, at the cost of simulation fidelity and — as the thesis documents in
§3.4.1 and the vSwarm-u authors acknowledge — stability: the simulator
frequently froze when an m5 magic instruction (most often a checkpoint)
executed under KVM.  We reproduce that behaviour: the model executes
programs functionally at "host speed" (no timing), and m5 operations
raise :class:`KvmInstabilityError` with a seeded probability, which is why
the harness's setup mode defaults to the Atomic core exactly as the
thesis's workflow does.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.sim.cpu.base import BaseCpu, RunResult
from repro.sim.mem.hierarchy import CoreMemSystem
from repro.sim.statistics import StatGroup


class KvmInstabilityError(RuntimeError):
    """The simulation froze while executing an m5 op under KVM."""

    def __init__(self, op: str):
        super().__init__(
            "KVM core froze while executing m5 op %r "
            "(known vSwarm-u/gem5 instability; use the Atomic core for setup)" % op
        )
        self.op = op


class KvmCpu(BaseCpu):
    """Host-speed functional model with the documented instability."""

    model_name = "kvm"

    #: Empirical failure rate of m5 ops under KVM ("a lot of times", §3.4.1).
    M5_OP_FAILURE_PROBABILITY = 0.4

    def __init__(
        self,
        core_id: int,
        mem: CoreMemSystem,
        stats_parent: Optional[StatGroup] = None,
        seed: int = 0,
    ):
        super().__init__(core_id, mem, stats_parent)
        self._rng = random.Random("kvm|%d|%d" % (core_id, seed))
        self.stat_m5_ops = self.stats.scalar("m5Ops", "magic instructions executed")
        self.stat_m5_failures = self.stats.scalar("m5Failures", "m5 ops that froze")

    def run_program(self, assembled, seed: int = 0) -> RunResult:
        """Execute functionally; KVM provides no timing, only progress.

        The caches are *not* warmed — virtualized execution bypasses the
        simulated memory system entirely, one of the reasons checkpoints
        taken from KVM boots behave inconsistently.
        """
        instructions = sum(1 for _ in assembled.trace(seed))
        self.stat_insts.inc(instructions)
        # Report wall-clock-like "cycles": one per instruction, untrusted.
        return RunResult(instructions, instructions, exit_cause="kvm functional run")

    def execute_m5_op(self, op: str) -> None:
        """Execute a magic instruction; may freeze (raise)."""
        self.stat_m5_ops.inc()
        if self._rng.random() < self.M5_OP_FAILURE_PROBABILITY:
            self.stat_m5_failures.inc()
            raise KvmInstabilityError(op)
