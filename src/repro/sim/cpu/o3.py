"""Out-of-order CPU timing model (gem5 DerivO3CPU analog).

An instruction-grained scoreboard model of a modern OoO core, loosely
based — like gem5's O3 — on the Alpha 21264 pipeline: width-limited
in-order dispatch and commit, out-of-order issue constrained by register
dependences and functional-unit bandwidth, a 192-entry ROB, 32+32 LSQ,
rename register limits, a tournament branch predictor with front-end
redirect penalties, and demand-driven I-/D-cache access latencies.

The model processes the dynamic trace in program order but computes each
instruction's issue time from its operands' ready times, so independent
chains overlap exactly as they would in hardware.  This
"timing-directed trace simulation" style keeps per-instruction cost low
enough to run the thesis's full experiment matrix in pure Python while
retaining cycle-level sensitivity to cache misses, mispredicts and ILP —
the effects the thesis's figures are built on.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.obs.tracer import (
    TRACK_COMMIT,
    TRACK_DISPATCH,
    TRACK_FETCH,
    TRACK_ISSUE,
    TRACK_PIPELINE,
)
from repro.sim.cpu.base import BaseCpu, RunResult
from repro.sim.cpu.bpred import make_predictor
from repro.sim.isa import predecode
from repro.sim.isa.base import NUM_ARCH_REGS, InstrClass
from repro.sim.mem.hierarchy import CoreMemSystem
from repro.sim.sampling import DETAIL, FAST_FORWARD, WARMUP
from repro.sim.statistics import StatGroup

#: Traced runs sample the pipeline counters once per this many committed
#: instructions (a Chrome counter track, cheap enough to keep dense).
_SAMPLE_PERIOD = 1024


class O3Config:
    """Pipeline parameters (defaults = Table 4.1 plus gem5 O3 defaults)."""

    def __init__(
        self,
        rob_entries: int = 192,
        lq_entries: int = 32,
        sq_entries: int = 32,
        int_regs: int = 256,
        float_regs: int = 256,
        dispatch_width: int = 8,
        commit_width: int = 8,
        frontend_depth: int = 5,
        mispredict_penalty: int = 10,
        int_alus: int = 4,
        int_mult_units: int = 1,
        int_div_units: int = 1,
        fp_units: int = 2,
        mem_ports: int = 2,
        branch_predictor: str = "tournament",
    ):
        self.rob_entries = rob_entries
        self.lq_entries = lq_entries
        self.sq_entries = sq_entries
        self.int_regs = int_regs
        self.float_regs = float_regs
        self.dispatch_width = dispatch_width
        self.commit_width = commit_width
        self.frontend_depth = frontend_depth
        self.mispredict_penalty = mispredict_penalty
        self.int_alus = int_alus
        self.int_mult_units = int_mult_units
        self.int_div_units = int_div_units
        self.fp_units = fp_units
        self.mem_ports = mem_ports
        self.branch_predictor = branch_predictor


#: Execution latency (cycles) per instruction class; loads are dynamic.
_OP_LATENCY = {
    InstrClass.IALU: 1,
    InstrClass.IMUL: 3,
    InstrClass.IDIV: 20,
    InstrClass.FALU: 3,
    InstrClass.FMUL: 4,
    InstrClass.FDIV: 12,
    InstrClass.STORE: 1,
    InstrClass.BRANCH: 1,
    InstrClass.CALL: 1,
    InstrClass.RET: 1,
    InstrClass.SYSCALL: 30,
    InstrClass.CSR: 10,
    InstrClass.NOP: 1,
}

#: Unpipelined units hold their FU for the whole latency.
_UNPIPELINED = frozenset({InstrClass.IDIV, InstrClass.FDIV})

#: Serializing instructions drain the ROB before dispatch.
_SERIALIZING = frozenset({InstrClass.SYSCALL, InstrClass.CSR})

#: The dict/set views above, flattened into tuples indexed by instruction
#: class so the per-instruction loop pays a list index instead of a hash.
_NUM_CLASSES = len(InstrClass.NAMES)
_LATENCY_BY_CLASS = tuple(
    _OP_LATENCY.get(icls, 1) for icls in range(_NUM_CLASSES)
)
_BUSY_BY_CLASS = tuple(
    (_OP_LATENCY.get(icls, 1) if icls in _UNPIPELINED else 1)
    for icls in range(_NUM_CLASSES)
)
_SERIALIZING_BY_CLASS = tuple(
    icls in _SERIALIZING for icls in range(_NUM_CLASSES)
)


class _FuPool:
    """A small pool of identical functional units."""

    __slots__ = ("free_at",)

    def __init__(self, count: int):
        self.free_at = [0] * count

    def acquire(self, earliest: int, busy_for: int) -> int:
        """Earliest issue on any unit at/after ``earliest``; book the unit."""
        free = self.free_at
        if len(free) == 1:
            best_time = free[0]
            issue = earliest if earliest >= best_time else best_time
            free[0] = issue + busy_for
            return issue
        best = 0
        best_time = free[0]
        for index in range(1, len(free)):
            if free[index] < best_time:
                best = index
                best_time = free[index]
        issue = earliest if earliest >= best_time else best_time
        free[best] = issue + busy_for
        return issue


class O3Cpu(BaseCpu):
    """Detailed out-of-order core model."""

    model_name = "o3"

    def __init__(
        self,
        core_id: int,
        mem: CoreMemSystem,
        stats_parent: Optional[StatGroup] = None,
        config: Optional[O3Config] = None,
    ):
        super().__init__(core_id, mem, stats_parent)
        self.config = config or O3Config()
        self.bpred = make_predictor(self.config.branch_predictor,
                                    stats_parent=self.stats)
        self.stat_mispredict_squashes = self.stats.scalar(
            "squashes", "front-end redirects from mispredicted branches"
        )
        self.stat_rob_stalls = self.stats.scalar("robStalls", "dispatch stalls on full ROB")
        self.stat_lsq_stalls = self.stats.scalar("lsqStalls", "dispatch stalls on full LSQ")
        #: Optional :class:`repro.obs.Tracer`.  Attaching one makes the
        #: run emit pipeline phase spans and dense counter samples.
        self.tracer = None

    def run_program(self, assembled, seed: int = 0, sampling=None) -> RunResult:
        if sampling is not None:
            # Exact-short-run floor: programs below the config's length
            # threshold run full detail.  Short serverless requests are
            # one-shot phases where a single extrapolated window is
            # systematically biased, and their full-detail cost is
            # negligible next to the long runs sampling accelerates.
            from repro.sim.isa.predecode import program_length

            if program_length(assembled) >= sampling.min_insts:
                return self._run_sampled(assembled, seed, sampling)
        return self._run(assembled, seed)

    def _run(self, assembled, seed: int = 0) -> RunResult:
        """The pipeline model over the predecoded instruction-run stream.

        One loop serves both the plain and the traced paths (previously
        two byte-identical copies): stall attribution accumulators are
        plain integer adds, cheap enough to keep unconditionally, and
        the per-instruction counter-sample check is disarmed without a
        tracer by pushing ``next_sample`` beyond any instruction count.
        Arithmetic is bit-identical to the legacy per-instruction loops
        over ``assembled.trace()`` — the tier-1 suite pins this with the
        predecode cache forced on and off.
        """
        tracer = self.tracer
        base = tracer.now if tracer is not None else 0
        cfg = self.config
        mem = self.mem
        bpred = self.bpred
        l1_latency = mem.config.l1_latency
        names = InstrClass.NAMES
        by_class = self.stat_by_class

        # Architectural scoreboard sized from the ISA's register-index
        # space and the configured rename register files, so DSE points
        # with larger register files cannot index out of range.  The +32
        # keeps room above NUM_ARCH_REGS for address/temporary lanes.
        scoreboard_size = max(NUM_ARCH_REGS + 32, cfg.int_regs + cfg.float_regs)
        reg_ready = [0] * scoreboard_size

        rob = deque()        # commit cycles, program order
        load_queue = deque()  # completion cycles of in-flight loads
        store_queue = deque()

        fu_alu = _FuPool(cfg.int_alus)
        fu_mul = _FuPool(cfg.int_mult_units)
        fu_div = _FuPool(cfg.int_div_units)
        fu_fp = _FuPool(cfg.fp_units)
        fu_mem = _FuPool(cfg.mem_ports)
        fu_by_class = (
            fu_alu,   # IALU
            fu_mul,   # IMUL
            fu_div,   # IDIV
            fu_fp,    # FALU
            fu_fp,    # FMUL
            fu_fp,    # FDIV
            fu_mem,   # LOAD
            fu_mem,   # STORE
            fu_alu,   # BRANCH
            fu_alu,   # CALL
            fu_alu,   # RET
            fu_alu,   # SYSCALL
            fu_alu,   # CSR
            fu_alu,   # NOP
        )
        # Bound-method and table hoists: the loop below runs once per
        # dynamic instruction, so every attribute/hash lookup hoisted here
        # is worth percent-level wall clock on the full matrix.
        acquire_by_class = tuple(pool.acquire for pool in fu_by_class)
        ifetch = mem.ifetch
        data_access = mem.data_access
        predict_and_update = bpred.predict_and_update
        dispatch_width = cfg.dispatch_width
        commit_width = cfg.commit_width
        rob_entries = cfg.rob_entries
        lq_entries = cfg.lq_entries
        sq_entries = cfg.sq_entries
        mispredict_penalty = cfg.mispredict_penalty
        rob_popleft = rob.popleft
        rob_append = rob.append
        lq_popleft = load_queue.popleft
        lq_append = load_queue.append
        sq_popleft = store_queue.popleft
        sq_append = store_queue.append

        # Width-limited in-order stages track a (cycle, slots-used) pair.
        dispatch_cycle = 0
        dispatch_slots = 0
        commit_cycle = 0
        commit_slots = 0
        last_commit = 0

        redirect_at = 0       # front-end earliest restart after squash
        line_ready = 0        # current fetch line available at this cycle
        current_line = -1

        instructions = 0
        loads = stores = branches = 0
        is_branch = InstrClass.BRANCH

        # Per-run stat accumulators, flushed to the Stat objects once at
        # the end instead of per event.
        class_counts = [0] * _NUM_CLASSES
        rob_stalls = 0
        lsq_stalls = 0
        squashes = 0

        # Phase attribution (cycles lost per pipeline stage); emitted
        # only when a tracer is attached but accumulated unconditionally.
        fetch_stall_cycles = 0
        dispatch_stall_cycles = 0
        operand_wait_cycles = 0
        fu_wait_cycles = 0
        commit_stall_cycles = 0
        next_sample = _SAMPLE_PERIOD if tracer is not None else (1 << 62)

        runs = predecode.o3_stream(assembled, seed, mem._line_shift,
                                   _LATENCY_BY_CLASS, _BUSY_BY_CLASS,
                                   _SERIALIZING_BY_CLASS)
        for run in runs:
            (count, icls, pc, pc_line, srcs, dst, lanes, serializing,
             op_latency, busy, memkind, addrs, takens) = run

            # ---- fetch: at most once per run (one PC per run) ----------
            if pc_line != current_line:
                fetch_start = dispatch_cycle if dispatch_cycle > redirect_at else redirect_at
                latency = ifetch(pc, fetch_start)
                miss_extra = latency - l1_latency
                line_ready = fetch_start + (miss_extra if miss_extra > 0 else 0)
                current_line = pc_line

            acquire = acquire_by_class[icls]
            branch_run = icls == is_branch
            lanes_len = len(lanes) if lanes is not None else 0
            takens_seq = takens if type(takens) is list else None

            for index in range(count):
                earliest_dispatch = line_ready if line_ready > redirect_at else redirect_at

                # ---- dispatch (in-order, width-limited) ----------------
                if earliest_dispatch > dispatch_cycle:
                    fetch_stall_cycles += earliest_dispatch - dispatch_cycle
                    dispatch_cycle = earliest_dispatch
                    dispatch_slots = 1
                elif dispatch_slots < dispatch_width:
                    dispatch_slots += 1
                else:
                    dispatch_cycle += 1
                    dispatch_slots = 1

                # ROB occupancy.
                while rob and rob[0] <= dispatch_cycle:
                    rob_popleft()
                if len(rob) >= rob_entries:
                    stall_until = rob_popleft()
                    if stall_until > dispatch_cycle:
                        dispatch_stall_cycles += stall_until - dispatch_cycle
                        dispatch_cycle = stall_until
                        dispatch_slots = 1
                    rob_stalls += 1

                # LSQ occupancy.
                if memkind == 1:
                    while load_queue and load_queue[0] <= dispatch_cycle:
                        lq_popleft()
                    if len(load_queue) >= lq_entries:
                        stall_until = lq_popleft()
                        if stall_until > dispatch_cycle:
                            dispatch_stall_cycles += stall_until - dispatch_cycle
                            dispatch_cycle = stall_until
                            dispatch_slots = 1
                        lsq_stalls += 1
                elif memkind == 2:
                    while store_queue and store_queue[0] <= dispatch_cycle:
                        sq_popleft()
                    if len(store_queue) >= sq_entries:
                        stall_until = sq_popleft()
                        if stall_until > dispatch_cycle:
                            dispatch_stall_cycles += stall_until - dispatch_cycle
                            dispatch_cycle = stall_until
                            dispatch_slots = 1
                        lsq_stalls += 1

                if serializing and last_commit > dispatch_cycle:
                    # Serializing ops wait for the pipeline to drain.
                    dispatch_stall_cycles += last_commit - dispatch_cycle
                    dispatch_cycle = last_commit
                    dispatch_slots = 1

                # ---- issue (out-of-order) ------------------------------
                if lanes_len:
                    srcs, dst = lanes[index % lanes_len]
                ready = dispatch_cycle + 1
                for src in srcs:
                    src_ready = reg_ready[src]
                    if src_ready > ready:
                        ready = src_ready
                operand_wait_cycles += ready - dispatch_cycle - 1

                if memkind == 1:
                    issue = acquire(ready, 1)
                    latency = data_access(addrs[index], False, issue, pc)
                    complete = issue + latency
                    lq_append(complete)
                    loads += 1
                elif memkind == 2:
                    issue = acquire(ready, 1)
                    data_access(addrs[index], True, issue, pc)
                    complete = issue + 1
                    sq_append(complete)
                    stores += 1
                else:
                    issue = acquire(ready, busy)
                    complete = issue + op_latency
                    if branch_run:
                        branches += 1
                        taken = takens_seq[index] if takens_seq is not None else takens
                        if not predict_and_update(pc, taken):
                            squash_at = complete + mispredict_penalty
                            if squash_at > redirect_at:
                                redirect_at = squash_at
                            squashes += 1
                if issue > ready:
                    fu_wait_cycles += issue - ready

                if dst >= 0:
                    reg_ready[dst] = complete

                # ---- commit (in-order, width-limited) ------------------
                earliest_commit = complete + 1
                if last_commit > earliest_commit:
                    earliest_commit = last_commit
                if earliest_commit > commit_cycle:
                    commit_stall_cycles += earliest_commit - commit_cycle
                    commit_cycle = earliest_commit
                    commit_slots = 1
                elif commit_slots < commit_width:
                    commit_slots += 1
                else:
                    commit_cycle += 1
                    commit_slots = 1
                last_commit = commit_cycle
                rob_append(commit_cycle)

                instructions += 1
                if instructions >= next_sample:
                    next_sample += _SAMPLE_PERIOD
                    tracer.counter("o3.core%d" % self.core_id,
                                   base + commit_cycle,
                                   {"instructions": instructions,
                                    "robStalls": rob_stalls,
                                    "lsqStalls": lsq_stalls,
                                    "squashes": squashes})
            class_counts[icls] += count

        for icls, count in enumerate(class_counts):
            if count:
                by_class.inc(names[icls], count)
        if rob_stalls:
            self.stat_rob_stalls.inc(rob_stalls)
        if lsq_stalls:
            self.stat_lsq_stalls.inc(lsq_stalls)
        if squashes:
            self.stat_mispredict_squashes.inc(squashes)

        total_cycles = last_commit
        self.stat_cycles.inc(total_cycles)
        self.stat_insts.inc(instructions)

        if tracer is not None:
            tracer.complete("o3.run", "pipeline", base,
                            total_cycles if total_cycles > 0 else 1,
                            TRACK_PIPELINE,
                            args={"core": self.core_id,
                                  "instructions": instructions,
                                  "loads": loads, "stores": stores,
                                  "branches": branches, "squashes": squashes,
                                  "robStalls": rob_stalls,
                                  "lsqStalls": lsq_stalls})
            if fetch_stall_cycles:
                tracer.complete("fetch-stall", "pipeline", base,
                                fetch_stall_cycles, TRACK_FETCH)
            if dispatch_stall_cycles:
                tracer.complete("dispatch-stall", "pipeline", base,
                                dispatch_stall_cycles, TRACK_DISPATCH,
                                args={"robStalls": rob_stalls,
                                      "lsqStalls": lsq_stalls})
            if operand_wait_cycles:
                tracer.complete("operand-wait", "pipeline", base,
                                operand_wait_cycles, TRACK_ISSUE)
            if fu_wait_cycles:
                tracer.complete("fu-wait", "pipeline", base,
                                fu_wait_cycles, TRACK_ISSUE)
            if commit_stall_cycles:
                tracer.complete("commit-stall", "pipeline", base,
                                commit_stall_cycles, TRACK_COMMIT)
            tracer.count("o3.instructions", instructions)
            tracer.advance(total_cycles)
        return RunResult(total_cycles, instructions, loads, stores, branches)

    def _run_sampled(self, assembled, seed, sampling) -> RunResult:
        """Sampled execution: detail windows on a fresh mini-pipeline.

        Follows :mod:`repro.sim.sampling`'s window schedule over the same
        predecoded run stream the full-detail loop consumes — so the
        trace rng is drawn identically and the functional instruction
        stream is exact; only *timing* is estimated.  Fast-forward
        regions count instructions without touching microarchitectural
        state; warm-up regions functionally warm caches/TLBs and train
        the branch predictor; each detail window runs the full pipeline
        arithmetic from a cold pipeline (but warm memory system) and its
        CPI extrapolates over the surrounding interval.

        When a single window covers the whole program the result is
        bit-identical to the full-detail loop (the calibration suite's
        anchor case).  Pipeline stall/squash statistics accumulate only
        inside detail windows; cache and TLB statistics cover detail and
        warm-up regions.  Tracer phase spans are not emitted in sampled
        mode — sampled timing is an estimate, not an event log.
        """
        cfg = self.config
        mem = self.mem
        bpred = self.bpred
        l1_latency = mem.config.l1_latency
        names = InstrClass.NAMES
        by_class = self.stat_by_class

        scoreboard_size = max(NUM_ARCH_REGS + 32, cfg.int_regs + cfg.float_regs)

        ifetch = mem.ifetch
        data_access = mem.data_access
        warm_touch = mem.warm_touch
        predict_and_update = bpred.predict_and_update
        dispatch_width = cfg.dispatch_width
        commit_width = cfg.commit_width
        rob_entries = cfg.rob_entries
        lq_entries = cfg.lq_entries
        sq_entries = cfg.sq_entries
        mispredict_penalty = cfg.mispredict_penalty
        is_branch = InstrClass.BRANCH

        instructions = 0
        loads = stores = branches = 0
        class_counts = [0] * _NUM_CLASSES
        rob_stalls = 0
        lsq_stalls = 0
        squashes = 0

        detailed_cycles = 0
        detailed_insts = 0
        windows = 0
        in_window = False
        window_insts = 0
        window_base = 0
        warm_line = -1

        # Detail-window pipeline state; rebuilt cold on window entry.
        reg_ready = None
        rob = load_queue = store_queue = None
        rob_popleft = rob_append = None
        lq_popleft = lq_append = None
        sq_popleft = sq_append = None
        acquire_by_class = None
        dispatch_cycle = dispatch_slots = 0
        commit_cycle = commit_slots = last_commit = 0
        redirect_at = line_ready = 0
        current_line = -1

        placement = sampling.placement_rng(assembled.program.seed, seed)
        segment_iter = sampling.segments(placement)
        seg_end, seg_mode = next(segment_iter)

        runs = predecode.o3_stream(assembled, seed, mem._line_shift,
                                   _LATENCY_BY_CLASS, _BUSY_BY_CLASS,
                                   _SERIALIZING_BY_CLASS)
        for run in runs:
            (count, icls, pc, pc_line, srcs, dst, lanes, serializing,
             op_latency, busy, memkind, addrs, takens) = run
            branch_run = icls == is_branch
            lanes_len = len(lanes) if lanes is not None else 0
            takens_seq = takens if type(takens) is list else None
            write = memkind == 2
            class_counts[icls] += count
            if memkind == 1:
                loads += count
            elif memkind == 2:
                stores += count
            elif branch_run:
                branches += count

            index = 0
            while index < count:
                while instructions >= seg_end:
                    if seg_mode == DETAIL and in_window:
                        detailed_cycles += last_commit - window_base
                        detailed_insts += window_insts
                        windows += 1
                        in_window = False
                    seg_end, seg_mode = next(segment_iter)
                take = count - index
                room = seg_end - instructions
                if room < take:
                    take = room

                if seg_mode == FAST_FORWARD:
                    # Counted, not simulated: the speed win.
                    index += take
                    instructions += take
                    continue

                if seg_mode == WARMUP:
                    if pc_line != warm_line:
                        warm_touch(pc, True)
                        warm_line = pc_line
                    if memkind:
                        for j in range(index, index + take):
                            warm_touch(addrs[j], False, write, pc)
                    elif branch_run:
                        if takens_seq is None:
                            for _ in range(take):
                                predict_and_update(pc, takens)
                        else:
                            for j in range(index, index + take):
                                predict_and_update(pc, takens_seq[j])
                    index += take
                    instructions += take
                    continue

                # ---- detail window -------------------------------------
                if not in_window:
                    # The mini-pipeline starts at the extrapolated global
                    # cycle, not 0: timing state keyed on absolute cycles
                    # (the DRAM controller's queue window) must see a
                    # monotonic clock, or every window's misses look
                    # clustered with the previous window's.  The first
                    # window starts at 0, keeping the single-all-covering
                    # -window case bit-identical to full detail.
                    if detailed_insts:
                        base = int(instructions * detailed_cycles
                                   / detailed_insts)
                    else:
                        base = instructions
                    if base < last_commit:
                        base = last_commit
                    window_base = base
                    reg_ready = [0] * scoreboard_size
                    rob = deque()
                    load_queue = deque()
                    store_queue = deque()
                    rob_popleft = rob.popleft
                    rob_append = rob.append
                    lq_popleft = load_queue.popleft
                    lq_append = load_queue.append
                    sq_popleft = store_queue.popleft
                    sq_append = store_queue.append
                    fu_alu = _FuPool(cfg.int_alus)
                    fu_mul = _FuPool(cfg.int_mult_units)
                    fu_div = _FuPool(cfg.int_div_units)
                    fu_fp = _FuPool(cfg.fp_units)
                    fu_mem = _FuPool(cfg.mem_ports)
                    acquire_by_class = (
                        fu_alu.acquire, fu_mul.acquire, fu_div.acquire,
                        fu_fp.acquire, fu_fp.acquire, fu_fp.acquire,
                        fu_mem.acquire, fu_mem.acquire, fu_alu.acquire,
                        fu_alu.acquire, fu_alu.acquire, fu_alu.acquire,
                        fu_alu.acquire, fu_alu.acquire,
                    )
                    dispatch_cycle = base
                    dispatch_slots = 0
                    commit_cycle = base
                    commit_slots = 0
                    last_commit = base
                    redirect_at = base
                    line_ready = base
                    current_line = -1
                    window_insts = 0
                    in_window = True

                acquire = acquire_by_class[icls]
                if pc_line != current_line:
                    fetch_start = dispatch_cycle if dispatch_cycle > redirect_at else redirect_at
                    latency = ifetch(pc, fetch_start)
                    miss_extra = latency - l1_latency
                    line_ready = fetch_start + (miss_extra if miss_extra > 0 else 0)
                    current_line = pc_line
                    warm_line = pc_line

                for j in range(index, index + take):
                    earliest_dispatch = line_ready if line_ready > redirect_at else redirect_at
                    if earliest_dispatch > dispatch_cycle:
                        dispatch_cycle = earliest_dispatch
                        dispatch_slots = 1
                    elif dispatch_slots < dispatch_width:
                        dispatch_slots += 1
                    else:
                        dispatch_cycle += 1
                        dispatch_slots = 1

                    while rob and rob[0] <= dispatch_cycle:
                        rob_popleft()
                    if len(rob) >= rob_entries:
                        stall_until = rob_popleft()
                        if stall_until > dispatch_cycle:
                            dispatch_cycle = stall_until
                            dispatch_slots = 1
                        rob_stalls += 1

                    if memkind == 1:
                        while load_queue and load_queue[0] <= dispatch_cycle:
                            lq_popleft()
                        if len(load_queue) >= lq_entries:
                            stall_until = lq_popleft()
                            if stall_until > dispatch_cycle:
                                dispatch_cycle = stall_until
                                dispatch_slots = 1
                            lsq_stalls += 1
                    elif memkind == 2:
                        while store_queue and store_queue[0] <= dispatch_cycle:
                            sq_popleft()
                        if len(store_queue) >= sq_entries:
                            stall_until = sq_popleft()
                            if stall_until > dispatch_cycle:
                                dispatch_cycle = stall_until
                                dispatch_slots = 1
                            lsq_stalls += 1

                    if serializing and last_commit > dispatch_cycle:
                        dispatch_cycle = last_commit
                        dispatch_slots = 1

                    if lanes_len:
                        srcs, dst = lanes[j % lanes_len]
                    ready = dispatch_cycle + 1
                    for src in srcs:
                        src_ready = reg_ready[src]
                        if src_ready > ready:
                            ready = src_ready

                    if memkind == 1:
                        issue = acquire(ready, 1)
                        latency = data_access(addrs[j], False, issue, pc)
                        complete = issue + latency
                        lq_append(complete)
                    elif memkind == 2:
                        issue = acquire(ready, 1)
                        data_access(addrs[j], True, issue, pc)
                        complete = issue + 1
                        sq_append(complete)
                    else:
                        issue = acquire(ready, busy)
                        complete = issue + op_latency
                        if branch_run:
                            taken = takens_seq[j] if takens_seq is not None else takens
                            if not predict_and_update(pc, taken):
                                squash_at = complete + mispredict_penalty
                                if squash_at > redirect_at:
                                    redirect_at = squash_at
                                squashes += 1

                    if dst >= 0:
                        reg_ready[dst] = complete

                    earliest_commit = complete + 1
                    if last_commit > earliest_commit:
                        earliest_commit = last_commit
                    if earliest_commit > commit_cycle:
                        commit_cycle = earliest_commit
                        commit_slots = 1
                    elif commit_slots < commit_width:
                        commit_slots += 1
                    else:
                        commit_cycle += 1
                        commit_slots = 1
                    last_commit = commit_cycle
                    rob_append(commit_cycle)

                window_insts += take
                index += take
                instructions += take

        if in_window:
            detailed_cycles += last_commit - window_base
            detailed_insts += window_insts
            windows += 1

        # SimPoint-style extrapolation: detailed CPI over the whole
        # stream.  A single all-covering window reproduces full detail
        # exactly; with no window at all (degenerate config vs a tiny
        # program) fall back to CPI 1.0 rather than claiming zero time.
        if detailed_insts == 0:
            total_cycles = instructions
        elif detailed_insts == instructions and windows == 1:
            total_cycles = detailed_cycles
        else:
            total_cycles = int(round(
                (detailed_cycles / detailed_insts) * instructions))

        for icls, count in enumerate(class_counts):
            if count:
                by_class.inc(names[icls], count)
        if rob_stalls:
            self.stat_rob_stalls.inc(rob_stalls)
        if lsq_stalls:
            self.stat_lsq_stalls.inc(lsq_stalls)
        if squashes:
            self.stat_mispredict_squashes.inc(squashes)
        self.stat_cycles.inc(total_cycles)
        self.stat_insts.inc(instructions)
        return RunResult(total_cycles, instructions, loads, stores, branches)
