"""CPU timing models: Atomic, out-of-order (O3), and KVM-style.

These mirror the three gem5 CPU models the thesis uses (§2.4.2):

* :class:`~repro.sim.cpu.atomic.AtomicCpu` — instantaneous memory, no
  pipeline; used for setup mode (booting and functional warming).
* :class:`~repro.sim.cpu.o3.O3Cpu` — detailed out-of-order model (ROB,
  LSQ, rename registers, tournament branch predictor, width-limited
  fetch/issue/commit); used for the measured regions of interest.
* :class:`~repro.sim.cpu.kvm.KvmCpu` — host-speed functional model that
  reproduces the instability the thesis hit (freezes on m5 ops), which is
  why the harness defaults to Atomic for setup, as the thesis did.
"""

from repro.sim.cpu.atomic import AtomicCpu
from repro.sim.cpu.base import BaseCpu, RunResult
from repro.sim.cpu.bpred import TournamentPredictor
from repro.sim.cpu.kvm import KvmCpu, KvmInstabilityError
from repro.sim.cpu.o3 import O3Config, O3Cpu

__all__ = [
    "AtomicCpu",
    "BaseCpu",
    "KvmCpu",
    "KvmInstabilityError",
    "O3Config",
    "O3Cpu",
    "RunResult",
    "TournamentPredictor",
]
