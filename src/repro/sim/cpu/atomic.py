"""AtomicSimpleCPU analog: in-order, one instruction at a time.

Memory accesses complete "atomically" — their latency is charged
immediately and nothing overlaps.  Exactly like gem5's Atomic CPU it is
not a realistic performance model; the harness uses it to boot the system
and take checkpoints (setup mode), because the KVM model is unstable
(§3.4.1).

The fast path replays predecoded basic blocks
(:mod:`repro.sim.isa.predecode`); the legacy per-instruction loop is kept
for ``REPRO_PREDECODE=0`` and the equivalence tests that pin the two
paths bit-identical.
"""

from __future__ import annotations

from repro.sim.cpu.base import BaseCpu, RunResult
from repro.sim.isa import blockjit, predecode
from repro.sim.isa.base import InstrClass


class AtomicCpu(BaseCpu):
    """Functional-with-latency in-order model."""

    model_name = "atomic"

    def run_program(self, assembled, seed: int = 0) -> RunResult:
        if predecode.enabled():
            run = (blockjit.atomic_run if blockjit.enabled()
                   else predecode.atomic_run)
            cycles, class_counts = run(assembled, seed, self.mem)
            names = InstrClass.NAMES
            by_class = self.stat_by_class
            instructions = 0
            for icls, count in enumerate(class_counts):
                if count:
                    by_class.inc(names[icls], count)
                    instructions += count
            self.stat_cycles.inc(cycles)
            self.stat_insts.inc(instructions)
            return RunResult(cycles, instructions,
                             class_counts[InstrClass.LOAD],
                             class_counts[InstrClass.STORE],
                             class_counts[InstrClass.BRANCH])
        return self._run_legacy(assembled, seed)

    def _run_legacy(self, assembled, seed: int = 0) -> RunResult:
        mem = self.mem
        line_mask = ~(mem.config.line_size - 1)
        names = InstrClass.NAMES
        by_class = self.stat_by_class

        cycles = 0
        instructions = 0
        loads = stores = branches = 0
        current_line = -1

        is_load = InstrClass.LOAD
        is_store = InstrClass.STORE
        is_branch = InstrClass.BRANCH
        is_syscall = InstrClass.SYSCALL

        for static, addr, _taken in assembled.trace(seed):
            pc_line = static.pc & line_mask
            if pc_line != current_line:
                cycles += mem.ifetch(static.pc, cycles)
                current_line = pc_line
            icls = static.icls
            cycles += 1
            if icls == is_load:
                cycles += mem.data_access(addr, False, cycles, static.pc)
                loads += 1
            elif icls == is_store:
                cycles += mem.data_access(addr, True, cycles, static.pc)
                stores += 1
            elif icls == is_branch:
                branches += 1
            elif icls == is_syscall:
                cycles += 20  # trap entry/exit overhead, no pipeline to drain
            instructions += 1
            by_class.inc(names[icls])

        self.stat_cycles.inc(cycles)
        self.stat_insts.inc(instructions)
        return RunResult(cycles, instructions, loads, stores, branches)
