"""CPU model base class and run-result record.

A CPU model executes an :class:`~repro.sim.isa.trace.AssembledProgram`
against its core's memory hierarchy and returns a :class:`RunResult` with
the counters the thesis's evaluation collects per request: cycles,
committed instructions, CPI, and (via the stat tree) cache miss counts.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.isa import blockjit, predecode
from repro.sim.isa.base import InstrClass
from repro.sim.mem.hierarchy import CoreMemSystem
from repro.sim.statistics import StatGroup


class RunResult:
    """Counters for one program execution on one CPU model."""

    __slots__ = ("cycles", "instructions", "loads", "stores", "branches", "exit_cause")

    def __init__(
        self,
        cycles: int,
        instructions: int,
        loads: int = 0,
        stores: int = 0,
        branches: int = 0,
        exit_cause: str = "program completed",
    ):
        self.cycles = cycles
        self.instructions = instructions
        self.loads = loads
        self.stores = stores
        self.branches = branches
        self.exit_cause = exit_cause

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def __repr__(self) -> str:
        return "RunResult(cycles=%d, insts=%d, cpi=%.2f)" % (
            self.cycles, self.instructions, self.cpi,
        )


class BaseCpu:
    """Common plumbing: the stat group every CPU model publishes."""

    model_name = "base"

    def __init__(self, core_id: int, mem: CoreMemSystem, stats_parent: Optional[StatGroup] = None):
        self.core_id = core_id
        self.mem = mem
        # Each model publishes under cpuN.<model> so that switching CPU
        # models (Atomic for setup, O3 for evaluation) keeps distinct
        # counter namespaces, as gem5's switchable CPUs do.
        stats = (stats_parent or StatGroup("orphan")).group("cpu%d" % core_id).group(
            self.model_name
        )
        self.stats = stats
        self.stat_cycles = stats.scalar("numCycles", "cycles simulated")
        self.stat_insts = stats.scalar("committedInsts", "instructions committed")
        self.stat_by_class = stats.vector(
            "instsByClass", list(InstrClass.NAMES), "committed instructions by class"
        )
        stats.formula(
            "cpi",
            lambda: (self.stat_cycles.value() / self.stat_insts.value())
            if self.stat_insts.value()
            else 0.0,
            "cycles per instruction",
        )

    def run_program(self, assembled, seed: int = 0) -> RunResult:
        raise NotImplementedError

    def warm_program(self, assembled, seed: int = 0, bpred=None) -> int:
        """Functional pass: update cache/TLB/predictor state, no timing.

        Returns the number of instructions traversed.  Used for the
        untimed requests (2..9) between the cold and warm measurements.
        ``bpred`` (the detailed core's branch predictor, if any) trains on
        the branch stream, exactly what functional warming is for.
        """
        if predecode.enabled():
            warm = (blockjit.warm_run if blockjit.enabled()
                    else predecode.warm_run)
            return warm(assembled, seed, self.mem, bpred)
        line_mask = ~(self.mem.config.line_size - 1)
        mem = self.mem
        current_line = -1
        count = 0
        is_branch = InstrClass.BRANCH
        for static, addr, taken in assembled.trace(seed):
            fetch_line = static.pc & line_mask
            if fetch_line != current_line:
                mem.warm_touch(static.pc, is_ifetch=True)
                current_line = fetch_line
            if static.is_mem:
                mem.warm_touch(addr, is_ifetch=False,
                               write=static.icls == InstrClass.STORE,
                               pc=static.pc)
            elif bpred is not None and static.icls == is_branch:
                bpred.predict_and_update(static.pc, taken)
            count += 1
        return count

    def __repr__(self) -> str:
        return "%s(core%d)" % (type(self).__name__, self.core_id)
