"""Tournament branch predictor (local + gshare + chooser) with a BTB.

The structure follows the classic Alpha 21264 scheme the gem5 O3 model is
loosely based on, which is also the microarchitecture the thesis's O3
configuration descends from.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.statistics import StatGroup


class TwoBitCounterTable:
    """A table of saturating 2-bit counters, initialised weakly-taken."""

    __slots__ = ("mask", "counters")

    def __init__(self, entries: int):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("table entries must be a positive power of two")
        self.mask = entries - 1
        self.counters = bytearray([2] * entries)  # 2 = weakly taken

    def predict(self, index: int) -> bool:
        return self.counters[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        slot = index & self.mask
        value = self.counters[slot]
        if taken:
            if value < 3:
                self.counters[slot] = value + 1
        else:
            if value > 0:
                self.counters[slot] = value - 1

    def state_dict(self) -> bytes:
        return bytes(self.counters)

    def load_state(self, state: bytes) -> None:
        self.counters = bytearray(state)


class BasePredictor:
    """Interface every direction predictor implements."""

    kind = "base"

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        raise NotImplementedError

    def flush(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict:
        raise NotImplementedError

    def load_state(self, state: Dict) -> None:
        raise NotImplementedError


class StaticTakenPredictor(BasePredictor):
    """Predict taken, always — the baseline a real predictor must beat."""

    kind = "static-taken"

    def __init__(self, stats_parent: Optional[StatGroup] = None):
        stats = (stats_parent or StatGroup("orphan")).group("bpred")
        self.stat_lookups = stats.scalar("lookups", "branches predicted")
        self.stat_mispredicts = stats.scalar("mispredicts", "mispredictions")

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        self.stat_lookups.inc()
        if not taken:
            self.stat_mispredicts.inc()
        return taken

    def flush(self) -> None:
        pass

    def state_dict(self) -> Dict:
        return {}

    def load_state(self, state: Dict) -> None:
        pass


class BimodalPredictor(BasePredictor):
    """Per-PC 2-bit counters: the classic table predictor."""

    kind = "bimodal"

    def __init__(self, entries: int = 4096,
                 stats_parent: Optional[StatGroup] = None):
        self.table = TwoBitCounterTable(entries)
        stats = (stats_parent or StatGroup("orphan")).group("bpred")
        self.stat_lookups = stats.scalar("lookups", "branches predicted")
        self.stat_mispredicts = stats.scalar("mispredicts", "mispredictions")

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        self.stat_lookups.inc()
        index = pc >> 1
        correct = self.table.predict(index) == taken
        if not correct:
            self.stat_mispredicts.inc()
        self.table.update(index, taken)
        return correct

    def flush(self) -> None:
        self.table = TwoBitCounterTable(self.table.mask + 1)

    def state_dict(self) -> Dict:
        return {"table": self.table.state_dict()}

    def load_state(self, state: Dict) -> None:
        self.table.load_state(state["table"])


class GSharePredictor(BasePredictor):
    """Global-history xor-indexed 2-bit counters."""

    kind = "gshare"

    def __init__(self, entries: int = 8192, history_bits: int = 12,
                 stats_parent: Optional[StatGroup] = None):
        self.table = TwoBitCounterTable(entries)
        self.history_mask = (1 << history_bits) - 1
        self.history = 0
        stats = (stats_parent or StatGroup("orphan")).group("bpred")
        self.stat_lookups = stats.scalar("lookups", "branches predicted")
        self.stat_mispredicts = stats.scalar("mispredicts", "mispredictions")

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        self.stat_lookups.inc()
        index = (pc >> 1) ^ self.history
        correct = self.table.predict(index) == taken
        if not correct:
            self.stat_mispredicts.inc()
        self.table.update(index, taken)
        self.history = ((self.history << 1) | (1 if taken else 0)) \
            & self.history_mask
        return correct

    def flush(self) -> None:
        self.table = TwoBitCounterTable(self.table.mask + 1)
        self.history = 0

    def state_dict(self) -> Dict:
        return {"table": self.table.state_dict(), "history": self.history}

    def load_state(self, state: Dict) -> None:
        self.table.load_state(state["table"])
        self.history = state["history"]


class TournamentPredictor(BasePredictor):
    """Local/gshare tournament predictor with a direct-mapped BTB."""

    kind = "tournament"

    def __init__(
        self,
        local_entries: int = 2048,
        global_entries: int = 8192,
        chooser_entries: int = 8192,
        history_bits: int = 12,
        btb_entries: int = 4096,
        stats_parent: Optional[StatGroup] = None,
    ):
        self.local = TwoBitCounterTable(local_entries)
        self.gshare = TwoBitCounterTable(global_entries)
        self.chooser = TwoBitCounterTable(chooser_entries)
        self.history_mask = (1 << history_bits) - 1
        self.history = 0
        self.btb_mask = btb_entries - 1
        self.btb: Dict[int, int] = {}

        stats = (stats_parent or StatGroup("orphan")).group("bpred")
        self.stat_lookups = stats.scalar("lookups", "conditional branches predicted")
        self.stat_mispredicts = stats.scalar("mispredicts", "direction mispredictions")
        self.stat_btb_misses = stats.scalar("btbMisses", "taken branches missing a BTB target")
        stats.formula(
            "mispredictRate",
            lambda: (self.stat_mispredicts.value() / self.stat_lookups.value())
            if self.stat_lookups.value()
            else 0.0,
        )

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """One lookup-then-train step; returns True if prediction correct.

        The trace already carries the actual outcome, so prediction and
        training collapse into one call.
        """
        self.stat_lookups.inc()
        pc_index = pc >> 1
        global_index = (pc_index ^ self.history) & self.history_mask | (self.history << 1)
        local_prediction = self.local.predict(pc_index)
        global_prediction = self.gshare.predict(global_index)
        use_global = self.chooser.predict(self.history)
        prediction = global_prediction if use_global else local_prediction

        correct = prediction == taken
        if not correct:
            self.stat_mispredicts.inc()

        # Train chooser towards whichever component was right.
        if local_prediction != global_prediction:
            self.chooser.update(self.history, global_prediction == taken)
        self.local.update(pc_index, taken)
        self.gshare.update(global_index, taken)
        self.history = ((self.history << 1) | (1 if taken else 0)) & self.history_mask

        if taken:
            slot = pc_index & self.btb_mask
            if self.btb.get(slot) != pc:
                self.stat_btb_misses.inc()
                self.btb[slot] = pc
                return False  # treat as a front-end redirect
        return correct

    def flush(self) -> None:
        """Cold predictor state (new process / thrashed microarch state)."""
        self.local = TwoBitCounterTable(self.local.mask + 1)
        self.gshare = TwoBitCounterTable(self.gshare.mask + 1)
        self.chooser = TwoBitCounterTable(self.chooser.mask + 1)
        self.history = 0
        self.btb.clear()

    def state_dict(self) -> Dict:
        return {
            "local": self.local.state_dict(),
            "gshare": self.gshare.state_dict(),
            "chooser": self.chooser.state_dict(),
            "history": self.history,
            "btb": dict(self.btb),
        }

    def load_state(self, state: Dict) -> None:
        self.local.load_state(state["local"])
        self.gshare.load_state(state["gshare"])
        self.chooser.load_state(state["chooser"])
        self.history = state["history"]
        self.btb = dict(state["btb"])


#: Predictor registry: the branch-predictor axis of the thesis's §6
#: design-space wishlist.
PREDICTORS = {
    "tournament": TournamentPredictor,
    "gshare": GSharePredictor,
    "bimodal": BimodalPredictor,
    "static-taken": StaticTakenPredictor,
}


def make_predictor(kind: str,
                   stats_parent: Optional[StatGroup] = None) -> BasePredictor:
    """Instantiate a branch predictor by name."""
    try:
        cls = PREDICTORS[kind]
    except KeyError:
        raise ValueError("unknown predictor %r; have %s"
                         % (kind, sorted(PREDICTORS))) from None
    return cls(stats_parent=stats_parent)
