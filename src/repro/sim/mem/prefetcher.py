"""Hardware prefetcher models — the third §6 design-space axis.

Three kinds:

* ``none`` — what the thesis's gem5 configuration ran with (and why its
  cold starts are so front-end bound);
* ``nextline`` — on a miss, stream the following ``degree`` lines in;
* ``stride`` — a PC-indexed reference-prediction table: when a load
  instruction repeats a constant line stride, prefetch ``degree`` steps
  down that stride (catches strided scans next-line cannot).

Prefetchers observe demand misses and return the lines to fill; the
hierarchy installs them without charging demand latency or stats.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

PREFETCHER_KINDS = ("none", "nextline", "stride")


class Prefetcher:
    """Observe a demand miss; propose lines to fill.

    Prefetchers follow the same maintenance protocol as caches and TLBs:
    :meth:`flush` drops any trained state, and :meth:`state_dict` /
    :meth:`load_state` round-trip it through checkpoints.  A trained
    prefetcher changes fill timing, so leaving it out of either path
    breaks checkpoint/restore timing determinism.
    """

    kind = "none"

    def on_miss(self, pc: int, line: int) -> List[int]:
        return []

    def flush(self) -> None:
        pass

    def reset(self) -> None:  # historical alias for flush
        self.flush()

    def state_dict(self) -> Dict:
        return {"kind": self.kind}

    def load_state(self, state: Dict) -> None:
        if state.get("kind", self.kind) != self.kind:
            raise ValueError(
                "checkpoint prefetcher kind %r does not match %r"
                % (state.get("kind"), self.kind)
            )


class NextLinePrefetcher(Prefetcher):
    """Sequential streaming: fill line+1 .. line+degree on every miss."""

    kind = "nextline"

    def __init__(self, degree: int = 2):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree

    def on_miss(self, pc: int, line: int) -> List[int]:
        return [line + ahead for ahead in range(1, self.degree + 1)]


class StridePrefetcher(Prefetcher):
    """PC-indexed stride detection (reference prediction table).

    Each load PC tracks its last miss line and stride; two consecutive
    misses with the same stride gain confidence and trigger prefetches of
    the next ``degree`` strides.
    """

    kind = "stride"

    def __init__(self, degree: int = 2, table_entries: int = 64):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        if table_entries < 1:
            raise ValueError("table_entries must be >= 1")
        self.degree = degree
        self.table_entries = table_entries
        # pc -> (last_line, stride, confident)
        self._table: Dict[int, Tuple[int, int, bool]] = {}

    def on_miss(self, pc: int, line: int) -> List[int]:
        entry = self._table.get(pc)
        prefetches: List[int] = []
        if entry is None:
            if len(self._table) >= self.table_entries:
                self._table.pop(next(iter(self._table)))
            self._table[pc] = (line, 0, False)
            return prefetches
        last_line, stride, _confident = entry
        new_stride = line - last_line
        if new_stride != 0 and new_stride == stride:
            # Stride confirmed on consecutive misses: prefetch ahead.
            prefetches = [line + new_stride * step
                          for step in range(1, self.degree + 1)]
            self._table[pc] = (line, new_stride, True)
        else:
            self._table[pc] = (line, new_stride, False)
        return prefetches

    def flush(self) -> None:
        self._table.clear()

    def state_dict(self) -> Dict:
        # Insertion order is the table's FIFO replacement order, so the
        # entry list must preserve it.
        return {
            "kind": self.kind,
            "table": [(pc, entry) for pc, entry in self._table.items()],
        }

    def load_state(self, state: Dict) -> None:
        super().load_state(state)
        self._table = {
            pc: (entry[0], entry[1], entry[2])
            for pc, entry in state.get("table", [])
        }


def make_prefetcher(kind: str, degree: int) -> Prefetcher:
    """Build a prefetcher; degree 0 or kind 'none' disables it."""
    if kind not in PREFETCHER_KINDS:
        raise ValueError("unknown prefetcher %r; have %s"
                         % (kind, PREFETCHER_KINDS))
    if kind == "none" or degree <= 0:
        return Prefetcher()
    if kind == "nextline":
        return NextLinePrefetcher(degree)
    return StridePrefetcher(degree)
