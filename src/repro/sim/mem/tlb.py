"""TLB and page-walk-cache models.

Each core has split I/D TLBs.  A TLB miss triggers a page-table walk whose
cost is softened by an 8 KB page-walk cache (Table 4.1): walks whose
upper-level entries are cached pay a short latency, others pay full
memory-access latencies supplied by the hierarchy.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.mem.cache import _CounterView
from repro.sim.statistics import StatGroup

PAGE_SHIFT = 12  # 4 KB pages on both simulated platforms
PAGE_SIZE = 1 << PAGE_SHIFT


class Tlb:
    """Fully-associative LRU TLB with a page-walk cache."""

    def __init__(
        self,
        name: str,
        entries: int = 64,
        walk_cache_entries: int = 128,  # 8 KB / 64B per cached PTE line
        cached_walk_cycles: int = 8,
        stats_parent: Optional[StatGroup] = None,
    ):
        if entries <= 0:
            raise ValueError("TLB must have at least one entry")
        self.name = name
        self.entries = entries
        self.walk_cache_entries = walk_cache_entries
        self.cached_walk_cycles = cached_walk_cycles

        self._tlb: Dict[int, None] = {}
        self._walk_cache: Dict[int, None] = {}

        # Hot-path counters are plain ints; the registered stats are
        # views over them (same treatment as the cache counters).
        self.accesses = 0
        self.misses = 0
        self.walks = 0

        stats = (stats_parent or StatGroup("orphan")).group(name)
        self.stat_accesses = stats.add(_CounterView(
            "accesses", self, "accesses", "translations requested"))
        self.stat_misses = stats.add(_CounterView(
            "misses", self, "misses", "TLB misses"))
        self.stat_walks = stats.add(_CounterView(
            "walks", self, "walks", "full page-table walks"))

        #: Optional :class:`repro.obs.TlbProfiler`.
        self.profiler = None

    def translate(self, addr: int) -> int:
        """Translate; returns extra cycles spent on TLB handling (0 on hit)."""
        page = addr >> PAGE_SHIFT
        tlb = self._tlb
        self.accesses += 1
        if page in tlb:
            del tlb[page]
            tlb[page] = None  # refresh LRU position
            return 0
        self.misses += 1
        if self.profiler is not None:
            self.profiler.on_miss(page)
        penalty = self._walk(page)
        if len(tlb) >= self.entries:
            del tlb[next(iter(tlb))]
        tlb[page] = None
        return penalty

    def _walk(self, page: int) -> int:
        """Cost of the page walk; fills the walk cache."""
        # Upper-level directory entry covers a 2 MB region (512 pages).
        directory = page >> 9
        walk_cache = self._walk_cache
        if directory in walk_cache:
            del walk_cache[directory]
            walk_cache[directory] = None
            return self.cached_walk_cycles
        self.walks += 1
        if self.profiler is not None:
            self.profiler.on_walk(directory)
        if len(walk_cache) >= self.walk_cache_entries:
            del walk_cache[next(iter(walk_cache))]
        walk_cache[directory] = None
        # Full walk: a handful of dependent memory accesses; the hierarchy
        # charges these as roughly two L2-latency lookups.
        return self.cached_walk_cycles * 6

    def flush(self) -> None:
        self._tlb.clear()
        self._walk_cache.clear()

    def state_dict(self) -> Dict:
        return {"tlb": list(self._tlb), "walk": list(self._walk_cache)}

    def load_state(self, state: Dict) -> None:
        self._tlb = {page: None for page in state["tlb"]}
        self._walk_cache = {entry: None for entry in state["walk"]}

    def resident(self) -> List[int]:
        return list(self._tlb)

    def __repr__(self) -> str:
        return "Tlb(%s: %d entries)" % (self.name, self.entries)
