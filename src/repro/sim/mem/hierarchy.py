"""Per-core memory hierarchy: L1I + L1D + I/D TLBs over L2 over DRAM.

Mirrors Fig 4.3 of the thesis: each core owns split L1 caches and a
private L2; both cores share the DRAM controller.  The hierarchy exposes
two operations to the CPU models:

* :meth:`CoreMemSystem.ifetch` — fetch one instruction cache line,
* :meth:`CoreMemSystem.data_access` — one load/store,

each returning the access latency in cycles while updating cache state and
statistics.  A third, :meth:`warm_touch`, updates state without timing —
used for the functional fast-forward between the cold (1st) and warm
(10th) requests of the experiment protocol.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.mem.cache import Cache
from repro.sim.mem.dram import DramModel
from repro.sim.mem.prefetcher import make_prefetcher
from repro.sim.mem.tlb import Tlb
from repro.sim.statistics import StatGroup


class MemoryHierarchyConfig:
    """Geometry and latency knobs (defaults = Table 4.1)."""

    def __init__(
        self,
        l1i_size: int = 32 * 1024,
        l1i_assoc: int = 8,
        l1d_size: int = 32 * 1024,
        l1d_assoc: int = 8,
        l2_size: int = 512 * 1024,
        l2_assoc: int = 4,
        line_size: int = 64,
        l1_latency: int = 2,
        l2_latency: int = 18,
        replacement: str = "lru",
        itlb_entries: int = 64,
        dtlb_entries: int = 64,
        prefetch_i_degree: int = 0,
        prefetch_d_degree: int = 2,
        prefetch_i_kind: str = "nextline",
        prefetch_d_kind: str = "nextline",
    ):
        self.l1i_size = l1i_size
        self.l1i_assoc = l1i_assoc
        self.l1d_size = l1d_size
        self.l1d_assoc = l1d_assoc
        self.l2_size = l2_size
        self.l2_assoc = l2_assoc
        self.line_size = line_size
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.replacement = replacement
        self.itlb_entries = itlb_entries
        self.dtlb_entries = dtlb_entries
        self.prefetch_i_degree = prefetch_i_degree
        self.prefetch_d_degree = prefetch_d_degree
        self.prefetch_i_kind = prefetch_i_kind
        self.prefetch_d_kind = prefetch_d_kind

    def scaled(self, space_scale: int) -> "MemoryHierarchyConfig":
        """Shrink capacities by ``space_scale`` (see repro.core.scale).

        Latencies and associativities are preserved; only capacities shrink,
        keeping footprint-to-capacity ratios — and therefore miss behaviour —
        faithful to the full-size machine.
        """
        if space_scale <= 0:
            raise ValueError("space_scale must be positive")

        def shrink(size: int, floor: int) -> int:
            scaled_size = max(floor, size // space_scale)
            # Round down to a power-of-two multiple of assoc*line handled
            # by the caller; here just keep byte counts sane.
            return scaled_size

        return MemoryHierarchyConfig(
            l1i_size=shrink(self.l1i_size, self.l1i_assoc * self.line_size),
            l1i_assoc=self.l1i_assoc,
            l1d_size=shrink(self.l1d_size, self.l1d_assoc * self.line_size),
            l1d_assoc=self.l1d_assoc,
            l2_size=shrink(self.l2_size, self.l2_assoc * self.line_size * 2),
            l2_assoc=self.l2_assoc,
            line_size=self.line_size,
            l1_latency=self.l1_latency,
            l2_latency=self.l2_latency,
            replacement=self.replacement,
            itlb_entries=max(8, self.itlb_entries // max(1, space_scale // 4)),
            dtlb_entries=max(8, self.dtlb_entries // max(1, space_scale // 4)),
            prefetch_i_degree=self.prefetch_i_degree,
            prefetch_d_degree=self.prefetch_d_degree,
            prefetch_i_kind=self.prefetch_i_kind,
            prefetch_d_kind=self.prefetch_d_kind,
        )


class CoreMemSystem:
    """One core's view of the memory system."""

    def __init__(
        self,
        core_id: int,
        config: MemoryHierarchyConfig,
        dram: DramModel,
        stats_parent: Optional[StatGroup] = None,
    ):
        self.core_id = core_id
        self.config = config
        self.dram = dram
        stats = (stats_parent or StatGroup("orphan")).group("core%d" % core_id)
        self.stats = stats
        cfg = config
        self.l1i = Cache("l1i", cfg.l1i_size, cfg.l1i_assoc, cfg.line_size,
                         cfg.replacement, stats)
        self.l1d = Cache("l1d", cfg.l1d_size, cfg.l1d_assoc, cfg.line_size,
                         cfg.replacement, stats)
        self.l2 = Cache("l2", cfg.l2_size, cfg.l2_assoc, cfg.line_size,
                        cfg.replacement, stats)
        self.itlb = Tlb("itlb", cfg.itlb_entries, stats_parent=stats)
        self.dtlb = Tlb("dtlb", cfg.dtlb_entries, stats_parent=stats)
        self._line_shift = cfg.line_size.bit_length() - 1
        # Latencies as plain ints: the access paths below run once per
        # simulated memory instruction, so the config-attribute chain is
        # worth hoisting out of them.
        self._l1_latency = cfg.l1_latency
        self._l2_latency = cfg.l2_latency
        self._now = 0
        self._iprefetcher = make_prefetcher(cfg.prefetch_i_kind,
                                            cfg.prefetch_i_degree)
        self._dprefetcher = make_prefetcher(cfg.prefetch_d_kind,
                                            cfg.prefetch_d_degree)
        self.stat_prefetches = stats.scalar("prefetchFills", "lines installed by prefetch")

    # -- timed access paths ---------------------------------------------------

    def ifetch(self, addr: int, now_cycle: int = 0) -> int:
        """Fetch the line containing ``addr``; returns latency in cycles."""
        latency = self._l1_latency + self.itlb.translate(addr)
        line = addr >> self._line_shift
        if self.l1i.access_line(line):
            return latency
        l2 = self.l2
        for fill in self._iprefetcher.on_miss(addr, line):
            self.l1i.fill_line(fill)
            l2.fill_line(fill)
            self.stat_prefetches.inc()
        latency += self._l2_latency
        if l2.access_line(line):
            return latency
        return latency + self.dram.access(addr, now_cycle)

    def data_access(self, addr: int, write: bool = False, now_cycle: int = 0,
                    pc: int = 0) -> int:
        """One load or store; returns latency in cycles.

        ``pc`` identifies the accessing instruction for PC-indexed
        prefetchers; timing is unaffected by it otherwise.
        """
        latency = self._l1_latency + self.dtlb.translate(addr)
        line = addr >> self._line_shift
        if self.l1d.access_line(line, write):
            return latency
        l2 = self.l2
        for fill in self._dprefetcher.on_miss(pc, line):
            self.l1d.fill_line(fill)
            l2.fill_line(fill)
            self.stat_prefetches.inc()
        latency += self._l2_latency
        if l2.access_line(line, write):
            return latency
        return latency + self.dram.access(addr, now_cycle)

    # -- functional (untimed) path ---------------------------------------------

    def warm_touch(self, addr: int, is_ifetch: bool, write: bool = False,
                   pc: int = 0) -> None:
        """Update cache/TLB state without producing a latency.

        Statistics still accumulate; the harness discards them with a stat
        reset before each measured region, matching the m5-ops protocol.
        """
        line = addr >> self._line_shift
        if is_ifetch:
            self.itlb.translate(addr)
            if not self.l1i.access_line(line):
                for fill in self._iprefetcher.on_miss(addr, line):
                    self.l1i.fill_line(fill)
                    self.l2.fill_line(fill)
                self.l2.access_line(line)
        else:
            self.dtlb.translate(addr)
            if not self.l1d.access_line(line, write):
                for fill in self._dprefetcher.on_miss(pc, line):
                    self.l1d.fill_line(fill)
                    self.l2.fill_line(fill)
                self.l2.access_line(line, write)

    # -- maintenance -------------------------------------------------------------

    def flush_all(self) -> None:
        """Cold microarchitectural state: empty caches, TLBs, prefetchers."""
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()
        self.itlb.flush()
        self.dtlb.flush()
        self._iprefetcher.flush()
        self._dprefetcher.flush()

    def state_dict(self) -> Dict:
        return {
            "l1i": self.l1i.state_dict(),
            "l1d": self.l1d.state_dict(),
            "l2": self.l2.state_dict(),
            "itlb": self.itlb.state_dict(),
            "dtlb": self.dtlb.state_dict(),
            "iprefetcher": self._iprefetcher.state_dict(),
            "dprefetcher": self._dprefetcher.state_dict(),
        }

    def load_state(self, state: Dict) -> None:
        self.l1i.load_state(state["l1i"])
        self.l1d.load_state(state["l1d"])
        self.l2.load_state(state["l2"])
        self.itlb.load_state(state["itlb"])
        self.dtlb.load_state(state["dtlb"])
        # Checkpoints taken before prefetchers joined the state dict
        # restore them as cold rather than erroring out.
        if "iprefetcher" in state:
            self._iprefetcher.load_state(state["iprefetcher"])
        else:
            self._iprefetcher.flush()
        if "dprefetcher" in state:
            self._dprefetcher.load_state(state["dprefetcher"])
        else:
            self._dprefetcher.flush()

    def __repr__(self) -> str:
        return "CoreMemSystem(core%d)" % self.core_id
