"""Cache replacement policies.

Each policy manages victim selection within one cache set.  Policies are
deliberately small objects: the cache keeps one instance per set, and the
design-space-exploration benches swap them via :func:`make_policy`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional


class ReplacementPolicy:
    """Per-set replacement state."""

    def touch(self, tag: int) -> None:
        """Record a hit on ``tag``."""
        raise NotImplementedError

    def insert(self, tag: int) -> None:
        """Record the fill of ``tag`` (caller has ensured capacity)."""
        raise NotImplementedError

    def victim(self) -> int:
        """Choose the tag to evict (set is full)."""
        raise NotImplementedError

    def evict(self, tag: int) -> None:
        """Remove ``tag`` from the tracking state."""
        raise NotImplementedError

    def state(self) -> List[int]:
        """Checkpointable ordering of resident tags."""
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """Least-recently-used, tracked with an insertion-ordered dict."""

    __slots__ = ("_order",)

    def __init__(self):
        self._order: Dict[int, None] = {}

    def touch(self, tag: int) -> None:
        del self._order[tag]
        self._order[tag] = None

    def insert(self, tag: int) -> None:
        self._order[tag] = None

    def victim(self) -> int:
        return next(iter(self._order))

    def evict(self, tag: int) -> None:
        del self._order[tag]

    def state(self) -> List[int]:
        return list(self._order)


class FifoPolicy(ReplacementPolicy):
    """First-in first-out: insertion order, hits do not promote."""

    __slots__ = ("_order",)

    def __init__(self):
        self._order: Dict[int, None] = {}

    def touch(self, tag: int) -> None:
        pass

    def insert(self, tag: int) -> None:
        self._order[tag] = None

    def victim(self) -> int:
        return next(iter(self._order))

    def evict(self, tag: int) -> None:
        del self._order[tag]

    def state(self) -> List[int]:
        return list(self._order)


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection with a per-set deterministic RNG."""

    __slots__ = ("_resident", "_rng")

    def __init__(self, seed: int = 0):
        self._resident: Dict[int, None] = {}
        self._rng = random.Random(seed)

    def touch(self, tag: int) -> None:
        pass

    def insert(self, tag: int) -> None:
        self._resident[tag] = None

    def victim(self) -> int:
        keys = list(self._resident)
        return keys[self._rng.randrange(len(keys))]

    def evict(self, tag: int) -> None:
        del self._resident[tag]

    def state(self) -> List[int]:
        return list(self._resident)


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, seed: Optional[int] = None,
                **kwargs) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (lru / fifo / random).

    Extra keyword arguments are forwarded to the policy constructor, so a
    cache built with custom policy parameters can rebuild identical
    policies on flush/restore.
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError("unknown replacement policy %r; have %s" % (name, sorted(_POLICIES)))
    if cls is RandomPolicy:
        kwargs.setdefault("seed", seed or 0)
    return cls(**kwargs)


def policy_names() -> List[str]:
    """Names of the available replacement policies."""
    return sorted(_POLICIES)
