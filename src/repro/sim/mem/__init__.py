"""Memory-system models: caches, DRAM, TLBs, and the per-core hierarchy.

The geometry defaults mirror Table 4.1 of the thesis: per-core 32 KB 8-way
L1 instruction and data caches, a per-core 512 KB 4-way L2, DDR3-1600
main memory, and 8 KB page-walk caches behind the I/D TLBs.
"""

from repro.sim.mem.cache import Cache
from repro.sim.mem.dram import DramModel
from repro.sim.mem.hierarchy import CoreMemSystem, MemoryHierarchyConfig
from repro.sim.mem.replacement import LruPolicy, RandomPolicy, make_policy
from repro.sim.mem.tlb import Tlb

__all__ = [
    "Cache",
    "CoreMemSystem",
    "DramModel",
    "LruPolicy",
    "MemoryHierarchyConfig",
    "RandomPolicy",
    "Tlb",
    "make_policy",
]
